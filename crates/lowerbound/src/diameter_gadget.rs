//! The Figure 2 construction: a graph family on which deciding whether the
//! diameter is `x` or `x + 2` solves sparse set disjointness, forcing
//! `Ω(n log n)` bits across an `(m + 1)`-edge cut — hence
//! `Ω(D + N/log N)` rounds (Theorem 5).

use crate::disjoint::DisjointnessInstance;
use bc_graph::{Graph, GraphBuilder, NodeId};

/// The built gadget with its role map.
#[derive(Debug, Clone)]
pub struct DiameterGadget {
    /// The gadget graph.
    pub graph: Graph,
    /// The `x` parameter: the diameter is `x` (disjoint) or `x + 2`.
    pub x: u32,
    /// Left witnesses `S'_1..n` — the diameter is realized between some
    /// `S'_i` and `T'_j`.
    pub s_prime: Vec<NodeId>,
    /// Right witnesses `T'_1..n`.
    pub t_prime: Vec<NodeId>,
    /// Left hub `A` and right hub `B`.
    pub a: NodeId,
    /// Right hub `B`.
    pub b: NodeId,
    /// The `m + 1` cut edges separating Alice's side from Bob's (the
    /// middle edge of each `L_i ⇝ L'_i` path and of the `A ⇝ B` path).
    pub cut: Vec<(NodeId, NodeId)>,
}

/// Builds the Figure 2 gadget for a disjointness instance.
///
/// # Panics
///
/// Panics if `x < 8` (the construction needs slack `x − 6 ≥ 2`) or the
/// two families disagree on `m` / `n`.
pub fn diameter_gadget(x: u32, inst: &DisjointnessInstance) -> DiameterGadget {
    assert!(x >= 8, "the construction requires x >= 8");
    assert_eq!(inst.x.m, inst.y.m, "mismatched universes");
    assert_eq!(inst.x.len(), inst.y.len(), "mismatched family sizes");
    let m = inst.x.m as usize;
    let n = inst.x.len();
    let path_internal = (x - 7) as usize; // x−6 edges ⇒ x−7 internal nodes
    let total = 2 * m + m * path_internal + 2 + path_internal + 6 * n;
    let mut next: NodeId = 0;
    let mut alloc = |k: usize| -> Vec<NodeId> {
        let v = (next..next + k as NodeId).collect();
        next += k as NodeId;
        v
    };
    let l = alloc(m);
    let lp = alloc(m);
    let a = alloc(1)[0];
    let b = alloc(1)[0];
    let s = alloc(n);
    let s2 = alloc(n); // S''
    let s1 = alloc(n); // S'
    let t = alloc(n);
    let t2 = alloc(n); // T''
    let t1 = alloc(n); // T'
    let mut builder = GraphBuilder::new(total);
    let mut cut = Vec::with_capacity(m + 1);

    // Adds a path of `x − 6` edges between `u` and `v`, returning its
    // middle edge; internal node ids are taken from `next`.
    let mut add_long_path =
        |builder: &mut GraphBuilder, u: NodeId, v: NodeId| -> (NodeId, NodeId) {
            let internals: Vec<NodeId> = (next..next + path_internal as NodeId).collect();
            next += path_internal as NodeId;
            let chain: Vec<NodeId> = std::iter::once(u)
                .chain(internals.iter().copied())
                .chain(std::iter::once(v))
                .collect();
            for w in chain.windows(2) {
                builder.add_edge(w[0], w[1]).expect("gadget edge");
            }
            let mid = chain.len() / 2;
            (chain[mid - 1], chain[mid])
        };

    for i in 0..m {
        cut.push(add_long_path(&mut builder, l[i], lp[i]));
    }
    cut.push(add_long_path(&mut builder, a, b));
    for i in 0..m {
        builder.add_edge(a, l[i]).expect("gadget edge");
        builder.add_edge(b, lp[i]).expect("gadget edge");
    }
    for j in 0..n {
        builder.add_edge(s[j], s2[j]).expect("gadget edge");
        builder.add_edge(s2[j], s1[j]).expect("gadget edge");
        builder.add_edge(t[j], t2[j]).expect("gadget edge");
        builder.add_edge(t2[j], t1[j]).expect("gadget edge");
        for i in 0..m {
            if inst.x.sets[j] >> i & 1 == 1 {
                builder.add_edge(l[i], s[j]).expect("gadget edge");
            }
            if inst.y.sets[j] >> i & 1 == 0 {
                builder.add_edge(lp[i], t[j]).expect("gadget edge");
            }
        }
    }
    debug_assert_eq!(next as usize, total);
    DiameterGadget {
        graph: builder.build(),
        x,
        s_prime: s1,
        t_prime: t1,
        a,
        b,
        cut,
    }
}

/// Decides sparse set disjointness by building the gadget and computing its
/// diameter — the reduction of Theorem 5 run forward. Returns `true` iff
/// the families intersect (diameter `x + 2`).
pub fn decide_disjointness_via_diameter(inst: &DisjointnessInstance) -> bool {
    let gadget = diameter_gadget(8, inst);
    bc_graph::algo::diameter(&gadget.graph) == gadget.x + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjoint::{random_instance, universe_size, SetFamily};
    use bc_graph::algo::{self, bfs};

    fn small_instance(intersecting: bool) -> DisjointnessInstance {
        random_instance(4, universe_size(4), intersecting, 42)
    }

    #[test]
    fn lemma8_dichotomy() {
        for seed in 0..5 {
            for x in [8u32, 9, 11] {
                let disjoint = random_instance(4, universe_size(4), false, seed);
                let g = diameter_gadget(x, &disjoint);
                assert_eq!(algo::diameter(&g.graph), x, "x={x} seed={seed} disjoint");
                let planted = random_instance(4, universe_size(4), true, seed);
                let g = diameter_gadget(x, &planted);
                assert_eq!(algo::diameter(&g.graph), x + 2, "x={x} seed={seed} planted");
            }
        }
    }

    #[test]
    fn witness_pair_distance() {
        // With an explicit X_i = Y_j match, d(S'_i, T'_j) must be x + 2,
        // and x for non-matching pairs (Lemma 8, Eq. 22).
        let m = universe_size(3);
        let x = SetFamily {
            m,
            sets: crate::disjoint::random_family(3, m, 1).sets,
        };
        let mut y = crate::disjoint::random_family(3, m, 2);
        y.sets[1] = x.sets[0]; // X_0 == Y_1
        let inst = DisjointnessInstance {
            intersecting: true,
            x,
            y,
        };
        let g = diameter_gadget(10, &inst);
        let dag = bfs(&g.graph, g.s_prime[0]);
        assert_eq!(dag.dist[g.t_prime[1] as usize], 12);
        // Some non-matching pair is at distance exactly x.
        let dag2 = bfs(&g.graph, g.s_prime[1]);
        assert!(
            (0..3).any(|j| dag2.dist[g.t_prime[j] as usize] == 10),
            "some pair at distance x"
        );
    }

    #[test]
    fn hubs_have_bounded_eccentricity() {
        // ecc(A) = ecc(B) = x − 2 per the Lemma 8 proof.
        let g = diameter_gadget(9, &small_instance(true));
        assert_eq!(bfs(&g.graph, g.a).eccentricity(), 7);
        assert_eq!(bfs(&g.graph, g.b).eccentricity(), 7);
    }

    #[test]
    fn gadget_is_connected_with_log_cut() {
        let inst = small_instance(false);
        let g = diameter_gadget(8, &inst);
        assert!(algo::is_connected(&g.graph));
        assert_eq!(g.cut.len() as u32, inst.x.m + 1);
        // Removing the cut edges disconnects left from right.
        let kept = g
            .graph
            .edges()
            .filter(|&(u, v)| !g.cut.contains(&(u, v)) && !g.cut.contains(&(v, u)));
        let pruned = Graph::from_edges(g.graph.n(), kept).unwrap();
        let (comp, k) = algo::connected_components(&pruned);
        assert!(k >= 2, "cut must separate");
        assert_ne!(
            comp[g.s_prime[0] as usize], comp[g.t_prime[0] as usize],
            "S' and T' on opposite sides"
        );
    }

    #[test]
    fn reduction_decides_disjointness() {
        for seed in 0..6 {
            let inst = random_instance(5, universe_size(5), seed % 2 == 0, seed);
            assert_eq!(
                decide_disjointness_via_diameter(&inst),
                inst.intersecting,
                "seed {seed}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "x >= 8")]
    fn small_x_rejected() {
        let _ = diameter_gadget(7, &small_instance(false));
    }
}
