//! The paper's lower-bound constructions (Section IX), built and measured.
//!
//! * [`diameter_gadget`] — Figure 2: a graph whose diameter is `x` or
//!   `x + 2` according to a sparse set-disjointness instance (Lemma 8),
//!   proving deciding the diameter needs `Ω(D + N/log N)` rounds
//!   (Theorem 5).
//! * [`bc_gadget`] — Figure 3: a graph where `C_B(F_i) ∈ {1, 1.5}` encodes
//!   whether `X_i ∈ X ∩ Y` (Lemma 9), so betweenness to relative error
//!   `0.499` also needs `Ω(D + N/log N)` rounds (Theorem 6) — the paper's
//!   algorithm is therefore nearly optimal.
//! * [`disjoint`] — instance generation with the paper's
//!   `m = Θ(log n)` universe sizing (`C(m, m/2) ≥ n²`).
//! * [`cutflow`] — runs the real distributed algorithm on the gadgets with
//!   the `(m + 1)`-edge cut declared to the simulator, reporting measured
//!   bit flow against the `n log n` information bound.
//!
//! # Example
//!
//! ```
//! use bc_lowerbound::disjoint::{random_instance, universe_size};
//! use bc_lowerbound::{decide_disjointness_via_betweenness, decide_disjointness_via_diameter};
//!
//! let inst = random_instance(5, universe_size(5), true, 7);
//! // Both reductions decide the (intersecting) instance correctly.
//! assert!(decide_disjointness_via_diameter(&inst));
//! assert!(decide_disjointness_via_betweenness(&inst));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bc_gadget;
pub mod cutflow;
mod diameter_gadget;
pub mod disjoint;

pub use bc_gadget::{
    bc_gadget, decide_disjointness_via_betweenness, BcGadget, BC_IF_ABSENT, BC_IF_PRESENT,
};
pub use diameter_gadget::{decide_disjointness_via_diameter, diameter_gadget, DiameterGadget};
