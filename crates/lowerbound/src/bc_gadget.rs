//! The Figure 3 construction: a graph family where the betweenness of the
//! designated nodes `F_i` is `1.5` iff `X_i` appears in Bob's family and
//! `1` otherwise (Lemma 9) — so any algorithm computing betweenness to
//! relative error `0.499` solves sparse set disjointness and must move
//! `Ω(n log n)` bits across an `(m + 1)`-edge cut (Theorem 6).
//!
//! Wiring (from the construction and the requirements of the Lemma 9
//! proof): `L_i — L'_i`; `S_j — L_i` for `i ∈ X_j`; `T_j — L'_i` for
//! `i ∉ Y_j`; a pendant `F_j — S_j`; hubs `P — F_j`, `Q — T_j`, `P — Q`,
//! `B — S_j`, `B — F_j`, `B — P`, `A — L_i`, `A — P`. The hub edges pin
//! every shortest path that could cross `F_i`: only
//! `(S_i, P)`, `(S_i, Q)` (each `δ = 1/2`) and, when `X_i = Y_j`,
//! `(S_i, T_j)` (`δ = 1/2`) pass through `F_i`.

use crate::disjoint::DisjointnessInstance;
use bc_graph::{Graph, GraphBuilder, NodeId};

/// The built gadget with its role map.
#[derive(Debug, Clone)]
pub struct BcGadget {
    /// The gadget graph.
    pub graph: Graph,
    /// The probe nodes `F_1..n` whose betweenness encodes the answer.
    pub f: Vec<NodeId>,
    /// Left set nodes `S_1..n`.
    pub s: Vec<NodeId>,
    /// Right set nodes `T_1..n`.
    pub t: Vec<NodeId>,
    /// Left universe nodes `L_1..m`.
    pub l: Vec<NodeId>,
    /// Right universe nodes `L'_1..m`.
    pub l_prime: Vec<NodeId>,
    /// Hub nodes.
    pub a: NodeId,
    /// Hub adjacent to the `S_j` and `F_j` and `P`.
    pub b: NodeId,
    /// Hub adjacent to the `F_j` and `Q`.
    pub p: NodeId,
    /// Hub adjacent to the `T_j`.
    pub q: NodeId,
    /// The `m + 1` cut edges (`L_i — L'_i` for all `i`, plus `P — Q`).
    pub cut: Vec<(NodeId, NodeId)>,
}

/// Builds the Figure 3 gadget.
///
/// # Panics
///
/// Panics if the families disagree on `m` / `n` or are empty.
pub fn bc_gadget(inst: &DisjointnessInstance) -> BcGadget {
    assert_eq!(inst.x.m, inst.y.m, "mismatched universes");
    assert_eq!(inst.x.len(), inst.y.len(), "mismatched family sizes");
    assert!(!inst.x.is_empty(), "empty instance");
    let m = inst.x.m as usize;
    let n = inst.x.len();
    let total = 2 * m + 3 * n + 4;
    let mut next: NodeId = 0;
    let mut alloc = |k: usize| -> Vec<NodeId> {
        let v = (next..next + k as NodeId).collect();
        next += k as NodeId;
        v
    };
    let l = alloc(m);
    let lp = alloc(m);
    let s = alloc(n);
    let f = alloc(n);
    let t = alloc(n);
    let hubs = alloc(4);
    let (a, b, p, q) = (hubs[0], hubs[1], hubs[2], hubs[3]);
    debug_assert_eq!(next as usize, total);

    let mut builder = GraphBuilder::new(total);
    let mut cut = Vec::with_capacity(m + 1);
    for i in 0..m {
        builder.add_edge(l[i], lp[i]).expect("gadget edge");
        cut.push((l[i], lp[i]));
        builder.add_edge(a, l[i]).expect("gadget edge");
    }
    builder.add_edge(p, q).expect("gadget edge");
    cut.push((p, q));
    builder.add_edge(a, p).expect("gadget edge");
    builder.add_edge(b, p).expect("gadget edge");
    for j in 0..n {
        builder.add_edge(s[j], f[j]).expect("gadget edge");
        builder.add_edge(p, f[j]).expect("gadget edge");
        builder.add_edge(q, t[j]).expect("gadget edge");
        builder.add_edge(b, s[j]).expect("gadget edge");
        builder.add_edge(b, f[j]).expect("gadget edge");
        for i in 0..m {
            if inst.x.sets[j] >> i & 1 == 1 {
                builder.add_edge(l[i], s[j]).expect("gadget edge");
            }
            if inst.y.sets[j] >> i & 1 == 0 {
                builder.add_edge(lp[i], t[j]).expect("gadget edge");
            }
        }
    }
    BcGadget {
        graph: builder.build(),
        f,
        s,
        t,
        l,
        l_prime: lp,
        a,
        b,
        p,
        q,
        cut,
    }
}

/// The two values Lemma 9 distinguishes.
pub const BC_IF_ABSENT: f64 = 1.0;
/// Betweenness of `F_i` when `X_i` appears in `Y`.
pub const BC_IF_PRESENT: f64 = 1.5;

/// Decides disjointness by reading the exact betweenness of the `F_i`
/// probes (the Theorem 6 reduction run forward). Returns `true` iff the
/// families intersect.
pub fn decide_disjointness_via_betweenness(inst: &DisjointnessInstance) -> bool {
    let gadget = bc_gadget(inst);
    let cb = bc_brandes::betweenness_f64(&gadget.graph);
    gadget
        .f
        .iter()
        .any(|&fi| (cb[fi as usize] - BC_IF_PRESENT).abs() < 0.25)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjoint::{random_instance, universe_size};
    use bc_brandes::betweenness_f64;
    use bc_graph::algo::{self, bfs};

    #[test]
    fn lemma9_dichotomy() {
        for seed in 0..6 {
            let inst = random_instance(5, universe_size(5), seed % 2 == 0, seed);
            let g = bc_gadget(&inst);
            let cb = betweenness_f64(&g.graph);
            for (i, &fi) in g.f.iter().enumerate() {
                let present = inst.y.sets.contains(&inst.x.sets[i]);
                let expect = if present { BC_IF_PRESENT } else { BC_IF_ABSENT };
                assert!(
                    (cb[fi as usize] - expect).abs() < 1e-9,
                    "seed {seed} F_{i}: got {} expected {expect}",
                    cb[fi as usize]
                );
            }
        }
    }

    #[test]
    fn pair_distances_match_proof() {
        // d(S_i, T_j) = 3 when X_i ≠ Y_j, 4 when X_i = Y_j.
        let mut inst = random_instance(4, universe_size(4), false, 9);
        inst.y.sets[2] = inst.x.sets[1];
        inst.intersecting = true;
        let g = bc_gadget(&inst);
        for i in 0..4 {
            let dag = bfs(&g.graph, g.s[i]);
            for j in 0..4 {
                let expect = if inst.x.sets[i] == inst.y.sets[j] {
                    4
                } else {
                    3
                };
                assert_eq!(dag.dist[g.t[j] as usize], expect, "d(S_{i}, T_{j})");
            }
            // d(S_i, P) = 2 with exactly the two paths F_i / B.
            assert_eq!(dag.dist[g.p as usize], 2);
            assert_eq!(dag.dist[g.q as usize], 3);
        }
    }

    #[test]
    fn reduction_decides_disjointness() {
        for seed in 0..8 {
            let inst = random_instance(6, universe_size(6), seed % 2 == 1, seed);
            assert_eq!(
                decide_disjointness_via_betweenness(&inst),
                inst.intersecting,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn gadget_shape() {
        let inst = random_instance(5, universe_size(5), false, 3);
        let g = bc_gadget(&inst);
        assert_eq!(g.graph.n(), 2 * inst.x.m as usize + 3 * 5 + 4);
        assert!(algo::is_connected(&g.graph));
        assert_eq!(g.cut.len() as u32, inst.x.m + 1);
        // The cut separates the sides.
        let kept = g
            .graph
            .edges()
            .filter(|&(u, v)| !g.cut.contains(&(u, v)) && !g.cut.contains(&(v, u)));
        let pruned = Graph::from_edges(g.graph.n(), kept).unwrap();
        let (comp, k) = algo::connected_components(&pruned);
        assert!(k >= 2);
        assert_ne!(comp[g.s[0] as usize], comp[g.t[0] as usize]);
        assert_ne!(comp[g.p as usize], comp[g.q as usize]);
    }

    #[test]
    fn gadget_diameter_is_constant() {
        // The BC gadget is shallow — its diameter doesn't grow with n, so
        // the Ω(N/log N) term dominates the lower bound on it.
        for n in [4usize, 8, 16] {
            let inst = random_instance(n, universe_size(n), false, 1);
            let g = bc_gadget(&inst);
            assert!(algo::diameter(&g.graph) <= 7, "n={n}");
        }
    }
}
