//! Sparse set-disjointness instances (Section IX).
//!
//! The lower bounds reduce two-party sparse set disjointness
//! (`DISJ`, Definition 2 / Theorem 4) to distributed diameter and
//! betweenness computation. An instance is a pair of families
//! `X = (X_1..X_n)`, `Y = (Y_1..Y_n)` of `m/2`-element subsets of
//! `{0..m}`; the families "intersect" iff some `X_i = Y_j`. The paper
//! picks `m = Θ(log n)` so that `C(m, m/2) ≥ n²` subsets exist, keeping
//! the gadget cut at `m + 1 = O(log N)` edges.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A family of `n` distinct `m/2`-element subsets of `{0, …, m-1}`,
/// each stored as a bitmask (requires `m ≤ 63`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetFamily {
    /// Universe size `m` (even).
    pub m: u32,
    /// The subsets, as bitmasks over `0..m`.
    pub sets: Vec<u64>,
}

impl SetFamily {
    /// Number of subsets `n`.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns `true` if the family has no subsets.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Returns `true` if some subset of `self` equals some subset of
    /// `other` — the (non-)disjointness predicate of Corollary 2.
    pub fn intersects(&self, other: &SetFamily) -> bool {
        self.sets.iter().any(|x| other.sets.iter().any(|y| x == y))
    }
}

/// Binomial coefficient, saturating.
fn binom(m: u64, k: u64) -> u64 {
    let mut acc: u64 = 1;
    for i in 0..k.min(m - k) {
        acc = acc.saturating_mul(m - i) / (i + 1);
        if acc > u64::MAX / 2 {
            return u64::MAX;
        }
    }
    acc
}

/// The smallest even `m ≤ 62` with `C(m, m/2) ≥ n²` (the paper's choice,
/// which makes `m = Θ(log n)`).
///
/// # Panics
///
/// Panics if `n` is so large no `m ≤ 62` suffices (cannot happen for
/// `n < 2^28`).
pub fn universe_size(n: usize) -> u32 {
    let target = (n as u64).saturating_mul(n as u64).max(2);
    let mut m = 2;
    while binom(m as u64, m as u64 / 2) < target {
        m += 2;
        assert!(m <= 62, "set-disjointness universe overflow for n={n}");
    }
    m
}

/// Samples a family of `n` *distinct* `m/2`-subsets of `{0..m}`.
///
/// # Panics
///
/// Panics if `m` is odd, `m > 62`, or fewer than `n` distinct subsets
/// exist.
pub fn random_family(n: usize, m: u32, seed: u64) -> SetFamily {
    assert!(m.is_multiple_of(2), "universe size must be even");
    assert!(m <= 62, "bitmask representation requires m <= 62");
    assert!(
        binom(m as u64, m as u64 / 2) >= n as u64,
        "not enough distinct {}/2-subsets of {m} for n={n}",
        m
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sets = Vec::with_capacity(n);
    while sets.len() < n {
        let mask = random_subset(&mut rng, m);
        if !sets.contains(&mask) {
            sets.push(mask);
        }
    }
    SetFamily { m, sets }
}

fn random_subset(rng: &mut SmallRng, m: u32) -> u64 {
    // Reservoir-style: pick m/2 positions out of m.
    let mut mask = 0u64;
    let mut needed = m / 2;
    for pos in 0..m {
        let remaining = m - pos;
        if rng.gen_range(0..remaining) < needed {
            mask |= 1 << pos;
            needed -= 1;
        }
    }
    mask
}

/// A disjointness instance: two families plus the ground truth.
#[derive(Debug, Clone)]
pub struct DisjointnessInstance {
    /// Alice's family `X`.
    pub x: SetFamily,
    /// Bob's family `Y`.
    pub y: SetFamily,
    /// Whether `X ∩ Y ≠ ∅` (some `X_i = Y_j`).
    pub intersecting: bool,
}

/// Builds a random instance. With `plant_match`, one `Y_j` is overwritten
/// by a random `X_i`, guaranteeing intersection; otherwise `Y` is resampled
/// until the families are disjoint (overwhelmingly the first sample).
pub fn random_instance(n: usize, m: u32, plant_match: bool, seed: u64) -> DisjointnessInstance {
    let x = random_family(n, m, seed);
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(0x9E37_79B9));
    if plant_match {
        let mut y = random_family(n, m, seed.wrapping_add(1));
        let xi = x.sets[rng.gen_range(0..n)];
        let slot = rng.gen_range(0..n);
        // Keep Y's subsets distinct: drop any existing copy of xi first.
        if let Some(pos) = y.sets.iter().position(|&s| s == xi) {
            y.sets.swap(pos, slot);
        } else {
            y.sets[slot] = xi;
        }
        DisjointnessInstance {
            intersecting: true,
            x,
            y,
        }
    } else {
        let mut salt = 1u64;
        loop {
            let y = random_family(n, m, seed.wrapping_add(salt));
            if !x.intersects(&y) {
                return DisjointnessInstance {
                    intersecting: false,
                    x,
                    y,
                };
            }
            salt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binom_values() {
        assert_eq!(binom(4, 2), 6);
        assert_eq!(binom(10, 5), 252);
        assert_eq!(binom(6, 0), 1);
    }

    #[test]
    fn universe_size_grows_logarithmically() {
        assert_eq!(universe_size(1), 2);
        // C(4,2)=6 ≥ 4: n=2 → m=4.
        assert_eq!(universe_size(2), 4);
        let m100 = universe_size(100); // needs C(m, m/2) ≥ 10^4
        assert!(m100 <= 18, "m={m100}");
        let m10k = universe_size(10_000);
        assert!(m10k > m100 && m10k <= 30);
    }

    #[test]
    fn random_family_valid() {
        let f = random_family(20, 10, 7);
        assert_eq!(f.len(), 20);
        for &s in &f.sets {
            assert_eq!(s.count_ones(), 5, "cardinality m/2");
            assert!(s < 1 << 10, "within universe");
        }
        // Distinct.
        let mut sorted = f.sets.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        // Deterministic.
        assert_eq!(f, random_family(20, 10, 7));
    }

    #[test]
    fn instance_ground_truth() {
        for seed in 0..10 {
            let inst = random_instance(12, universe_size(12), false, seed);
            assert!(!inst.intersecting);
            assert!(!inst.x.intersects(&inst.y));
            let inst = random_instance(12, universe_size(12), true, seed);
            assert!(inst.intersecting);
            assert!(inst.x.intersects(&inst.y));
            // Families stay duplicate-free.
            for f in [&inst.x, &inst.y] {
                let mut s = f.sets.clone();
                s.sort_unstable();
                s.dedup();
                assert_eq!(s.len(), 12, "seed {seed}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_universe_rejected() {
        let _ = random_family(2, 5, 0);
    }

    #[test]
    #[should_panic(expected = "not enough distinct")]
    fn too_many_subsets_rejected() {
        let _ = random_family(10, 2, 0); // C(2,1) = 2 < 10
    }
}
