//! Measured communication across the gadget cut (experiment E8).
//!
//! Theorems 5–6 argue: `Ω(n log n)` bits must cross the `(m + 1)`-edge cut,
//! each round moves at most `O(log N · log N)` bits across it, hence
//! `Ω(D + N / log N)` rounds. Here we run the *actual* distributed
//! algorithm on the gadgets with the cut declared to the simulator and
//! report the measured bit flow and round count next to those bounds.

use crate::bc_gadget::{bc_gadget, BcGadget};
use crate::diameter_gadget::{diameter_gadget, DiameterGadget};
use crate::disjoint::DisjointnessInstance;
use bc_congest::EdgeCut;
use bc_core::{run_distributed_bc, DistBcConfig, DistBcError};

/// Measured vs. bound quantities for one gadget execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CutFlowReport {
    /// Nodes in the gadget.
    pub n: usize,
    /// Disjointness instance size (number of subsets).
    pub instance_n: usize,
    /// Edges in the declared cut (`m + 1`).
    pub cut_edges: usize,
    /// Bits the execution actually moved across the cut.
    pub cut_bits: u64,
    /// Messages that crossed the cut.
    pub cut_messages: u64,
    /// Rounds the execution took.
    pub rounds: u64,
    /// The information-theoretic requirement `n·log₂ n` of Theorem 4
    /// (what *any* correct algorithm must move, up to constants).
    pub disjointness_bits: f64,
    /// The round lower bound `N / log₂ N` of Theorems 5–6.
    pub round_lower_bound: f64,
}

fn report(
    instance_n: usize,
    graph: &bc_graph::Graph,
    cut: &[(bc_graph::NodeId, bc_graph::NodeId)],
) -> Result<CutFlowReport, DistBcError> {
    let out = run_distributed_bc(
        graph,
        DistBcConfig {
            cut: Some(EdgeCut::new(cut.iter().copied())),
            ..DistBcConfig::default()
        },
    )?;
    let n = graph.n();
    let log2n = (n as f64).log2();
    Ok(CutFlowReport {
        n,
        instance_n,
        cut_edges: cut.len(),
        cut_bits: out.metrics.cut_bits,
        cut_messages: out.metrics.cut_messages,
        rounds: out.rounds,
        disjointness_bits: instance_n as f64 * (instance_n.max(2) as f64).log2(),
        round_lower_bound: n as f64 / log2n,
    })
}

/// Runs the distributed BC algorithm on the Figure 3 gadget with the cut
/// declared, returning measured and bound quantities.
///
/// # Errors
///
/// Propagates [`DistBcError`] from the run (cannot occur for valid
/// instances).
pub fn measure_bc_gadget(
    inst: &DisjointnessInstance,
) -> Result<(BcGadget, CutFlowReport), DistBcError> {
    let g = bc_gadget(inst);
    let r = report(inst.x.len(), &g.graph, &g.cut)?;
    Ok((g, r))
}

/// Runs the distributed algorithm (whose counting phase computes the
/// diameter) on the Figure 2 gadget with the cut declared.
///
/// # Errors
///
/// Propagates [`DistBcError`] from the run.
pub fn measure_diameter_gadget(
    x: u32,
    inst: &DisjointnessInstance,
) -> Result<(DiameterGadget, CutFlowReport), DistBcError> {
    let g = diameter_gadget(x, inst);
    let r = report(inst.x.len(), &g.graph, &g.cut)?;
    Ok((g, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjoint::{random_instance, universe_size};

    #[test]
    fn bc_gadget_flow_exceeds_disjointness_bits() {
        let inst = random_instance(6, universe_size(6), true, 5);
        let (g, r) = measure_bc_gadget(&inst).unwrap();
        assert_eq!(r.n, g.graph.n());
        assert_eq!(r.cut_edges as u32, inst.x.m + 1);
        // The real algorithm must respect the information bound: it moves
        // at least n·log n bits across the cut (it actually moves far
        // more — it solves all-pairs problems).
        assert!(
            r.cut_bits as f64 >= r.disjointness_bits,
            "cut bits {} < bound {}",
            r.cut_bits,
            r.disjointness_bits
        );
        assert!(r.cut_messages > 0);
    }

    #[test]
    fn diameter_gadget_flow_measured() {
        let inst = random_instance(4, universe_size(4), false, 2);
        let (g, r) = measure_diameter_gadget(8, &inst).unwrap();
        assert_eq!(r.cut_edges, g.cut.len());
        assert!(r.cut_bits > 0);
        // Rounds respect the Ω(D + N/log N) lower bound.
        assert!(r.rounds as f64 >= r.round_lower_bound);
    }
}
