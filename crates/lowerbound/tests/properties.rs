//! Property-based tests of the lower-bound machinery: for random
//! disjointness instances the Figure 2 and Figure 3 gadgets always realize
//! their dichotomies, the cuts always separate, and the reductions always
//! decide correctly.

use bc_graph::algo;
use bc_lowerbound::disjoint::{random_instance, universe_size, DisjointnessInstance};
use bc_lowerbound::{
    bc_gadget, decide_disjointness_via_betweenness, decide_disjointness_via_diameter,
    diameter_gadget, BC_IF_ABSENT, BC_IF_PRESENT,
};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = DisjointnessInstance> {
    (2usize..7, any::<bool>(), any::<u64>())
        .prop_map(|(n, planted, seed)| random_instance(n, universe_size(n), planted, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lemma8_always_holds(inst in arb_instance(), x in 8u32..14) {
        let g = diameter_gadget(x, &inst);
        let expected = if inst.intersecting { x + 2 } else { x };
        prop_assert_eq!(algo::diameter(&g.graph), expected);
        prop_assert!(algo::is_connected(&g.graph));
    }

    #[test]
    fn lemma8_witnesses_at_extreme_distance(inst in arb_instance(), x in 8u32..12) {
        // The diameter is always realized between some S'_i and T'_j.
        let g = diameter_gadget(x, &inst);
        let d = algo::diameter(&g.graph);
        let mut best = 0;
        for &s in &g.s_prime {
            let dag = algo::bfs(&g.graph, s);
            for &t in &g.t_prime {
                best = best.max(dag.dist[t as usize]);
            }
        }
        prop_assert_eq!(best, d);
    }

    #[test]
    fn lemma9_always_holds(inst in arb_instance()) {
        let g = bc_gadget(&inst);
        let cb = bc_brandes::betweenness_f64(&g.graph);
        for (i, &fi) in g.f.iter().enumerate() {
            let present = inst.y.sets.contains(&inst.x.sets[i]);
            let expect = if present { BC_IF_PRESENT } else { BC_IF_ABSENT };
            prop_assert!(
                (cb[fi as usize] - expect).abs() < 1e-9,
                "F_{}: {} vs {}", i, cb[fi as usize], expect
            );
        }
    }

    #[test]
    fn both_reductions_decide(inst in arb_instance()) {
        prop_assert_eq!(decide_disjointness_via_diameter(&inst), inst.intersecting);
        prop_assert_eq!(decide_disjointness_via_betweenness(&inst), inst.intersecting);
    }

    #[test]
    fn cuts_separate_and_are_logarithmic(inst in arb_instance()) {
        for (graph, cut) in [
            {
                let g = diameter_gadget(8, &inst);
                (g.graph, g.cut)
            },
            {
                let g = bc_gadget(&inst);
                (g.graph, g.cut)
            },
        ] {
            prop_assert_eq!(cut.len() as u32, inst.x.m + 1);
            let kept = graph
                .edges()
                .filter(|&(u, v)| !cut.contains(&(u, v)) && !cut.contains(&(v, u)));
            let pruned = bc_graph::Graph::from_edges(graph.n(), kept).unwrap();
            let (_, k) = algo::connected_components(&pruned);
            prop_assert!(k >= 2, "cut must disconnect the gadget");
            // m + 1 = O(log N): the cut is (asymptotically) tiny; at these
            // scales just check it is well below the node count.
            prop_assert!(cut.len() < graph.n() / 2);
        }
    }
}
