//! Property-based tests for the graph substrate: CSR invariants, BFS vs a
//! naive oracle, σ-count consistency between f64 and exact big integers,
//! generator guarantees, and I/O round-trips.

use bc_graph::algo::{self, UNREACHABLE};
use bc_graph::{generators, io, Graph, NodeId};
use proptest::prelude::*;

/// Strategy: a random edge set over `n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        prop::collection::vec((0..n as NodeId, 0..n as NodeId), 0..=max_edges.min(200)).prop_map(
            move |pairs| {
                let edges = pairs.into_iter().filter(|(u, v)| u != v);
                Graph::from_edges(n, edges).expect("filtered edges valid")
            },
        )
    })
}

/// Floyd–Warshall oracle for distances.
fn fw_distances(g: &Graph) -> Vec<Vec<u64>> {
    const INF: u64 = u64::MAX / 4;
    let n = g.n();
    let mut d = vec![vec![INF; n]; n];
    for (v, row) in d.iter_mut().enumerate() {
        row[v] = 0;
    }
    for (u, v) in g.edges() {
        d[u as usize][v as usize] = 1;
        d[v as usize][u as usize] = 1;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k] + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_adjacency_is_sorted_and_symmetric(g in arb_graph(40)) {
        for v in g.nodes() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
            for &w in ns {
                prop_assert!(g.neighbors(w).contains(&v), "symmetry");
                prop_assert_ne!(w, v, "no self loops");
            }
        }
        prop_assert_eq!(g.edges().count(), g.m());
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
    }

    #[test]
    fn bfs_matches_floyd_warshall(g in arb_graph(25)) {
        let fw = fw_distances(&g);
        for s in g.nodes() {
            let dag = algo::bfs(&g, s);
            for v in g.nodes() {
                let expect = fw[s as usize][v as usize];
                if expect >= u64::MAX / 4 {
                    prop_assert_eq!(dag.dist[v as usize], UNREACHABLE);
                } else {
                    prop_assert_eq!(dag.dist[v as usize] as u64, expect);
                }
            }
        }
    }

    #[test]
    fn bfs_order_nondecreasing_and_preds_valid(g in arb_graph(30)) {
        let dag = algo::bfs(&g, 0);
        let mut last = 0;
        for &v in &dag.order {
            let d = dag.dist[v as usize];
            prop_assert!(d >= last);
            last = d;
        }
        for v in g.nodes() {
            for &p in &dag.preds[v as usize] {
                prop_assert!(g.has_edge(p, v));
                prop_assert_eq!(dag.dist[p as usize] + 1, dag.dist[v as usize]);
            }
        }
    }

    #[test]
    fn sigma_f64_matches_big(g in arb_graph(30)) {
        let dag = algo::bfs(&g, 0);
        let f = algo::sigma_f64(&dag);
        let b = algo::sigma_big(&dag);
        for v in g.nodes() {
            // Counts are small here; exact equality expected.
            prop_assert_eq!(f[v as usize], b[v as usize].to_f64());
        }
    }

    #[test]
    fn sigma_path_counting_identity(g in arb_graph(25)) {
        // σ_sv = Σ_{w ∈ P_s(v)} σ_sw (Eq. 6).
        let dag = algo::bfs(&g, 0);
        let sig = algo::sigma_f64(&dag);
        for &v in &dag.order {
            if v == 0 { continue; }
            let sum: f64 = dag.preds[v as usize].iter().map(|&w| sig[w as usize]).sum();
            prop_assert_eq!(sig[v as usize], sum);
        }
    }

    #[test]
    fn sigma_symmetry(g in arb_graph(20)) {
        // σ_st == σ_ts on undirected graphs.
        let n = g.n();
        let sig: Vec<Vec<f64>> = (0..n as NodeId)
            .map(|s| algo::sigma_f64(&algo::bfs(&g, s)))
            .collect();
        for (s, row) in sig.iter().enumerate() {
            for (t, &val) in row.iter().enumerate() {
                prop_assert_eq!(val, sig[t][s]);
            }
        }
    }

    #[test]
    fn components_partition(g in arb_graph(40)) {
        let (comp, k) = algo::connected_components(&g);
        prop_assert_eq!(comp.len(), g.n());
        prop_assert!(comp.iter().all(|&c| (c as usize) < k));
        // Two nodes in the same component iff reachable.
        let dag = algo::bfs(&g, 0);
        for v in g.nodes() {
            prop_assert_eq!(
                comp[v as usize] == comp[0],
                dag.dist[v as usize] != UNREACHABLE
            );
        }
    }

    #[test]
    fn largest_component_is_connected_subgraph(g in arb_graph(40)) {
        let (sub, map) = algo::largest_component(&g);
        prop_assert!(algo::is_connected(&sub));
        prop_assert_eq!(sub.n(), map.len());
        for (new_u, new_v) in sub.edges() {
            prop_assert!(g.has_edge(map[new_u as usize], map[new_v as usize]));
        }
    }

    #[test]
    fn diameter_bounds(g in arb_graph(30)) {
        let d = algo::diameter(&g);
        let ecc = algo::eccentricities(&g);
        prop_assert_eq!(d, ecc.iter().copied().max().unwrap_or(0));
        if algo::is_connected(&g) && g.n() > 1 {
            // Eccentricities differ by at most a factor of 2.
            let min = ecc.iter().copied().min().unwrap();
            prop_assert!(d <= 2 * min);
        }
    }

    #[test]
    fn io_roundtrip(g in arb_graph(40)) {
        let text = io::to_edge_list(&g);
        let h = io::parse_edge_list(&text).unwrap();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn random_generators_connected(n in 5usize..80, seed in any::<u64>()) {
        prop_assert!(algo::is_connected(&generators::random_tree(n, seed)));
        prop_assert!(algo::is_connected(&generators::erdos_renyi_connected(n, 0.05, seed)));
        let ba = generators::barabasi_albert(n.max(6), 2, seed);
        prop_assert!(algo::is_connected(&ba));
    }

    #[test]
    fn deterministic_families_shapes(n in 3usize..40) {
        prop_assert_eq!(algo::diameter(&generators::path(n)) as usize, n - 1);
        prop_assert_eq!(algo::diameter(&generators::cycle(n)) as usize, n / 2);
        prop_assert_eq!(generators::complete(n).m(), n * (n - 1) / 2);
        prop_assert_eq!(generators::star(n).m(), n - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(text in ".{0,200}") {
        // Fuzz the edge-list parser: any input yields Ok or a typed error,
        // never a panic.
        let _ = io::parse_edge_list(&text);
    }

    #[test]
    fn parser_never_panics_on_numeric_soup(
        nums in prop::collection::vec((any::<u32>(), any::<u32>()), 0..40),
        header in proptest::option::of(0usize..1000),
    ) {
        let mut text = String::new();
        if let Some(n) = header {
            text.push_str(&format!("n {n}\n"));
        }
        for (u, v) in nums {
            text.push_str(&format!("{u} {v}\n"));
        }
        if let Ok(g) = io::parse_edge_list(&text) {
            // Whatever parses must satisfy the CSR invariants.
            for v in g.nodes() {
                for &w in g.neighbors(v) {
                    prop_assert!(g.has_edge(w, v));
                }
            }
        }
    }
}
