//! Weighted graphs and the virtual-node subdivision the paper's conclusion
//! proposes for extending the algorithm beyond unweighted graphs
//! ("the idea in ref.\[16\] which adds virtual nodes in the weighted edges might
//! also work").
//!
//! For *integer* weights the subdivision is exact, not approximate:
//! replacing an edge of weight `w` by a path of `w` unit edges preserves
//! all shortest-path distances and multiplicities between original nodes,
//! so any unweighted shortest-path machinery — including the paper's
//! distributed algorithm, restricted to original nodes as sources and
//! targets — computes weighted centralities on the subdivided graph.

use crate::{Graph, GraphBuilder, GraphError, NodeId};
use std::collections::BinaryHeap;
use std::fmt;

/// An undirected graph with positive integer edge weights, stored in CSR
/// form like [`Graph`].
///
/// # Examples
///
/// ```
/// use bc_graph::weighted::WeightedGraph;
///
/// let wg = WeightedGraph::from_edges(3, [(0, 1, 2), (1, 2, 3), (0, 2, 10)])?;
/// assert_eq!(wg.n(), 3);
/// let sp = wg.dijkstra(0);
/// assert_eq!(sp.dist[2], 5); // 0→1→2 beats the weight-10 edge
/// # Ok::<(), bc_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct WeightedGraph {
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    weights: Vec<u32>,
}

impl WeightedGraph {
    /// Builds from a weighted edge list; duplicate edges keep the smallest
    /// weight.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on self-loops or out-of-range endpoints.
    ///
    /// # Panics
    ///
    /// Panics if any weight is zero.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<WeightedGraph, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId, u32)>,
    {
        let mut list: Vec<(NodeId, NodeId, u32)> = Vec::new();
        {
            // Reuse GraphBuilder's validation by dry-adding endpoints.
            let mut check = GraphBuilder::new(n);
            for (u, v, w) in edges {
                assert!(w >= 1, "edge weights must be positive");
                check.add_edge(u, v)?;
                list.push((u.min(v), u.max(v), w));
            }
        }
        list.sort_unstable();
        // Duplicate edges: keep the minimum weight.
        let mut dedup: Vec<(NodeId, NodeId, u32)> = Vec::with_capacity(list.len());
        for (u, v, w) in list {
            match dedup.last_mut() {
                Some(&mut (lu, lv, ref mut lw)) if lu == u && lv == v => *lw = (*lw).min(w),
                _ => dedup.push((u, v, w)),
            }
        }
        let mut offsets = vec![0usize; n + 1];
        for &(u, v, _) in &dedup {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; 2 * dedup.len()];
        let mut weights = vec![0u32; 2 * dedup.len()];
        for &(u, v, w) in &dedup {
            neighbors[cursor[u as usize]] = v;
            weights[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            weights[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        Ok(WeightedGraph {
            offsets,
            neighbors,
            weights,
        })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// The `(neighbor, weight)` list of `v`.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        let r = self.offsets[v as usize]..self.offsets[v as usize + 1];
        self.neighbors[r.clone()]
            .iter()
            .copied()
            .zip(self.weights[r].iter().copied())
    }

    /// Iterates each undirected weighted edge once as `(u, v, w)`, `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        (0..self.n() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| (u, v, w))
        })
    }

    /// Total weight of all edges (the subdivided graph's edge count).
    pub fn total_weight(&self) -> u64 {
        self.edges().map(|(_, _, w)| w as u64).sum()
    }

    /// Dijkstra from `source`: weighted distances, a settle order, and the
    /// weighted predecessor sets (the weighted analog of Eq. 5).
    ///
    /// # Panics
    ///
    /// Panics if `source >= n`.
    pub fn dijkstra(&self, source: NodeId) -> WeightedSp {
        assert!((source as usize) < self.n(), "source out of range");
        const INF: u64 = u64::MAX;
        let n = self.n();
        let mut dist = vec![INF; n];
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut order = Vec::new();
        let mut settled = vec![false; n];
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, NodeId)>> = BinaryHeap::new();
        dist[source as usize] = 0;
        heap.push(std::cmp::Reverse((0, source)));
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if settled[v as usize] {
                continue;
            }
            settled[v as usize] = true;
            order.push(v);
            for (w, wt) in self.neighbors(v) {
                let nd = d + wt as u64;
                match nd.cmp(&dist[w as usize]) {
                    std::cmp::Ordering::Less => {
                        dist[w as usize] = nd;
                        preds[w as usize] = vec![v];
                        heap.push(std::cmp::Reverse((nd, w)));
                    }
                    std::cmp::Ordering::Equal => preds[w as usize].push(v),
                    std::cmp::Ordering::Greater => {}
                }
            }
        }
        WeightedSp {
            source,
            dist,
            order,
            preds,
        }
    }

    /// Subdivides every weight-`w` edge into a path of `w` unit edges.
    /// Returns the unweighted graph and a mask marking the original
    /// ("real") nodes `0..n`; virtual nodes occupy ids `n..`.
    pub fn subdivide(&self) -> Subdivision {
        let n = self.n();
        let total = n + self.edges().map(|(_, _, w)| w as usize - 1).sum::<usize>();
        let mut b = GraphBuilder::new(total);
        let mut next = n as NodeId;
        for (u, v, w) in self.edges() {
            let mut prev = u;
            for _ in 0..w - 1 {
                b.add_edge(prev, next).expect("subdivision edge valid");
                prev = next;
                next += 1;
            }
            b.add_edge(prev, v).expect("subdivision edge valid");
        }
        let mut real = vec![false; total];
        real[..n].fill(true);
        Subdivision {
            graph: b.build(),
            real,
            original_n: n,
        }
    }
}

impl fmt::Debug for WeightedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WeightedGraph(n={}, m={}, total_weight={})",
            self.n(),
            self.m(),
            self.total_weight()
        )
    }
}

/// Weighted single-source shortest-path structure (from
/// [`WeightedGraph::dijkstra`]).
#[derive(Debug, Clone)]
pub struct WeightedSp {
    /// The source node.
    pub source: NodeId,
    /// Weighted distances (`u64::MAX` when unreachable).
    pub dist: Vec<u64>,
    /// Reachable nodes in non-decreasing distance order.
    pub order: Vec<NodeId>,
    /// Weighted predecessor sets.
    pub preds: Vec<Vec<NodeId>>,
}

/// The result of [`WeightedGraph::subdivide`].
#[derive(Debug, Clone)]
pub struct Subdivision {
    /// The unweighted subdivided graph (original ids preserved,
    /// virtual nodes appended).
    pub graph: Graph,
    /// `real[v]` iff `v` is an original node.
    pub real: Vec<bool>,
    /// Number of original nodes.
    pub original_n: usize,
}

/// A connected random weighted graph (ER backbone, uniform weights in
/// `1..=max_weight`).
///
/// # Panics
///
/// Panics if `n == 0` or `max_weight == 0`.
pub fn random_weighted(n: usize, p: f64, max_weight: u32, seed: u64) -> WeightedGraph {
    assert!(max_weight >= 1, "weights must be positive");
    use rand::{Rng, SeedableRng};
    let g = crate::generators::erdos_renyi_connected(n, p, seed);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0x57E1_6875);
    WeightedGraph::from_edges(
        n,
        g.edges()
            .map(|(u, v)| (u, v, rng.gen_range(1..=max_weight))),
    )
    .expect("edges already validated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    fn triangle() -> WeightedGraph {
        WeightedGraph::from_edges(3, [(0, 1, 2), (1, 2, 3), (0, 2, 10)]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let wg = triangle();
        assert_eq!(wg.n(), 3);
        assert_eq!(wg.m(), 3);
        assert_eq!(wg.total_weight(), 15);
        let nb: Vec<_> = wg.neighbors(0).collect();
        assert_eq!(nb, vec![(1, 2), (2, 10)]);
        assert!(format!("{wg:?}").contains("total_weight=15"));
    }

    #[test]
    fn duplicate_keeps_min_weight() {
        let wg = WeightedGraph::from_edges(2, [(0, 1, 5), (1, 0, 3)]).unwrap();
        assert_eq!(wg.edges().next(), Some((0, 1, 3)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = WeightedGraph::from_edges(2, [(0, 1, 0)]);
    }

    #[test]
    fn self_loop_rejected() {
        assert!(WeightedGraph::from_edges(2, [(1, 1, 1)]).is_err());
    }

    #[test]
    fn dijkstra_shortest_routes() {
        let sp = triangle().dijkstra(0);
        assert_eq!(sp.dist, vec![0, 2, 5]);
        assert_eq!(sp.preds[2], vec![1]);
        assert_eq!(sp.order[0], 0);
    }

    #[test]
    fn dijkstra_equal_paths() {
        // 0-1 (1), 0-2 (1), 1-3 (1), 2-3 (1): two weight-2 paths to 3.
        let wg =
            WeightedGraph::from_edges(4, [(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]).unwrap();
        let sp = wg.dijkstra(0);
        assert_eq!(sp.dist[3], 2);
        assert_eq!(sp.preds[3], vec![1, 2]);
    }

    #[test]
    fn subdivision_preserves_distances_and_counts() {
        let wg = triangle();
        let sub = wg.subdivide();
        assert_eq!(sub.graph.n(), 3 + (1 + 2 + 9));
        assert!(algo::is_connected(&sub.graph));
        for s in 0..3u32 {
            let wsp = wg.dijkstra(s);
            let dag = algo::bfs(&sub.graph, s);
            let sigma = algo::sigma_f64(&dag);
            let wsigma = weighted_sigma(&wsp);
            for t in 0..3usize {
                assert_eq!(dag.dist[t] as u64, wsp.dist[t], "d({s},{t})");
                assert_eq!(sigma[t], wsigma[t], "σ({s},{t})");
            }
        }
    }

    /// σ over a weighted SP structure.
    fn weighted_sigma(sp: &WeightedSp) -> Vec<f64> {
        let mut sigma = vec![0.0; sp.dist.len()];
        sigma[sp.source as usize] = 1.0;
        for &v in &sp.order {
            if v == sp.source {
                continue;
            }
            sigma[v as usize] = sp.preds[v as usize]
                .iter()
                .map(|&w| sigma[w as usize])
                .sum();
        }
        sigma
    }

    #[test]
    fn subdivision_real_mask() {
        let sub = triangle().subdivide();
        assert_eq!(sub.original_n, 3);
        assert_eq!(sub.real.iter().filter(|&&b| b).count(), 3);
        assert!(sub.real[0] && sub.real[2] && !sub.real[3]);
    }

    #[test]
    fn unit_weights_subdivide_to_same_graph() {
        let wg = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let sub = wg.subdivide();
        assert_eq!(sub.graph.n(), 4);
        assert_eq!(sub.graph.m(), 3);
    }

    #[test]
    fn random_weighted_is_connected() {
        for seed in 0..4 {
            let wg = random_weighted(24, 0.1, 5, seed);
            assert!(algo::is_connected(&wg.subdivide().graph));
        }
    }
}
