//! Compressed-sparse-row storage for undirected, unweighted, simple graphs —
//! the graph class the paper's algorithms operate on (Section III-B).

use std::fmt;

/// Node identifier. Nodes of an `N`-node graph are `0..N`, matching the
/// paper's `O(log N)`-bit unique identifiers.
pub type NodeId = u32;

/// Errors produced while constructing a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The number of nodes in the graph under construction.
        n: usize,
    },
    /// An edge connected a node to itself; the model's graphs are simple.
    SelfLoop {
        /// The node with the self-loop.
        node: NodeId,
    },
    /// Graph would exceed the `u32` node-id space.
    TooManyNodes {
        /// Requested node count.
        n: usize,
    },
    /// [`Graph::add_edge`] was asked to add an edge that already exists.
    DuplicateEdge {
        /// Lower endpoint.
        u: NodeId,
        /// Upper endpoint.
        v: NodeId,
    },
    /// [`Graph::remove_edge`] was asked to remove an edge that does not
    /// exist.
    MissingEdge {
        /// Lower endpoint.
        u: NodeId,
        /// Upper endpoint.
        v: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::TooManyNodes { n } => {
                write!(f, "node count {n} exceeds the u32 id space")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge {{{u}, {v}}} already exists")
            }
            GraphError::MissingEdge { u, v } => {
                write!(f, "edge {{{u}, {v}}} does not exist")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected, unweighted, simple graph in CSR form.
///
/// # Examples
///
/// ```
/// use bc_graph::{Graph, GraphBuilder};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(2, 3)?;
/// let g: Graph = b.build();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(0), &[1]);
/// # Ok::<(), bc_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    neighbors: Vec<NodeId>,
}

impl Graph {
    /// Number of nodes `N`.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `M`.
    pub fn m(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Returns `true` if `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all nodes `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n() as NodeId
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Builds a graph directly from an edge list over `n` nodes.
    ///
    /// Duplicate edges are merged; see [`GraphBuilder`] for incremental
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints or self-loops.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Validates that `{u, v}` is a well-formed potential edge of this
    /// graph (distinct, in-range endpoints).
    fn check_endpoints(&self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        for w in [u, v] {
            if w as usize >= self.n() {
                return Err(GraphError::NodeOutOfRange {
                    node: w,
                    n: self.n(),
                });
            }
        }
        Ok(())
    }

    /// Returns a new graph with the undirected edge `{u, v}` added — the
    /// serving layer's edge-insert mutation. `self` is untouched
    /// (snapshots holding the old graph stay valid); the result preserves
    /// every CSR invariant: each adjacency list stays sorted and
    /// duplicate-free, degrees grow by exactly one at `u` and `v`, and
    /// the canonical [`Graph::edges`] order (hence any content hash over
    /// it) reflects exactly the one new edge. `O(N + M)` — one splice
    /// pass over the arrays.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] / [`GraphError::NodeOutOfRange`] for
    /// malformed endpoints, [`GraphError::DuplicateEdge`] if the edge
    /// already exists.
    ///
    /// # Examples
    ///
    /// ```
    /// use bc_graph::{Graph, GraphError};
    ///
    /// let g = Graph::from_edges(3, [(0, 1)])?;
    /// let g2 = g.add_edge(1, 2)?;
    /// assert_eq!(g.m(), 1); // original untouched
    /// assert_eq!(g2.m(), 2);
    /// assert!(g2.has_edge(1, 2));
    /// assert_eq!(g.add_edge(0, 1), Err(GraphError::DuplicateEdge { u: 0, v: 1 }));
    /// # Ok::<(), GraphError>(())
    /// ```
    pub fn add_edge(&self, u: NodeId, v: NodeId) -> Result<Graph, GraphError> {
        self.check_endpoints(u, v)?;
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge {
                u: u.min(v),
                v: u.max(v),
            });
        }
        Ok(self.splice(u, v, true))
    }

    /// Returns a new graph with the undirected edge `{u, v}` removed —
    /// the serving layer's edge-delete mutation. Same invariant story as
    /// [`Graph::add_edge`]; degrees shrink by exactly one at `u` and `v`.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] / [`GraphError::NodeOutOfRange`] for
    /// malformed endpoints, [`GraphError::MissingEdge`] if the edge does
    /// not exist.
    ///
    /// # Examples
    ///
    /// ```
    /// use bc_graph::{Graph, GraphError};
    ///
    /// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
    /// let g2 = g.remove_edge(1, 0)?;
    /// assert_eq!(g2.m(), 1);
    /// assert!(!g2.has_edge(0, 1));
    /// assert_eq!(g2.remove_edge(0, 1), Err(GraphError::MissingEdge { u: 0, v: 1 }));
    /// # Ok::<(), GraphError>(())
    /// ```
    pub fn remove_edge(&self, u: NodeId, v: NodeId) -> Result<Graph, GraphError> {
        self.check_endpoints(u, v)?;
        if !self.has_edge(u, v) {
            return Err(GraphError::MissingEdge {
                u: u.min(v),
                v: u.max(v),
            });
        }
        Ok(self.splice(u, v, false))
    }

    /// Rebuilds the CSR arrays with `{u, v}` inserted (`insert`) or
    /// deleted, keeping each adjacency list sorted. Endpoints are already
    /// validated and the edge's (non-)existence already checked.
    fn splice(&self, u: NodeId, v: NodeId, insert: bool) -> Graph {
        let n = self.n();
        let delta: isize = if insert { 1 } else { -1 };
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors =
            Vec::with_capacity((self.neighbors.len() as isize + 2 * delta) as usize);
        offsets.push(0);
        for w in 0..n as NodeId {
            let adj = self.neighbors(w);
            let other = if w == u {
                Some(v)
            } else if w == v {
                Some(u)
            } else {
                None
            };
            match other {
                None => neighbors.extend_from_slice(adj),
                Some(o) if insert => {
                    let at = adj.partition_point(|&x| x < o);
                    neighbors.extend_from_slice(&adj[..at]);
                    neighbors.push(o);
                    neighbors.extend_from_slice(&adj[at..]);
                }
                Some(o) => {
                    neighbors.extend(adj.iter().copied().filter(|&x| x != o));
                }
            }
            offsets.push(neighbors.len());
        }
        Graph { offsets, neighbors }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

/// Incremental builder for [`Graph`]; accepts edges in any order and any
/// multiplicity (duplicates are merged), validating endpoints eagerly.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Starts building a graph on `n` isolated nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the `u32` id space.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "{}", GraphError::TooManyNodes { n });
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v` and
    /// [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        for w in [u, v] {
            if w as usize >= self.n {
                return Err(GraphError::NodeOutOfRange { node: w, n: self.n });
            }
        }
        self.edges.push((u.min(v), u.max(v)));
        Ok(self)
    }

    /// Finalizes into a CSR [`Graph`], merging duplicate edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut offsets = vec![0usize; self.n + 1];
        for &(u, v) in &self.edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; 2 * self.edges.len()];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each adjacency list is sorted because edges were sorted by (u, v)
        // and v-entries were appended in increasing u order; but entries for
        // node v coming from (u, v) pairs with u < v interleave with pairs
        // (v, w): sort each list to guarantee the invariant.
        for v in 0..self.n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph { offsets, neighbors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = Graph::from_edges(5, []).unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(0).is_empty());
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(6, [(5, 0), (3, 0), (0, 1), (4, 0), (0, 2)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn duplicate_edges_merged() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn self_loop_rejected() {
        assert_eq!(
            Graph::from_edges(3, [(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(
            Graph::from_edges(3, [(0, 3)]),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        );
    }

    #[test]
    fn edges_iterator_canonical() {
        let g = triangle();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn error_display() {
        assert!(GraphError::SelfLoop { node: 7 }.to_string().contains('7'));
        assert!(GraphError::NodeOutOfRange { node: 9, n: 4 }
            .to_string()
            .contains("out of range"));
        assert!(GraphError::TooManyNodes { n: usize::MAX }
            .to_string()
            .contains("exceeds"));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", triangle()), "Graph(n=3, m=3)");
    }

    /// Every structural invariant a mutated CSR must uphold.
    fn assert_csr_invariants(g: &Graph) {
        assert_eq!(g.offsets.len(), g.n() + 1);
        assert_eq!(g.offsets[0], 0);
        assert_eq!(*g.offsets.last().unwrap(), g.neighbors.len());
        assert_eq!(g.neighbors.len() % 2, 0);
        for v in g.nodes() {
            let adj = g.neighbors(v);
            assert!(adj.windows(2).all(|w| w[0] < w[1]), "node {v} adjacency");
            for &w in adj {
                assert!(g.has_edge(w, v), "asymmetric edge {{{v}, {w}}}");
            }
        }
    }

    #[test]
    fn add_edge_preserves_invariants_and_original() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let g2 = g.add_edge(4, 1).unwrap();
        assert_csr_invariants(&g2);
        assert_eq!(g2.m(), 4);
        assert_eq!(g2.degree(1), 3);
        assert_eq!(g2.degree(4), 2);
        assert_eq!(g2.neighbors(1), &[0, 2, 4]);
        assert!(g2.has_edge(1, 4) && g2.has_edge(4, 1));
        // The original is untouched (persistent mutation).
        assert_eq!(g.m(), 3);
        assert!(!g.has_edge(1, 4));
        // The mutated graph equals a from-scratch build of the same edge
        // set, so any content hash over `edges()` agrees too.
        let mut edges: Vec<_> = g.edges().collect();
        edges.push((1, 4));
        assert_eq!(g2, Graph::from_edges(5, edges).unwrap());
    }

    #[test]
    fn remove_edge_preserves_invariants_and_original() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (2, 3)]).unwrap();
        let g2 = g.remove_edge(3, 0).unwrap();
        assert_csr_invariants(&g2);
        assert_eq!(g2.m(), 3);
        assert_eq!(g2.degree(0), 2);
        assert_eq!(g2.degree(3), 1);
        assert!(!g2.has_edge(0, 3));
        assert_eq!(g.m(), 4);
        let edges: Vec<_> = g.edges().filter(|&e| e != (0, 3)).collect();
        assert_eq!(g2, Graph::from_edges(4, edges).unwrap());
    }

    #[test]
    fn add_then_remove_round_trips() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        assert_eq!(g.add_edge(0, 3).unwrap().remove_edge(0, 3).unwrap(), g);
        assert_eq!(g.remove_edge(2, 3).unwrap().add_edge(3, 2).unwrap(), g);
    }

    #[test]
    fn duplicate_edge_rejected() {
        let g = triangle();
        // Canonicalized endpoints in the error, whichever order was given.
        assert_eq!(
            g.add_edge(2, 0),
            Err(GraphError::DuplicateEdge { u: 0, v: 2 })
        );
        assert_eq!(
            g.add_edge(0, 2),
            Err(GraphError::DuplicateEdge { u: 0, v: 2 })
        );
    }

    #[test]
    fn missing_edge_rejected() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(
            g.remove_edge(3, 1),
            Err(GraphError::MissingEdge { u: 1, v: 3 })
        );
    }

    #[test]
    fn mutation_endpoint_validation() {
        let g = triangle();
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
        assert_eq!(g.remove_edge(2, 2), Err(GraphError::SelfLoop { node: 2 }));
        assert_eq!(
            g.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange { node: 5, n: 3 })
        );
        assert_eq!(
            g.remove_edge(7, 0),
            Err(GraphError::NodeOutOfRange { node: 7, n: 3 })
        );
    }

    #[test]
    fn mutation_error_display() {
        assert!(GraphError::DuplicateEdge { u: 1, v: 2 }
            .to_string()
            .contains("already exists"));
        assert!(GraphError::MissingEdge { u: 1, v: 2 }
            .to_string()
            .contains("does not exist"));
    }

    #[test]
    fn builder_chaining() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap().add_edge(1, 2).unwrap();
        assert_eq!(b.n(), 4);
        let g = b.build();
        assert_eq!(g.m(), 2);
    }
}
