//! Graph substrate for the distributed betweenness-centrality reproduction.
//!
//! Provides the undirected, unweighted, simple graphs of the paper's system
//! model (Section III): CSR storage ([`Graph`]), deterministic and seeded
//! random [`generators`], centralized shortest-path machinery
//! ([`algo::bfs`], [`algo::diameter`]) used both as building blocks and as
//! reference oracles, and an edge-list text format ([`io`]).
//!
//! # Example
//!
//! ```
//! use bc_graph::{algo, generators};
//!
//! let g = generators::erdos_renyi_connected(64, 0.05, 7);
//! assert!(algo::is_connected(&g));
//! let dag = algo::bfs(&g, 0);
//! assert_eq!(dag.dist[0], 0);
//! assert!(algo::diameter(&g) >= dag.eccentricity() / 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
mod csr;
pub mod datasets;
pub mod generators;
pub mod io;
pub mod weighted;

pub use csr::{Graph, GraphBuilder, GraphError, NodeId};
