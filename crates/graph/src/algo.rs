//! Centralized graph algorithms used as references and building blocks:
//! BFS shortest-path DAGs (Eqs. (5)–(6) of the paper), connectivity,
//! eccentricities and diameter.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// The single-source shortest-path structure rooted at `source`:
/// BFS distances, a traversal order by non-decreasing distance, and the
/// predecessor sets `P_s(v)` of Eq. (5).
#[derive(Debug, Clone)]
pub struct ShortestPathDag {
    /// The BFS source `s`.
    pub source: NodeId,
    /// `dist[v] = d(s, v)`, or [`UNREACHABLE`].
    pub dist: Vec<u32>,
    /// Reachable nodes in non-decreasing distance order (starts with `s`).
    pub order: Vec<NodeId>,
    /// `preds[v] = P_s(v)`: neighbors `w` with `d(s,v) = d(s,w) + 1`.
    pub preds: Vec<Vec<NodeId>>,
}

impl ShortestPathDag {
    /// Number of nodes reachable from the source (including it).
    pub fn reachable(&self) -> usize {
        self.order.len()
    }

    /// Eccentricity of the source within its component.
    pub fn eccentricity(&self) -> u32 {
        self.order
            .last()
            .map(|&v| self.dist[v as usize])
            .unwrap_or(0)
    }
}

/// Runs BFS from `source`, producing the shortest-path DAG.
///
/// # Panics
///
/// Panics if `source >= g.n()`.
///
/// # Examples
///
/// ```
/// use bc_graph::{algo::bfs, generators};
///
/// let g = generators::path(5);
/// let dag = bfs(&g, 0);
/// assert_eq!(dag.dist[4], 4);
/// assert_eq!(dag.preds[2], vec![1]);
/// ```
pub fn bfs(g: &Graph, source: NodeId) -> ShortestPathDag {
    assert!((source as usize) < g.n(), "BFS source out of range");
    let n = g.n();
    let mut dist = vec![UNREACHABLE; n];
    let mut preds = vec![Vec::new(); n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
            if dist[w as usize] == dv + 1 {
                preds[w as usize].push(v);
            }
        }
    }
    ShortestPathDag {
        source,
        dist,
        order,
        preds,
    }
}

/// Shortest-path counts `σ_sv` as `f64` (Eq. (6)), computed over a DAG from
/// [`bfs`]. Unreachable nodes have count `0`.
///
/// ```
/// use bc_graph::{algo, Graph};
/// // A diamond: two shortest paths from 0 to 3.
/// let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])?;
/// let sigma = algo::sigma_f64(&algo::bfs(&g, 0));
/// assert_eq!(sigma[3], 2.0);
/// # Ok::<(), bc_graph::GraphError>(())
/// ```
pub fn sigma_f64(dag: &ShortestPathDag) -> Vec<f64> {
    let mut sigma = vec![0.0f64; dag.dist.len()];
    sigma[dag.source as usize] = 1.0;
    for &v in &dag.order {
        if v == dag.source {
            continue;
        }
        sigma[v as usize] = dag.preds[v as usize]
            .iter()
            .map(|&w| sigma[w as usize])
            .sum();
    }
    sigma
}

/// Shortest-path counts `σ_sv` as exact big integers. These can be
/// exponential in `N` — the paper's "Large Value Challenge".
pub fn sigma_big(dag: &ShortestPathDag) -> Vec<bc_numeric::BigUint> {
    use bc_numeric::BigUint;
    let mut sigma = vec![BigUint::zero(); dag.dist.len()];
    sigma[dag.source as usize] = BigUint::one();
    for &v in &dag.order {
        if v == dag.source {
            continue;
        }
        sigma[v as usize] = dag.preds[v as usize]
            .iter()
            .map(|&w| sigma[w as usize].clone())
            .sum();
    }
    sigma
}

/// Returns the connected component id of every node (ids are `0..k` in
/// first-seen order) and the number of components `k`.
///
/// ```
/// use bc_graph::{algo, Graph};
/// let g = Graph::from_edges(4, [(0, 1), (2, 3)])?;
/// let (comp, k) = algo::connected_components(&g);
/// assert_eq!(k, 2);
/// assert_eq!(comp[0], comp[1]);
/// assert_ne!(comp[0], comp[2]);
/// # Ok::<(), bc_graph::GraphError>(())
/// ```
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.n();
    let mut comp = vec![u32::MAX; n];
    let mut k = 0u32;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if comp[s] != u32::MAX {
            continue;
        }
        comp[s] = k;
        queue.push_back(s as NodeId);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = k;
                    queue.push_back(w);
                }
            }
        }
        k += 1;
    }
    (comp, k as usize)
}

/// Returns `true` if the graph is connected (the vacuous empty graph and
/// singletons count as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.n() <= 1 || connected_components(g).1 == 1
}

/// Extracts the largest connected component as a new graph plus the mapping
/// from new ids to original ids.
pub fn largest_component(g: &Graph) -> (Graph, Vec<NodeId>) {
    let (comp, k) = connected_components(g);
    if k <= 1 {
        return (g.clone(), g.nodes().collect());
    }
    let mut sizes = vec![0usize; k];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    let mut old_to_new = vec![u32::MAX; g.n()];
    let mut new_to_old = Vec::new();
    for v in g.nodes() {
        if comp[v as usize] == best {
            old_to_new[v as usize] = new_to_old.len() as u32;
            new_to_old.push(v);
        }
    }
    let edges = g.edges().filter_map(|(u, v)| {
        let (nu, nv) = (old_to_new[u as usize], old_to_new[v as usize]);
        (nu != u32::MAX && nv != u32::MAX).then_some((nu, nv))
    });
    let sub = Graph::from_edges(new_to_old.len(), edges).expect("component edges valid");
    (sub, new_to_old)
}

/// Eccentricity of every node (max distance within its component), by one
/// BFS per node.
pub fn eccentricities(g: &Graph) -> Vec<u32> {
    g.nodes().map(|v| bfs(g, v).eccentricity()).collect()
}

/// Exact diameter (max eccentricity over the graph).
///
/// For disconnected graphs this is the maximum *within-component* distance,
/// matching what the distributed algorithms can observe.
///
/// ```
/// use bc_graph::{algo, generators};
/// assert_eq!(algo::diameter(&generators::cycle(10)), 5);
/// ```
pub fn diameter(g: &Graph) -> u32 {
    eccentricities(g).into_iter().max().unwrap_or(0)
}

/// All-pairs distance matrix (row per source); `dist[s][v]` may be
/// [`UNREACHABLE`]. Quadratic memory: intended for tests and small
/// experiments.
pub fn apsp(g: &Graph) -> Vec<Vec<u32>> {
    g.nodes().map(|s| bfs(g, s).dist).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(6);
        let dag = bfs(&g, 0);
        assert_eq!(dag.dist, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(dag.order.len(), 6);
        assert_eq!(dag.eccentricity(), 5);
        let sig = sigma_f64(&dag);
        assert!(sig.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn bfs_counts_diamond() {
        // 0-1, 0-2, 1-3, 2-3: two shortest paths 0→3.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let dag = bfs(&g, 0);
        let sig = sigma_f64(&dag);
        assert_eq!(sig[3], 2.0);
        assert_eq!(dag.preds[3], vec![1, 2]);
        let big = sigma_big(&dag);
        assert_eq!(big[3].to_u64(), Some(2));
    }

    #[test]
    fn bfs_exponential_sigma_big() {
        // Chain of k diamonds: sigma doubles at each, 2^k paths total.
        let k = 80;
        let mut edges = Vec::new();
        // nodes: 3k+1; diamond i: a=3i, b=3i+1, c=3i+2, d=3i+3
        for i in 0..k {
            let a = 3 * i;
            edges.push((a, a + 1));
            edges.push((a, a + 2));
            edges.push((a + 1, a + 3));
            edges.push((a + 2, a + 3));
        }
        let g = Graph::from_edges(3 * k as usize + 1, edges).unwrap();
        let dag = bfs(&g, 0);
        let sig = sigma_big(&dag);
        assert_eq!(sig[3 * k as usize], bc_numeric::BigUint::from(2u64).pow(k));
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let dag = bfs(&g, 0);
        assert_eq!(dag.dist[2], UNREACHABLE);
        assert_eq!(dag.reachable(), 2);
        assert_eq!(sigma_f64(&dag)[3], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_bad_source() {
        let _ = bfs(&generators::path(3), 5);
    }

    #[test]
    fn components() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[3], comp[5]);
        assert!(!is_connected(&g));
        assert!(is_connected(&generators::cycle(5)));
        assert!(is_connected(&Graph::from_edges(0, []).unwrap()));
        assert!(is_connected(&Graph::from_edges(1, []).unwrap()));
    }

    #[test]
    fn largest_component_extraction() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 0), (3, 4), (5, 6)]).unwrap();
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 3);
        assert_eq!(map, vec![0, 1, 2]);
        // Connected graph returns itself.
        let c = generators::cycle(4);
        let (sub2, map2) = largest_component(&c);
        assert_eq!(sub2, c);
        assert_eq!(map2, vec![0, 1, 2, 3]);
    }

    #[test]
    fn diameter_values() {
        assert_eq!(diameter(&generators::path(10)), 9);
        assert_eq!(diameter(&generators::cycle(10)), 5);
        assert_eq!(diameter(&generators::complete(10)), 1);
        assert_eq!(diameter(&generators::star(10)), 2);
        assert_eq!(diameter(&Graph::from_edges(1, []).unwrap()), 0);
    }

    #[test]
    fn eccentricities_path() {
        let e = eccentricities(&generators::path(5));
        assert_eq!(e, vec![4, 3, 2, 3, 4]);
    }

    #[test]
    fn apsp_symmetric() {
        let g = generators::grid(3, 4);
        let d = apsp(&g);
        for (u, row) in d.iter().enumerate() {
            for (v, &val) in row.iter().enumerate() {
                assert_eq!(val, d[v][u]);
            }
            assert_eq!(row[u], 0);
        }
    }
}
