//! Plain-text edge-list serialization.
//!
//! Format: optional comment lines starting with `#`, an optional header
//! `n <N>` pinning the node count (needed to represent trailing isolated
//! nodes), then one `u v` pair per line. Node ids are decimal `u32`.

use crate::{Graph, GraphBuilder, NodeId};
use std::fmt;

/// Default node-count limit for [`parse_edge_list`]: beyond this, building
/// the CSR arrays from a (possibly hostile or corrupt) file would allocate
/// gigabytes up front.
pub const DEFAULT_NODE_LIMIT: usize = 1 << 27;

/// Errors from [`parse_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseGraphError {
    /// A line did not contain exactly two integer fields.
    MalformedLine {
        /// 1-based line number.
        line: usize,
    },
    /// An integer field failed to parse as `u32`.
    BadInteger {
        /// 1-based line number.
        line: usize,
    },
    /// The declared or inferred node count exceeds the limit — guards
    /// against a corrupt or hostile file forcing a huge allocation.
    TooLarge {
        /// Declared/inferred node count.
        n: usize,
        /// The limit in force.
        limit: usize,
    },
    /// The header or an edge violated graph constraints.
    Graph(crate::GraphError),
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::MalformedLine { line } => {
                write!(f, "malformed edge on line {line} (expected `u v`)")
            }
            ParseGraphError::BadInteger { line } => {
                write!(f, "invalid integer on line {line}")
            }
            ParseGraphError::TooLarge { n, limit } => {
                write!(f, "graph declares {n} nodes, above the limit of {limit}")
            }
            ParseGraphError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseGraphError {}

impl From<crate::GraphError> for ParseGraphError {
    fn from(e: crate::GraphError) -> Self {
        ParseGraphError::Graph(e)
    }
}

/// Parses the edge-list format described in the module docs.
///
/// Without an `n` header the node count is `max id + 1` (or 0 for an empty
/// input).
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed lines, bad integers, self-loops
/// or out-of-range endpoints.
///
/// # Examples
///
/// ```
/// use bc_graph::io::parse_edge_list;
///
/// let g = parse_edge_list("# a triangle\n0 1\n1 2\n2 0\n")?;
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 3);
/// # Ok::<(), bc_graph::io::ParseGraphError>(())
/// ```
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseGraphError> {
    parse_edge_list_with_node_limit(text, DEFAULT_NODE_LIMIT)
}

/// Like [`parse_edge_list`] with an explicit node-count cap (errors with
/// [`ParseGraphError::TooLarge`] above it).
///
/// # Errors
///
/// As [`parse_edge_list`].
pub fn parse_edge_list_with_node_limit(text: &str, limit: usize) -> Result<Graph, ParseGraphError> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut declared_n: Option<usize> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let s = raw.trim();
        if s.is_empty() || s.starts_with('#') {
            continue;
        }
        let mut it = s.split_whitespace();
        let first = it.next().ok_or(ParseGraphError::MalformedLine { line })?;
        if first == "n" {
            let v = it.next().ok_or(ParseGraphError::MalformedLine { line })?;
            if it.next().is_some() {
                return Err(ParseGraphError::MalformedLine { line });
            }
            declared_n = Some(
                v.parse::<usize>()
                    .map_err(|_| ParseGraphError::BadInteger { line })?,
            );
            continue;
        }
        let second = it.next().ok_or(ParseGraphError::MalformedLine { line })?;
        if it.next().is_some() {
            return Err(ParseGraphError::MalformedLine { line });
        }
        let u: NodeId = first
            .parse()
            .map_err(|_| ParseGraphError::BadInteger { line })?;
        let v: NodeId = second
            .parse()
            .map_err(|_| ParseGraphError::BadInteger { line })?;
        edges.push((u, v));
    }
    let n = declared_n.unwrap_or_else(|| {
        edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0)
    });
    if n > limit {
        return Err(ParseGraphError::TooLarge { n, limit });
    }
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

/// Serializes a graph to the edge-list format (with an `n` header so
/// isolated nodes round-trip).
pub fn to_edge_list(g: &Graph) -> String {
    let mut s = String::with_capacity(16 + 12 * g.m());
    s.push_str(&format!("n {}\n", g.n()));
    for (u, v) in g.edges() {
        s.push_str(&format!("{u} {v}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip() {
        let g = generators::erdos_renyi(40, 0.15, 3);
        let text = to_edge_list(&g);
        let h = parse_edge_list(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn roundtrip_with_isolated_nodes() {
        let g = Graph::from_edges(5, [(0, 1)]).unwrap();
        let h = parse_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(h.n(), 5);
        assert_eq!(h.m(), 1);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = parse_edge_list("\n# hi\n\n0 1\n# bye\n1 2\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn empty_input() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.n(), 0);
    }

    #[test]
    fn infers_n_without_header() {
        let g = parse_edge_list("2 7\n").unwrap();
        assert_eq!(g.n(), 8);
    }

    #[test]
    fn malformed_lines() {
        assert_eq!(
            parse_edge_list("0 1 2\n"),
            Err(ParseGraphError::MalformedLine { line: 1 })
        );
        assert_eq!(
            parse_edge_list("0\n"),
            Err(ParseGraphError::MalformedLine { line: 1 })
        );
        assert_eq!(
            parse_edge_list("0 x\n"),
            Err(ParseGraphError::BadInteger { line: 1 })
        );
        assert_eq!(
            parse_edge_list("n\n"),
            Err(ParseGraphError::MalformedLine { line: 1 })
        );
        assert_eq!(
            parse_edge_list("n 3 4\n"),
            Err(ParseGraphError::MalformedLine { line: 1 })
        );
    }

    #[test]
    fn node_limit_guards_allocation() {
        // A single absurd id must not force a gigabyte allocation.
        let err = parse_edge_list(
            "0 4000000000
",
        )
        .unwrap_err();
        assert!(matches!(err, ParseGraphError::TooLarge { .. }));
        assert!(err.to_string().contains("limit"));
        // Declared headers are guarded too, and the limit is adjustable.
        assert!(matches!(
            parse_edge_list(
                "n 999999999
"
            ),
            Err(ParseGraphError::TooLarge { .. })
        ));
        assert!(parse_edge_list_with_node_limit(
            "0 100
", 50
        )
        .is_err());
        assert!(parse_edge_list_with_node_limit(
            "0 100
", 200
        )
        .is_ok());
    }

    #[test]
    fn graph_errors_propagate() {
        assert!(matches!(
            parse_edge_list("n 2\n0 5\n"),
            Err(ParseGraphError::Graph(_))
        ));
        assert!(matches!(
            parse_edge_list("1 1\n"),
            Err(ParseGraphError::Graph(crate::GraphError::SelfLoop {
                node: 1
            }))
        ));
    }

    #[test]
    fn error_display() {
        let e = ParseGraphError::MalformedLine { line: 3 };
        assert!(e.to_string().contains("line 3"));
        assert!(ParseGraphError::BadInteger { line: 9 }
            .to_string()
            .contains('9'));
    }
}
