//! Graph generators for workloads: deterministic families with known
//! centralities/diameters (used to validate the algorithms) and random
//! families (used for sweeps and property tests).
//!
//! All random generators are seeded and fully deterministic for a given
//! seed, so every experiment in `EXPERIMENTS.md` is reproducible bit-for-bit.

use crate::{Graph, GraphBuilder, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn build(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Graph {
    Graph::from_edges(n, edges).expect("generator produced invalid edges")
}

/// Path graph `0 - 1 - … - (n-1)`; diameter `n-1`.
///
/// ```
/// let g = bc_graph::generators::path(4);
/// assert_eq!(g.m(), 3);
/// assert!(g.has_edge(1, 2));
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path requires n >= 1");
    build(n, (1..n as NodeId).map(|v| (v - 1, v)))
}

/// Cycle graph on `n >= 3` nodes; diameter `⌊n/2⌋`.
///
/// ```
/// let g = bc_graph::generators::cycle(5);
/// assert!(g.nodes().all(|v| g.degree(v) == 2));
/// ```
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires n >= 3");
    build(n, (0..n as NodeId).map(|v| (v, (v + 1) % n as NodeId)))
}

/// Complete graph `K_n`; every node has betweenness 0.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "complete requires n >= 1");
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.add_edge(u, v).expect("valid");
        }
    }
    b.build()
}

/// Star: node 0 is the hub connected to `n-1` leaves. The hub's betweenness
/// is `(n-1)(n-2)/2`; leaves have 0.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n > 0, "star requires n >= 1");
    build(n, (1..n as NodeId).map(|v| (0, v)))
}

/// `rows × cols` grid; nodes are row-major.
///
/// # Panics
///
/// Panics if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid requires positive dimensions");
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    build(rows * cols, edges)
}

/// `rows × cols` torus (grid with wraparound); requires both dims ≥ 3 to
/// stay simple.
///
/// # Panics
///
/// Panics if either dimension is `< 3`.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus requires dims >= 3");
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            edges.push((id(r, c), id(r, (c + 1) % cols)));
            edges.push((id(r, c), id((r + 1) % rows, c)));
        }
    }
    build(rows * cols, edges)
}

/// Complete `branching`-ary tree of the given `depth` (depth 0 = single
/// root).
///
/// # Panics
///
/// Panics if `branching == 0`.
pub fn balanced_tree(branching: usize, depth: usize) -> Graph {
    assert!(branching > 0, "balanced_tree requires branching >= 1");
    let mut edges = Vec::new();
    let mut level: Vec<NodeId> = vec![0];
    let mut next_id: NodeId = 1;
    for _ in 0..depth {
        let mut next_level = Vec::new();
        for &p in &level {
            for _ in 0..branching {
                edges.push((p, next_id));
                next_level.push(next_id);
                next_id += 1;
            }
        }
        level = next_level;
    }
    build(next_id as usize, edges)
}

/// `dim`-dimensional hypercube on `2^dim` nodes; diameter `dim`.
///
/// # Panics
///
/// Panics if `dim > 20` (guard against accidental huge graphs).
pub fn hypercube(dim: usize) -> Graph {
    assert!(dim <= 20, "hypercube dimension too large");
    let n = 1usize << dim;
    let mut edges = Vec::new();
    for v in 0..n {
        for b in 0..dim {
            let w = v ^ (1 << b);
            if v < w {
                edges.push((v as NodeId, w as NodeId));
            }
        }
    }
    build(n, edges)
}

/// Barbell: two `K_k` cliques joined by a path of `bridge` intermediate
/// nodes. High-betweenness bridge; classic BC stress test.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k >= 2, "barbell requires cliques of size >= 2");
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::new(n);
    let clique = |b: &mut GraphBuilder, base: usize| {
        for u in 0..k {
            for v in (u + 1)..k {
                b.add_edge((base + u) as NodeId, (base + v) as NodeId)
                    .expect("valid");
            }
        }
    };
    clique(&mut b, 0);
    clique(&mut b, k + bridge);
    // Path: node k-1 (in left clique) — k .. k+bridge-1 — k+bridge (right).
    let mut prev = (k - 1) as NodeId;
    for i in 0..bridge {
        let cur = (k + i) as NodeId;
        b.add_edge(prev, cur).expect("valid");
        prev = cur;
    }
    b.add_edge(prev, (k + bridge) as NodeId).expect("valid");
    b.build()
}

/// Lollipop: `K_k` clique with a tail path of `tail` nodes.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn lollipop(k: usize, tail: usize) -> Graph {
    assert!(k >= 2, "lollipop requires a clique of size >= 2");
    let n = k + tail;
    let mut b = GraphBuilder::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u as NodeId, v as NodeId).expect("valid");
        }
    }
    let mut prev = (k - 1) as NodeId;
    for i in 0..tail {
        let cur = (k + i) as NodeId;
        b.add_edge(prev, cur).expect("valid");
        prev = cur;
    }
    b.build()
}

/// Caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0, "caterpillar requires a non-empty spine");
    let n = spine * (1 + legs);
    let mut edges = Vec::new();
    for s in 1..spine {
        edges.push(((s - 1) as NodeId, s as NodeId));
    }
    let mut next = spine as NodeId;
    for s in 0..spine {
        for _ in 0..legs {
            edges.push((s as NodeId, next));
            next += 1;
        }
    }
    build(n, edges)
}

/// Erdős–Rényi `G(n, p)`: each pair is an edge independently with
/// probability `p`.
///
/// ```
/// use bc_graph::generators::erdos_renyi;
/// // Seeded: identical graphs for identical seeds.
/// assert_eq!(erdos_renyi(30, 0.2, 7), erdos_renyi(30, 0.2, 7));
/// ```
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or `n == 0`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0, "erdos_renyi requires n >= 1");
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.gen_bool(p) {
                b.add_edge(u, v).expect("valid");
            }
        }
    }
    b.build()
}

/// Connected Erdős–Rényi: `G(n, p)` plus a random spanning-tree backbone,
/// guaranteeing connectivity while keeping ER-like structure.
///
/// ```
/// use bc_graph::{algo, generators};
/// let g = generators::erdos_renyi_connected(40, 0.02, 1);
/// assert!(algo::is_connected(&g));
/// ```
pub fn erdos_renyi_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0, "erdos_renyi_connected requires n >= 1");
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n as NodeId {
        let parent = rng.gen_range(0..v);
        b.add_edge(parent, v).expect("valid");
    }
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.gen_bool(p) {
                b.add_edge(u, v).expect("valid");
            }
        }
    }
    b.build()
}

/// Watts–Strogatz small world: ring lattice where each node links to its
/// `k/2` nearest neighbors on each side, each edge rewired with probability
/// `beta`.
///
/// # Panics
///
/// Panics if `k` is odd, `k >= n`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k.is_multiple_of(2), "watts_strogatz requires even k");
    assert!(k < n, "watts_strogatz requires k < n");
    assert!((0.0..=1.0).contains(&beta), "beta out of range");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for j in 1..=k / 2 {
            let v = (u + j) % n;
            let (mut a, mut c) = (u as NodeId, v as NodeId);
            if rng.gen_bool(beta) {
                // Rewire the far endpoint to a uniform non-self target.
                for _ in 0..16 {
                    let t = rng.gen_range(0..n) as NodeId;
                    if t != a {
                        c = t;
                        break;
                    }
                }
            }
            if a != c {
                if a > c {
                    std::mem::swap(&mut a, &mut c);
                }
                b.add_edge(a, c).expect("valid");
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `m` existing nodes chosen
/// degree-proportionally.
///
/// ```
/// use bc_graph::generators::barabasi_albert;
/// let g = barabasi_albert(50, 2, 3);
/// // Hubs emerge: some node far exceeds the mean degree.
/// assert!(g.max_degree() > 2 * (2 * g.m() / g.n()));
/// ```
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m > 0, "barabasi_albert requires m >= 1");
    assert!(n > m, "barabasi_albert requires n > m");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling uniformly from it is
    // degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::new();
    // Seed clique on m+1 nodes.
    for u in 0..=(m as NodeId) {
        for v in (u + 1)..=(m as NodeId) {
            b.add_edge(u, v).expect("valid");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m + 1)..n {
        let mut targets = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(t, v as NodeId).expect("valid");
            endpoints.push(t);
            endpoints.push(v as NodeId);
        }
    }
    b.build()
}

/// Uniform random recursive tree: node `v` attaches to a uniform node in
/// `0..v`. Always connected, `n-1` edges.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n > 0, "random_tree requires n >= 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n as NodeId {
        b.add_edge(rng.gen_range(0..v), v).expect("valid");
    }
    b.build()
}

/// The 5-node worked example of the paper's Figure 1.
///
/// Edges: `v1–v2, v2–v3, v2–v5, v3–v4, v5–v4` with the paper's `v_i`
/// mapped to node id `i-1`. Diameter 3; the paper computes `C_B(v2) = 7/2`.
///
/// ```
/// let g = bc_graph::generators::paper_figure1();
/// assert_eq!((g.n(), g.m()), (5, 5));
/// ```
pub fn paper_figure1() -> Graph {
    build(5, [(0, 1), (1, 2), (1, 4), (2, 3), (4, 3)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{diameter, is_connected};

    #[test]
    fn path_properties() {
        let g = path(7);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 6);
        assert_eq!(diameter(&g), 6);
        assert_eq!(path(1).m(), 0);
    }

    #[test]
    fn cycle_properties() {
        let g = cycle(8);
        assert_eq!(g.m(), 8);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert_eq!(diameter(&g), 4);
        assert_eq!(diameter(&cycle(9)), 4);
    }

    #[test]
    fn complete_properties() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert_eq!(diameter(&g), 1);
    }

    #[test]
    fn star_properties() {
        let g = star(9);
        assert_eq!(g.degree(0), 8);
        assert_eq!(g.m(), 8);
        assert_eq!(diameter(&g), 2);
    }

    #[test]
    fn grid_and_torus() {
        let g = grid(3, 5);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 3 * 4 + 5 * 2);
        assert_eq!(diameter(&g), 2 + 4);
        let t = torus(4, 4);
        assert_eq!(t.n(), 16);
        assert!(t.nodes().all(|v| t.degree(v) == 4));
        assert_eq!(diameter(&t), 4);
    }

    #[test]
    fn balanced_tree_counts() {
        let g = balanced_tree(2, 3);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert!(is_connected(&g));
        assert_eq!(balanced_tree(3, 0).n(), 1);
    }

    #[test]
    fn hypercube_properties() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(diameter(&g), 4);
    }

    #[test]
    fn barbell_properties() {
        let g = barbell(4, 3);
        assert_eq!(g.n(), 11);
        assert!(is_connected(&g));
        // Clique edges 2·C(4,2)=12, path edges 4.
        assert_eq!(g.m(), 16);
        assert_eq!(diameter(&g), 1 + 4 + 1);
    }

    #[test]
    fn lollipop_properties() {
        let g = lollipop(5, 4);
        assert_eq!(g.n(), 9);
        assert_eq!(g.m(), 10 + 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn caterpillar_properties() {
        let g = caterpillar(4, 2);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 11);
        assert!(is_connected(&g));
    }

    #[test]
    fn erdos_renyi_deterministic() {
        let a = erdos_renyi(30, 0.2, 42);
        let b = erdos_renyi(30, 0.2, 42);
        assert_eq!(a, b);
        let c = erdos_renyi(30, 0.2, 43);
        assert_ne!(a, c, "different seeds should differ (w.h.p.)");
        assert_eq!(erdos_renyi(10, 0.0, 1).m(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn erdos_renyi_connected_is_connected() {
        for seed in 0..5 {
            assert!(is_connected(&erdos_renyi_connected(50, 0.02, seed)));
        }
    }

    #[test]
    fn watts_strogatz_shape() {
        let g = watts_strogatz(40, 4, 0.0, 7);
        assert_eq!(g.m(), 80);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        let r = watts_strogatz(40, 4, 0.3, 7);
        assert!(is_connected(&r) || r.n() == 40); // rewiring keeps it simple
    }

    #[test]
    fn barabasi_albert_shape() {
        let g = barabasi_albert(100, 2, 11);
        assert!(is_connected(&g));
        // Seed clique C(3,2)=3 edges + 2 per additional node.
        assert_eq!(g.m(), 3 + 2 * 97);
        assert_eq!(g, barabasi_albert(100, 2, 11));
    }

    #[test]
    fn random_tree_shape() {
        let g = random_tree(64, 5);
        assert_eq!(g.m(), 63);
        assert!(is_connected(&g));
    }

    #[test]
    fn figure1_graph() {
        let g = paper_figure1();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 5);
        assert_eq!(diameter(&g), 3);
        // v1's neighbors: only v2 (ids: 0 ↔ 1).
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn cycle_too_small() {
        let _ = cycle(2);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn er_bad_probability() {
        let _ = erdos_renyi(5, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn ws_odd_k() {
        let _ = watts_strogatz(10, 3, 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "n > m")]
    fn ba_bad_params() {
        let _ = barabasi_albert(3, 3, 0);
    }
}
