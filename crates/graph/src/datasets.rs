//! Small classic social networks used throughout the centrality
//! literature, embedded for reproducible experiments.
//!
//! These are the kinds of graphs the centrality indices of the paper's
//! introduction were designed for (Wasserman & Faust, the paper's ref.\[2\]).

use crate::{Graph, NodeId};

/// Zachary's karate club (34 nodes, 78 edges) — the canonical social
/// network benchmark. Node 0 is the instructor ("Mr. Hi"), node 33 the
/// club president; both are the classic betweenness leaders.
///
/// Source: W. W. Zachary, *An information flow model for conflict and
/// fission in small groups*, J. Anthropological Research 33 (1977).
pub fn karate_club() -> Graph {
    const EDGES: [(NodeId, NodeId); 78] = [
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (0, 7),
        (0, 8),
        (0, 10),
        (0, 11),
        (0, 12),
        (0, 13),
        (0, 17),
        (0, 19),
        (0, 21),
        (0, 31),
        (1, 2),
        (1, 3),
        (1, 7),
        (1, 13),
        (1, 17),
        (1, 19),
        (1, 21),
        (1, 30),
        (2, 3),
        (2, 7),
        (2, 8),
        (2, 9),
        (2, 13),
        (2, 27),
        (2, 28),
        (2, 32),
        (3, 7),
        (3, 12),
        (3, 13),
        (4, 6),
        (4, 10),
        (5, 6),
        (5, 10),
        (5, 16),
        (6, 16),
        (8, 30),
        (8, 32),
        (8, 33),
        (9, 33),
        (13, 33),
        (14, 32),
        (14, 33),
        (15, 32),
        (15, 33),
        (18, 32),
        (18, 33),
        (19, 33),
        (20, 32),
        (20, 33),
        (22, 32),
        (22, 33),
        (23, 25),
        (23, 27),
        (23, 29),
        (23, 32),
        (23, 33),
        (24, 25),
        (24, 27),
        (24, 31),
        (25, 31),
        (26, 29),
        (26, 33),
        (27, 33),
        (28, 31),
        (28, 33),
        (29, 32),
        (29, 33),
        (30, 32),
        (30, 33),
        (31, 32),
        (31, 33),
        (32, 33),
    ];
    Graph::from_edges(34, EDGES).expect("karate club edges are valid")
}

/// Padgett's Florentine families marriage network (15 families of the
/// connected component, 20 edges). The Medici's famously dominant
/// betweenness is the textbook motivation for the index.
///
/// Node order: Acciaiuoli, Albizzi, Barbadori, Bischeri, Castellani,
/// Ginori, Guadagni, Lamberteschi, **Medici (8)**, Pazzi, Peruzzi, Ridolfi,
/// Salviati, Strozzi, Tornabuoni.
pub fn florentine_families() -> Graph {
    const EDGES: [(NodeId, NodeId); 20] = [
        (0, 8),   // Acciaiuoli–Medici
        (1, 5),   // Albizzi–Ginori
        (1, 6),   // Albizzi–Guadagni
        (1, 8),   // Albizzi–Medici
        (2, 4),   // Barbadori–Castellani
        (2, 8),   // Barbadori–Medici
        (3, 6),   // Bischeri–Guadagni
        (3, 10),  // Bischeri–Peruzzi
        (3, 13),  // Bischeri–Strozzi
        (4, 10),  // Castellani–Peruzzi
        (4, 13),  // Castellani–Strozzi
        (6, 7),   // Guadagni–Lamberteschi
        (6, 14),  // Guadagni–Tornabuoni
        (8, 11),  // Medici–Ridolfi
        (8, 12),  // Medici–Salviati
        (8, 14),  // Medici–Tornabuoni
        (9, 12),  // Pazzi–Salviati
        (10, 13), // Peruzzi–Strozzi
        (11, 13), // Ridolfi–Strozzi
        (11, 14), // Ridolfi–Tornabuoni
    ];
    Graph::from_edges(15, EDGES).expect("florentine edges are valid")
}

/// Index of the Medici family in [`florentine_families`].
pub const MEDICI: NodeId = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn karate_shape() {
        let g = karate_club();
        assert_eq!(g.n(), 34);
        assert_eq!(g.m(), 78);
        assert!(algo::is_connected(&g));
        assert_eq!(g.degree(33), 17);
        assert_eq!(g.degree(0), 16);
        assert_eq!(algo::diameter(&g), 5);
    }

    #[test]
    fn florentine_shape() {
        let g = florentine_families();
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 20);
        assert!(algo::is_connected(&g));
        assert_eq!(g.degree(MEDICI), 6);
    }
}
