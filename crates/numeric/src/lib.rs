//! Numeric substrate for the distributed betweenness-centrality
//! reproduction.
//!
//! This crate provides the three number systems the paper's pipeline needs:
//!
//! * [`CeilFloat`] — the compact `L`-bit-mantissa floating point of
//!   Section VI, with the ceiling rounding whose one-step relative error is
//!   bounded by Lemma 1 (`2^{-L+1}`) and whose end-to-end betweenness error
//!   is bounded by Theorem 1 / Corollary 1 (`O(2^{-L}) = O(N^{-c})` for
//!   `L = O(log N)`).
//! * [`BigUint`] — exact arbitrary-precision shortest-path counts, which can
//!   be exponential in `N` (Section V, "Large Value Challenge").
//! * [`BigRational`] — exact rational arithmetic used to compute
//!   ground-truth betweenness centralities against which the floating-point
//!   pipeline is validated.
//!
//! plus [`bits`] — bit-exact payload packing so the CONGEST simulator can
//! charge every message its true bit cost.
//!
//! # Example
//!
//! ```
//! use bc_numeric::{BigUint, CeilFloat, FpParams, Rounding};
//!
//! // σ counts overflow machine words quickly...
//! let sigma = BigUint::from(3u64).pow(200);
//! // ...but ship in L+16 bits with bounded relative error:
//! let params = FpParams::new(16, Rounding::Ceil);
//! let approx = CeilFloat::from_biguint(&sigma, params);
//! let rel = approx.to_f64() / sigma.to_f64() - 1.0;
//! assert!(rel >= -1e-12 && rel <= params.lemma1_bound());
//! assert_eq!(params.encoded_bits(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod biguint;
pub mod bits;
mod ceilfloat;
mod rational;

pub use biguint::{BigUint, ParseBigUintError};
pub use ceilfloat::{CeilFloat, FpParams, Rounding};
pub use rational::BigRational;
