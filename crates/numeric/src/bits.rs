//! Bit-exact message payload packing.
//!
//! The CONGEST model charges algorithms per *bit*: each message may carry
//! only `O(log N)` of them. To make that accounting honest rather than
//! notional, every message payload in this workspace is actually serialized
//! to a bit string with [`BitWriter`] and parsed back with [`BitReader`];
//! the simulator then enforces its per-message bit budget against
//! [`BitBuf::bit_len`].

use std::fmt;

/// An immutable packed bit string (little-endian within 64-bit words).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitBuf {
    words: Vec<u64>,
    bits: usize,
}

impl BitBuf {
    /// The empty bit string.
    pub fn new() -> Self {
        BitBuf::default()
    }

    /// Number of bits stored.
    pub fn bit_len(&self) -> usize {
        self.bits
    }

    /// Returns `true` if no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Starts reading this buffer from the beginning.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader { buf: self, pos: 0 }
    }
}

impl fmt::Debug for BitBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitBuf({} bits)", self.bits)
    }
}

/// Incrementally builds a [`BitBuf`].
///
/// # Examples
///
/// ```
/// use bc_numeric::bits::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.push(0b101, 3);
/// w.push(42, 17);
/// let buf = w.finish();
/// assert_eq!(buf.bit_len(), 20);
/// let mut r = buf.reader();
/// assert_eq!(r.read(3), 0b101);
/// assert_eq!(r.read(17), 42);
/// ```
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: BitBuf,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `width` bits of `value` (most-significant-first order
    /// is *not* used; bits are stored LSB-first which round-trips with
    /// [`BitReader::read`]).
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` has bits above `width`.
    pub fn push(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "bit field wider than 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        if width == 0 {
            return;
        }
        let bit_pos = self.buf.bits % 64;
        if bit_pos == 0 {
            self.buf.words.push(value);
        } else {
            let word = self.buf.words.last_mut().expect("non-empty on unaligned");
            *word |= value << bit_pos;
            let spill = 64 - bit_pos as u32;
            if width > spill {
                self.buf.words.push(value >> spill);
            }
        }
        self.buf.bits += width as usize;
    }

    /// Appends a single boolean bit.
    pub fn push_bool(&mut self, b: bool) {
        self.push(b as u64, 1);
    }

    /// Finalizes into an immutable [`BitBuf`].
    pub fn finish(self) -> BitBuf {
        self.buf
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.bits
    }
}

/// Sequential reader over a [`BitBuf`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a BitBuf,
    pos: usize,
}

impl BitReader<'_> {
    /// Reads the next `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `width` bits remain or `width > 64`.
    pub fn read(&mut self, width: u32) -> u64 {
        assert!(width <= 64, "bit field wider than 64");
        assert!(
            self.pos + width as usize <= self.buf.bits,
            "BitReader overrun: reading {width} bits at position {} of {}",
            self.pos,
            self.buf.bits
        );
        if width == 0 {
            return 0;
        }
        let word_idx = self.pos / 64;
        let bit_pos = (self.pos % 64) as u32;
        let lo = self.buf.words[word_idx] >> bit_pos;
        let avail = 64 - bit_pos;
        let v = if width <= avail {
            if width == 64 {
                lo
            } else {
                lo & ((1u64 << width) - 1)
            }
        } else {
            let hi = self.buf.words[word_idx + 1] << avail;
            (lo | hi)
                & if width == 64 {
                    u64::MAX
                } else {
                    (1u64 << width) - 1
                }
        };
        self.pos += width as usize;
        v
    }

    /// Reads a single boolean bit.
    pub fn read_bool(&mut self) -> bool {
        self.read(1) == 1
    }

    /// Bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.bits - self.pos
    }
}

/// Number of bits needed to address values in `0..n` (at least 1).
///
/// This is the `O(log N)` node-identifier width of the CONGEST model.
///
/// ```
/// use bc_numeric::bits::id_bits;
/// assert_eq!(id_bits(1), 1);
/// assert_eq!(id_bits(2), 1);
/// assert_eq!(id_bits(5), 3);
/// assert_eq!(id_bits(1024), 10);
/// ```
pub fn id_bits(n: usize) -> u32 {
    if n <= 2 {
        1
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buf() {
        let b = BitBuf::new();
        assert!(b.is_empty());
        assert_eq!(b.bit_len(), 0);
        assert_eq!(b.reader().remaining(), 0);
    }

    #[test]
    fn single_field_roundtrip() {
        for width in 1..=64u32 {
            let value = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let mut w = BitWriter::new();
            w.push(value, width);
            let buf = w.finish();
            assert_eq!(buf.bit_len(), width as usize);
            assert_eq!(buf.reader().read(width), value);
        }
    }

    #[test]
    fn unaligned_spill_across_words() {
        let mut w = BitWriter::new();
        w.push(0x7, 3);
        w.push(0xDEAD_BEEF_CAFE_F00D & ((1 << 62) - 1), 62);
        w.push(0x3FF, 10);
        let buf = w.finish();
        let mut r = buf.reader();
        assert_eq!(r.read(3), 0x7);
        assert_eq!(r.read(62), 0xDEAD_BEEF_CAFE_F00D & ((1 << 62) - 1));
        assert_eq!(r.read(10), 0x3FF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn many_small_fields() {
        let mut w = BitWriter::new();
        for i in 0..1000u64 {
            w.push(i % 8, 3);
        }
        let buf = w.finish();
        assert_eq!(buf.bit_len(), 3000);
        let mut r = buf.reader();
        for i in 0..1000u64 {
            assert_eq!(r.read(3), i % 8);
        }
    }

    #[test]
    fn bools() {
        let mut w = BitWriter::new();
        w.push_bool(true);
        w.push_bool(false);
        w.push_bool(true);
        let buf = w.finish();
        let mut r = buf.reader();
        assert!(r.read_bool());
        assert!(!r.read_bool());
        assert!(r.read_bool());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_oversized_value_panics() {
        let mut w = BitWriter::new();
        w.push(8, 3);
    }

    #[test]
    #[should_panic(expected = "overrun")]
    fn read_overrun_panics() {
        let mut w = BitWriter::new();
        w.push(1, 1);
        let buf = w.finish();
        let mut r = buf.reader();
        let _ = r.read(2);
    }

    #[test]
    fn zero_width_noop() {
        let mut w = BitWriter::new();
        w.push(0, 0);
        let buf = w.finish();
        assert!(buf.is_empty());
        assert_eq!(buf.reader().read(0), 0);
    }

    #[test]
    fn id_bits_values() {
        assert_eq!(id_bits(0), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 2);
        assert_eq!(id_bits(1_000_000), 20);
    }
}
