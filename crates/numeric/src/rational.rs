//! Exact rational arithmetic over [`BigUint`] magnitudes.
//!
//! Used to compute *exact* betweenness centralities (dependencies are sums of
//! ratios of shortest-path counts, Eq. (7)–(9) of the paper) so that the
//! floating-point error bound of Theorem 1 can be checked against ground
//! truth rather than against `f64`, which itself rounds.

use crate::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Sign of a [`BigRational`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Sign {
    Negative,
    Zero,
    Positive,
}

/// An exact rational number `sign · num / den`, always kept in lowest terms
/// with a strictly positive denominator.
///
/// # Examples
///
/// ```
/// use bc_numeric::BigRational;
///
/// let third = BigRational::from_ratio_u64(1, 3);
/// let sum = &(&third + &third) + &third;
/// assert_eq!(sum, BigRational::from_u64(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigRational {
    sign: Sign,
    num: BigUint,
    den: BigUint,
}

impl BigRational {
    /// The value zero.
    pub fn zero() -> Self {
        BigRational {
            sign: Sign::Zero,
            num: BigUint::zero(),
            den: BigUint::one(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        BigRational::from_u64(1)
    }

    /// Builds from an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        BigRational::from_biguint(BigUint::from(v))
    }

    /// Builds from a [`BigUint`].
    pub fn from_biguint(v: BigUint) -> Self {
        if v.is_zero() {
            BigRational::zero()
        } else {
            BigRational {
                sign: Sign::Positive,
                num: v,
                den: BigUint::one(),
            }
        }
    }

    /// Builds the ratio `num / den` of unsigned integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn from_ratio_u64(num: u64, den: u64) -> Self {
        BigRational::from_ratio(BigUint::from(num), BigUint::from(den))
    }

    /// Builds the ratio `num / den` of [`BigUint`]s, reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_ratio(num: BigUint, den: BigUint) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return BigRational::zero();
        }
        let g = num.gcd(&den);
        BigRational {
            sign: Sign::Positive,
            num: num.div_rem(&g).0,
            den: den.div_rem(&g).0,
        }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Numerator magnitude (in lowest terms).
    pub fn numer(&self) -> &BigUint {
        &self.num
    }

    /// Denominator (in lowest terms, strictly positive).
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> BigRational {
        assert!(!self.is_zero(), "reciprocal of zero");
        BigRational {
            sign: self.sign,
            num: self.den.clone(),
            den: self.num.clone(),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigRational {
        let mut r = self.clone();
        if r.sign == Sign::Negative {
            r.sign = Sign::Positive;
        }
        r
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let mag = ratio_to_f64(&self.num, &self.den);
        match self.sign {
            Sign::Negative => -mag,
            Sign::Zero => 0.0,
            Sign::Positive => mag,
        }
    }

    /// Compares magnitudes via cross-multiplication (exact).
    fn cmp_magnitude(&self, other: &BigRational) -> Ordering {
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }

    fn add_signed(&self, other: &BigRational, flip_other: bool) -> BigRational {
        let other_sign = if flip_other {
            match other.sign {
                Sign::Negative => Sign::Positive,
                Sign::Zero => Sign::Zero,
                Sign::Positive => Sign::Negative,
            }
        } else {
            other.sign
        };
        if self.sign == Sign::Zero {
            let mut r = other.clone();
            r.sign = other_sign;
            return r;
        }
        if other_sign == Sign::Zero {
            return self.clone();
        }
        let a_num = &self.num * &other.den;
        let b_num = &other.num * &self.den;
        let den = &self.den * &other.den;
        if self.sign == other_sign {
            let mut r = BigRational::from_ratio(a_num + b_num, den);
            r.sign = self.sign;
            return r;
        }
        match a_num.cmp(&b_num) {
            Ordering::Equal => BigRational::zero(),
            Ordering::Greater => {
                let mut r = BigRational::from_ratio(a_num - b_num, den);
                r.sign = self.sign;
                r
            }
            Ordering::Less => {
                let mut r = BigRational::from_ratio(b_num - a_num, den);
                r.sign = other_sign;
                r
            }
        }
    }
}

/// Converts `num/den` to `f64` with care for magnitudes beyond `f64` range:
/// scales both operands down so the leading 64 bits survive.
fn ratio_to_f64(num: &BigUint, den: &BigUint) -> f64 {
    if num.is_zero() {
        return 0.0;
    }
    let nb = num.bit_len() as i64;
    let db = den.bit_len() as i64;
    // Keep ~80 significant bits of each.
    let nshift = (nb - 80).max(0) as usize;
    let dshift = (db - 80).max(0) as usize;
    let n = num.shr_bits(nshift).to_f64();
    let d = den.shr_bits(dshift).to_f64();
    (n / d) * ((nshift as f64) - (dshift as f64)).exp2()
}

impl Default for BigRational {
    fn default() -> Self {
        BigRational::zero()
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRational({self})")
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &Self) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Negative, Negative) => other.cmp_magnitude(self),
            (Negative, _) => Ordering::Less,
            (Zero, Negative) => Ordering::Greater,
            (Zero, Zero) => Ordering::Equal,
            (Zero, Positive) => Ordering::Less,
            (Positive, Positive) => self.cmp_magnitude(other),
            (Positive, _) => Ordering::Greater,
        }
    }
}

impl Add for &BigRational {
    type Output = BigRational;
    fn add(self, rhs: &BigRational) -> BigRational {
        self.add_signed(rhs, false)
    }
}

impl AddAssign<&BigRational> for BigRational {
    fn add_assign(&mut self, rhs: &BigRational) {
        *self = self.add_signed(rhs, false);
    }
}

impl Sub for &BigRational {
    type Output = BigRational;
    fn sub(self, rhs: &BigRational) -> BigRational {
        self.add_signed(rhs, true)
    }
}

impl Neg for &BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational::zero().add_signed(self, true)
    }
}

impl Mul for &BigRational {
    type Output = BigRational;
    fn mul(self, rhs: &BigRational) -> BigRational {
        if self.is_zero() || rhs.is_zero() {
            return BigRational::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let mut r = BigRational::from_ratio(&self.num * &rhs.num, &self.den * &rhs.den);
        r.sign = sign;
        r
    }
}

impl Div for &BigRational {
    type Output = BigRational;
    // Division by multiplication with the reciprocal is the definition.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: &BigRational) -> BigRational {
        self * &rhs.recip()
    }
}

impl std::iter::Sum for BigRational {
    fn sum<I: Iterator<Item = BigRational>>(iter: I) -> Self {
        let mut acc = BigRational::zero();
        for v in iter {
            acc += &v;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u64, d: u64) -> BigRational {
        BigRational::from_ratio_u64(n, d)
    }

    #[test]
    fn construction_reduces() {
        let v = r(6, 8);
        assert_eq!(v.numer().to_u64(), Some(3));
        assert_eq!(v.denom().to_u64(), Some(4));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = r(1, 3);
        let b = r(1, 6);
        let s = &a + &b;
        assert_eq!(s, r(1, 2));
        assert_eq!(&s - &b, a);
        assert_eq!(&a - &a, BigRational::zero());
    }

    #[test]
    fn negative_results() {
        let a = r(1, 4);
        let b = r(1, 2);
        let d = &a - &b;
        assert!(d.is_negative());
        assert_eq!(d.abs(), r(1, 4));
        assert_eq!(&d + &b, a);
        assert_eq!(-&d, r(1, 4));
    }

    #[test]
    fn mul_div() {
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(2, 3) / &r(4, 3), r(1, 2));
        assert_eq!(&r(5, 7) * &BigRational::zero(), BigRational::zero());
    }

    #[test]
    fn recip() {
        assert_eq!(r(3, 7).recip(), r(7, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = BigRational::zero().recip();
    }

    #[test]
    fn ordering_cross_mul() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(7, 2) > r(10, 3));
        let neg = &BigRational::zero() - &r(1, 2);
        assert!(neg < BigRational::zero());
        assert!(neg < r(1, 1000));
    }

    #[test]
    fn to_f64_matches() {
        assert!((r(7, 2).to_f64() - 3.5).abs() < 1e-15);
        assert_eq!(BigRational::zero().to_f64(), 0.0);
        let neg = &BigRational::zero() - &r(3, 4);
        assert!((neg.to_f64() + 0.75).abs() < 1e-15);
    }

    #[test]
    fn to_f64_huge_ratio() {
        // 2^300 / (2^300 + small) ~ 1.0; exercises the scaling path.
        let big = BigUint::from(2u64).pow(300);
        let mut big1 = big.clone();
        big1.add_small(12345);
        let v = BigRational::from_ratio(big, big1);
        assert!((v.to_f64() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sum_of_unit_fractions() {
        // 1/1 + 1/2 + ... + 1/10 = 7381/2520
        let s: BigRational = (1..=10u64).map(|k| r(1, k)).sum();
        assert_eq!(s, r(7381, 2520));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", r(3, 4)), "3/4");
        assert_eq!(format!("{}", BigRational::from_u64(5)), "5");
        assert_eq!(format!("{}", &BigRational::zero() - &r(1, 2)), "-1/2");
        assert!(format!("{:?}", BigRational::zero()).contains("BigRational"));
    }

    #[test]
    fn default_is_zero() {
        assert!(BigRational::default().is_zero());
    }
}
