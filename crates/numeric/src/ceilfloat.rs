//! The paper's compact floating-point arithmetic (Section VI).
//!
//! Shortest-path counts `σ_st` can be exponential in `N` (the "Large Value
//! Challenge"), so they cannot be shipped verbatim in `O(log N)`-bit CONGEST
//! messages. The paper represents every transmitted value as `y · 2^x` with
//! an `L = O(log N)`-bit mantissa, rounding *up* (ceiling) so that estimates
//! are one-sided, and proves (Lemma 1) the relative error of a single
//! rounding is at most `2^{-L+1}`, and (Theorem 1 / Corollary 1) the final
//! betweenness values have relative error `O(2^{-L}) = O(N^{-c})`.
//!
//! [`CeilFloat`] implements exactly that number system: positive values with
//! a normalized `L`-bit mantissa, a configurable rounding mode
//! ([`Rounding::Ceil`] as in the paper, [`Rounding::Nearest`] for the
//! ablation of experiment E10b), and a fixed-width wire encoding of
//! `L + 16` bits.

use crate::{BigRational, BigUint};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul};

/// Bits used for the (biased) exponent field in the wire encoding.
const EXP_FIELD_BITS: u32 = 16;
/// Exponent bias for the wire encoding.
const EXP_BIAS: i32 = 1 << 15;
/// Exponent saturation bound; far beyond anything a σ-count can reach in
/// laptop-scale experiments (σ ≤ 2^N) while keeping `i32` arithmetic safe.
const EXP_LIMIT: i32 = 1 << 20;

/// Rounding mode for [`CeilFloat`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rounding {
    /// Round magnitudes up, as in the paper (one-sided estimates: `σ̂ ≥ σ`).
    #[default]
    Ceil,
    /// Round to nearest (half-up). Used by the rounding ablation (E10b).
    Nearest,
}

/// Parameters of the number system: mantissa width and rounding mode.
///
/// # Examples
///
/// ```
/// use bc_numeric::{FpParams, Rounding};
///
/// let params = FpParams::new(12, Rounding::Ceil);
/// assert_eq!(params.mantissa_bits(), 12);
/// assert_eq!(params.encoded_bits(), 28); // L + 16-bit exponent field
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FpParams {
    l: u8,
    rounding: Rounding,
}

impl FpParams {
    /// Creates parameters with mantissa width `l` (in `1..=31`).
    ///
    /// # Panics
    ///
    /// Panics if `l` is outside `1..=31`.
    pub fn new(l: u32, rounding: Rounding) -> Self {
        assert!(
            (1..=31).contains(&l),
            "mantissa bits must be in 1..=31, got {l}"
        );
        FpParams {
            l: l as u8,
            rounding,
        }
    }

    /// Parameters matching the paper: `L = max(8, 2⌈log₂ N⌉)` mantissa bits
    /// with ceiling rounding, which yields relative error `O(N^{-2})`
    /// per Corollary 1.
    pub fn for_graph_size(n: usize) -> Self {
        let log = usize::BITS - n.max(2).leading_zeros(); // ⌈log2(n)⌉ for n ≥ 2
        FpParams::new((2 * log).clamp(8, 31), Rounding::Ceil)
    }

    /// Mantissa width `L`.
    pub fn mantissa_bits(&self) -> u32 {
        self.l as u32
    }

    /// Rounding mode.
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// Width of the wire encoding in bits (`L` mantissa + 16 exponent).
    ///
    /// This is the `2L = O(log N)` bits of the paper's Section VI-A with the
    /// exponent field fixed at 16 bits for simplicity; it is still
    /// `Θ(log N)` when `L = Θ(log N)`.
    pub fn encoded_bits(&self) -> u32 {
        self.l as u32 + EXP_FIELD_BITS
    }

    /// The one-rounding relative error bound of Lemma 1: `2^{-L+1}`.
    pub fn lemma1_bound(&self) -> f64 {
        (1.0 - self.l as f64).exp2()
    }
}

impl Default for FpParams {
    fn default() -> Self {
        FpParams::new(16, Rounding::Ceil)
    }
}

/// A non-negative floating-point value `mant · 2^exp` with an `L`-bit
/// normalized mantissa (`2^{L-1} ≤ mant < 2^L`, or `mant = 0` for zero).
///
/// All arithmetic rounds according to the value's [`FpParams`]; with
/// [`Rounding::Ceil`] every operation returns an upper bound on the exact
/// result, which is the invariant the paper's error analysis relies on.
///
/// # Examples
///
/// ```
/// use bc_numeric::{CeilFloat, FpParams, Rounding};
///
/// let p = FpParams::new(8, Rounding::Ceil);
/// let thousand = CeilFloat::from_u64(1000, p);
/// // With an 8-bit mantissa 1000 = 0b1111101000 rounds up to 1004.
/// assert!(thousand.to_f64() >= 1000.0);
/// assert!(thousand.to_f64() / 1000.0 - 1.0 <= p.lemma1_bound());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CeilFloat {
    mant: u32,
    exp: i32,
    params: FpParams,
}

impl CeilFloat {
    /// The value zero.
    pub fn zero(params: FpParams) -> Self {
        CeilFloat {
            mant: 0,
            exp: 0,
            params,
        }
    }

    /// The value one (exactly representable for every `L`).
    pub fn one(params: FpParams) -> Self {
        CeilFloat::from_u64(1, params)
    }

    /// Converts an integer, rounding per the parameters.
    pub fn from_u64(v: u64, params: FpParams) -> Self {
        normalize(v as u128, 0, false, params)
    }

    /// Converts an exact big integer, rounding per the parameters.
    pub fn from_biguint(v: &BigUint, params: FpParams) -> Self {
        let bits = v.bit_len();
        if bits == 0 {
            return CeilFloat::zero(params);
        }
        if bits <= 64 {
            return CeilFloat::from_u64(v.to_u64().expect("fits"), params);
        }
        // Keep the top 64 bits, track dropped bits as sticky.
        let shift = bits - 64;
        let top = v.shr_bits(shift).to_u64().expect("top 64 bits fit");
        let sticky = (0..shift).any(|i| v.bit(i));
        normalize(top as u128, shift as i32, sticky, params)
    }

    /// Returns the parameters this value was built with.
    pub fn params(&self) -> FpParams {
        self.params
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.mant == 0
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        self.mant as f64 * (self.exp as f64).exp2()
    }

    /// Exact conversion to a rational number (`mant · 2^exp` exactly).
    pub fn to_rational(&self) -> BigRational {
        if self.mant == 0 {
            return BigRational::zero();
        }
        let m = BigUint::from(self.mant as u64);
        if self.exp >= 0 {
            BigRational::from_biguint(m.shl_bits(self.exp as usize))
        } else {
            BigRational::from_ratio(m, BigUint::one().shl_bits((-self.exp) as usize))
        }
    }

    /// The reciprocal `1/self`, rounded per the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> CeilFloat {
        assert!(self.mant != 0, "reciprocal of zero CeilFloat");
        // 1/(m·2^e) = (2^64/m) · 2^{-64-e}; m < 2^31 so 2^64/m > 2^33 has
        // ample precision for any L ≤ 31.
        let num = 1u128 << 64;
        let q = num / self.mant as u128;
        let r = num % self.mant as u128;
        normalize(q, -64 - self.exp, r != 0, self.params)
    }

    fn add_impl(&self, rhs: &CeilFloat) -> CeilFloat {
        assert_eq!(
            self.params, rhs.params,
            "CeilFloat operands built with different FpParams"
        );
        if self.mant == 0 {
            return *rhs;
        }
        if rhs.mant == 0 {
            return *self;
        }
        let (hi, lo) = if self.exp >= rhs.exp {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let diff = (hi.exp - lo.exp) as u32;
        if diff > 90 {
            // lo is far below one ulp of hi: representable sum equals hi,
            // but ceiling rounding must still round up.
            return match self.params.rounding {
                Rounding::Ceil => normalize(hi.mant as u128 + 1, hi.exp, false, self.params),
                Rounding::Nearest => *hi,
            };
        }
        let sum = ((hi.mant as u128) << diff) + lo.mant as u128;
        normalize(sum, lo.exp, false, self.params)
    }

    fn mul_impl(&self, rhs: &CeilFloat) -> CeilFloat {
        assert_eq!(
            self.params, rhs.params,
            "CeilFloat operands built with different FpParams"
        );
        if self.mant == 0 || rhs.mant == 0 {
            return CeilFloat::zero(self.params);
        }
        let prod = self.mant as u128 * rhs.mant as u128;
        normalize(prod, self.exp + rhs.exp, false, self.params)
    }

    fn div_impl(&self, rhs: &CeilFloat) -> CeilFloat {
        assert_eq!(
            self.params, rhs.params,
            "CeilFloat operands built with different FpParams"
        );
        assert!(rhs.mant != 0, "division by zero CeilFloat");
        if self.mant == 0 {
            return CeilFloat::zero(self.params);
        }
        let num = (self.mant as u128) << 64;
        let q = num / rhs.mant as u128;
        let r = num % rhs.mant as u128;
        normalize(q, self.exp - 64 - rhs.exp, r != 0, self.params)
    }

    /// Encodes to the `L + 16`-bit wire format, returned in the low bits of
    /// a `u64`. See [`FpParams::encoded_bits`].
    pub fn encode(&self) -> u64 {
        if self.mant == 0 {
            return 0;
        }
        let biased = (self.exp + EXP_BIAS) as u64;
        debug_assert!(biased > 0 && biased < (1 << EXP_FIELD_BITS));
        ((self.mant as u64) << EXP_FIELD_BITS) | biased
    }

    /// Decodes a value previously produced by [`CeilFloat::encode`] with the
    /// same parameters.
    pub fn decode(bits: u64, params: FpParams) -> CeilFloat {
        if bits == 0 {
            return CeilFloat::zero(params);
        }
        let mant = (bits >> EXP_FIELD_BITS) as u32;
        let exp = (bits & ((1 << EXP_FIELD_BITS) - 1)) as i32 - EXP_BIAS;
        debug_assert!(mant >= 1 << (params.l - 1) && mant < 1 << params.l);
        CeilFloat { mant, exp, params }
    }

    /// Checked variant of [`CeilFloat::decode`] for untrusted wire data:
    /// `None` when `bits` is not a value [`CeilFloat::encode`] can produce
    /// (denormal mantissa or zero exponent field on a nonzero value).
    pub fn try_decode(bits: u64, params: FpParams) -> Option<CeilFloat> {
        if bits == 0 {
            return Some(CeilFloat::zero(params));
        }
        let mant = (bits >> EXP_FIELD_BITS) as u32;
        let biased = bits & ((1 << EXP_FIELD_BITS) - 1);
        if biased == 0 || mant < 1 << (params.l - 1) || mant >= 1 << params.l {
            return None;
        }
        Some(CeilFloat {
            mant,
            exp: biased as i32 - EXP_BIAS,
            params,
        })
    }
}

/// Normalizes `m · 2^exp` to an `L`-bit mantissa, applying the rounding mode.
/// `sticky` records whether bits below `m` were already dropped.
fn normalize(mut m: u128, mut exp: i32, mut sticky: bool, params: FpParams) -> CeilFloat {
    let l = params.l as u32;
    if m == 0 {
        // Only exact zeros flow through here in practice; a sticky-only
        // residue below the representable range still rounds up under Ceil.
        if sticky && params.rounding == Rounding::Ceil {
            m = 1;
        } else {
            return CeilFloat::zero(params);
        }
    }
    let bits = 128 - m.leading_zeros();
    let mut dropped_top_bit = false;
    if bits > l {
        let shift = bits - l;
        let dropped = m & ((1u128 << shift) - 1);
        dropped_top_bit = (dropped >> (shift - 1)) & 1 == 1;
        sticky |= dropped != 0;
        m >>= shift;
        exp += shift as i32;
        let round_up = match params.rounding {
            Rounding::Ceil => sticky,
            Rounding::Nearest => dropped_top_bit,
        };
        if round_up {
            m += 1;
            if m == 1u128 << l {
                m >>= 1;
                exp += 1;
            }
        }
    } else if bits < l {
        let shift = l - bits;
        m <<= shift;
        exp -= shift as i32;
        // A sticky residue below an exact value still forces a round-up
        // under Ceil (the residue is smaller than one ulp).
        if sticky && params.rounding == Rounding::Ceil {
            m += 1;
            if m == 1u128 << l {
                m >>= 1;
                exp += 1;
            }
        }
    } else if sticky {
        match params.rounding {
            Rounding::Ceil => {
                m += 1;
                if m == 1u128 << l {
                    m >>= 1;
                    exp += 1;
                }
            }
            Rounding::Nearest => {
                // Residue strictly below half an ulp unless the top dropped
                // bit said otherwise, which was handled above.
                let _ = dropped_top_bit;
            }
        }
    }
    let exp = exp.clamp(-EXP_LIMIT, EXP_LIMIT);
    CeilFloat {
        mant: m as u32,
        exp,
        params,
    }
}

impl fmt::Debug for CeilFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CeilFloat({} = {}·2^{}, L={})",
            self.to_f64(),
            self.mant,
            self.exp,
            self.params.l
        )
    }
}

impl fmt::Display for CeilFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl PartialOrd for CeilFloat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CeilFloat {
    /// Compares values (not representations); both operands must share
    /// parameters for the comparison to be meaningful, but since mantissas
    /// are normalized the (exp, mant) lexicographic order is the value order
    /// even across parameter sets of equal `L`.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.mant == 0, other.mant == 0) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => (self.exp, self.mant).cmp(&(other.exp, other.mant)),
        }
    }
}

impl Add for CeilFloat {
    type Output = CeilFloat;
    fn add(self, rhs: CeilFloat) -> CeilFloat {
        self.add_impl(&rhs)
    }
}

impl AddAssign for CeilFloat {
    fn add_assign(&mut self, rhs: CeilFloat) {
        *self = self.add_impl(&rhs);
    }
}

impl Mul for CeilFloat {
    type Output = CeilFloat;
    fn mul(self, rhs: CeilFloat) -> CeilFloat {
        self.mul_impl(&rhs)
    }
}

impl Div for CeilFloat {
    type Output = CeilFloat;
    fn div(self, rhs: CeilFloat) -> CeilFloat {
        self.div_impl(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(l: u32) -> FpParams {
        FpParams::new(l, Rounding::Ceil)
    }

    #[test]
    fn params_validation() {
        let params = p(10);
        assert_eq!(params.mantissa_bits(), 10);
        assert_eq!(params.encoded_bits(), 26);
        assert!((params.lemma1_bound() - 2f64.powi(-9)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "mantissa bits")]
    fn params_rejects_zero_l() {
        let _ = FpParams::new(0, Rounding::Ceil);
    }

    #[test]
    #[should_panic(expected = "mantissa bits")]
    fn params_rejects_huge_l() {
        let _ = FpParams::new(32, Rounding::Ceil);
    }

    #[test]
    fn for_graph_size_scales() {
        assert!(FpParams::for_graph_size(10).mantissa_bits() >= 8);
        assert!(
            FpParams::for_graph_size(100_000).mantissa_bits()
                > FpParams::for_graph_size(100).mantissa_bits()
        );
        // ⌈log2 1024⌉ is 11 via the bit trick (1024 needs 11 bits), fine:
        // we only require Θ(log N).
        assert_eq!(FpParams::for_graph_size(2).rounding(), Rounding::Ceil);
    }

    #[test]
    fn exact_small_integers() {
        let params = p(8);
        for v in 0..=255u64 {
            let f = CeilFloat::from_u64(v, params);
            assert_eq!(f.to_f64(), v as f64, "value {v} must be exact");
        }
    }

    #[test]
    fn ceil_is_upper_bound_lemma1() {
        let params = p(8);
        let bound = params.lemma1_bound();
        for v in 1..=100_000u64 {
            let f = CeilFloat::from_u64(v, params).to_f64();
            assert!(f >= v as f64, "ceil estimate below exact for {v}");
            assert!(
                f / v as f64 - 1.0 <= bound + 1e-12,
                "Lemma 1 violated for {v}: {f}"
            );
        }
    }

    #[test]
    fn lemma1_for_biguint() {
        let params = p(12);
        let bound = params.lemma1_bound();
        let mut v = BigUint::from(987_654_321u64);
        for _ in 0..40 {
            v = &v * &BigUint::from(1_000_003u64);
            let f = CeilFloat::from_biguint(&v, params);
            let exact = v.to_f64();
            assert!(f.to_f64() >= exact * (1.0 - 1e-12));
            assert!(f.to_f64() / exact - 1.0 <= bound + 1e-9);
        }
    }

    #[test]
    fn add_upper_bounds_exact_sum() {
        let params = p(8);
        let a = CeilFloat::from_u64(1000, params);
        let b = CeilFloat::from_u64(3, params);
        let s = a + b;
        assert!(s.to_f64() >= 1003.0);
        assert!(s.to_f64() <= 1003.0 * (1.0 + 3.0 * params.lemma1_bound()));
    }

    #[test]
    fn add_zero_identity() {
        let params = p(10);
        let a = CeilFloat::from_u64(77, params);
        let z = CeilFloat::zero(params);
        assert_eq!((a + z).to_f64(), a.to_f64());
        assert_eq!((z + a).to_f64(), a.to_f64());
        assert!((z + z).is_zero());
    }

    #[test]
    fn add_far_apart_exponents_still_rounds_up() {
        let params = p(8);
        let mut big = CeilFloat::from_u64(1 << 20, params);
        // Add a tiny value whose exponent is ~200 below.
        let tiny = CeilFloat::from_u64(1, params).recip(); // 1
        let mut t = tiny;
        for _ in 0..40 {
            t = t * CeilFloat::from_u64(1, params); // no-op, keep value
        }
        // Construct 2^-200 via repeated recip of 2^200.
        let mut huge = CeilFloat::one(params);
        let two = CeilFloat::from_u64(2, params);
        for _ in 0..200 {
            huge = huge * two;
        }
        let eps = huge.recip();
        let before = big.to_f64();
        big += eps;
        assert!(big.to_f64() > before, "ceil add must strictly round up");
    }

    #[test]
    fn nearest_add_far_apart_is_identity() {
        let params = FpParams::new(8, Rounding::Nearest);
        let big = CeilFloat::from_u64(1 << 20, params);
        let mut huge = CeilFloat::one(params);
        let two = CeilFloat::from_u64(2, params);
        for _ in 0..200 {
            huge = huge * two;
        }
        let eps = huge.recip();
        assert_eq!((big + eps).to_f64(), big.to_f64());
    }

    #[test]
    fn mul_powers_of_two_exact() {
        let params = p(8);
        let two = CeilFloat::from_u64(2, params);
        let mut v = CeilFloat::one(params);
        for i in 0..300 {
            assert_eq!(v.to_f64(), 2f64.powi(i));
            v = v * two;
        }
    }

    #[test]
    fn recip_upper_bound() {
        let params = p(12);
        for v in 1..=5000u64 {
            let f = CeilFloat::from_u64(v, params);
            let r = f.recip();
            // 1/σ̂ ≤ 1/σ (since σ̂ ≥ σ), but recip itself ceils its own
            // quotient, so r ≥ 1/f exactly and r ≤ (1+η)/v overall.
            assert!(r.to_f64() * f.to_f64() >= 1.0 - 1e-9);
            assert!(r.to_f64() <= (1.0 / v as f64) * (1.0 + 4.0 * params.lemma1_bound()));
        }
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = CeilFloat::zero(p(8)).recip();
    }

    #[test]
    fn div_matches_mul_recip_approximately() {
        let params = p(16);
        let a = CeilFloat::from_u64(355, params);
        let b = CeilFloat::from_u64(113, params);
        let q = a / b;
        assert!((q.to_f64() - 355.0 / 113.0).abs() / (355.0 / 113.0) < 1e-3);
        assert!(q.to_f64() >= 355.0 / 113.0 * (1.0 - 1e-12));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let params = p(8);
        let _ = CeilFloat::one(params) / CeilFloat::zero(params);
    }

    #[test]
    #[should_panic(expected = "different FpParams")]
    fn mixed_params_panics() {
        let _ = CeilFloat::one(p(8)) + CeilFloat::one(p(9));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let params = p(14);
        let vals = [0u64, 1, 2, 3, 1000, 123_456_789];
        for v in vals {
            let f = CeilFloat::from_u64(v, params);
            let bits = f.encode();
            assert!(bits < 1u64 << params.encoded_bits());
            let g = CeilFloat::decode(bits, params);
            assert_eq!(f, g);
        }
        // Fractions round-trip too.
        let f = CeilFloat::from_u64(7, params).recip();
        assert_eq!(CeilFloat::decode(f.encode(), params), f);
    }

    #[test]
    fn ordering_follows_value() {
        let params = p(10);
        let a = CeilFloat::from_u64(100, params);
        let b = CeilFloat::from_u64(200, params);
        let z = CeilFloat::zero(params);
        assert!(a < b);
        assert!(z < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        let half = CeilFloat::from_u64(2, params).recip();
        assert!(half < a);
        assert!(z < half);
    }

    #[test]
    fn to_rational_is_exact() {
        let params = p(10);
        let f = CeilFloat::from_u64(768, params); // exactly representable
        assert_eq!(f.to_rational(), BigRational::from_u64(768));
        let half = CeilFloat::from_u64(2, params).recip();
        assert_eq!(half.to_rational(), BigRational::from_ratio_u64(1, 2));
        assert!(CeilFloat::zero(params).to_rational().is_zero());
    }

    #[test]
    fn sigma_reciprocal_sum_error_stays_small() {
        // Emulates a ψ accumulation: sum of 1/σ for many σ values; relative
        // error should stay O(#ops · 2^-L).
        let params = p(20);
        let mut acc = CeilFloat::zero(params);
        let mut exact = 0.0f64;
        for sigma in 1..=2000u64 {
            acc += CeilFloat::from_u64(sigma, params).recip();
            exact += 1.0 / sigma as f64;
        }
        let rel = (acc.to_f64() - exact).abs() / exact;
        assert!(rel < 4000.0 * params.lemma1_bound(), "rel error {rel}");
    }

    #[test]
    fn debug_display_nonempty() {
        let f = CeilFloat::from_u64(5, p(8));
        assert!(!format!("{f:?}").is_empty());
        assert_eq!(format!("{f}"), "5");
    }
}
