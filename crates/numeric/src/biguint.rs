//! School-book arbitrary-precision unsigned integers.
//!
//! The paper (Section V, "Large Value Challenge") observes that the number of
//! shortest paths `σ_st` can be as large as `O((N/D)^D)`, i.e. exponential in
//! the network size, so exact path counts do not fit in any machine word.
//! [`BigUint`] provides exact arithmetic for those counts so that the
//! floating-point pipeline of Section VI can be validated against ground
//! truth.
//!
//! The implementation is deliberately simple (schoolbook algorithms over
//! 32-bit limbs); the numbers appearing in laptop-scale experiments are a few
//! thousand bits at most, far below the regime where asymptotically faster
//! multiplication would matter.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Rem, Sub, SubAssign};

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian 32-bit limbs with no trailing zero limbs
/// (the canonical representation of zero is an empty limb vector).
///
/// # Examples
///
/// ```
/// use bc_numeric::BigUint;
///
/// let a = BigUint::from(10_u64).pow(30);
/// let b = BigUint::from(7_u64);
/// let (q, r) = a.div_rem(&b);
/// assert_eq!(&q * &b + &r, a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits (`0` for the value zero).
    ///
    /// ```
    /// use bc_numeric::BigUint;
    /// assert_eq!(BigUint::from(0_u64).bit_len(), 0);
    /// assert_eq!(BigUint::from(1_u64).bit_len(), 1);
    /// assert_eq!(BigUint::from(255_u64).bit_len(), 8);
    /// ```
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 32 * (self.limbs.len() - 1) + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian, bit 0 is the least significant).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        let off = i % 32;
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            v |= (l as u128) << (32 * i);
        }
        Some(v)
    }

    /// Lossy conversion to `f64` (may overflow to `f64::INFINITY`).
    pub fn to_f64(&self) -> f64 {
        // Take the top 64 bits and scale.
        let bits = self.bit_len();
        if bits == 0 {
            return 0.0;
        }
        if bits <= 64 {
            return self.to_u64().map(|v| v as f64).unwrap_or_else(|| {
                // bits <= 64 guarantees it fits in u64 via top-bits path below,
                // but limbs.len() can be 3 when bits == 64..=96? No: bits<=64
                // implies at most 2 limbs + possibly a zero top limb, which
                // normalization removed.
                unreachable!("normalized BigUint with <=64 bits fits u64")
            });
        }
        let shift = bits - 64;
        let top = self.shr_bits(shift).to_u64().expect("top 64 bits fit");
        (top as f64) * (shift as f64).exp2()
    }

    /// Returns `self >> k` (new value).
    pub fn shr_bits(&self, k: usize) -> BigUint {
        let limb_shift = k / 32;
        let bit_shift = (k % 32) as u32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Returns `self << k` (new value).
    pub fn shl_bits(&self, k: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = k / 32;
        let bit_shift = (k % 32) as u32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Adds `other` into `self`.
    fn add_assign_ref(&mut self, other: &BigUint) {
        let mut carry = 0u64;
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        for i in 0..n {
            let o = *other.limbs.get(i).unwrap_or(&0) as u64;
            let s = self.limbs[i] as u64 + o + carry;
            self.limbs[i] = s as u32;
            carry = s >> 32;
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
        }
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (unsigned underflow).
    fn sub_assign_ref(&mut self, other: &BigUint) {
        assert!(
            *self >= *other,
            "BigUint subtraction underflow: {self} - {other}"
        );
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let o = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut d = self.limbs[i] as i64 - o - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            self.limbs[i] = d as u32;
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// Schoolbook multiplication.
    fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + (a as u64) * (b as u64) + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Multiplies by a small scalar in place.
    pub fn mul_small(&mut self, m: u32) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u64;
        for l in &mut self.limbs {
            let cur = (*l as u64) * (m as u64) + carry;
            *l = cur as u32;
            carry = cur >> 32;
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
        }
    }

    /// Adds a small scalar in place.
    pub fn add_small(&mut self, a: u32) {
        let mut carry = a as u64;
        let mut i = 0;
        while carry != 0 {
            if i == self.limbs.len() {
                self.limbs.push(0);
            }
            let cur = self.limbs[i] as u64 + carry;
            self.limbs[i] = cur as u32;
            carry = cur >> 32;
            i += 1;
        }
    }

    /// Divides by a small scalar in place, returning the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_small(&mut self, d: u32) -> u32 {
        assert_ne!(d, 0, "division by zero");
        let mut rem = 0u64;
        for l in self.limbs.iter_mut().rev() {
            let cur = (rem << 32) | *l as u64;
            *l = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        self.normalize();
        rem as u32
    }

    /// Long division: returns `(self / divisor, self % divisor)`.
    ///
    /// Uses bit-by-bit restoring division, which is `O(bits · limbs)` — more
    /// than fast enough for the magnitudes appearing in shortest-path counts.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if *self < *divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let mut q = self.clone();
            let r = q.div_rem_small(divisor.limbs[0]);
            return (q, BigUint::from(r as u64));
        }
        let shift = self.bit_len() - divisor.bit_len();
        let mut rem = self.clone();
        let mut quot_bits = vec![false; shift + 1];
        let mut d = divisor.shl_bits(shift);
        for i in (0..=shift).rev() {
            if rem >= d {
                rem.sub_assign_ref(&d);
                quot_bits[i] = true;
            }
            d = d.shr_bits(1);
        }
        let mut q = BigUint::zero();
        let nlimbs = quot_bits.len().div_ceil(32);
        q.limbs = vec![0; nlimbs];
        for (i, &b) in quot_bits.iter().enumerate() {
            if b {
                q.limbs[i / 32] |= 1 << (i % 32);
            }
        }
        q.normalize();
        (q, rem)
    }

    /// Greatest common divisor (binary GCD).
    ///
    /// ```
    /// use bc_numeric::BigUint;
    /// let g = BigUint::from(48_u64).gcd(&BigUint::from(18_u64));
    /// assert_eq!(g, BigUint::from(6_u64));
    /// ```
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let common = az.min(bz);
        a = a.shr_bits(az);
        b = b.shr_bits(bz);
        loop {
            match a.cmp(&b) {
                Ordering::Equal => break,
                Ordering::Greater => {
                    a.sub_assign_ref(&b);
                    a = a.shr_bits(a.trailing_zeros());
                }
                Ordering::Less => {
                    b.sub_assign_ref(&a);
                    b = b.shr_bits(b.trailing_zeros());
                }
            }
        }
        a.shl_bits(common)
    }

    fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return 32 * i + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Raises the value to the power `e`.
    pub fn pow(&self, mut e: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] if the string is empty or contains a
    /// non-digit character.
    pub fn from_decimal(s: &str) -> Result<BigUint, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError);
        }
        let mut v = BigUint::zero();
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(ParseBigUintError)?;
            v.mul_small(10);
            v.add_small(d);
        }
        Ok(v)
    }

    /// Formats as a decimal string.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut v = self.clone();
        let mut chunks = Vec::new();
        while !v.is_zero() {
            chunks.push(v.div_rem_small(1_000_000_000));
        }
        let mut s = chunks.pop().map(|c| c.to_string()).unwrap_or_default();
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:09}"));
        }
        s
    }
}

/// Error returned by [`BigUint::from_decimal`] for malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBigUintError;

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal digit in BigUint literal")
    }
}

impl std::error::Error for ParseBigUintError {}

impl std::str::FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigUint::from_decimal(s)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        let mut r = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        r.normalize();
        r
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        let mut r = BigUint {
            limbs: vec![
                v as u32,
                (v >> 32) as u32,
                (v >> 64) as u32,
                (v >> 96) as u32,
            ],
        };
        r.normalize();
        r
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            if a != b {
                return a.cmp(b);
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({})", self.to_decimal())
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut r = self.clone();
        r.add_assign_ref(rhs);
        r
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(mut self, rhs: BigUint) -> BigUint {
        self.add_assign_ref(&rhs);
        self
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        self.add_assign_ref(rhs);
    }
}

impl Add<&BigUint> for BigUint {
    type Output = BigUint;
    fn add(mut self, rhs: &BigUint) -> BigUint {
        self.add_assign_ref(rhs);
        self
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        let mut r = self.clone();
        r.sub_assign_ref(rhs);
        r
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(mut self, rhs: BigUint) -> BigUint {
        self.sub_assign_ref(&rhs);
        self
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        self.sub_assign_ref(rhs);
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_ref(&rhs)
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = self.mul_ref(rhs);
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl std::iter::Sum for BigUint {
    fn sum<I: Iterator<Item = BigUint>>(iter: I) -> Self {
        let mut acc = BigUint::zero();
        for v in iter {
            acc.add_assign_ref(&v);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert_eq!(BigUint::default(), BigUint::zero());
    }

    #[test]
    fn from_u64_roundtrip() {
        for v in [0u64, 1, 42, u32::MAX as u64, u64::MAX, 1 << 33] {
            assert_eq!(BigUint::from(v).to_u64(), Some(v));
        }
    }

    #[test]
    fn from_u128_roundtrip() {
        for v in [0u128, u64::MAX as u128 + 1, u128::MAX] {
            assert_eq!(BigUint::from(v).to_u128(), Some(v));
        }
    }

    #[test]
    fn add_with_carry() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::from(1u64);
        assert_eq!((&a + &b).to_u128(), Some(u64::MAX as u128 + 1));
    }

    #[test]
    fn sub_basics() {
        let a = BigUint::from(1_000_000_000_007u64);
        let b = BigUint::from(7u64);
        assert_eq!((&a - &b).to_u64(), Some(1_000_000_000_000));
        assert!((&a - &a).is_zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &BigUint::from(1u64) - &BigUint::from(2u64);
    }

    #[test]
    fn mul_matches_u128() {
        let a = BigUint::from(0xDEAD_BEEF_u64);
        let b = BigUint::from(0xFEED_FACE_CAFE_u64);
        assert_eq!(
            (&a * &b).to_u128(),
            Some(0xDEAD_BEEF_u128 * 0xFEED_FACE_CAFE_u128)
        );
    }

    #[test]
    fn pow_and_decimal() {
        let v = BigUint::from(2u64).pow(100);
        assert_eq!(v.to_decimal(), "1267650600228229401496703205376");
        assert_eq!(BigUint::from_decimal(&v.to_decimal()).unwrap(), v);
        assert_eq!(v.bit_len(), 101);
    }

    #[test]
    fn parse_errors() {
        assert!(BigUint::from_decimal("").is_err());
        assert!(BigUint::from_decimal("12a").is_err());
        assert!("123".parse::<BigUint>().is_ok());
    }

    #[test]
    fn div_rem_small_cases() {
        let mut v = BigUint::from(1001u64);
        assert_eq!(v.div_rem_small(10), 1);
        assert_eq!(v.to_u64(), Some(100));
    }

    #[test]
    fn div_rem_reconstructs() {
        let a = BigUint::from(3u64).pow(80);
        let b = BigUint::from(7u64).pow(20);
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&q * &b + &r, a);
    }

    #[test]
    fn div_rem_smaller_dividend() {
        let a = BigUint::from(5u64);
        let b = BigUint::from(100u64);
        let (q, r) = a.div_rem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::from(1u64).div_rem(&BigUint::zero());
    }

    #[test]
    fn gcd_cases() {
        let g = BigUint::from(2u64)
            .pow(50)
            .gcd(&BigUint::from(2u64).pow(30));
        assert_eq!(g, BigUint::from(2u64).pow(30));
        assert_eq!(
            BigUint::from(17u64).gcd(&BigUint::from(13u64)),
            BigUint::one()
        );
        assert_eq!(BigUint::zero().gcd(&BigUint::from(5u64)).to_u64(), Some(5));
        assert_eq!(BigUint::from(5u64).gcd(&BigUint::zero()).to_u64(), Some(5));
    }

    #[test]
    fn shifts() {
        let v = BigUint::from(0b1011u64);
        assert_eq!(v.shl_bits(100).shr_bits(100), v);
        assert_eq!(v.shr_bits(2).to_u64(), Some(0b10));
        assert_eq!(v.shr_bits(64).to_u64(), Some(0));
        assert!(BigUint::zero().shl_bits(5).is_zero());
    }

    #[test]
    fn bit_access() {
        let v = BigUint::from(0b101u64);
        assert!(v.bit(0));
        assert!(!v.bit(1));
        assert!(v.bit(2));
        assert!(!v.bit(64));
    }

    #[test]
    fn to_f64_large() {
        let v = BigUint::from(2u64).pow(100);
        let f = v.to_f64();
        assert!((f / 2f64.powi(100) - 1.0).abs() < 1e-12);
        assert_eq!(BigUint::zero().to_f64(), 0.0);
    }

    #[test]
    fn ordering() {
        let a = BigUint::from(2u64).pow(65);
        let b = BigUint::from(u64::MAX);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn sum_iterator() {
        let total: BigUint = (1..=10u64).map(BigUint::from).sum();
        assert_eq!(total.to_u64(), Some(55));
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", BigUint::zero()), "0");
        assert!(format!("{:?}", BigUint::zero()).contains("BigUint"));
    }
}
