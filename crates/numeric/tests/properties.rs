//! Property-based tests for the numeric substrate: ring axioms against
//! machine-word oracles, division/gcd identities, Lemma 1 bounds, and wire
//! round-trips.

use bc_numeric::bits::{id_bits, BitWriter};
use bc_numeric::{BigRational, BigUint, CeilFloat, FpParams, Rounding};
use proptest::prelude::*;

fn big(v: u128) -> BigUint {
    BigUint::from(v)
}

proptest! {
    #[test]
    fn add_matches_u128(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
        prop_assert_eq!((&big(a) + &big(b)).to_u128(), Some(a + b));
    }

    #[test]
    fn sub_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!((&big(hi) - &big(lo)).to_u128(), Some(hi - lo));
    }

    #[test]
    fn mul_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        prop_assert_eq!(
            (&BigUint::from(a) * &BigUint::from(b)).to_u128(),
            Some(a as u128 * b as u128)
        );
    }

    #[test]
    fn mul_commutes_and_associates(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (BigUint::from(a), BigUint::from(b), BigUint::from(c));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn distributivity(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (BigUint::from(a), BigUint::from(b), BigUint::from(c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn div_rem_identity(a in any::<u128>(), b in 1u128..u128::MAX) {
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert!(r < big(b));
        prop_assert_eq!(&(&q * &big(b)) + &r, big(a));
    }

    #[test]
    fn div_rem_large_operands(a in any::<u64>(), b in 1u64..u64::MAX, e in 1u32..6) {
        // Exercise multi-limb divisor paths with a^e / b^(e/2+1).
        let x = BigUint::from(a).pow(e) + &BigUint::from(b);
        let d = BigUint::from(b).pow(e / 2 + 1);
        let (q, r) = x.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(&(&q * &d) + &r, x);
    }

    #[test]
    fn gcd_divides_both(a in 1u64..u64::MAX, b in 1u64..u64::MAX) {
        let g = BigUint::from(a).gcd(&BigUint::from(b));
        prop_assert!((&BigUint::from(a) % &g).is_zero());
        prop_assert!((&BigUint::from(b) % &g).is_zero());
        // Matches the u64 oracle.
        let oracle = {
            let (mut x, mut y) = (a, b);
            while y != 0 { let t = x % y; x = y; y = t; }
            x
        };
        prop_assert_eq!(g.to_u64(), Some(oracle));
    }

    #[test]
    fn decimal_roundtrip(a in any::<u128>(), e in 1u32..4) {
        let v = big(a).pow(e);
        prop_assert_eq!(BigUint::from_decimal(&v.to_decimal()).unwrap(), v);
    }

    #[test]
    fn shifts_invert(a in any::<u128>(), k in 0usize..200) {
        let v = big(a);
        prop_assert_eq!(v.shl_bits(k).shr_bits(k), v);
    }

    #[test]
    fn rational_field_axioms(
        (an, ad) in (0u64..1000, 1u64..1000),
        (bn, bd) in (0u64..1000, 1u64..1000),
        (cn, cd) in (0u64..1000, 1u64..1000),
    ) {
        let a = BigRational::from_ratio_u64(an, ad);
        let b = BigRational::from_ratio_u64(bn, bd);
        let c = BigRational::from_ratio_u64(cn, cd);
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&(&a + &b) - &b, a.clone());
        if !b.is_zero() {
            prop_assert_eq!(&(&a * &b) / &b, a);
        }
    }

    #[test]
    fn rational_matches_f64(
        (an, ad) in (0u64..10_000, 1u64..10_000),
        (bn, bd) in (0u64..10_000, 1u64..10_000),
    ) {
        let a = BigRational::from_ratio_u64(an, ad);
        let b = BigRational::from_ratio_u64(bn, bd);
        let sum = (&a + &b).to_f64();
        let expect = an as f64 / ad as f64 + bn as f64 / bd as f64;
        prop_assert!((sum - expect).abs() <= 1e-9 * expect.max(1.0));
    }

    #[test]
    fn lemma1_holds_for_random_values(v in 1u64..u64::MAX, l in 2u32..28) {
        let params = FpParams::new(l, Rounding::Ceil);
        let f = CeilFloat::from_u64(v, params);
        // Ceil: estimate is an upper bound within 2^{-L+1} relative error.
        let rel = f.to_f64() / v as f64 - 1.0;
        prop_assert!(rel >= -1e-12, "not an upper bound: v={v} l={l}");
        prop_assert!(rel <= params.lemma1_bound() + 1e-12, "bound violated: v={v} l={l} rel={rel}");
    }

    #[test]
    fn lemma1_holds_for_biguint_powers(base in 2u64..1000, e in 1u32..40, l in 4u32..28) {
        let params = FpParams::new(l, Rounding::Ceil);
        let v = BigUint::from(base).pow(e);
        let f = CeilFloat::from_biguint(&v, params);
        // Compare exactly via rationals to avoid f64 rounding of the oracle.
        let exact = BigRational::from_biguint(v);
        let est = f.to_rational();
        prop_assert!(est >= exact, "ceil must upper-bound");
        let err = &(&est - &exact) / &exact;
        let bound = BigRational::from_ratio_u64(2, 1u64 << l.min(62));
        prop_assert!(err <= bound, "Lemma 1 exact-rational bound violated");
    }

    #[test]
    fn ceilfloat_add_upper_bounds(a in 1u64..u32::MAX as u64, b in 1u64..u32::MAX as u64, l in 4u32..24) {
        let params = FpParams::new(l, Rounding::Ceil);
        let s = CeilFloat::from_u64(a, params) + CeilFloat::from_u64(b, params);
        let exact = (a + b) as f64;
        prop_assert!(s.to_f64() >= exact * (1.0 - 1e-12));
        prop_assert!(s.to_f64() <= exact * (1.0 + 4.0 * params.lemma1_bound()));
    }

    #[test]
    fn ceilfloat_mul_upper_bounds(a in 1u64..u32::MAX as u64, b in 1u64..u32::MAX as u64, l in 4u32..24) {
        let params = FpParams::new(l, Rounding::Ceil);
        let m = CeilFloat::from_u64(a, params) * CeilFloat::from_u64(b, params);
        let exact = a as f64 * b as f64;
        prop_assert!(m.to_f64() >= exact * (1.0 - 1e-12));
        prop_assert!(m.to_f64() <= exact * (1.0 + 4.0 * params.lemma1_bound()));
    }

    #[test]
    fn ceilfloat_encode_roundtrip(v in 1u64..u64::MAX, l in 2u32..28) {
        let params = FpParams::new(l, Rounding::Ceil);
        let f = CeilFloat::from_u64(v, params);
        prop_assert_eq!(CeilFloat::decode(f.encode(), params), f);
        prop_assert!(f.encode() < 1u64 << params.encoded_bits());
        let r = f.recip();
        prop_assert_eq!(CeilFloat::decode(r.encode(), params), r);
    }

    #[test]
    fn ceilfloat_order_matches_f64(a in 1u64..u64::MAX, b in 1u64..u64::MAX) {
        let params = FpParams::new(20, Rounding::Ceil);
        let (fa, fb) = (CeilFloat::from_u64(a, params), CeilFloat::from_u64(b, params));
        if fa < fb {
            prop_assert!(fa.to_f64() <= fb.to_f64());
        } else {
            prop_assert!(fa.to_f64() >= fb.to_f64());
        }
    }

    #[test]
    fn nearest_mode_error_smaller_or_equal_on_average(vals in prop::collection::vec(1u64..100_000, 10..60)) {
        // Sanity for the E10b ablation: summing with Nearest never does
        // *worse* than twice the Ceil error bound on these inputs.
        let lc = FpParams::new(10, Rounding::Ceil);
        let ln = FpParams::new(10, Rounding::Nearest);
        let exact: f64 = vals.iter().map(|&v| v as f64).sum();
        let mut sc = CeilFloat::zero(lc);
        let mut sn = CeilFloat::zero(ln);
        for &v in &vals {
            sc += CeilFloat::from_u64(v, lc);
            sn += CeilFloat::from_u64(v, ln);
        }
        let ec = (sc.to_f64() - exact).abs() / exact;
        let en = (sn.to_f64() - exact).abs() / exact;
        prop_assert!(en <= 2.0 * ec + lc.lemma1_bound());
    }

    #[test]
    fn bit_writer_roundtrips_random_fields(fields in prop::collection::vec((any::<u64>(), 1u32..=64), 1..100)) {
        let mut w = BitWriter::new();
        let mut masked = Vec::new();
        for &(v, width) in &fields {
            let m = if width == 64 { v } else { v & ((1u64 << width) - 1) };
            masked.push((m, width));
            w.push(m, width);
        }
        let buf = w.finish();
        prop_assert_eq!(buf.bit_len(), fields.iter().map(|&(_, w)| w as usize).sum::<usize>());
        let mut r = buf.reader();
        for (m, width) in masked {
            prop_assert_eq!(r.read(width), m);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn id_bits_is_sufficient_and_tight(n in 2usize..1_000_000) {
        let b = id_bits(n);
        // Every id in 0..n fits.
        prop_assert!(((n - 1) as u64) < (1u64 << b));
        // One bit fewer would not fit.
        if b > 1 {
            prop_assert!(((n - 1) as u64) >= (1u64 << (b - 1)));
        }
    }
}
