//! Property-based tests of the centralized baselines: three independent
//! betweenness implementations agree, exact rationals match floats,
//! centralities respect their invariants, and the weighted machinery is
//! consistent with its unweighted specialization.

use bc_brandes::{
    betweenness_exact, betweenness_f64, betweenness_naive, closeness_centrality, dependencies_from,
    graph_centrality, stress_centrality, weighted,
};
use bc_graph::weighted::WeightedGraph;
use bc_graph::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n, any::<u64>(), 0usize..60).prop_map(|(n, seed, extra)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for _ in 0..extra {
            let (u, v) = (rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId));
            if u != v {
                b.add_edge(u, v).expect("valid");
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn brandes_equals_naive(g in arb_graph(22)) {
        let a = betweenness_f64(&g);
        let b = betweenness_naive(&g);
        for (v, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert!((x - y).abs() <= 1e-9 * (1.0 + y), "node {}", v);
        }
    }

    #[test]
    fn brandes_equals_exact_rationals(g in arb_graph(16)) {
        let a = betweenness_f64(&g);
        let e = betweenness_exact(&g);
        for (v, (x, y)) in a.iter().zip(&e).enumerate() {
            prop_assert!((x - y.to_f64()).abs() <= 1e-9 * (1.0 + x), "node {}", v);
        }
    }

    #[test]
    fn betweenness_invariants(g in arb_graph(25)) {
        let cb = betweenness_f64(&g);
        let n = g.n() as f64;
        for (v, &b) in cb.iter().enumerate() {
            prop_assert!(b >= -1e-12, "nonnegative");
            // Upper bound: (n-1)(n-2)/2 (star center).
            prop_assert!(b <= (n - 1.0) * (n - 2.0) / 2.0 + 1e-9, "node {}", v);
            // Degree-0 and degree-1 nodes have zero betweenness.
            if g.degree(v as NodeId) <= 1 {
                prop_assert!(b.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dependency_sum_consistency(g in arb_graph(20)) {
        // Σ_v δ_s·(v) summed over sources equals 2·ΣCB + (endpoint terms);
        // simpler invariant: CB(v) = Σ_s δ_s(v)/2 by definition of the
        // implementation — recompute independently.
        let cb = betweenness_f64(&g);
        let n = g.n();
        let mut acc = vec![0.0; n];
        for s in 0..n as NodeId {
            for (v, d) in dependencies_from(&g, s).into_iter().enumerate() {
                if v != s as usize {
                    acc[v] += d;
                }
            }
        }
        for (x, y) in acc.iter().zip(&cb) {
            prop_assert!((x / 2.0 - y).abs() <= 1e-9 * (1.0 + y));
        }
    }

    #[test]
    fn stress_dominates_betweenness(g in arb_graph(18)) {
        // σ_st(v) ≥ σ_st(v)/σ_st, so CS(v) ≥ CB(v) pointwise.
        let cs = stress_centrality(&g);
        let cb = betweenness_f64(&g);
        for (v, (s, b)) in cs.iter().zip(&cb).enumerate() {
            prop_assert!(s + 1e-9 >= *b, "node {}: stress {} < bc {}", v, s, b);
        }
    }

    #[test]
    fn closeness_and_graph_centrality_bounds(g in arb_graph(25)) {
        let cc = closeness_centrality(&g);
        let cg = graph_centrality(&g);
        for v in 0..g.n() {
            prop_assert!(cc[v] >= 0.0 && cc[v] <= 1.0);
            prop_assert!(cg[v] >= 0.0 && cg[v] <= 1.0);
            // 1/Σd ≤ 1/max d.
            prop_assert!(cc[v] <= cg[v] + 1e-12);
        }
    }

    #[test]
    fn unit_weighted_equals_unweighted(g in arb_graph(20)) {
        let wg = WeightedGraph::from_edges(g.n(), g.edges().map(|(u, v)| (u, v, 1))).unwrap();
        let a = weighted::betweenness_weighted_f64(&wg);
        let b = betweenness_f64(&g);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() <= 1e-9 * (1.0 + y));
        }
    }

    #[test]
    fn subdivision_equals_dijkstra(g in arb_graph(14), wmax in 1u32..5, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let wg = WeightedGraph::from_edges(
            g.n(),
            g.edges().map(|(u, v)| (u, v, rng.gen_range(1..=wmax))),
        )
        .unwrap();
        let direct = weighted::betweenness_weighted_f64(&wg);
        let via_sub = weighted::betweenness_weighted_via_subdivision(&wg);
        for (v, (x, y)) in via_sub.iter().zip(&direct).enumerate() {
            prop_assert!((x - y).abs() <= 1e-9 * (1.0 + y), "node {}", v);
        }
    }

    #[test]
    fn scaling_weights_preserves_betweenness(g in arb_graph(14), c in 2u32..5) {
        // Multiplying all weights by a constant leaves shortest paths (and
        // hence betweenness) unchanged.
        let w1 = WeightedGraph::from_edges(g.n(), g.edges().map(|(u, v)| (u, v, 2))).unwrap();
        let w2 = WeightedGraph::from_edges(g.n(), g.edges().map(|(u, v)| (u, v, 2 * c))).unwrap();
        let a = weighted::betweenness_weighted_f64(&w1);
        let b = weighted::betweenness_weighted_f64(&w2);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() <= 1e-9);
        }
    }
}
