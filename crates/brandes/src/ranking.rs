//! Rank-quality measures for comparing centrality vectors — used to judge
//! the sampling approximations (experiment E11) the way the approximation
//! literature does: by how well they preserve the *ranking*, not just the
//! values.

/// Kendall's τ-b rank correlation between two score vectors (1 = same
/// order, −1 = reversed, ~0 = unrelated). Ties are handled via the τ-b
/// normalization. `O(n²)` — fine for the experiment scales here.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than 2 entries.
///
/// # Examples
///
/// ```
/// use bc_brandes::ranking::kendall_tau;
///
/// assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 1.0);
/// assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]), -1.0);
/// ```
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must have equal length");
    assert!(a.len() >= 2, "need at least two items to rank");
    let n = a.len();
    let (mut concordant, mut discordant) = (0i64, 0i64);
    let (mut ties_a, mut ties_b) = (0i64, 0i64);
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let sa = if da.abs() < 1e-12 {
                0
            } else {
                da.signum() as i64
            };
            let sb = if db.abs() < 1e-12 {
                0
            } else {
                db.signum() as i64
            };
            match (sa, sb) {
                (0, 0) => {}
                (0, _) => ties_a += 1,
                (_, 0) => ties_b += 1,
                (x, y) if x == y => concordant += 1,
                _ => discordant += 1,
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_a) as f64) * ((n0 - ties_b) as f64)).sqrt();
    if denom == 0.0 {
        // One of the vectors is constant: ranking is undefined; report 0.
        0.0
    } else {
        (concordant - discordant) as f64 / denom
    }
}

/// Fraction of the exact top-`k` recovered by the estimate's top-`k`
/// (set overlap, order-insensitive) — the "did we find the hubs" measure.
///
/// # Panics
///
/// Panics if the slices differ in length or `k` is 0 or exceeds the
/// length.
///
/// # Examples
///
/// ```
/// use bc_brandes::ranking::top_k_overlap;
///
/// let exact = [9.0, 7.0, 1.0, 0.0];
/// let est = [8.0, 9.5, 0.5, 2.0]; // top-2 = {1, 0} — same set
/// assert_eq!(top_k_overlap(&exact, &est, 2), 1.0);
/// assert_eq!(top_k_overlap(&exact, &est, 3), 2.0 / 3.0);
/// ```
pub fn top_k_overlap(exact: &[f64], estimate: &[f64], k: usize) -> f64 {
    assert_eq!(exact.len(), estimate.len(), "vectors must match");
    assert!(k >= 1 && k <= exact.len(), "k out of range");
    let top = |scores: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&x, &y| scores[y].total_cmp(&scores[x]));
        idx.truncate(k);
        idx
    };
    let a = top(exact);
    let b = top(estimate);
    let hits = a.iter().filter(|v| b.contains(v)).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_perfect_and_reversed() {
        let a = [0.5, 2.0, 9.0, 4.0];
        let rev: Vec<f64> = a.iter().map(|v| -v).collect();
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &rev), -1.0);
    }

    #[test]
    fn tau_partial() {
        // One swap among 4 items: τ = (5 − 1) / 6.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 2.0, 4.0, 3.0];
        let tau = kendall_tau(&a, &b);
        assert!((tau - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn tau_with_ties() {
        let a = [1.0, 1.0, 2.0];
        let b = [1.0, 2.0, 3.0];
        let tau = kendall_tau(&a, &b);
        assert!(tau > 0.0 && tau < 1.0);
        // Constant vector → undefined → 0.
        assert_eq!(kendall_tau(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn tau_invariant_to_monotone_transform() {
        let a = [0.1, 5.0, 2.0, 7.0, 3.3];
        let squashed: Vec<f64> = a.iter().map(|v| f64::ln_1p(*v)).collect();
        assert_eq!(kendall_tau(&a, &squashed), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn tau_length_mismatch() {
        let _ = kendall_tau(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn overlap_basics() {
        let exact = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(top_k_overlap(&exact, &exact, 3), 1.0);
        let shuffled = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(top_k_overlap(&exact, &shuffled, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn overlap_bad_k() {
        let _ = top_k_overlap(&[1.0], &[1.0], 2);
    }
}
