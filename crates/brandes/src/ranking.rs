//! Rank-quality measures for comparing centrality vectors — used to judge
//! the sampling approximations (experiment E11) the way the approximation
//! literature does: by how well they preserve the *ranking*, not just the
//! values.

/// Kendall's τ-b rank correlation between two score vectors (1 = same
/// order, −1 = reversed, ~0 = unrelated). Ties are handled via the τ-b
/// normalization. `O(n²)` — fine for the experiment scales here.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than 2 entries.
///
/// # Examples
///
/// ```
/// use bc_brandes::ranking::kendall_tau;
///
/// assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 1.0);
/// assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]), -1.0);
/// ```
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must have equal length");
    assert!(a.len() >= 2, "need at least two items to rank");
    let n = a.len();
    let (mut concordant, mut discordant) = (0i64, 0i64);
    let (mut ties_a, mut ties_b) = (0i64, 0i64);
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let sa = if da.abs() < 1e-12 {
                0
            } else {
                da.signum() as i64
            };
            let sb = if db.abs() < 1e-12 {
                0
            } else {
                db.signum() as i64
            };
            match (sa, sb) {
                (0, 0) => {}
                (0, _) => ties_a += 1,
                (_, 0) => ties_b += 1,
                (x, y) if x == y => concordant += 1,
                _ => discordant += 1,
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_a) as f64) * ((n0 - ties_b) as f64)).sqrt();
    if denom == 0.0 {
        // One of the vectors is constant: ranking is undefined; report 0.
        0.0
    } else {
        (concordant - discordant) as f64 / denom
    }
}

/// Fraction of the exact top-`k` recovered by the estimate's top-`k`
/// (set overlap, order-insensitive) — the "did we find the hubs" measure.
///
/// # Panics
///
/// Panics if the slices differ in length or `k` is 0 or exceeds the
/// length.
///
/// # Examples
///
/// ```
/// use bc_brandes::ranking::top_k_overlap;
///
/// let exact = [9.0, 7.0, 1.0, 0.0];
/// let est = [8.0, 9.5, 0.5, 2.0]; // top-2 = {1, 0} — same set
/// assert_eq!(top_k_overlap(&exact, &est, 2), 1.0);
/// assert_eq!(top_k_overlap(&exact, &est, 3), 2.0 / 3.0);
/// ```
pub fn top_k_overlap(exact: &[f64], estimate: &[f64], k: usize) -> f64 {
    assert_eq!(exact.len(), estimate.len(), "vectors must match");
    assert!(k >= 1 && k <= exact.len(), "k out of range");
    let top = |scores: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&x, &y| scores[y].total_cmp(&scores[x]));
        idx.truncate(k);
        idx
    };
    let a = top(exact);
    let b = top(estimate);
    let hits = a.iter().filter(|v| b.contains(v)).count();
    hits as f64 / k as f64
}

/// Deterministic rank index over a score vector: node ids ordered by
/// score descending, ties broken by ascending id. This is the index the
/// query server's snapshots carry, so its order must be total and
/// reproducible: comparisons use [`f64::total_cmp`], which imposes a
/// total order even on NaN and signed zeros — ranking never panics and
/// never depends on comparison quirks.
///
/// # Examples
///
/// ```
/// use bc_brandes::ranking::rank_index;
///
/// assert_eq!(rank_index(&[1.0, 9.0, 1.0, 4.0]), vec![1, 3, 0, 2]);
/// assert!(rank_index(&[]).is_empty());
/// ```
pub fn rank_index(scores: &[f64]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    idx
}

/// Top-`k` `(node, score)` pairs from a precomputed [`rank_index`].
/// `k` larger than the node count returns every node; `k = 0` returns
/// nothing. Never panics.
///
/// # Examples
///
/// ```
/// use bc_brandes::ranking::{rank_index, top_k};
///
/// let scores = [0.5, 3.0, 2.0];
/// let rank = rank_index(&scores);
/// assert_eq!(top_k(&scores, &rank, 2), vec![(1, 3.0), (2, 2.0)]);
/// assert_eq!(top_k(&scores, &rank, 99).len(), 3);
/// ```
pub fn top_k(scores: &[f64], rank: &[u32], k: usize) -> Vec<(u32, f64)> {
    rank.iter()
        .take(k)
        .map(|&v| (v, scores[v as usize]))
        .collect()
}

/// Nearest-rank percentile of a score vector via its [`rank_index`]:
/// the smallest score `x` such that at least `p`% of the nodes score
/// `<= x`. `p = 0` yields the minimum, `p = 100` the maximum. Returns
/// `None` for an empty vector or `p` outside `[0, 100]` (including NaN)
/// — the caller decides how to report the domain error.
///
/// # Examples
///
/// ```
/// use bc_brandes::ranking::{percentile, rank_index};
///
/// let scores = [4.0, 1.0, 3.0, 2.0];
/// let rank = rank_index(&scores);
/// assert_eq!(percentile(&scores, &rank, 50.0), Some(2.0));
/// assert_eq!(percentile(&scores, &rank, 100.0), Some(4.0));
/// assert_eq!(percentile(&[], &[], 50.0), None);
/// ```
pub fn percentile(scores: &[f64], rank: &[u32], p: f64) -> Option<f64> {
    let n = rank.len();
    if n == 0 || !(0.0..=100.0).contains(&p) {
        return None;
    }
    // Nearest rank in the ascending order; `rank` is descending, so the
    // ascending i-th (1-based) element is rank[n - i].
    let i = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    Some(scores[rank[n - i] as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_perfect_and_reversed() {
        let a = [0.5, 2.0, 9.0, 4.0];
        let rev: Vec<f64> = a.iter().map(|v| -v).collect();
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &rev), -1.0);
    }

    #[test]
    fn tau_partial() {
        // One swap among 4 items: τ = (5 − 1) / 6.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 2.0, 4.0, 3.0];
        let tau = kendall_tau(&a, &b);
        assert!((tau - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn tau_with_ties() {
        let a = [1.0, 1.0, 2.0];
        let b = [1.0, 2.0, 3.0];
        let tau = kendall_tau(&a, &b);
        assert!(tau > 0.0 && tau < 1.0);
        // Constant vector → undefined → 0.
        assert_eq!(kendall_tau(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn tau_invariant_to_monotone_transform() {
        let a = [0.1, 5.0, 2.0, 7.0, 3.3];
        let squashed: Vec<f64> = a.iter().map(|v| f64::ln_1p(*v)).collect();
        assert_eq!(kendall_tau(&a, &squashed), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn tau_length_mismatch() {
        let _ = kendall_tau(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn overlap_basics() {
        let exact = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(top_k_overlap(&exact, &exact, 3), 1.0);
        let shuffled = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(top_k_overlap(&exact, &shuffled, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn overlap_bad_k() {
        let _ = top_k_overlap(&[1.0], &[1.0], 2);
    }

    #[test]
    fn rank_index_breaks_ties_by_id() {
        // Three-way tie at 2.0: ids must come out ascending.
        let r = rank_index(&[2.0, 5.0, 2.0, 2.0, 7.0]);
        assert_eq!(r, vec![4, 1, 0, 2, 3]);
    }

    #[test]
    fn rank_index_empty_and_single() {
        assert!(rank_index(&[]).is_empty());
        assert_eq!(rank_index(&[0.0]), vec![0]);
    }

    #[test]
    fn rank_index_total_order_on_nan_and_zeros() {
        // total_cmp ranks NaN above +inf and -0.0 below +0.0: the exact
        // placement matters less than that the order is total, stable
        // across calls, and a permutation — no panic, no lost nodes.
        let scores = [f64::NAN, 0.0, -0.0, f64::INFINITY, -1.0];
        let r = rank_index(&scores);
        let mut sorted = r.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert_eq!(r, rank_index(&scores));
        assert_eq!(r[0], 0, "NaN sorts first under descending total_cmp");
        // +0.0 ranks above -0.0, and both above -1.0.
        let pos_zero = r.iter().position(|&v| v == 1).unwrap();
        let neg_zero = r.iter().position(|&v| v == 2).unwrap();
        let minus_one = r.iter().position(|&v| v == 4).unwrap();
        assert!(pos_zero < neg_zero && neg_zero < minus_one);
    }

    #[test]
    fn top_k_edge_cases() {
        let scores = [1.0, 3.0, 3.0];
        let rank = rank_index(&scores);
        // Ties: id order within the tie.
        assert_eq!(top_k(&scores, &rank, 2), vec![(1, 3.0), (2, 3.0)]);
        // k > n truncates to n; k = 0 is empty; empty graph is empty.
        assert_eq!(top_k(&scores, &rank, 10).len(), 3);
        assert!(top_k(&scores, &rank, 0).is_empty());
        assert!(top_k(&[], &[], 5).is_empty());
    }

    #[test]
    fn percentile_nearest_rank_contract() {
        let scores = [10.0, 40.0, 20.0, 30.0];
        let rank = rank_index(&scores);
        assert_eq!(percentile(&scores, &rank, 0.0), Some(10.0));
        assert_eq!(percentile(&scores, &rank, 25.0), Some(10.0));
        assert_eq!(percentile(&scores, &rank, 26.0), Some(20.0));
        assert_eq!(percentile(&scores, &rank, 50.0), Some(20.0));
        assert_eq!(percentile(&scores, &rank, 75.0), Some(30.0));
        assert_eq!(percentile(&scores, &rank, 100.0), Some(40.0));
    }

    #[test]
    fn percentile_ties_and_singleton() {
        let scores = [5.0, 5.0, 5.0];
        let rank = rank_index(&scores);
        for p in [0.0, 33.0, 66.0, 100.0] {
            assert_eq!(percentile(&scores, &rank, p), Some(5.0));
        }
        assert_eq!(percentile(&[7.0], &[0], 50.0), Some(7.0));
    }

    #[test]
    fn percentile_domain_errors() {
        assert_eq!(percentile(&[], &[], 50.0), None);
        let scores = [1.0, 2.0];
        let rank = rank_index(&scores);
        assert_eq!(percentile(&scores, &rank, -0.1), None);
        assert_eq!(percentile(&scores, &rank, 100.1), None);
        assert_eq!(percentile(&scores, &rank, f64::NAN), None);
    }
}
