//! Centralized centrality baselines for the distributed betweenness
//! reproduction.
//!
//! Implements the paper's Algorithm 1 (Brandes) in three arithmetics —
//! [`betweenness_f64`], exact-rational [`betweenness_exact`], and the
//! paper's Section VI floating point [`betweenness_ceilfloat`] — plus an
//! independent `Θ(N³)` oracle ([`betweenness_naive`]), the companion
//! centralities of Eqs. (1)–(3) ([`closeness_centrality`],
//! [`graph_centrality`], [`stress_centrality`]), and the sampling
//! approximations the related-work section discusses ([`approx`]).
//!
//! # Example
//!
//! ```
//! use bc_brandes::betweenness_f64;
//! use bc_graph::generators;
//!
//! // The paper's Figure 1 example: C_B(v2) = 7/2.
//! let cb = betweenness_f64(&generators::paper_figure1());
//! assert_eq!(cb[1], 3.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
mod betweenness;
mod centrality;
pub mod ranking;
pub mod weighted;

pub use betweenness::{
    betweenness_ceilfloat, betweenness_exact, betweenness_f64, betweenness_naive, dependencies_from,
};
pub use centrality::{closeness_centrality, graph_centrality, stress_centrality};
