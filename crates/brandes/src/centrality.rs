//! The other shortest-path centralities of the paper's Section I:
//! closeness (Eq. 1), graph centrality (Eq. 2), and stress centrality
//! (Eq. 3).

use bc_graph::algo::{bfs, sigma_f64, UNREACHABLE};
use bc_graph::Graph;

/// Closeness centrality `C_C(v) = 1 / Σ_t d(v, t)` (Eq. 1).
///
/// Distances to unreachable nodes are skipped; a node with no reachable
/// peers gets centrality `0`.
///
/// ```
/// use bc_brandes::closeness_centrality;
/// use bc_graph::generators;
///
/// let cc = closeness_centrality(&generators::star(5));
/// assert_eq!(cc[0], 1.0 / 4.0); // hub: distance 1 to each leaf
/// ```
pub fn closeness_centrality(g: &Graph) -> Vec<f64> {
    g.nodes()
        .map(|v| {
            let dag = bfs(g, v);
            let total: u64 = dag
                .dist
                .iter()
                .filter(|&&d| d != UNREACHABLE)
                .map(|&d| d as u64)
                .sum();
            if total == 0 {
                0.0
            } else {
                1.0 / total as f64
            }
        })
        .collect()
}

/// Graph centrality `C_G(v) = 1 / max_t d(v, t)` (Eq. 2), over reachable
/// `t`; isolated nodes get `0`.
pub fn graph_centrality(g: &Graph) -> Vec<f64> {
    g.nodes()
        .map(|v| {
            let ecc = bfs(g, v).eccentricity();
            if ecc == 0 {
                0.0
            } else {
                1.0 / ecc as f64
            }
        })
        .collect()
}

/// Stress centrality `C_S(v) = Σ_{s≠t≠v} σ_st(v)` (Eq. 3), counting each
/// unordered pair once (consistent with the betweenness convention).
///
/// ```
/// use bc_brandes::stress_centrality;
/// use bc_graph::generators;
///
/// // On a path every pair contributes exactly one path.
/// let cs = stress_centrality(&generators::path(4));
/// assert_eq!(cs, vec![0.0, 2.0, 2.0, 0.0]);
/// ```
///
/// Uses the pairwise formulation `σ_st(v) = σ_sv · σ_vt` when
/// `d(s,v) + d(v,t) = d(s,t)`; `Θ(N³)` time, intended for the experiment
/// scales of this workspace.
pub fn stress_centrality(g: &Graph) -> Vec<f64> {
    let n = g.n();
    let dags: Vec<_> = g.nodes().map(|s| bfs(g, s)).collect();
    let sigmas: Vec<Vec<f64>> = dags.iter().map(sigma_f64).collect();
    let mut cs = vec![0.0f64; n];
    for s in 0..n {
        for t in (s + 1)..n {
            if dags[s].dist[t] == UNREACHABLE {
                continue;
            }
            let dst = dags[s].dist[t];
            for v in 0..n {
                if v == s || v == t {
                    continue;
                }
                let (dsv, dvt) = (dags[s].dist[v], dags[v].dist[t]);
                if dsv != UNREACHABLE && dvt != UNREACHABLE && dsv + dvt == dst {
                    cs[v] += sigmas[s][v] * sigmas[v][t];
                }
            }
        }
    }
    cs
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::generators;

    #[test]
    fn closeness_on_path() {
        let g = generators::path(5);
        let cc = closeness_centrality(&g);
        // Center: distances 2+1+1+2 = 6; end: 1+2+3+4 = 10.
        assert_eq!(cc[2], 1.0 / 6.0);
        assert_eq!(cc[0], 1.0 / 10.0);
        assert!(cc[2] > cc[1] && cc[1] > cc[0]);
    }

    #[test]
    fn closeness_star_hub_max() {
        let cc = closeness_centrality(&generators::star(8));
        assert_eq!(cc[0], 1.0 / 7.0);
        for &leaf in &cc[1..8] {
            assert_eq!(leaf, 1.0 / (1 + 2 * 6) as f64);
        }
    }

    #[test]
    fn graph_centrality_path() {
        let cg = graph_centrality(&generators::path(5));
        assert_eq!(cg[2], 0.5); // eccentricity 2
        assert_eq!(cg[0], 0.25); // eccentricity 4
    }

    #[test]
    fn stress_path_matches_bc() {
        // On trees σ_st ∈ {0,1}, so stress equals (unnormalized) BC.
        let g = generators::path(7);
        let cs = stress_centrality(&g);
        let cb = crate::betweenness_f64(&g);
        assert_eq!(cs, cb);
    }

    #[test]
    fn stress_counts_multiplicity() {
        // Diamond 0-1, 0-2, 1-3, 2-3 plus tail 3-4:
        // pair (0,4): d=3, two shortest paths, both via 3: σ_04(3)=2.
        let g = bc_graph::Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let cs = stress_centrality(&g);
        // Node 3: pairs (0,4): 2 paths; (1,4): 1; (2,4): 1; (1,2): one of
        // the two shortest 1-3-2 → 1. Total 5.
        assert_eq!(cs[3], 5.0);
        // Node 1: pairs (0,3): σ=1 of 2 paths → counts 1; (0,4): via 1 then 3 → 1.
        assert_eq!(cs[1], 2.0);
    }

    #[test]
    fn isolated_nodes_zero() {
        let g = bc_graph::Graph::from_edges(3, [(0, 1)]).unwrap();
        assert_eq!(closeness_centrality(&g)[2], 0.0);
        assert_eq!(graph_centrality(&g)[2], 0.0);
        assert_eq!(stress_centrality(&g)[2], 0.0);
    }

    #[test]
    fn complete_graph_uniform() {
        let g = generators::complete(6);
        let cc = closeness_centrality(&g);
        assert!(cc.iter().all(|&c| c == 1.0 / 5.0));
        let cg = graph_centrality(&g);
        assert!(cg.iter().all(|&c| c == 1.0));
        let cs = stress_centrality(&g);
        assert!(cs.iter().all(|&c| c == 0.0));
    }
}
