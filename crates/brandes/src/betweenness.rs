//! Centralized betweenness centrality algorithms (Algorithm 1 of the paper
//! and reference variants).
//!
//! All functions use the paper's undirected convention: each unordered pair
//! `{s, t}` contributes once, i.e. the accumulated directed dependencies are
//! halved (the paper's Figure 1 computes `C_B(v2) = (Σ_s δ_s·(v2)) / 2 =
//! 7/2`).

use bc_graph::algo::{bfs, sigma_big, sigma_f64};
use bc_graph::{Graph, NodeId};
use bc_numeric::{BigRational, BigUint, CeilFloat, FpParams};

/// Brandes' algorithm in `f64` arithmetic: `O(NM)` time, `O(N + M)` space
/// per source.
///
/// This is the exact Algorithm 1 of the paper: one BFS per source
/// (counting, Eq. 6), then dependency accumulation in non-increasing
/// distance order (Eq. 9).
///
/// # Examples
///
/// ```
/// use bc_brandes::betweenness_f64;
/// use bc_graph::generators;
///
/// // Figure 1 of the paper: C_B(v2) = 7/2.
/// let g = generators::paper_figure1();
/// let cb = betweenness_f64(&g);
/// assert_eq!(cb[1], 3.5);
/// ```
pub fn betweenness_f64(g: &Graph) -> Vec<f64> {
    let n = g.n();
    let mut cb = vec![0.0f64; n];
    for s in g.nodes() {
        let dag = bfs(g, s);
        let sigma = sigma_f64(&dag);
        let mut delta = vec![0.0f64; n];
        for &w in dag.order.iter().rev() {
            let coeff = (1.0 + delta[w as usize]) / sigma[w as usize];
            for &v in &dag.preds[w as usize] {
                delta[v as usize] += sigma[v as usize] * coeff;
            }
            if w != s {
                cb[w as usize] += delta[w as usize];
            }
        }
    }
    for v in &mut cb {
        *v /= 2.0;
    }
    cb
}

/// Brandes' algorithm in exact rational arithmetic: ground truth for the
/// floating-point error experiments (E4). Exponentially slower constants
/// than [`betweenness_f64`]; intended for graphs up to a few hundred nodes.
///
/// ```
/// use bc_brandes::betweenness_exact;
/// use bc_graph::generators;
/// use bc_numeric::BigRational;
///
/// let exact = betweenness_exact(&generators::paper_figure1());
/// assert_eq!(exact[1], BigRational::from_ratio_u64(7, 2));
/// ```
pub fn betweenness_exact(g: &Graph) -> Vec<BigRational> {
    let n = g.n();
    let mut cb = vec![BigRational::zero(); n];
    for s in g.nodes() {
        let dag = bfs(g, s);
        let sigma: Vec<BigUint> = sigma_big(&dag);
        let mut delta = vec![BigRational::zero(); n];
        for &w in dag.order.iter().rev() {
            let coeff = &(&BigRational::one() + &delta[w as usize])
                / &BigRational::from_biguint(sigma[w as usize].clone());
            for &v in &dag.preds[w as usize] {
                let term = &BigRational::from_biguint(sigma[v as usize].clone()) * &coeff;
                delta[v as usize] += &term;
            }
            if w != s {
                let d = delta[w as usize].clone();
                cb[w as usize] += &d;
            }
        }
    }
    let half = BigRational::from_ratio_u64(1, 2);
    cb.iter().map(|v| v * &half).collect()
}

/// Brandes' algorithm with every σ and ψ value carried in the paper's
/// [`CeilFloat`] arithmetic (Section VI), including the ψ-rewriting of
/// Eq. (14): `ψ_s(v) = Σ_{w: v ∈ P_s(w)} (1/σ_sw + ψ_s(w))`, with the final
/// `δ_s·(v) = ψ_s(v) · σ_sv`.
///
/// This isolates the *arithmetic* error of the distributed algorithm from
/// its *distribution*, and is the oracle the distributed implementation is
/// compared against bit-for-bit.
pub fn betweenness_ceilfloat(g: &Graph, params: FpParams) -> Vec<f64> {
    let n = g.n();
    let mut cb = vec![0.0f64; n];
    for s in g.nodes() {
        let dag = bfs(g, s);
        // σ in CeilFloat, accumulated exactly as the counting phase does:
        // sums of already-rounded predecessor values.
        let mut sigma = vec![CeilFloat::zero(params); n];
        sigma[s as usize] = CeilFloat::one(params);
        for &v in &dag.order {
            if v == s {
                continue;
            }
            let mut acc = CeilFloat::zero(params);
            for &w in &dag.preds[v as usize] {
                acc += sigma[w as usize];
            }
            sigma[v as usize] = acc;
        }
        // ψ accumulation in reverse order (Eq. 14).
        let mut psi = vec![CeilFloat::zero(params); n];
        for &w in dag.order.iter().rev() {
            if w == s {
                continue;
            }
            let contribution = sigma[w as usize].recip() + psi[w as usize];
            for &v in &dag.preds[w as usize] {
                psi[v as usize] += contribution;
            }
            // δ_s·(w) = ψ_s(w) · σ_sw (Section VI-C).
            cb[w as usize] += (psi[w as usize] * sigma[w as usize]).to_f64();
        }
    }
    for v in &mut cb {
        *v /= 2.0;
    }
    cb
}

/// Naive all-pairs betweenness: for every pair `(s, t)` and middle node
/// `v`, `σ_st(v) = σ_sv · σ_vt` when `d(s,v) + d(v,t) = d(s,t)`.
/// `Θ(N³)` time and `Θ(N²)` space — an independent oracle with different
/// failure modes from Brandes' recursion (in the spirit of the pre-Brandes
/// algorithms the paper cites as `O(N³)`).
///
/// ```
/// use bc_brandes::{betweenness_f64, betweenness_naive};
/// use bc_graph::generators;
///
/// let g = generators::grid(3, 4);
/// let (a, b) = (betweenness_naive(&g), betweenness_f64(&g));
/// assert!(a.iter().zip(&b).all(|(x, y)| (x - y).abs() < 1e-9));
/// ```
pub fn betweenness_naive(g: &Graph) -> Vec<f64> {
    let n = g.n();
    let dags: Vec<_> = g.nodes().map(|s| bfs(g, s)).collect();
    let sigmas: Vec<Vec<f64>> = dags.iter().map(sigma_f64).collect();
    let mut cb = vec![0.0f64; n];
    for s in 0..n {
        for t in 0..n {
            if s == t || dags[s].dist[t] == bc_graph::algo::UNREACHABLE {
                continue;
            }
            let dst = dags[s].dist[t];
            let sigma_st = sigmas[s][t];
            for v in 0..n {
                if v == s || v == t {
                    continue;
                }
                let (dsv, dvt) = (dags[s].dist[v], dags[v].dist[t]);
                if dsv != bc_graph::algo::UNREACHABLE
                    && dvt != bc_graph::algo::UNREACHABLE
                    && dsv + dvt == dst
                {
                    cb[v] += sigmas[s][v] * sigmas[v][t] / sigma_st;
                }
            }
        }
    }
    // Ordered pairs were counted; halve for the undirected convention.
    for v in &mut cb {
        *v /= 2.0;
    }
    cb
}

/// Per-source dependency vector `δ_s·(v)` for all `v` (Eq. 8–9), in `f64`.
/// Exposed for the sampling approximations and for tests of per-source
/// quantities like the worked example of Figure 1.
///
/// ```
/// use bc_brandes::dependencies_from;
/// use bc_graph::generators;
///
/// // Section VII worked value: δ_v1·(v2) = 3.
/// let dep = dependencies_from(&generators::paper_figure1(), 0);
/// assert_eq!(dep[1], 3.0);
/// ```
pub fn dependencies_from(g: &Graph, s: NodeId) -> Vec<f64> {
    let dag = bfs(g, s);
    let sigma = sigma_f64(&dag);
    let n = g.n();
    let mut delta = vec![0.0f64; n];
    for &w in dag.order.iter().rev() {
        let coeff = (1.0 + delta[w as usize]) / sigma[w as usize];
        for &v in &dag.preds[w as usize] {
            delta[v as usize] += sigma[v as usize] * coeff;
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::generators;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "index {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn figure1_values() {
        let g = generators::paper_figure1();
        let cb = betweenness_f64(&g);
        // Paper: C_B(v2) = 7/2. By symmetry of the example graph the other
        // nodes: v1 is a leaf → 0; v3 = v5 by symmetry; v4 sits between
        // v3/v5 pairs.
        assert_eq!(cb[0], 0.0);
        assert_eq!(cb[1], 3.5);
        assert_eq!(cb[2], cb[4]);
        // δ_{v1·}(v2) = 3 per the worked example.
        let dep = dependencies_from(&g, 0);
        assert_eq!(dep[1], 3.0);
        // ψ_{v1}(v3) = ψ_{v1}(v5) = 1/2 ⇒ δ_{v1·}(v3) = ψ·σ = 1/2.
        assert_eq!(dep[2], 0.5);
        assert_eq!(dep[4], 0.5);
    }

    #[test]
    fn path_graph_closed_form() {
        // On a path of n nodes, CB(v_i) = i·(n-1-i) for 0-indexed i.
        let n = 12;
        let g = generators::path(n);
        let cb = betweenness_f64(&g);
        for (i, &b) in cb.iter().enumerate() {
            assert_eq!(b, (i * (n - 1 - i)) as f64, "node {i}");
        }
    }

    #[test]
    fn star_graph_closed_form() {
        let n = 9;
        let g = generators::star(n);
        let cb = betweenness_f64(&g);
        assert_eq!(cb[0], ((n - 1) * (n - 2) / 2) as f64);
        for &leaf in &cb[1..] {
            assert_eq!(leaf, 0.0);
        }
    }

    #[test]
    fn complete_graph_zero() {
        let cb = betweenness_f64(&generators::complete(7));
        assert!(cb.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cycle_graph_uniform() {
        // Even cycle n: every node has the same BC by symmetry.
        let cb = betweenness_f64(&generators::cycle(8));
        for v in &cb {
            assert!((v - cb[0]).abs() < 1e-12);
        }
        assert!(cb[0] > 0.0);
    }

    #[test]
    fn naive_matches_brandes() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_connected(24, 0.12, seed);
            assert_close(&betweenness_naive(&g), &betweenness_f64(&g), 1e-9);
        }
    }

    #[test]
    fn exact_matches_f64_on_small_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi_connected(18, 0.15, seed);
            let exact: Vec<f64> = betweenness_exact(&g).iter().map(|v| v.to_f64()).collect();
            assert_close(&exact, &betweenness_f64(&g), 1e-9);
        }
    }

    #[test]
    fn exact_figure1() {
        let g = generators::paper_figure1();
        let exact = betweenness_exact(&g);
        assert_eq!(exact[1], BigRational::from_ratio_u64(7, 2));
    }

    #[test]
    fn ceilfloat_within_theorem1_bound() {
        let g = generators::erdos_renyi_connected(30, 0.12, 5);
        let params = FpParams::for_graph_size(g.n());
        let approx = betweenness_ceilfloat(&g, params);
        let exact = betweenness_f64(&g);
        // Theorem 1: relative error O(η) with η = O(2^-L); allow the
        // diameter-length accumulation constant.
        let eta = 64.0 * g.n() as f64 * params.lemma1_bound();
        for (v, (a, e)) in approx.iter().zip(&exact).enumerate() {
            if *e > 0.0 {
                assert!((a - e).abs() / e <= eta, "node {v}: {a} vs {e}");
            } else {
                assert!(*a <= eta, "node {v}: expected ~0, got {a}");
            }
        }
    }

    #[test]
    fn ceilfloat_error_shrinks_with_l() {
        let g = generators::barabasi_albert(40, 2, 3);
        let exact = betweenness_f64(&g);
        let err = |l: u32| {
            let approx = betweenness_ceilfloat(&g, FpParams::new(l, bc_numeric::Rounding::Ceil));
            approx
                .iter()
                .zip(&exact)
                .filter(|(_, e)| **e > 1.0)
                .map(|(a, e)| (a - e).abs() / e)
                .fold(0.0f64, f64::max)
        };
        let coarse = err(6);
        let fine = err(20);
        assert!(
            fine < coarse / 16.0,
            "error must fall ~2^-L: L=6 → {coarse}, L=20 → {fine}"
        );
    }

    #[test]
    fn disconnected_graph_per_component() {
        // Two disjoint paths of 3: middles have BC 1 each.
        let g = bc_graph::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let cb = betweenness_f64(&g);
        assert_eq!(cb, vec![0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
        let naive = betweenness_naive(&g);
        assert_eq!(naive, cb);
    }

    #[test]
    fn barbell_bridge_dominates() {
        let g = generators::barbell(5, 3);
        let cb = betweenness_f64(&g);
        // Middle bridge node (index 6 = 5 + 1) has the highest centrality.
        let max_idx = (0..g.n()).max_by(|&a, &b| cb[a].total_cmp(&cb[b])).unwrap();
        assert_eq!(max_idx, 6);
    }

    #[test]
    fn single_node_and_edge() {
        assert_eq!(betweenness_f64(&generators::path(1)), vec![0.0]);
        assert_eq!(betweenness_f64(&generators::path(2)), vec![0.0, 0.0]);
    }
}
