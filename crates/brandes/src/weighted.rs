//! Weighted betweenness centrality (Dijkstra-based Brandes) — the
//! centralized oracle for the paper's future-work extension to weighted
//! graphs, and the subdivision cross-check.

use bc_graph::weighted::{WeightedGraph, WeightedSp};
use bc_graph::NodeId;

/// σ counts over a weighted shortest-path structure.
fn weighted_sigma(sp: &WeightedSp) -> Vec<f64> {
    let mut sigma = vec![0.0f64; sp.dist.len()];
    sigma[sp.source as usize] = 1.0;
    for &v in &sp.order {
        if v == sp.source {
            continue;
        }
        sigma[v as usize] = sp.preds[v as usize]
            .iter()
            .map(|&w| sigma[w as usize])
            .sum();
    }
    sigma
}

/// Brandes' algorithm on positive-integer-weighted graphs:
/// `O(NM + N² log N)` time (the weighted bound the paper quotes in
/// Section II). Unordered-pair convention, like the unweighted functions.
///
/// # Examples
///
/// ```
/// use bc_brandes::weighted::betweenness_weighted_f64;
/// use bc_graph::weighted::WeightedGraph;
///
/// // A weighted path 0 -2- 1 -3- 2: node 1 lies between 0 and 2.
/// let wg = WeightedGraph::from_edges(3, [(0, 1, 2), (1, 2, 3)])?;
/// assert_eq!(betweenness_weighted_f64(&wg), vec![0.0, 1.0, 0.0]);
/// # Ok::<(), bc_graph::GraphError>(())
/// ```
pub fn betweenness_weighted_f64(wg: &WeightedGraph) -> Vec<f64> {
    let n = wg.n();
    let mut cb = vec![0.0f64; n];
    for s in 0..n as NodeId {
        let sp = wg.dijkstra(s);
        let sigma = weighted_sigma(&sp);
        let mut delta = vec![0.0f64; n];
        for &w in sp.order.iter().rev() {
            let coeff = (1.0 + delta[w as usize]) / sigma[w as usize];
            for &v in &sp.preds[w as usize] {
                delta[v as usize] += sigma[v as usize] * coeff;
            }
            if w != s {
                cb[w as usize] += delta[w as usize];
            }
        }
    }
    for v in &mut cb {
        *v /= 2.0;
    }
    cb
}

/// Weighted betweenness of the *original* nodes computed on the
/// subdivision: Brandes on the unit-edge graph restricted to real nodes as
/// sources and targets. Exact for integer weights; this is the centralized
/// version of what the distributed algorithm does with
/// `SourceSelection::Explicit` + a target mask.
pub fn betweenness_weighted_via_subdivision(wg: &WeightedGraph) -> Vec<f64> {
    let sub = wg.subdivide();
    let g = &sub.graph;
    let n = g.n();
    let mut cb = vec![0.0f64; n];
    for s in 0..sub.original_n as NodeId {
        let dag = bc_graph::algo::bfs(g, s);
        let sigma = bc_graph::algo::sigma_f64(&dag);
        let mut delta = vec![0.0f64; n];
        for &w in dag.order.iter().rev() {
            // Only real nodes count as targets: the `1` of Eq. (9) becomes
            // an indicator.
            let own = if sub.real[w as usize] { 1.0 } else { 0.0 };
            let coeff = (own + delta[w as usize]) / sigma[w as usize];
            for &v in &dag.preds[w as usize] {
                delta[v as usize] += sigma[v as usize] * coeff;
            }
            if w != s {
                cb[w as usize] += delta[w as usize];
            }
        }
    }
    cb.truncate(sub.original_n);
    for v in &mut cb {
        *v /= 2.0;
    }
    cb
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::weighted::random_weighted;

    #[test]
    fn weighted_path_closed_form() {
        // Path with mixed weights: interior nodes still have i·(n-1-i).
        let wg =
            WeightedGraph::from_edges(5, [(0, 1, 3), (1, 2, 1), (2, 3, 7), (3, 4, 2)]).unwrap();
        let cb = betweenness_weighted_f64(&wg);
        assert_eq!(cb, vec![0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn weights_change_routing() {
        // Triangle where the heavy edge is bypassed through node 1.
        let wg = WeightedGraph::from_edges(3, [(0, 1, 1), (1, 2, 1), (0, 2, 5)]).unwrap();
        let cb = betweenness_weighted_f64(&wg);
        assert_eq!(cb, vec![0.0, 1.0, 0.0]);
        // With an equal-cost direct edge, node 1 only carries half.
        let wg = WeightedGraph::from_edges(3, [(0, 1, 1), (1, 2, 1), (0, 2, 2)]).unwrap();
        let cb = betweenness_weighted_f64(&wg);
        assert_eq!(cb, vec![0.0, 0.5, 0.0]);
    }

    #[test]
    fn unit_weights_match_unweighted_brandes() {
        let g = bc_graph::generators::erdos_renyi_connected(24, 0.12, 3);
        let wg = WeightedGraph::from_edges(24, g.edges().map(|(u, v)| (u, v, 1))).unwrap();
        let weighted = betweenness_weighted_f64(&wg);
        let unweighted = crate::betweenness_f64(&g);
        for (a, b) in weighted.iter().zip(&unweighted) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn subdivision_route_matches_dijkstra_brandes() {
        for seed in 0..4 {
            let wg = random_weighted(16, 0.15, 4, seed);
            let direct = betweenness_weighted_f64(&wg);
            let via_sub = betweenness_weighted_via_subdivision(&wg);
            for (v, (a, b)) in via_sub.iter().zip(&direct).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + b),
                    "seed {seed} node {v}: {a} vs {b}"
                );
            }
        }
    }
}
