//! Sampling-based betweenness approximations (Section II of the paper):
//! the Brandes–Pich random-source estimator and the Bader et al. adaptive
//! sampler for high-centrality nodes.
//!
//! These are the centralized approximations the paper contrasts with its
//! exact distributed algorithm; they appear in the comparison experiment
//! E9 and as reference points in the examples.

use crate::betweenness::dependencies_from;
use bc_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Brandes–Pich estimator: samples `k` sources uniformly with replacement
/// and extrapolates `C_B(v) ≈ (N / k) · Σ_{s ∈ S} δ_s·(v) / 2`.
///
/// With `k = Ω(log N / ε²)` samples the estimates are within `ε·N(N-1)/2`
/// of the truth with high probability (Brandes & Pich 2007).
///
/// # Panics
///
/// Panics if `samples == 0` or the graph is empty.
pub fn brandes_pich(g: &Graph, samples: usize, seed: u64) -> Vec<f64> {
    assert!(samples > 0, "need at least one sample");
    assert!(g.n() > 0, "empty graph");
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = g.n();
    let mut acc = vec![0.0f64; n];
    for _ in 0..samples {
        let s = rng.gen_range(0..n) as NodeId;
        for (v, d) in dependencies_from(g, s).into_iter().enumerate() {
            if v != s as usize {
                acc[v] += d;
            }
        }
    }
    let scale = n as f64 / samples as f64 / 2.0;
    acc.iter_mut().for_each(|v| *v *= scale);
    acc
}

/// Result of [`bader_adaptive`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveEstimate {
    /// Estimated betweenness of the target node.
    pub estimate: f64,
    /// Sources actually sampled before the stopping rule fired.
    pub samples_used: usize,
}

/// Bader et al. adaptive sampling: estimates the betweenness of a single
/// node `v`, sampling sources until the accumulated dependency exceeds
/// `c · n`, then extrapolating. Effective for high-centrality nodes, which
/// stop early.
///
/// # Panics
///
/// Panics if the graph is empty or `v` is out of range.
pub fn bader_adaptive(g: &Graph, v: NodeId, c: f64, seed: u64) -> AdaptiveEstimate {
    let n = g.n();
    assert!(n > 0, "empty graph");
    assert!((v as usize) < n, "target node out of range");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut total = 0.0f64;
    let mut k = 0usize;
    let max_samples = n.max(1);
    while k < max_samples {
        let s = rng.gen_range(0..n) as NodeId;
        k += 1;
        if s != v {
            total += dependencies_from(g, s)[v as usize];
        }
        if total >= c * n as f64 {
            break;
        }
    }
    AdaptiveEstimate {
        estimate: n as f64 * total / k as f64 / 2.0,
        samples_used: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::betweenness_f64;
    use bc_graph::generators;

    #[test]
    fn brandes_pich_exact_when_sampling_everything() {
        // With samples == n and a path graph, sampling with replacement is
        // noisy, but the estimator is unbiased: averaging many runs must
        // approach the truth.
        let g = generators::path(10);
        let exact = betweenness_f64(&g);
        let runs = 400;
        let mut mean = vec![0.0; g.n()];
        for seed in 0..runs {
            for (m, e) in mean.iter_mut().zip(brandes_pich(&g, 10, seed)) {
                *m += e / runs as f64;
            }
        }
        for (v, (m, e)) in mean.iter().zip(&exact).enumerate() {
            assert!(
                (m - e).abs() <= 0.15 * (1.0 + e),
                "node {v}: mean {m} vs exact {e}"
            );
        }
    }

    #[test]
    fn brandes_pich_ranks_barbell_bridge_high() {
        let g = generators::barbell(6, 3);
        let est = brandes_pich(&g, g.n(), 7);
        let exact = betweenness_f64(&g);
        let top_est = (0..g.n())
            .max_by(|&a, &b| est[a].total_cmp(&est[b]))
            .unwrap();
        let top_exact = (0..g.n())
            .max_by(|&a, &b| exact[a].total_cmp(&exact[b]))
            .unwrap();
        // Bridge nodes 6..9 dominate; the estimator finds one of them.
        assert!((6..9).contains(&top_exact));
        assert!((5..10).contains(&top_est));
    }

    #[test]
    fn bader_stops_early_for_central_nodes() {
        let g = generators::star(60);
        let hub = bader_adaptive(&g, 0, 2.0, 1);
        let leaf = bader_adaptive(&g, 1, 2.0, 1);
        assert!(hub.samples_used < leaf.samples_used);
        let exact = betweenness_f64(&g);
        assert!((hub.estimate - exact[0]).abs() / exact[0] < 0.5);
        assert!(leaf.estimate <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let _ = brandes_pich(&generators::path(3), 0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bader_bad_target_panics() {
        let _ = bader_adaptive(&generators::path(3), 9, 1.0, 0);
    }
}
