//! Centrality-as-a-service: a long-running query server over versioned
//! centrality snapshots with incremental recompute on graph mutations.
//!
//! This crate turns the repository's batch pipeline ("load a graph, run
//! an algorithm, print scores") into a serving runtime:
//!
//! * [`server::Server`] loads a graph, computes a
//!   [`bc_core::CentralitySnapshot`] with a pluggable
//!   [`engine::RecomputeEngine`] (incremental Brandes or any full
//!   engine, including the distributed driver), and answers ranked
//!   top-K / per-node / percentile queries over the same framed
//!   transport ([`bc_congest::wire`]) the shard mesh uses.
//! * Snapshots are immutable and versioned; a mutation
//!   (`add-edge`/`remove-edge`) triggers a background recompute that
//!   publishes a *new* version through an epoch swap
//!   ([`bc_core::SnapshotStore`]), so reads never block and never
//!   observe torn state.
//! * The incremental engine prunes recompute work to the sources a
//!   mutation can affect (two BFS passes in the old graph) and replays
//!   unaffected sources from an LRU of per-source dependency vectors
//!   ([`cache::SourceCache`]) — while staying bit-identical to the
//!   offline `distbc centrality --algorithm brandes` output, because
//!   the final fold performs the same float additions in the same
//!   order.
//!
//! The `distbc serve` and `distbc query` CLI verbs are thin wrappers
//! over [`server`] and [`proto::QueryClient`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod proto;
pub mod server;

pub use cache::SourceCache;
pub use engine::{
    affected_sources, component_count, FullRunOutput, IncrementalEngine, Mutation, RecomputeEngine,
};
pub use proto::{
    decode_requests, decode_responses, encode_requests, encode_responses, ClientError, QueryClient,
    QueryRequest, QueryResponse,
};
pub use server::{ServeError, Server, ServerConfig, ServerStats};
