//! The recompute engines behind the query server: what runs when a
//! snapshot must be (re)built.
//!
//! Two engines exist because the bit-identity contract ("the server
//! answers exactly what the offline CLI prints") constrains them
//! differently:
//!
//! * [`IncrementalEngine`] serves `--algorithm brandes`.
//!   [`bc_brandes::betweenness_f64`] is an *ascending-source fold* of
//!   per-source dependency vectors, so the engine recomputes only the
//!   sources a mutation affects (Erdős-style pruning via two BFS
//!   passes in the pre-mutation graph), replays every unaffected
//!   source's vector from an LRU cache, and folds all `n` vectors in
//!   ascending order — bit-identical to a from-scratch run by
//!   construction, because the fold performs the same float additions
//!   in the same order on the same values.
//! * [`FullRecompute`] wraps any closure producing scores from a graph
//!   (the distributed driver, in-process or over a `--connect` shard
//!   mesh, or sampling). Those protocols accumulate across sources in
//!   schedule-dependent order and are not per-source-decomposable at
//!   the bit level, so a mutation triggers a full background rerun —
//!   still bit-identical to the CLI, which does the same full run.
//!
//! # Which sources does a mutation affect?
//!
//! For an undirected, unweighted graph and an edge `{u, v}`:
//!
//! * **Insert:** source `s` is unaffected iff `d(s,u) = d(s,v)` in the
//!   old graph. An equal-level edge can never lie on a shortest path
//!   from `s`, and BFS discovery order is also unchanged (the new
//!   neighbor is already visited when scanned), so the whole
//!   shortest-path DAG — hence the dependency vector — is unchanged.
//! * **Delete:** source `s` is unaffected iff `|d(s,u) − d(s,v)| ≠ 1`
//!   in the old graph. BFS levels of adjacent nodes differ by at most
//!   one, so a removed edge either was a DAG edge for `s` (levels
//!   differ by exactly 1 → affected) or an equal-level edge (→ the DAG
//!   never used it).
//!
//! Both conditions need only two BFS passes (from `u` and from `v`;
//! `d(s,u) = d(u,s)` by symmetry), not one per source.

use crate::cache::SourceCache;
use bc_brandes::dependencies_from;
use bc_graph::algo::bfs;
use bc_graph::{Graph, GraphError, NodeId};
use std::fmt;
use std::sync::Arc;

/// A graph mutation accepted by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Insert the undirected edge `{u, v}`.
    AddEdge(NodeId, NodeId),
    /// Remove the undirected edge `{u, v}`.
    RemoveEdge(NodeId, NodeId),
}

impl Mutation {
    /// Applies the mutation to `g`, returning the successor graph.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] (duplicate edge, missing edge, self
    /// loop, out-of-range endpoint).
    pub fn apply(self, g: &Graph) -> Result<Graph, GraphError> {
        match self {
            Mutation::AddEdge(u, v) => g.add_edge(u, v),
            Mutation::RemoveEdge(u, v) => g.remove_edge(u, v),
        }
    }

    /// The edge endpoints.
    pub fn endpoints(self) -> (NodeId, NodeId) {
        match self {
            Mutation::AddEdge(u, v) | Mutation::RemoveEdge(u, v) => (u, v),
        }
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::AddEdge(u, v) => write!(f, "add-edge {u}:{v}"),
            Mutation::RemoveEdge(u, v) => write!(f, "remove-edge {u}:{v}"),
        }
    }
}

/// Number of connected components of `g` (used to reject mutations
/// that would disconnect a served graph).
pub fn component_count(g: &Graph) -> usize {
    let n = g.n();
    let mut seen = vec![false; n];
    let mut stack = Vec::new();
    let mut components = 0;
    for root in 0..n {
        if seen[root] {
            continue;
        }
        components += 1;
        seen[root] = true;
        stack.push(root as NodeId);
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
    }
    components
}

/// The sources whose dependency vectors a mutation invalidates,
/// evaluated in the *pre-mutation* graph (see the module docs for the
/// two-BFS conditions).
pub fn affected_sources(old: &Graph, m: Mutation) -> Vec<u32> {
    let (u, v) = m.endpoints();
    let du = bfs(old, u).dist;
    let dv = bfs(old, v).dist;
    let insert = matches!(m, Mutation::AddEdge(..));
    (0..old.n() as u32)
        .filter(|&s| {
            let (a, b) = (du[s as usize], dv[s as usize]);
            if insert {
                a != b
            } else {
                a.abs_diff(b) == 1
            }
        })
        .collect()
}

/// Incremental Brandes engine: owns the current graph and the source
/// cache, and rebuilds the score vector after each mutation by folding
/// per-source dependency vectors in ascending source order — the exact
/// float schedule of [`bc_brandes::betweenness_f64`].
#[derive(Debug)]
pub struct IncrementalEngine {
    graph: Graph,
    cache: SourceCache,
    /// Sources recomputed by the last `recompute` call (telemetry).
    last_recomputed: usize,
}

impl IncrementalEngine {
    /// Creates the engine over `graph` with an LRU of `cache_capacity`
    /// per-source vectors (each `n` floats; pass `graph.n()` to cache
    /// everything).
    pub fn new(graph: Graph, cache_capacity: usize) -> IncrementalEngine {
        IncrementalEngine {
            graph,
            cache: SourceCache::new(cache_capacity),
            last_recomputed: 0,
        }
    }

    /// The engine's current graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Computes the full score vector for the current graph, warming
    /// the cache. Bit-identical to `betweenness_f64(graph)`.
    pub fn scores(&mut self) -> Vec<f64> {
        self.fold()
    }

    /// Applies `m` and returns the new scores, recomputing only the
    /// affected sources and replaying the rest from cache.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] without touching engine state.
    pub fn apply(&mut self, m: Mutation) -> Result<Vec<f64>, GraphError> {
        let next = m.apply(&self.graph)?;
        let affected = affected_sources(&self.graph, m);
        self.cache.invalidate(affected);
        self.graph = next;
        Ok(self.fold())
    }

    /// Folds all `n` per-source dependency vectors in ascending source
    /// order and halves — the accumulation schedule of
    /// [`bc_brandes::betweenness_f64`], reproduced addition-for-addition
    /// so the result is bit-identical whether a vector came from the
    /// cache or a fresh BFS.
    fn fold(&mut self) -> Vec<f64> {
        let n = self.graph.n();
        let mut cb = vec![0.0f64; n];
        let mut recomputed = 0usize;
        for s in 0..n as u32 {
            let dep = match self.cache.get(s) {
                Some(dep) => dep,
                None => {
                    recomputed += 1;
                    let dep = Arc::new(dependencies_from(&self.graph, s));
                    self.cache.put(s, Arc::clone(&dep));
                    dep
                }
            };
            for (w, d) in dep.iter().enumerate() {
                if w as u32 != s {
                    cb[w] += d;
                }
            }
        }
        for v in &mut cb {
            *v /= 2.0;
        }
        self.last_recomputed = recomputed;
        cb
    }

    /// Sources recomputed (cache misses) during the last fold.
    pub fn last_recomputed(&self) -> usize {
        self.last_recomputed
    }

    /// Drains the cache's `(hits, misses)` counters.
    pub fn take_cache_stats(&mut self) -> (u64, u64) {
        self.cache.take_stats()
    }
}

/// Scores produced by a full (non-incremental) engine run, with the
/// run metadata the snapshot records.
#[derive(Debug, Clone)]
pub struct FullRunOutput {
    /// Betweenness per node.
    pub scores: Vec<f64>,
    /// Sources used by the run.
    pub sample_size: usize,
    /// Rounds the run took (0 for non-round-based engines).
    pub rounds: u64,
}

/// A full-recompute engine: any closure from graph to scores. Used for
/// the driver modes (distributed, sampled, `--connect`), whose
/// accumulation order is not per-source-decomposable at the bit level.
pub type FullRecompute = Box<dyn FnMut(&Graph) -> Result<FullRunOutput, String> + Send>;

/// The server's recompute strategy.
pub enum RecomputeEngine {
    /// Pruned incremental Brandes (serves `--algorithm brandes`).
    Incremental(IncrementalEngine),
    /// Full rerun of an arbitrary engine on every mutation.
    Full {
        /// Current graph (the engine closure is stateless).
        graph: Graph,
        /// The engine closure.
        run: FullRecompute,
    },
}

impl fmt::Debug for RecomputeEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecomputeEngine::Incremental(e) => f.debug_tuple("Incremental").field(e).finish(),
            RecomputeEngine::Full { graph, .. } => f
                .debug_struct("Full")
                .field("n", &graph.n())
                .field("m", &graph.m())
                .finish(),
        }
    }
}

impl RecomputeEngine {
    /// The engine's current graph.
    pub fn graph(&self) -> &Graph {
        match self {
            RecomputeEngine::Incremental(e) => e.graph(),
            RecomputeEngine::Full { graph, .. } => graph,
        }
    }

    /// Initial compute (cold start).
    ///
    /// # Errors
    ///
    /// Full engines propagate their runtime errors as strings.
    pub fn initial(&mut self) -> Result<FullRunOutput, String> {
        match self {
            RecomputeEngine::Incremental(e) => {
                let scores = e.scores();
                let n = e.graph().n();
                Ok(FullRunOutput {
                    scores,
                    sample_size: n,
                    rounds: 0,
                })
            }
            RecomputeEngine::Full { graph, run } => run(graph),
        }
    }

    /// Applies a mutation and recomputes.
    ///
    /// # Errors
    ///
    /// Graph errors (duplicate/missing edge, bad endpoints) are
    /// reported as strings without touching engine state; full engines
    /// also propagate runtime errors.
    pub fn apply(&mut self, m: Mutation) -> Result<FullRunOutput, String> {
        match self {
            RecomputeEngine::Incremental(e) => {
                let scores = e.apply(m).map_err(|e| e.to_string())?;
                let n = e.graph().n();
                Ok(FullRunOutput {
                    scores,
                    sample_size: n,
                    rounds: 0,
                })
            }
            RecomputeEngine::Full { graph, run } => {
                let next = m.apply(graph).map_err(|e| e.to_string())?;
                let out = run(&next)?;
                *graph = next;
                Ok(out)
            }
        }
    }

    /// Drains cache `(hits, misses)` counters (zero for full engines).
    pub fn take_cache_stats(&mut self) -> (u64, u64) {
        match self {
            RecomputeEngine::Incremental(e) => e.take_cache_stats(),
            RecomputeEngine::Full { .. } => (0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_brandes::betweenness_f64;
    use bc_graph::generators;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn assert_bits_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "node {i}: {x} vs {y}");
        }
    }

    #[test]
    fn affected_sources_insert_equal_level_edge() {
        // Cycle 0-1-2-3-0: adding chord {1, 3} — from source 0 both ends
        // sit at level 1, and from source 2 both sit at level 1, so only
        // sources 1 and 3 are affected.
        let g = generators::cycle(4);
        let aff = affected_sources(&g, Mutation::AddEdge(1, 3));
        assert_eq!(aff, vec![1, 3]);
    }

    #[test]
    fn affected_sources_delete_dag_edge() {
        // Path 0-1-2: every source uses every edge, so removing {0, 1}
        // affects all sources.
        let g = generators::path(3);
        let aff = affected_sources(&g, Mutation::RemoveEdge(0, 1));
        assert_eq!(aff, vec![0, 1, 2]);
    }

    #[test]
    fn unaffected_sources_have_bit_identical_vectors() {
        // The pruning condition's soundness, checked directly: for every
        // candidate edge insertion, the dependency vectors of sources the
        // filter calls unaffected must be bit-identical before and after.
        let g = generators::erdos_renyi_connected(24, 0.12, 7);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..20 {
            let (u, v) = (
                rng.gen_range(0..g.n() as u32),
                rng.gen_range(0..g.n() as u32),
            );
            if u == v || g.has_edge(u, v) {
                continue;
            }
            let m = Mutation::AddEdge(u, v);
            let affected = affected_sources(&g, m);
            let next = m.apply(&g).unwrap();
            for s in 0..g.n() as u32 {
                if affected.contains(&s) {
                    continue;
                }
                assert_bits_eq(&dependencies_from(&g, s), &dependencies_from(&next, s));
            }
        }
    }

    #[test]
    fn incremental_matches_scratch_bitwise_over_mutation_sequences() {
        // The acceptance-criteria property: incremental == from-scratch,
        // bit for bit, across thousands of random mutations (a small
        // cache forces the replay-from-recompute path too).
        let mut rng = SmallRng::seed_from_u64(1);
        for trial in 0..8 {
            let n = 16 + trial * 4;
            let g = generators::erdos_renyi_connected(n, 0.15, trial as u64);
            // Cache sized below n on odd trials: misses must not change bits.
            let cap = if trial % 2 == 0 { n } else { n / 3 };
            let mut engine = IncrementalEngine::new(g.clone(), cap);
            assert_bits_eq(&engine.scores(), &betweenness_f64(&g));
            let mut applied = 0;
            while applied < 300 {
                let (u, v) = (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
                if u == v {
                    continue;
                }
                let m = if engine.graph().has_edge(u, v) {
                    Mutation::RemoveEdge(u, v)
                } else {
                    Mutation::AddEdge(u, v)
                };
                match engine.apply(m) {
                    Ok(scores) => {
                        assert_bits_eq(&scores, &betweenness_f64(engine.graph()));
                        applied += 1;
                    }
                    Err(e) => panic!("mutation {m} rejected: {e}"),
                }
            }
        }
    }

    #[test]
    fn incremental_prunes_most_sources_on_local_edits() {
        // On a long cycle, a chord insertion must not recompute all n
        // sources — the point of the filter.
        let g = generators::cycle(64);
        let mut engine = IncrementalEngine::new(g, 64);
        let _ = engine.scores();
        assert_eq!(engine.last_recomputed(), 64);
        let _ = engine.apply(Mutation::AddEdge(0, 2)).unwrap();
        assert!(
            engine.last_recomputed() < 64,
            "recomputed {} of 64 sources",
            engine.last_recomputed()
        );
    }

    #[test]
    fn graph_errors_leave_engine_state_untouched() {
        let g = generators::path(4);
        let mut engine = IncrementalEngine::new(g.clone(), 4);
        let before = engine.scores();
        assert!(engine.apply(Mutation::AddEdge(0, 1)).is_err()); // duplicate
        assert!(engine.apply(Mutation::RemoveEdge(0, 2)).is_err()); // missing
        assert!(engine.apply(Mutation::AddEdge(1, 1)).is_err()); // self loop
        assert!(engine.apply(Mutation::AddEdge(0, 99)).is_err()); // range
        assert_bits_eq(&engine.scores(), &before);
        assert_eq!(engine.graph().m(), 3);
    }

    #[test]
    fn component_count_tracks_bridges() {
        let g = generators::path(5);
        assert_eq!(component_count(&g), 1);
        let cut = g.remove_edge(2, 3).unwrap();
        assert_eq!(component_count(&cut), 2);
    }

    #[test]
    fn full_engine_reruns_closure() {
        let g = generators::path(4);
        let mut engine = RecomputeEngine::Full {
            graph: g,
            run: Box::new(|g| {
                Ok(FullRunOutput {
                    scores: betweenness_f64(g),
                    sample_size: g.n(),
                    rounds: 7,
                })
            }),
        };
        let first = engine.initial().unwrap();
        assert_eq!(first.rounds, 7);
        let out = engine.apply(Mutation::AddEdge(0, 3)).unwrap();
        assert_bits_eq(&out.scores, &betweenness_f64(engine.graph()));
        assert!(engine.apply(Mutation::AddEdge(0, 3)).is_err());
        assert_eq!(engine.graph().m(), 4, "failed mutation must not commit");
    }
}
