//! The query protocol spoken over [`bc_congest::wire`] framing.
//!
//! A client session is: connect → send a `HELLO` frame with
//! [`ROLE_CLIENT`] → read the server's `HELLO` (which pins the served
//! graph hash and config fingerprint) → exchange any number of
//! `TAG_QUERY`/`TAG_RESP` batches → send `TAG_DONE` and close.
//!
//! Batching is first-class: one `TAG_QUERY` frame carries an ordered
//! list of [`QueryRequest`]s and one `TAG_RESP` frame answers them in
//! the same order, so a client pays one round trip per *batch*, not
//! per query. All read-only requests in a batch are answered from one
//! snapshot load — a batch can never observe two different versions.
//!
//! Anything malformed — bad magic, unknown tags, truncated payloads —
//! earns a `TAG_ERROR` frame and a dropped connection, never a panic.

use bc_congest::wire::{
    put_f64, put_str, put_u32, put_u64, put_u8, ByteReader, Hello, WireError, WireStream,
    ROLE_CLIENT, TAG_DONE, TAG_ERROR, TAG_HELLO, TAG_QUERY, TAG_RESP,
};
use std::fmt;

/// One query or mutation request.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// Top-`k` nodes by score (descending, ties by ascending id).
    TopK {
        /// How many nodes; larger than `n` truncates.
        k: u32,
    },
    /// Score of a single node.
    Node {
        /// The node id.
        v: u32,
    },
    /// Nearest-rank percentile of the score distribution.
    Percentile {
        /// Percentile in `[0, 100]`.
        p: f64,
    },
    /// Snapshot metadata (version, hashes, algorithm, sizes).
    Meta,
    /// Enqueue an edge insertion; a background recompute publishes a
    /// new snapshot when done.
    AddEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Enqueue an edge removal.
    RemoveEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Block until every mutation enqueued before this request has
    /// been applied and published.
    Flush,
}

/// The answer to one [`QueryRequest`], in request order. Every variant
/// that reads a snapshot carries the snapshot's version, so clients
/// can correlate answers with mutations.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Answer to [`QueryRequest::TopK`].
    Ranked {
        /// Snapshot version answered from.
        version: u64,
        /// `(node, score)` pairs, best first.
        entries: Vec<(u32, f64)>,
    },
    /// Answer to [`QueryRequest::Node`].
    Score {
        /// Snapshot version answered from.
        version: u64,
        /// The queried node.
        node: u32,
        /// Its betweenness score.
        score: f64,
    },
    /// Answer to [`QueryRequest::Percentile`].
    Value {
        /// Snapshot version answered from.
        version: u64,
        /// The percentile value.
        value: f64,
    },
    /// Answer to [`QueryRequest::Meta`].
    Meta {
        /// Snapshot version.
        version: u64,
        /// Graph hash as of the snapshot.
        graph_hash: u64,
        /// Config fingerprint of the producing engine.
        config_hash: u64,
        /// Algorithm label.
        algo: String,
        /// Node count.
        n: u64,
        /// Sources behind the scores.
        sample_size: u64,
        /// Rounds of the producing run.
        rounds: u64,
        /// Mutations enqueued but not yet published.
        pending: u64,
    },
    /// Mutation accepted and enqueued (sequence number of the
    /// mutation in the server's apply order).
    MutationQueued {
        /// The mutation's 1-based sequence number.
        seq: u64,
    },
    /// All previously enqueued mutations are published.
    Flushed {
        /// The snapshot version current after the flush.
        version: u64,
    },
    /// The request failed (bad node id, invalid mutation, …). Other
    /// requests in the batch are unaffected.
    Failed {
        /// Human-readable reason.
        reason: String,
    },
}

const REQ_TOP_K: u8 = 0;
const REQ_NODE: u8 = 1;
const REQ_PERCENTILE: u8 = 2;
const REQ_META: u8 = 3;
const REQ_ADD_EDGE: u8 = 4;
const REQ_REMOVE_EDGE: u8 = 5;
const REQ_FLUSH: u8 = 6;

const RESP_RANKED: u8 = 0;
const RESP_SCORE: u8 = 1;
const RESP_VALUE: u8 = 2;
const RESP_META: u8 = 3;
const RESP_QUEUED: u8 = 4;
const RESP_FLUSHED: u8 = 5;
const RESP_FAILED: u8 = 6;

/// Encodes a batch of requests into a `TAG_QUERY` payload.
pub fn encode_requests(reqs: &[QueryRequest]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, reqs.len() as u32);
    for r in reqs {
        match r {
            QueryRequest::TopK { k } => {
                put_u8(&mut buf, REQ_TOP_K);
                put_u32(&mut buf, *k);
            }
            QueryRequest::Node { v } => {
                put_u8(&mut buf, REQ_NODE);
                put_u32(&mut buf, *v);
            }
            QueryRequest::Percentile { p } => {
                put_u8(&mut buf, REQ_PERCENTILE);
                put_f64(&mut buf, *p);
            }
            QueryRequest::Meta => put_u8(&mut buf, REQ_META),
            QueryRequest::AddEdge { u, v } => {
                put_u8(&mut buf, REQ_ADD_EDGE);
                put_u32(&mut buf, *u);
                put_u32(&mut buf, *v);
            }
            QueryRequest::RemoveEdge { u, v } => {
                put_u8(&mut buf, REQ_REMOVE_EDGE);
                put_u32(&mut buf, *u);
                put_u32(&mut buf, *v);
            }
            QueryRequest::Flush => put_u8(&mut buf, REQ_FLUSH),
        }
    }
    buf
}

/// Decodes a `TAG_QUERY` payload.
///
/// # Errors
///
/// Any truncation, trailing bytes, or unknown request tag is a
/// [`WireError`] — the server answers it with `TAG_ERROR`, not a panic.
pub fn decode_requests(payload: &[u8]) -> Result<Vec<QueryRequest>, WireError> {
    let mut r = ByteReader::new(payload);
    let count = r.u32()? as usize;
    if count > payload.len() {
        return Err(WireError::Protocol(format!(
            "batch claims {count} requests in a {}-byte payload",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(match r.u8()? {
            REQ_TOP_K => QueryRequest::TopK { k: r.u32()? },
            REQ_NODE => QueryRequest::Node { v: r.u32()? },
            REQ_PERCENTILE => QueryRequest::Percentile { p: r.f64()? },
            REQ_META => QueryRequest::Meta,
            REQ_ADD_EDGE => QueryRequest::AddEdge {
                u: r.u32()?,
                v: r.u32()?,
            },
            REQ_REMOVE_EDGE => QueryRequest::RemoveEdge {
                u: r.u32()?,
                v: r.u32()?,
            },
            REQ_FLUSH => QueryRequest::Flush,
            t => return Err(WireError::Protocol(format!("unknown request tag {t}"))),
        });
    }
    r.finish()?;
    Ok(out)
}

/// Encodes a batch of responses into a `TAG_RESP` payload.
pub fn encode_responses(resps: &[QueryResponse]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, resps.len() as u32);
    for resp in resps {
        match resp {
            QueryResponse::Ranked { version, entries } => {
                put_u8(&mut buf, RESP_RANKED);
                put_u64(&mut buf, *version);
                put_u32(&mut buf, entries.len() as u32);
                for (node, score) in entries {
                    put_u32(&mut buf, *node);
                    put_f64(&mut buf, *score);
                }
            }
            QueryResponse::Score {
                version,
                node,
                score,
            } => {
                put_u8(&mut buf, RESP_SCORE);
                put_u64(&mut buf, *version);
                put_u32(&mut buf, *node);
                put_f64(&mut buf, *score);
            }
            QueryResponse::Value { version, value } => {
                put_u8(&mut buf, RESP_VALUE);
                put_u64(&mut buf, *version);
                put_f64(&mut buf, *value);
            }
            QueryResponse::Meta {
                version,
                graph_hash,
                config_hash,
                algo,
                n,
                sample_size,
                rounds,
                pending,
            } => {
                put_u8(&mut buf, RESP_META);
                put_u64(&mut buf, *version);
                put_u64(&mut buf, *graph_hash);
                put_u64(&mut buf, *config_hash);
                put_str(&mut buf, algo);
                put_u64(&mut buf, *n);
                put_u64(&mut buf, *sample_size);
                put_u64(&mut buf, *rounds);
                put_u64(&mut buf, *pending);
            }
            QueryResponse::MutationQueued { seq } => {
                put_u8(&mut buf, RESP_QUEUED);
                put_u64(&mut buf, *seq);
            }
            QueryResponse::Flushed { version } => {
                put_u8(&mut buf, RESP_FLUSHED);
                put_u64(&mut buf, *version);
            }
            QueryResponse::Failed { reason } => {
                put_u8(&mut buf, RESP_FAILED);
                put_str(&mut buf, reason);
            }
        }
    }
    buf
}

/// Decodes a `TAG_RESP` payload.
///
/// # Errors
///
/// Same contract as [`decode_requests`].
pub fn decode_responses(payload: &[u8]) -> Result<Vec<QueryResponse>, WireError> {
    let mut r = ByteReader::new(payload);
    let count = r.u32()? as usize;
    if count > payload.len() {
        return Err(WireError::Protocol(format!(
            "batch claims {count} responses in a {}-byte payload",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(match r.u8()? {
            RESP_RANKED => {
                let version = r.u64()?;
                let len = r.u32()? as usize;
                let mut entries = Vec::with_capacity(len.min(payload.len()));
                for _ in 0..len {
                    entries.push((r.u32()?, r.f64()?));
                }
                QueryResponse::Ranked { version, entries }
            }
            RESP_SCORE => QueryResponse::Score {
                version: r.u64()?,
                node: r.u32()?,
                score: r.f64()?,
            },
            RESP_VALUE => QueryResponse::Value {
                version: r.u64()?,
                value: r.f64()?,
            },
            RESP_META => QueryResponse::Meta {
                version: r.u64()?,
                graph_hash: r.u64()?,
                config_hash: r.u64()?,
                algo: r.str()?,
                n: r.u64()?,
                sample_size: r.u64()?,
                rounds: r.u64()?,
                pending: r.u64()?,
            },
            RESP_QUEUED => QueryResponse::MutationQueued { seq: r.u64()? },
            RESP_FLUSHED => QueryResponse::Flushed { version: r.u64()? },
            RESP_FAILED => QueryResponse::Failed { reason: r.str()? },
            t => return Err(WireError::Protocol(format!("unknown response tag {t}"))),
        });
    }
    r.finish()?;
    Ok(out)
}

/// Why a client session failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server answered with a `TAG_ERROR` frame.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A connected query client (used by `distbc query` and the tests).
#[derive(Debug)]
pub struct QueryClient {
    stream: WireStream,
    server: Hello,
}

impl QueryClient {
    /// Connects, performs the `HELLO` handshake, and returns a ready
    /// client.
    ///
    /// # Errors
    ///
    /// Connection refusal (after the retry window), a non-`HELLO`
    /// reply, or a `TAG_ERROR` greeting.
    pub fn connect(addr: &str) -> Result<QueryClient, ClientError> {
        let mut stream = WireStream::connect(addr)?;
        let hello = Hello {
            role: ROLE_CLIENT,
            shard_id: 0,
            shards: 0,
            graph_hash: 0,
            config_hash: 0,
        };
        stream.write_frame(TAG_HELLO, &hello.encode())?;
        let (tag, payload) = stream.read_frame()?;
        match tag {
            TAG_HELLO => {
                let server = Hello::decode(&payload)?;
                Ok(QueryClient { stream, server })
            }
            TAG_ERROR => Err(ClientError::Server(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            t => Err(ClientError::Wire(WireError::Protocol(format!(
                "expected HELLO, got tag {t}"
            )))),
        }
    }

    /// The server's handshake frame: `graph_hash` and `config_hash`
    /// pin what is being served.
    pub fn server_hello(&self) -> &Hello {
        &self.server
    }

    /// Sends one batch and reads the matching response batch
    /// (answers are in request order).
    ///
    /// # Errors
    ///
    /// Transport failures, a `TAG_ERROR` frame, or a malformed
    /// response batch.
    pub fn batch(&mut self, reqs: &[QueryRequest]) -> Result<Vec<QueryResponse>, ClientError> {
        self.stream.write_frame(TAG_QUERY, &encode_requests(reqs))?;
        let (tag, payload) = self.stream.read_frame()?;
        match tag {
            TAG_RESP => Ok(decode_responses(&payload)?),
            TAG_ERROR => Err(ClientError::Server(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            t => Err(ClientError::Wire(WireError::Protocol(format!(
                "expected RESP, got tag {t}"
            )))),
        }
    }

    /// Ends the session politely (`TAG_DONE`); errors are ignored, the
    /// server also tolerates plain disconnects.
    pub fn close(mut self) {
        let _ = self.stream.write_frame(TAG_DONE, &[]);
        self.stream.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_batch_round_trips() {
        let reqs = vec![
            QueryRequest::Meta,
            QueryRequest::TopK { k: 5 },
            QueryRequest::Node { v: 3 },
            QueryRequest::Percentile { p: 99.5 },
            QueryRequest::AddEdge { u: 1, v: 2 },
            QueryRequest::RemoveEdge { u: 4, v: 0 },
            QueryRequest::Flush,
        ];
        let back = decode_requests(&encode_requests(&reqs)).unwrap();
        assert_eq!(back, reqs);
        assert!(decode_requests(&encode_requests(&[])).unwrap().is_empty());
    }

    #[test]
    fn response_batch_round_trips() {
        let resps = vec![
            QueryResponse::Ranked {
                version: 3,
                entries: vec![(1, 2.5), (0, 1.0)],
            },
            QueryResponse::Score {
                version: 3,
                node: 7,
                score: -0.0,
            },
            QueryResponse::Value {
                version: 3,
                value: 0.25,
            },
            QueryResponse::Meta {
                version: 3,
                graph_hash: 0xabc,
                config_hash: 0xdef,
                algo: "brandes".into(),
                n: 10,
                sample_size: 10,
                rounds: 0,
                pending: 2,
            },
            QueryResponse::MutationQueued { seq: 9 },
            QueryResponse::Flushed { version: 4 },
            QueryResponse::Failed {
                reason: "node 99 out of range".into(),
            },
        ];
        let back = decode_responses(&encode_responses(&resps)).unwrap();
        assert_eq!(back, resps);
        // -0.0 survives bit-exactly.
        match &back[1] {
            QueryResponse::Score { score, .. } => {
                assert_eq!(score.to_bits(), (-0.0f64).to_bits());
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn malformed_batches_error_not_panic() {
        let good = encode_requests(&[QueryRequest::TopK { k: 3 }]);
        for cut in 0..good.len() {
            assert!(decode_requests(&good[..cut]).is_err());
        }
        let mut trailing = good.clone();
        trailing.push(0xff);
        assert!(decode_requests(&trailing).is_err());
        let mut bad_tag = good;
        bad_tag[4] = 0x7f;
        assert!(decode_requests(&bad_tag).is_err());
        // Absurd count claims are rejected before allocating.
        let mut bomb = Vec::new();
        put_u32(&mut bomb, u32::MAX);
        assert!(decode_requests(&bomb).is_err());
        assert!(decode_responses(&bomb).is_err());
    }
}
