//! LRU cache of per-source dependency vectors for the incremental
//! recompute engine.
//!
//! The cache is a pure performance device: a hit replays a stored
//! vector that is bit-equal to what [`bc_brandes::dependencies_from`]
//! would recompute (per-source BFS + accumulation is deterministic), so
//! results are identical with the cache on, off, cold, or thrashing —
//! only the recompute latency changes. Mutations invalidate exactly the
//! affected sources; everything else survives and is replayed.

use std::collections::HashMap;
use std::sync::Arc;

/// LRU map from source id to its dependency vector `δ_s·(·)`.
#[derive(Debug)]
pub struct SourceCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<u32, (u64, Arc<Vec<f64>>)>,
    hits: u64,
    misses: u64,
}

impl SourceCache {
    /// Creates a cache holding at most `capacity` vectors (each `n`
    /// floats). Capacity 0 disables caching entirely.
    pub fn new(capacity: usize) -> SourceCache {
        SourceCache {
            capacity,
            clock: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the vector for source `s`, refreshing its recency.
    pub fn get(&mut self, s: u32) -> Option<Arc<Vec<f64>>> {
        self.clock += 1;
        match self.entries.get_mut(&s) {
            Some((stamp, vec)) => {
                *stamp = self.clock;
                self.hits += 1;
                Some(Arc::clone(vec))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores the vector for source `s`, evicting the least recently
    /// used entry when full.
    pub fn put(&mut self, s: u32, vec: Arc<Vec<f64>>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&s) {
            if let Some((&lru, _)) = self.entries.iter().min_by_key(|(_, (stamp, _))| *stamp) {
                self.entries.remove(&lru);
            }
        }
        self.entries.insert(s, (self.clock, vec));
    }

    /// Drops the entries for the given sources (post-mutation
    /// invalidation).
    pub fn invalidate<I: IntoIterator<Item = u32>>(&mut self, sources: I) {
        for s in sources {
            self.entries.remove(&s);
        }
    }

    /// Number of cached vectors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` since construction, and resets both — the
    /// server drains these into telemetry counters after each
    /// recompute.
    pub fn take_stats(&mut self) -> (u64, u64) {
        let out = (self.hits, self.misses);
        self.hits = 0;
        self.misses = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f64) -> Arc<Vec<f64>> {
        Arc::new(vec![x])
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = SourceCache::new(2);
        c.put(0, v(0.0));
        c.put(1, v(1.0));
        assert!(c.get(0).is_some()); // 0 now fresher than 1
        c.put(2, v(2.0)); // evicts 1
        assert!(c.get(1).is_none());
        assert!(c.get(0).is_some());
        assert!(c.get(2).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = SourceCache::new(0);
        c.put(0, v(0.0));
        assert!(c.is_empty());
        assert!(c.get(0).is_none());
    }

    #[test]
    fn invalidate_and_stats() {
        let mut c = SourceCache::new(8);
        c.put(3, v(3.0));
        c.put(4, v(4.0));
        let _ = c.get(3); // hit
        let _ = c.get(9); // miss
        c.invalidate([3, 9]);
        assert!(c.get(3).is_none()); // miss
        assert!(c.get(4).is_some()); // hit
        assert_eq!(c.take_stats(), (2, 2));
        assert_eq!(c.take_stats(), (0, 0));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = SourceCache::new(1);
        c.put(0, v(1.0));
        c.put(0, v(2.0));
        assert_eq!(c.len(), 1);
        assert_eq!(*c.get(0).unwrap(), vec![2.0]);
    }
}
