//! The long-running query server: versioned snapshots behind an epoch
//! cell, per-connection handler threads, and a single background
//! mutation worker.
//!
//! # Lifecycle
//!
//! [`Server::bind`] computes the initial snapshot (version 1) with the
//! chosen engine and binds the listener; [`Server::run`] then accepts
//! connections until the shared shutdown flag flips. Each connection
//! gets a handler thread speaking the [`crate::proto`] protocol; all
//! read queries in a batch are answered from **one**
//! [`SnapshotStore::load`], so a batch observes exactly one version and
//! never a torn snapshot.
//!
//! # Mutations
//!
//! `add-edge`/`remove-edge` requests are validated synchronously
//! against a *front* graph (the served graph plus every queued
//! mutation) — duplicate edges, missing edges, bad endpoints, and
//! disconnecting removals are rejected inline — then enqueued for the
//! worker, which applies them in order, recomputes (incrementally for
//! the Brandes engine, fully for driver engines), and publishes a new
//! snapshot version. Queries keep flowing against the old snapshot the
//! whole time; `flush` blocks until the queue drains.
//!
//! # Robustness
//!
//! A malformed client — bad HELLO, unknown tag, truncated or oversized
//! frame, garbage bytes — earns a best-effort `TAG_ERROR` frame and a
//! dropped connection; the server never panics and other connections
//! are unaffected. On shutdown, in-flight batches finish (the closer
//! takes each connection's busy lock before shutting its socket), the
//! mutation queue drains, and the final stats are returned for the
//! telemetry checkpoint.

use crate::engine::{component_count, Mutation, RecomputeEngine};
use crate::proto::{decode_requests, encode_responses, QueryRequest, QueryResponse};
use bc_congest::telemetry::{Counter, HistogramId, Telemetry};
use bc_congest::wire::{
    graph_hash, Hello, WireError, WireListener, WireStream, ROLE_CLIENT, TAG_DONE, TAG_ERROR,
    TAG_HELLO, TAG_QUERY, TAG_RESP,
};
use bc_core::snapshot::{CentralitySnapshot, SnapshotStore};
use bc_graph::Graph;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// How often the accept loop polls the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// How long the mutation worker sleeps waiting for work before
/// re-checking the shutdown flag.
const WORKER_POLL: Duration = Duration::from_millis(100);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// `tcp:HOST:PORT` (port 0 for ephemeral) or `unix:PATH`.
    pub listen: String,
    /// Algorithm label stamped into snapshots (`"brandes"`,
    /// `"distributed"`, `"sampled:K"`, …).
    pub algo: String,
    /// Config fingerprint stamped into snapshots and the handshake
    /// ([`bc_core::DistBcConfig::fingerprint`] for driver engines).
    pub config_hash: u64,
    /// Telemetry sink for server counters (shard 0 is used).
    pub telemetry: Option<Arc<Telemetry>>,
}

/// Why the server failed to start or crashed.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Wire(WireError),
    /// The initial snapshot compute failed.
    Compute(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Wire(e) => write!(f, "{e}"),
            ServeError::Compute(m) => write!(f, "initial compute failed: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

/// Counters reported when the server exits (mirrors of the telemetry
/// counters, for the final checkpoint line).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Individual requests answered.
    pub queries: u64,
    /// `TAG_QUERY` batches answered.
    pub batches: u64,
    /// Snapshot versions published after the initial one.
    pub snapshots_published: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Malformed frames/batches seen (each also dropped a connection).
    pub malformed: u64,
}

/// Queued-mutation bookkeeping shared between handlers and the worker.
struct MutQueue {
    /// The served graph plus every queued mutation — what new
    /// mutations are validated against.
    front: Graph,
    queue: VecDeque<Mutation>,
    enqueued_seq: u64,
    applied_seq: u64,
    /// Set when the worker hit an unrecoverable engine failure; all
    /// further mutations are rejected with this reason.
    dead: Option<String>,
}

/// State shared by the accept loop, handler threads, and the worker.
struct Shared {
    store: SnapshotStore,
    algo: String,
    config_hash: u64,
    /// Hash of the currently served graph (updated on publish; the
    /// HELLO reply reads it).
    current_graph_hash: AtomicU64,
    telemetry: Option<Arc<Telemetry>>,
    muts: Mutex<MutQueue>,
    wake: Condvar,
    shutdown: Arc<AtomicBool>,
    // Stats mirrors.
    queries: AtomicU64,
    batches: AtomicU64,
    published: AtomicU64,
    malformed: AtomicU64,
}

impl Shared {
    fn count(&self, c: Counter, n: u64) {
        if let Some(t) = &self.telemetry {
            t.add(0, c, n);
        }
    }
}

/// One accepted connection, registered so the closer can wake blocked
/// readers without cutting an in-flight response.
struct ConnEntry {
    stream: WireStream,
    /// Held by the handler while processing a batch; the closer takes
    /// it before `shutdown()`, so sockets only close *between* batches.
    busy: Mutex<()>,
}

/// A bound, not-yet-running server (initial snapshot already
/// published).
pub struct Server {
    listener: WireListener,
    addr: String,
    engine: RecomputeEngine,
    shared: Arc<Shared>,
}

impl Server {
    /// Computes the initial snapshot with `engine` and binds
    /// `cfg.listen`.
    ///
    /// # Errors
    ///
    /// Bind failures and initial-compute failures.
    pub fn bind(
        mut engine: RecomputeEngine,
        cfg: ServerConfig,
        shutdown: Arc<AtomicBool>,
    ) -> Result<Server, ServeError> {
        let out = engine.initial().map_err(ServeError::Compute)?;
        let g_hash = graph_hash(engine.graph());
        let initial = CentralitySnapshot::from_scores(
            1,
            g_hash,
            cfg.config_hash,
            &cfg.algo,
            out.scores,
            out.sample_size,
            out.rounds,
        );
        let listener = WireListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;
        let front = engine.graph().clone();
        let shared = Arc::new(Shared {
            store: SnapshotStore::new(initial),
            algo: cfg.algo,
            config_hash: cfg.config_hash,
            current_graph_hash: AtomicU64::new(g_hash),
            telemetry: cfg.telemetry,
            muts: Mutex::new(MutQueue {
                front,
                queue: VecDeque::new(),
                enqueued_seq: 0,
                applied_seq: 0,
                dead: None,
            }),
            wake: Condvar::new(),
            shutdown,
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            published: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
        });
        if let Some((h, m)) = drain_cache_stats(&mut engine) {
            shared.count(Counter::SourceCacheHits, h);
            shared.count(Counter::SourceCacheMisses, m);
        }
        Ok(Server {
            listener,
            addr,
            engine,
            shared,
        })
    }

    /// The dialable listen address (ephemeral TCP ports resolved).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The current snapshot (version 1 right after `bind`).
    pub fn snapshot(&self) -> Arc<CentralitySnapshot> {
        self.shared.store.load()
    }

    /// Serves until the shutdown flag flips, then drains in-flight
    /// batches and the mutation queue and returns the final stats.
    ///
    /// # Errors
    ///
    /// Only listener-level failures; per-connection failures are
    /// contained.
    pub fn run(self) -> Result<ServerStats, ServeError> {
        let Server {
            listener,
            engine,
            shared,
            ..
        } = self;
        listener.set_nonblocking(true)?;
        let worker = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || mutation_worker(engine, shared))
        };
        let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
        let conns: Arc<Mutex<Vec<Arc<ConnEntry>>>> = Arc::new(Mutex::new(Vec::new()));
        let mut connections = 0u64;
        while !shared.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok(stream) => {
                    connections += 1;
                    let entry = Arc::new(ConnEntry {
                        stream: stream.try_clone()?,
                        busy: Mutex::new(()),
                    });
                    conns
                        .lock()
                        .expect("conn registry")
                        .push(Arc::clone(&entry));
                    let shared = Arc::clone(&shared);
                    handlers.push(thread::spawn(move || {
                        handle_connection(stream, entry, shared);
                    }));
                }
                Err(WireError::Io(_)) => thread::sleep(ACCEPT_POLL),
                Err(e) => return Err(e.into()),
            }
        }
        // Drain: close each connection between batches (the busy lock
        // guarantees any in-flight batch finishes its response first).
        for entry in conns.lock().expect("conn registry").iter() {
            let _busy = entry.busy.lock().expect("busy lock");
            entry.stream.shutdown();
        }
        for h in handlers {
            let _ = h.join();
        }
        shared.wake.notify_all();
        let _ = worker.join();
        Ok(ServerStats {
            queries: shared.queries.load(Ordering::Relaxed),
            batches: shared.batches.load(Ordering::Relaxed),
            snapshots_published: shared.published.load(Ordering::Relaxed),
            connections,
            malformed: shared.malformed.load(Ordering::Relaxed),
        })
    }
}

fn drain_cache_stats(engine: &mut RecomputeEngine) -> Option<(u64, u64)> {
    match engine.take_cache_stats() {
        (0, 0) => None,
        hm => Some(hm),
    }
}

/// The background worker: pops queued mutations in order, recomputes,
/// publishes. Exits when shutdown is set *and* the queue is empty, so
/// acknowledged mutations are never lost to a graceful stop.
fn mutation_worker(mut engine: RecomputeEngine, shared: Arc<Shared>) {
    loop {
        let m = {
            let mut q = shared.muts.lock().expect("mutation queue");
            loop {
                if let Some(m) = q.queue.pop_front() {
                    break Some(m);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .wake
                    .wait_timeout(q, WORKER_POLL)
                    .expect("mutation queue");
                q = guard;
            }
        };
        let Some(m) = m else { return };
        match engine.apply(m) {
            Ok(out) => {
                let g_hash = graph_hash(engine.graph());
                let version = shared.store.load().version + 1;
                let snap = CentralitySnapshot::from_scores(
                    version,
                    g_hash,
                    shared.config_hash,
                    &shared.algo,
                    out.scores,
                    out.sample_size,
                    out.rounds,
                );
                shared.store.publish(snap);
                shared.current_graph_hash.store(g_hash, Ordering::SeqCst);
                shared.published.fetch_add(1, Ordering::Relaxed);
                shared.count(Counter::SnapshotSwaps, 1);
                if let Some((h, miss)) = drain_cache_stats(&mut engine) {
                    shared.count(Counter::SourceCacheHits, h);
                    shared.count(Counter::SourceCacheMisses, miss);
                }
                let mut q = shared.muts.lock().expect("mutation queue");
                q.applied_seq += 1;
                shared.wake.notify_all();
            }
            Err(reason) => {
                // Enqueue-time validation filters graph errors, so this
                // is an engine runtime failure: poison the pipeline (old
                // snapshots keep serving) and reject the backlog.
                let mut q = shared.muts.lock().expect("mutation queue");
                q.dead = Some(format!("mutation {m} failed: {reason}"));
                q.applied_seq = q.enqueued_seq;
                q.queue.clear();
                shared.wake.notify_all();
                return;
            }
        }
    }
}

/// Handles one client connection; every exit path drops the
/// connection.
fn handle_connection(mut stream: WireStream, entry: Arc<ConnEntry>, shared: Arc<Shared>) {
    // Handshake: the first frame must be a valid client HELLO.
    let hello = match stream.read_frame() {
        Ok((TAG_HELLO, payload)) => match Hello::decode(&payload) {
            Ok(h) if h.role == ROLE_CLIENT => h,
            Ok(h) => {
                reject(
                    &mut stream,
                    &shared,
                    &format!("role {} is not a client", h.role),
                );
                return;
            }
            Err(e) => {
                reject(&mut stream, &shared, &format!("bad HELLO: {e}"));
                return;
            }
        },
        Ok((tag, _)) => {
            reject(
                &mut stream,
                &shared,
                &format!("expected HELLO, got tag {tag}"),
            );
            return;
        }
        Err(e) => {
            reject(&mut stream, &shared, &format!("bad first frame: {e}"));
            return;
        }
    };
    let _ = hello;
    let reply = Hello {
        role: ROLE_CLIENT,
        shard_id: 0,
        shards: 0,
        graph_hash: shared.current_graph_hash.load(Ordering::SeqCst),
        config_hash: shared.config_hash,
    };
    if stream.write_frame(TAG_HELLO, &reply.encode()).is_err() {
        return;
    }
    loop {
        match stream.read_frame() {
            Ok((TAG_QUERY, payload)) => {
                let _busy = entry.busy.lock().expect("busy lock");
                let reqs = match decode_requests(&payload) {
                    Ok(reqs) => reqs,
                    Err(e) => {
                        reject(&mut stream, &shared, &format!("bad batch: {e}"));
                        return;
                    }
                };
                let resps = process_batch(&reqs, &shared);
                shared
                    .queries
                    .fetch_add(reqs.len() as u64, Ordering::Relaxed);
                shared.batches.fetch_add(1, Ordering::Relaxed);
                shared.count(Counter::QueriesServed, reqs.len() as u64);
                shared.count(Counter::QueryBatches, 1);
                if let Some(t) = &shared.telemetry {
                    t.record(0, HistogramId::QueryBatchSize, reqs.len() as u64);
                }
                if stream
                    .write_frame(TAG_RESP, &encode_responses(&resps))
                    .is_err()
                {
                    return;
                }
            }
            Ok((TAG_DONE, _)) => return,
            Ok((tag, _)) => {
                reject(&mut stream, &shared, &format!("unexpected tag {tag}"));
                return;
            }
            // EOF / reset / shutdown-wake: a plain disconnect, not a
            // protocol violation.
            Err(WireError::Io(_)) => return,
            Err(e) => {
                reject(&mut stream, &shared, &format!("bad frame: {e}"));
                return;
            }
        }
    }
}

/// Best-effort `TAG_ERROR` + malformed accounting; the caller drops
/// the connection.
fn reject(stream: &mut WireStream, shared: &Shared, reason: &str) {
    shared.malformed.fetch_add(1, Ordering::Relaxed);
    shared.count(Counter::MalformedFrames, 1);
    let _ = stream.write_frame(TAG_ERROR, reason.as_bytes());
    stream.shutdown();
}

/// Answers one batch. All read queries share one snapshot load;
/// mutations validate against the front graph and enqueue.
fn process_batch(reqs: &[QueryRequest], shared: &Shared) -> Vec<QueryResponse> {
    let snap = shared.store.load();
    reqs.iter()
        .map(|req| match req {
            QueryRequest::TopK { k } => QueryResponse::Ranked {
                version: snap.version,
                entries: snap.top_k(*k as usize),
            },
            QueryRequest::Node { v } => match snap.node(*v) {
                Some(score) => QueryResponse::Score {
                    version: snap.version,
                    node: *v,
                    score,
                },
                None => QueryResponse::Failed {
                    reason: format!("node {v} out of range (n = {})", snap.len()),
                },
            },
            QueryRequest::Percentile { p } => match snap.percentile(*p) {
                Some(value) => QueryResponse::Value {
                    version: snap.version,
                    value,
                },
                None => QueryResponse::Failed {
                    reason: format!("percentile {p} outside [0, 100] or empty snapshot"),
                },
            },
            QueryRequest::Meta => {
                let pending = {
                    let q = shared.muts.lock().expect("mutation queue");
                    q.enqueued_seq - q.applied_seq
                };
                QueryResponse::Meta {
                    version: snap.version,
                    graph_hash: snap.graph_hash,
                    config_hash: snap.config_hash,
                    algo: snap.algo.clone(),
                    n: snap.len() as u64,
                    sample_size: snap.sample_size as u64,
                    rounds: snap.rounds,
                    pending,
                }
            }
            QueryRequest::AddEdge { u, v } => enqueue(shared, Mutation::AddEdge(*u, *v)),
            QueryRequest::RemoveEdge { u, v } => enqueue(shared, Mutation::RemoveEdge(*u, *v)),
            QueryRequest::Flush => flush(shared),
        })
        .collect()
}

/// Validates a mutation against the front graph and enqueues it.
fn enqueue(shared: &Shared, m: Mutation) -> QueryResponse {
    let mut q = shared.muts.lock().expect("mutation queue");
    if let Some(dead) = &q.dead {
        return QueryResponse::Failed {
            reason: dead.clone(),
        };
    }
    let next = match m.apply(&q.front) {
        Ok(next) => next,
        Err(e) => {
            return QueryResponse::Failed {
                reason: e.to_string(),
            }
        }
    };
    if matches!(m, Mutation::RemoveEdge(..)) && component_count(&next) > component_count(&q.front) {
        let (u, v) = m.endpoints();
        return QueryResponse::Failed {
            reason: format!("removing {{{u}, {v}}} would disconnect the graph"),
        };
    }
    q.front = next;
    q.enqueued_seq += 1;
    let seq = q.enqueued_seq;
    q.queue.push_back(m);
    shared.wake.notify_all();
    QueryResponse::MutationQueued { seq }
}

/// Blocks until every mutation enqueued before this call is published.
fn flush(shared: &Shared) -> QueryResponse {
    let mut q = shared.muts.lock().expect("mutation queue");
    let target = q.enqueued_seq;
    while q.applied_seq < target {
        if let Some(dead) = &q.dead {
            return QueryResponse::Failed {
                reason: dead.clone(),
            };
        }
        let (guard, _) = shared
            .wake
            .wait_timeout(q, WORKER_POLL)
            .expect("mutation queue");
        q = guard;
    }
    QueryResponse::Flushed {
        version: shared.store.load().version,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IncrementalEngine;
    use crate::proto::QueryClient;
    use bc_brandes::betweenness_f64;
    use bc_graph::generators;
    use std::sync::atomic::AtomicUsize;

    fn test_addr() -> String {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        format!("unix:/tmp/bc-serve-test-{}-{id}.sock", std::process::id())
    }

    struct Running {
        addr: String,
        shutdown: Arc<AtomicBool>,
        join: thread::JoinHandle<Result<ServerStats, ServeError>>,
    }

    fn start(g: Graph) -> Running {
        let engine = RecomputeEngine::Incremental(IncrementalEngine::new(g.clone(), g.n()));
        let cfg = ServerConfig {
            listen: test_addr(),
            algo: "brandes".into(),
            config_hash: 0xb7a2de5,
            telemetry: Some(Arc::new(Telemetry::new(1, 64))),
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let server = Server::bind(engine, cfg, Arc::clone(&shutdown)).unwrap();
        let addr = server.addr().to_string();
        let join = thread::spawn(move || server.run());
        Running {
            addr,
            shutdown,
            join,
        }
    }

    impl Running {
        fn stop(self) -> ServerStats {
            self.shutdown.store(true, Ordering::SeqCst);
            self.join.join().unwrap().unwrap()
        }
    }

    #[test]
    fn serves_scores_bit_identical_to_offline_brandes() {
        let g = generators::erdos_renyi_connected(20, 0.2, 3);
        let expect = betweenness_f64(&g);
        let srv = start(g.clone());
        let mut client = QueryClient::connect(&srv.addr).unwrap();
        assert_eq!(client.server_hello().graph_hash, graph_hash(&g));
        let reqs: Vec<QueryRequest> = (0..g.n() as u32)
            .map(|v| QueryRequest::Node { v })
            .collect();
        let resps = client.batch(&reqs).unwrap();
        for (v, resp) in resps.iter().enumerate() {
            match resp {
                QueryResponse::Score { score, version, .. } => {
                    assert_eq!(*version, 1);
                    assert_eq!(score.to_bits(), expect[v].to_bits(), "node {v}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Top-k agrees with the snapshot-side ranking helpers.
        let top = client.batch(&[QueryRequest::TopK { k: 3 }]).unwrap();
        match &top[0] {
            QueryResponse::Ranked { entries, .. } => {
                assert_eq!(entries.len(), 3);
                assert!(entries[0].1 >= entries[1].1);
            }
            other => panic!("unexpected {other:?}"),
        }
        client.close();
        let stats = srv.stop();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.queries, g.n() as u64 + 1);
        assert_eq!(stats.malformed, 0);
    }

    #[test]
    fn mutations_publish_new_versions_and_stay_bit_identical() {
        let g = generators::cycle(12);
        let srv = start(g.clone());
        let mut client = QueryClient::connect(&srv.addr).unwrap();
        let resps = client
            .batch(&[
                QueryRequest::AddEdge { u: 0, v: 6 },
                QueryRequest::AddEdge { u: 3, v: 9 },
                QueryRequest::Flush,
                QueryRequest::Meta,
            ])
            .unwrap();
        assert_eq!(resps[0], QueryResponse::MutationQueued { seq: 1 });
        assert_eq!(resps[1], QueryResponse::MutationQueued { seq: 2 });
        assert_eq!(resps[2], QueryResponse::Flushed { version: 3 });
        // Batch reads are answered from the snapshot loaded at batch
        // start: the Meta that rode along still reports version 1.
        match &resps[3] {
            QueryResponse::Meta { version, .. } => assert_eq!(*version, 1),
            other => panic!("unexpected {other:?}"),
        }
        let expected = betweenness_f64(&g.add_edge(0, 6).unwrap().add_edge(3, 9).unwrap());
        let resps = client.batch(&[QueryRequest::Meta]).unwrap();
        match &resps[0] {
            QueryResponse::Meta {
                version,
                graph_hash: gh,
                pending,
                ..
            } => {
                assert_eq!(*version, 3);
                assert_eq!(*pending, 0);
                assert_eq!(
                    *gh,
                    graph_hash(&g.add_edge(0, 6).unwrap().add_edge(3, 9).unwrap())
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        let scores = client
            .batch(
                &(0..12)
                    .map(|v| QueryRequest::Node { v })
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        for (v, resp) in scores.iter().enumerate() {
            match resp {
                QueryResponse::Score { score, .. } => {
                    assert_eq!(score.to_bits(), expected[v].to_bits(), "node {v}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        client.close();
        let stats = srv.stop();
        assert_eq!(stats.snapshots_published, 2);
    }

    #[test]
    fn invalid_mutations_fail_inline_without_poisoning() {
        let g = generators::path(5);
        let srv = start(g);
        let mut client = QueryClient::connect(&srv.addr).unwrap();
        let resps = client
            .batch(&[
                QueryRequest::AddEdge { u: 0, v: 1 },    // duplicate
                QueryRequest::RemoveEdge { u: 0, v: 4 }, // missing
                QueryRequest::RemoveEdge { u: 2, v: 3 }, // would disconnect
                QueryRequest::AddEdge { u: 2, v: 2 },    // self loop
                QueryRequest::AddEdge { u: 0, v: 99 },   // out of range
                QueryRequest::Node { v: 99 },            // bad read
                QueryRequest::AddEdge { u: 0, v: 2 },    // fine
                QueryRequest::Flush,
            ])
            .unwrap();
        for resp in &resps[..6] {
            assert!(
                matches!(resp, QueryResponse::Failed { .. }),
                "expected failure, got {resp:?}"
            );
        }
        assert_eq!(resps[6], QueryResponse::MutationQueued { seq: 1 });
        assert_eq!(resps[7], QueryResponse::Flushed { version: 2 });
        client.close();
        srv.stop();
    }

    #[test]
    fn garbage_client_gets_error_frame_and_drop_not_a_wedge() {
        let g = generators::path(4);
        let srv = start(g);
        // 1: raw garbage instead of a HELLO.
        let mut s = WireStream::connect(&srv.addr).unwrap();
        s.write_frame(0x6e, b"nonsense").unwrap();
        // An Err here is also acceptable: the server already dropped us.
        if let Ok((tag, _)) = s.read_frame() {
            assert_eq!(tag, TAG_ERROR);
        }
        // 2: valid HELLO but wrong role.
        let mut s = WireStream::connect(&srv.addr).unwrap();
        let shard_hello = Hello {
            role: bc_congest::wire::ROLE_SHARD,
            shard_id: 0,
            shards: 1,
            graph_hash: 0,
            config_hash: 0,
        };
        s.write_frame(TAG_HELLO, &shard_hello.encode()).unwrap();
        let (tag, _) = s.read_frame().unwrap();
        assert_eq!(tag, TAG_ERROR);
        // 3: good handshake, then a truncated batch payload.
        let mut client = QueryClient::connect(&srv.addr).unwrap();
        match client.batch(&[QueryRequest::TopK { k: 1 }]) {
            Ok(r) => assert_eq!(r.len(), 1),
            Err(e) => panic!("healthy client broken: {e}"),
        }
        let mut s = WireStream::connect(&srv.addr).unwrap();
        s.write_frame(
            TAG_HELLO,
            &Hello {
                role: ROLE_CLIENT,
                shard_id: 0,
                shards: 0,
                graph_hash: 0,
                config_hash: 0,
            }
            .encode(),
        )
        .unwrap();
        let (tag, _) = s.read_frame().unwrap();
        assert_eq!(tag, TAG_HELLO);
        s.write_frame(TAG_QUERY, &[9, 9, 9]).unwrap(); // truncated batch
        let (tag, _) = s.read_frame().unwrap();
        assert_eq!(tag, TAG_ERROR);
        // The healthy client still works after all three abuses.
        let r = client.batch(&[QueryRequest::Meta]).unwrap();
        assert!(matches!(r[0], QueryResponse::Meta { .. }));
        client.close();
        let stats = srv.stop();
        assert!(stats.malformed >= 3, "malformed = {}", stats.malformed);
    }

    #[test]
    fn concurrent_readers_never_see_torn_state_during_recompute() {
        let g = generators::cycle(24);
        let srv = start(g);
        let addr = srv.addr.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.clone();
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut client = QueryClient::connect(&addr).unwrap();
                    let mut last_version = 0u64;
                    let mut served = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let resps = client
                            .batch(&[
                                QueryRequest::Meta,
                                QueryRequest::TopK { k: 5 },
                                QueryRequest::Percentile { p: 90.0 },
                            ])
                            .unwrap();
                        let (mv, gh) = match &resps[0] {
                            QueryResponse::Meta {
                                version,
                                graph_hash,
                                ..
                            } => (*version, *graph_hash),
                            other => panic!("unexpected {other:?}"),
                        };
                        // Batch atomicity: every answer in the batch
                        // must come from the same snapshot version.
                        match &resps[1] {
                            QueryResponse::Ranked { version, .. } => {
                                assert_eq!(*version, mv, "torn batch")
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                        match &resps[2] {
                            QueryResponse::Value { version, .. } => {
                                assert_eq!(*version, mv, "torn batch")
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                        assert!(mv >= last_version, "version went backwards");
                        assert_ne!(gh, 0);
                        last_version = mv;
                        served += 3;
                    }
                    client.close();
                    served
                })
            })
            .collect();
        // Mutate concurrently with the readers.
        let mut writer = QueryClient::connect(&addr).unwrap();
        for (u, v) in [(0u32, 12u32), (3, 15), (6, 18), (9, 21)] {
            let r = writer
                .batch(&[QueryRequest::AddEdge { u, v }, QueryRequest::Flush])
                .unwrap();
            assert!(matches!(r[1], QueryResponse::Flushed { .. }));
        }
        stop.store(true, Ordering::Relaxed);
        let mut total = 0;
        for r in readers {
            total += r.join().unwrap();
        }
        writer.close();
        let stats = srv.stop();
        assert_eq!(stats.snapshots_published, 4);
        assert!(total > 0);
        assert!(stats.queries >= total);
    }
}
