//! The harvest side of a distributed execution: per-node summaries, the
//! canonical result assembly shared by every engine, and the public
//! [`DistBcResult`].
//!
//! This boundary exists so that *where* a run executed (in-process
//! serial/parallel, α-synchronizer, or remote shards over sockets) is
//! independent of *how* its observables become a result: all engines
//! produce identical [`NodeSummary`] streams and flow through
//! [`assemble_result`]'s single float pipeline, which is what makes
//! bit-identity across engines provable — and what lets the serving
//! layer ([`crate::snapshot`]) version results without caring which
//! engine produced them.

use crate::node::{AggInfo, DistBcNode};
use crate::sampling::{Estimator, SourceSelection};
use crate::schedule::{PhaseSchedule, Scheduling};
use bc_congest::{NetMetrics, PhaseStat};
use bc_numeric::FpParams;

/// Results of a distributed execution.
#[derive(Debug, Clone)]
pub struct DistBcResult {
    /// Betweenness centrality of every node (paper convention: each
    /// unordered pair counted once).
    pub betweenness: Vec<f64>,
    /// Closeness centrality (Eq. 1) — a free by-product: every node knows
    /// all its distances after the counting phase.
    pub closeness: Vec<f64>,
    /// Graph centrality (Eq. 2), likewise free.
    pub graph_centrality: Vec<f64>,
    /// Network diameter as computed and broadcast by the protocol.
    pub diameter: u32,
    /// Total rounds until every node halted — the paper's complexity
    /// measure (Theorem 3: `O(N)`).
    pub rounds: u64,
    /// The deterministic phase boundaries used.
    pub schedule: PhaseSchedule,
    /// Engine metrics: messages, bits, max message size, collisions (must
    /// be 0), cut flow.
    pub metrics: NetMetrics,
    /// Stress centralities (Eq. 3) when
    /// [`crate::DistBcConfig::compute_stress`] was set.
    pub stress: Option<Vec<f64>>,
    /// Number of BFS sources used (`N` for the exact algorithm).
    pub sample_size: usize,
    /// `max_s T_s − min_s T_s`: the spread of wave start times, which
    /// (plus `D`) is the aggregation phase's true length.
    pub ts_spread: u64,
    /// Round (relative to the counting start) at which the DFS token
    /// returned to the root — the counting phase's true length.
    pub counting_rounds_used: u64,
    /// Floating-point parameters used on the wire.
    pub fp: FpParams,
    /// Per-phase traffic breakdown (A tree build, B counting, C
    /// reduce/broadcast, D aggregation), sliced from the engine's
    /// per-round timelines at the provisioned phase boundaries. Empty for
    /// [`Scheduling::Adaptive`], whose boundaries are data-dependent and
    /// not provisioned up front.
    pub phase_stats: Vec<PhaseStat>,
    /// Total protocol-state bytes across all nodes at the end of the run
    /// (per-source arrays only grow, so this is also the peak).
    pub state_bytes_total: u64,
    /// Largest single-node protocol-state footprint in bytes.
    pub state_bytes_peak: u64,
}

/// The per-node observables the result assembly needs, decoupled from the
/// node state itself so the socket leader can collect them from remote
/// shards and still run the byte-identical float pipeline of
/// [`assemble_result`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct NodeSummary {
    /// The node's accumulated betweenness value.
    pub betweenness: f64,
    /// Raw directed dependency sum `Σ_{s∈S} δ̂_s(v)` (unscaled).
    pub delta_all: f64,
    /// Raw in-sample-target dependency sum (0.0 unless Ji–Yan ran).
    pub delta_in: f64,
    /// Integer sum of all (known) distances from sources to this node.
    pub dist_total: u64,
    /// Max distance seen (eccentricity over the source set).
    pub ecc: u32,
    /// Stress centrality (0.0 when not computed).
    pub stress: f64,
    /// Protocol-state footprint of the node, in bytes.
    pub state_bytes: u64,
}

/// The root-only observables (node 0 drives the schedule and holds the
/// globally reduced aggregation parameters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RootSummary {
    /// Number of BFS sources actually used.
    pub source_count: usize,
    /// The globally agreed `(base, min T_s, max T_s, D)`.
    pub agg: AggInfo,
    /// Round the DFS token returned to the root (pipelined modes).
    pub dfs_done_round: Option<u64>,
}

/// Extracts a [`NodeSummary`] from a finished node. The distance fold is
/// pure integer arithmetic, so summarizing on a remote shard and shipping
/// the summary is bit-exact with summarizing locally.
pub(crate) fn summarize_node(nd: &DistBcNode) -> NodeSummary {
    let (dist_total, ecc) = nd.distance_stats();
    NodeSummary {
        betweenness: nd.betweenness(),
        delta_all: nd.delta_all(),
        delta_in: nd.delta_in(),
        dist_total,
        ecc,
        stress: nd.stress().unwrap_or(0.0),
        state_bytes: nd.state_bytes(),
    }
}

/// Extracts the [`RootSummary`] from node 0 of a completed run.
///
/// # Panics
///
/// Panics if the node never received the aggregation broadcast — i.e. the
/// run did not actually complete.
pub(crate) fn summarize_root(nd: &DistBcNode) -> RootSummary {
    RootSummary {
        source_count: nd.source_count(),
        agg: nd.agg_info().expect("run completed"),
        dfs_done_round: nd.dfs_done_round(),
    }
}

/// The provisioned phase windows for a profile report (empty for
/// [`Scheduling::Adaptive`], whose boundaries are data-dependent).
pub(crate) fn profile_phases(
    scheduling: Scheduling,
    sched: &PhaseSchedule,
    rounds: u64,
) -> Vec<(String, u64, u64)> {
    if scheduling == Scheduling::Adaptive {
        Vec::new()
    } else {
        vec![
            ("A:tree".to_string(), 0, sched.counting_start),
            (
                "B:counting".to_string(),
                sched.counting_start,
                sched.reduce_start,
            ),
            (
                "C:reduce+bcast".to_string(),
                sched.reduce_start,
                sched.agg_start,
            ),
            ("D:aggregation".to_string(), sched.agg_start, rounds),
        ]
    }
}

/// Derives the [`DistBcResult`] from per-node summaries — the single
/// shared harvest path for the in-process engines and the socket leader,
/// so both produce bit-identical floats from identical summaries.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_result(
    n: usize,
    sources: &SourceSelection,
    estimator: Estimator,
    compute_stress: bool,
    scheduling: Scheduling,
    sched: PhaseSchedule,
    fp: FpParams,
    rounds: u64,
    metrics: NetMetrics,
    summaries: &[NodeSummary],
    root: &RootSummary,
) -> DistBcResult {
    let sample_size = root.source_count;
    let refined =
        estimator == Estimator::JiYan && matches!(sources, SourceSelection::Sample { .. });
    let betweenness: Vec<f64> = if refined {
        // Ji–Yan (arXiv:1608.04472): pairs with both endpoints in `S` are
        // counted exactly (`δ_in/2` — each unordered in-sample pair was
        // seen from both directions), mixed pairs exactly once
        // (`δ_all − δ_in`), and only the unobserved out-out pairs are
        // extrapolated from the mixed sum by `(N−k−1)/(2k)`. At `k = N`
        // the mixed sum is exactly 0.0 and the estimate is exact.
        let k = sample_size as f64;
        let out_factor = 1.0 + (n as f64 - k - 1.0) / (2.0 * k);
        summaries
            .iter()
            .map(|s| s.delta_in / 2.0 + (s.delta_all - s.delta_in) * out_factor)
            .collect()
    } else {
        summaries.iter().map(|s| s.betweenness).collect()
    };
    // With sampling, extrapolate the distance sum by N/k (the eccentricity
    // view stays a max over the sample); explicit masks are restricted
    // sums, not estimates.
    let dist_scale = match sources {
        SourceSelection::Sample { .. } => n as f64 / sample_size as f64,
        _ => 1.0,
    };
    let mut closeness = Vec::with_capacity(n);
    let mut graph_centrality = Vec::with_capacity(n);
    for s in summaries {
        closeness.push(if s.dist_total == 0 {
            0.0
        } else {
            1.0 / (s.dist_total as f64 * dist_scale)
        });
        graph_centrality.push(if s.ecc == 0 { 0.0 } else { 1.0 / s.ecc as f64 });
    }
    let stress = compute_stress.then(|| summaries.iter().map(|s| s.stress).collect());
    let info = root.agg;
    let counting_rounds_used = root
        .dfs_done_round
        .map(|r| r.saturating_sub(sched.counting_start))
        .unwrap_or(sched.reduce_start - sched.counting_start);
    let phase_stats = if scheduling == Scheduling::Adaptive {
        Vec::new()
    } else {
        vec![
            metrics.phase_window("A:tree", 0, sched.counting_start),
            metrics.phase_window("B:counting", sched.counting_start, sched.reduce_start),
            metrics.phase_window("C:reduce+bcast", sched.reduce_start, sched.agg_start),
            metrics.phase_window("D:aggregation", sched.agg_start, rounds),
        ]
    };
    let state_bytes_total = summaries.iter().map(|s| s.state_bytes).sum();
    let state_bytes_peak = summaries.iter().map(|s| s.state_bytes).max().unwrap_or(0);
    DistBcResult {
        betweenness,
        closeness,
        graph_centrality,
        diameter: info.d,
        rounds,
        schedule: sched,
        metrics,
        stress,
        sample_size,
        ts_spread: info.max_ts - info.min_ts,
        counting_rounds_used,
        fp,
        phase_stats,
        state_bytes_total,
        state_bytes_peak,
    }
}
