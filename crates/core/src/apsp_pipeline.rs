//! Token-pipelined all-pairs shortest paths — a DFS-free APSP in the
//! spirit of the pipelines in the paper's related work (Lenzen–Peleg
//! source detection, ref. \[7\]; Holzer's thesis, ref. \[15\]).
//!
//! Every node is a source and starts simultaneously. Each round, every
//! node broadcasts the lexicographically smallest `(distance, source)`
//! pair it knows and has not yet announced at that value. Unlike the
//! carefully staged variants in the literature (which is precisely why
//! the paper stages its counting phase with a DFS token!), simultaneous
//! greedy pipelining can deliver a *longer* path's token first under
//! congestion — an effect this implementation observed in practice — so a
//! node re-announces when a shorter distance later arrives
//! (Bellman–Ford-style relaxation). Distances still converge to exact
//! values, the execution stays CONGEST-compliant, and the measured round
//! counts remain ≈ `N + D` on every family we run (experiment E14), but
//! the tight `d + k` worst-case bound of ref. \[7\] is *not* claimed.
//!
//! This computes *distances only* (closeness, eccentricity, diameter —
//! the "easy" centralities of the paper's introduction). It does not
//! produce the simultaneous-arrival σ sums or the `T_s` schedule that
//! Algorithms 2–3 need, which is exactly why the paper bases betweenness
//! on the DFS-pipelined variant: this module makes that design choice
//! measurable.

use crate::codec::Codec;
use bc_congest::{Budget, Config, CongestError, Enforcement, Message, Network, Protocol, RoundCtx};
use bc_graph::{algo, Graph, NodeId};
use bc_numeric::bits::BitWriter;
use bc_numeric::FpParams;
use std::collections::BTreeSet;

/// Per-node state of the pipelined APSP protocol.
#[derive(Debug)]
pub struct ApspPipelineNode {
    id_w: u32,
    dist_w: u32,
    /// `dist[s]` = best known distance to source `s`.
    dist: Vec<Option<u32>>,
    /// Pairs `(distance, source)` known but not yet broadcast.
    pending: BTreeSet<(u32, u32)>,
}

impl ApspPipelineNode {
    /// Creates the initial state for one node of an `n`-node network.
    pub fn new(n: usize, me: NodeId) -> Self {
        let codec = Codec::new(n, FpParams::for_graph_size(n));
        let mut dist = vec![None; n];
        dist[me as usize] = Some(0);
        let mut pending = BTreeSet::new();
        pending.insert((0, me));
        ApspPipelineNode {
            id_w: codec.id_w,
            dist_w: codec.dist_w,
            dist,
            pending,
        }
    }

    /// Distances learned (`d(s, self)` per source).
    pub fn distances(&self) -> &[Option<u32>] {
        &self.dist
    }

    fn encode(&self, dist: u32, source: u32) -> Message {
        let mut w = BitWriter::new();
        w.push(dist as u64, self.dist_w);
        w.push(source as u64, self.id_w);
        Message::new(w.finish())
    }
}

impl Protocol for ApspPipelineNode {
    fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]) {
        for (_, raw) in inbox {
            let mut r = raw.payload().reader();
            let dist = r.read(self.dist_w) as u32 + 1;
            let source = r.read(self.id_w) as u32;
            let known = &mut self.dist[source as usize];
            let improved = match known {
                Some(d) => dist < *d,
                None => true,
            };
            if improved {
                // Relaxation: withdraw any stale pending announcement and
                // (re-)announce the better distance.
                if let Some(old) = *known {
                    self.pending.remove(&(old, source));
                }
                *known = Some(dist);
                self.pending.insert((dist, source));
            }
        }
        // Broadcast the smallest unsent (distance, source) pair.
        if let Some(&(dist, source)) = self.pending.iter().next() {
            self.pending.remove(&(dist, source));
            let msg = self.encode(dist, source);
            ctx.broadcast(&msg);
        }
    }

    fn is_halted(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Result of [`run_apsp_pipeline`].
#[derive(Debug, Clone)]
pub struct ApspPipelineResult {
    /// Closeness centralities (Eq. 1), from the learned distances.
    pub closeness: Vec<f64>,
    /// Eccentricity of every node.
    pub eccentricity: Vec<u32>,
    /// The diameter.
    pub diameter: u32,
    /// Rounds until quiescence.
    pub rounds: u64,
    /// Engine metrics (CONGEST-compliance, traffic).
    pub metrics: bc_congest::NetMetrics,
}

/// Runs the token-pipelined APSP on `g` and derives the distance-based
/// centralities. Measured cost is ≈ `N + D` rounds on every graph family
/// in the test suite (the worst case of the re-announcing variant is
/// higher; see the module docs); the protocol self-terminates when no
/// token or relaxation remains in flight.
///
/// # Errors
///
/// [`CongestError`] under strict enforcement (a protocol bug) or if the
/// graph is disconnected/empty (reported as a round-limit error by the
/// engine is avoided by an explicit connectivity check).
pub fn run_apsp_pipeline(g: &Graph) -> Result<ApspPipelineResult, CongestError> {
    assert!(g.n() > 0, "empty graph");
    assert!(
        algo::is_connected(g),
        "the pipelined APSP assumes a connected network"
    );
    let n = g.n();
    let cfg = Config {
        budget: Budget::Auto,
        enforcement: Enforcement::Strict,
        ..Config::default()
    };
    let mut net = Network::new(g, cfg, |v, _| ApspPipelineNode::new(n, v));
    let report = net.run(16 * n as u64 + 64)?;
    let metrics = net.metrics().clone();
    let nodes = net.into_nodes();
    let mut closeness = Vec::with_capacity(n);
    let mut eccentricity = Vec::with_capacity(n);
    for nd in &nodes {
        let mut total = 0u64;
        let mut ecc = 0u32;
        for d in nd.distances().iter().flatten() {
            total += *d as u64;
            ecc = ecc.max(*d);
        }
        closeness.push(if total == 0 { 0.0 } else { 1.0 / total as f64 });
        eccentricity.push(ecc);
    }
    let diameter = eccentricity.iter().copied().max().unwrap_or(0);
    Ok(ApspPipelineResult {
        closeness,
        eccentricity,
        diameter,
        rounds: report.rounds,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::generators;

    fn check(g: &Graph) {
        let out = run_apsp_pipeline(g).expect("runs");
        assert!(out.metrics.congest_compliant());
        let oracle = algo::apsp(g);
        let ecc = algo::eccentricities(g);
        for (v, (mine, truth)) in out.eccentricity.iter().zip(&ecc).enumerate() {
            assert_eq!(mine, truth, "ecc of {v}");
        }
        assert_eq!(out.diameter, algo::diameter(g));
        // Cross-check the distance sums via closeness.
        for (row, closeness) in oracle.iter().zip(&out.closeness) {
            let total: u64 = row.iter().map(|&d| d as u64).sum();
            if total > 0 {
                assert!((closeness - 1.0 / total as f64).abs() < 1e-12);
            }
        }
        // Measured rounds stay ≈ N + D with a small constant on these
        // families (the re-announcing variant has no tight worst-case
        // guarantee; this documents observed behaviour).
        assert!(
            out.rounds <= 3 * g.n() as u64 + algo::diameter(g) as u64 + 8,
            "rounds {} too high for n={}",
            out.rounds,
            g.n()
        );
    }

    #[test]
    fn matches_oracle_on_families() {
        check(&generators::path(20));
        check(&generators::cycle(17));
        check(&generators::star(16));
        check(&generators::grid(4, 5));
        check(&generators::complete(8));
        check(&generators::barbell(5, 3));
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..8 {
            check(&generators::erdos_renyi_connected(40, 0.08, seed));
            check(&generators::barabasi_albert(40, 2, seed));
            check(&generators::random_tree(32, seed));
        }
    }

    #[test]
    fn single_node() {
        let g = Graph::from_edges(1, []).unwrap();
        let out = run_apsp_pipeline(&g).unwrap();
        assert_eq!(out.diameter, 0);
        assert_eq!(out.closeness, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_rejected() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let _ = run_apsp_pipeline(&g);
    }

    #[test]
    fn faster_than_the_full_protocol_for_distances() {
        // Distance-only questions don't need the DFS token or the
        // aggregation phase: the pipeline answers them in ≈ N + D rounds
        // vs ≈ 10 N for the full betweenness run.
        let g = generators::erdos_renyi_connected(64, 0.07, 3);
        let apsp = run_apsp_pipeline(&g).unwrap();
        let full = crate::run_distributed_bc(&g, crate::DistBcConfig::default()).unwrap();
        assert!(apsp.rounds * 4 < full.rounds);
        assert_eq!(apsp.diameter, full.diameter);
        for (a, b) in apsp.closeness.iter().zip(&full.closeness) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
