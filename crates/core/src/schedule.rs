//! Global round schedule of the distributed algorithm.
//!
//! Every node knows `N` (the paper's model gives nodes `O(log N)`-bit ids
//! and the algorithms use `N`-dependent schedules), so all phase boundaries
//! below are pure functions of `N` that every node computes locally — no
//! extra synchronization messages are needed to switch phases.
//!
//! Phases:
//!
//! * **A — tree build** `[0, counting_start)`: BFS tree rooted at node 0
//!   (the paper roots it at an arbitrary vertex).
//! * **B — counting** (Algorithm 2) `[counting_start, reduce_start)`: a DFS
//!   token walks the tree; each first visit launches one pipelined BFS
//!   wave that computes `T_s`, `d(s,v)`, `σ_sv`, `P_s(v)` everywhere.
//! * **C1 — reduce** `[reduce_start, broadcast_start)`: convergecast of
//!   `(max T_s, D)` to the root (the paper's Algorithm 2 line 22).
//! * **C2 — broadcast** `[broadcast_start, agg_start)`: the root floods
//!   `(max T_s, D)` so every node can compute Algorithm 3's send times.
//! * **D — aggregation** (Algorithm 3) `[agg_start, …)`: node `u` sends,
//!   for each source `s`, at `agg_start + (T_s − min T_s) + D − d(s,u)` —
//!   a uniform shift of the paper's `T_s(u) = T_s + D − d(s,u)`, which
//!   preserves the collision-freeness argument of Lemma 4 (only
//!   differences of send times appear in it).
//!
//! Every bound is `O(N)` for [`Scheduling::DfsPipelined`], giving the
//! paper's `O(N)` total; the [`Scheduling::Sequential`] baseline provisions
//! `Θ(N²)` counting rounds (one BFS at a time), which is exactly the
//! ablation E10a measures.

/// Counting-phase scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// The paper's Algorithm 2: DFS-token-driven pipelined BFS waves;
    /// counting completes in `O(N)` rounds. Phase transitions use
    /// worst-case windows every node derives from `N` alone.
    #[default]
    DfsPipelined,
    /// Strawman baseline: sources run their BFS one at a time in fixed
    /// `N + 2`-round slots; counting takes `Θ(N²)` rounds. Used by the
    /// E10a ablation to show what the pipelining buys.
    Sequential,
    /// Event-driven extension: the same pipelined counting, but every
    /// phase transition is detected (subtree-done convergecast ends the
    /// tree build; the DFS token's return plus a `2·depth` drain bound
    /// ends counting; explicit start-reduce / agg-start floods carry the
    /// barrier rounds). Rounds become diameter-sensitive:
    /// ≈ `4D + 3N + spread` instead of ≈ `12N`, a large constant win on
    /// low-diameter graphs (experiment E13).
    Adaptive,
}

/// The deterministic phase boundaries for an `n`-node run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSchedule {
    /// Number of nodes.
    pub n: u64,
    /// Scheduling discipline.
    pub mode: Scheduling,
    /// First round of the counting phase (phase A occupies `[0, this)`).
    pub counting_start: u64,
    /// First round of the reduce convergecast; all waves and the DFS token
    /// are provably finished before this round.
    pub reduce_start: u64,
    /// Round in which the root broadcasts `(max T_s, D)`.
    pub broadcast_start: u64,
    /// Base round of the aggregation phase.
    pub agg_start: u64,
}

impl PhaseSchedule {
    /// Computes the schedule for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, mode: Scheduling) -> Self {
        assert!(n > 0, "schedule for an empty network");
        let n64 = n as u64;
        // Phase A: announcements reach depth ≤ n−1 by round n−1; parent
        // choices arrive one round later; +2 margin.
        let counting_start = n64 + 2;
        // Phase B window:
        // DfsPipelined: each of the n first visits costs 2 rounds (arrive,
        // wave with the token riding it) and each of the n−1 up-moves 1
        // round ⇒ token done by counting_start + 3n; last wave drains in
        // ≤ n more rounds; +8 margin.
        // Sequential: n slots of (n + 2) rounds each, +8 margin.
        let counting_window = match mode {
            Scheduling::DfsPipelined | Scheduling::Adaptive => 4 * n64 + 8,
            Scheduling::Sequential => n64 * (n64 + 2) + n64 + 8,
        };
        let reduce_start = counting_start + counting_window;
        // Convergecast depth ≤ n; +2 margin.
        let broadcast_start = reduce_start + n64 + 2;
        // Downward flood depth ≤ n; +2 margin.
        let agg_start = broadcast_start + n64 + 2;
        PhaseSchedule {
            n: n64,
            mode,
            counting_start,
            reduce_start,
            broadcast_start,
            agg_start,
        }
    }

    /// The wave start time of the *first* DFS visit (the root): it receives
    /// the (virtual) token at `counting_start`, waits one slot, and
    /// broadcasts at `counting_start + 1`. Also the minimum `T_s` in
    /// sequential mode (source 0's slot).
    pub fn min_ts(&self) -> u64 {
        self.counting_start + 1
    }

    /// In sequential mode, the wave start round of source `s`.
    pub fn sequential_ts(&self, s: u64) -> u64 {
        self.min_ts() + s * (self.n + 2)
    }

    /// Aggregation send round for a node at distance `d` from source `s`
    /// whose wave started at absolute round `ts` (Algorithm 3 line 3,
    /// shifted to start at [`PhaseSchedule::agg_start`]).
    pub fn agg_send_round(&self, ts: u64, diameter: u32, d: u32) -> u64 {
        self.agg_start + (ts - self.min_ts()) + diameter as u64 - d as u64
    }

    /// First round by which the whole aggregation (and thus the algorithm)
    /// is complete, given the globally reduced `max T_s` and diameter.
    pub fn agg_end(&self, max_ts: u64, diameter: u32) -> u64 {
        // Last send ≤ agg_start + (max_ts − min_ts) + D; +1 delivery, +1
        // processing.
        self.agg_start + (max_ts - self.min_ts()) + diameter as u64 + 2
    }

    /// Engine round cap: a loose upper bound on any run under this
    /// schedule (adaptive runs on high-diameter graphs can exceed the
    /// provisioned windows by a constant factor).
    pub fn max_rounds(&self) -> u64 {
        4 * (self.agg_start + (self.reduce_start - self.counting_start) + self.n) + 64
    }

    /// Per-node partition weights for the parallel engine's
    /// schedule-aware sharding (`Partition::ScheduleAware`).
    ///
    /// The weight estimates how much total work node `u` performs across
    /// the whole schedule, counted in message-handling units:
    ///
    /// * every BFS wave crosses each of `u`'s edges a constant number of
    ///   times (forward announce + sigma traffic), and the aggregation
    ///   phase sends `u`'s per-source partial once per tree edge — both
    ///   proportional to `deg(u) · |S|` for `|S|` sources;
    /// * `u` performs `|S|` per-source bookkeeping steps (its `T_s(u)`
    ///   schedule slots) regardless of degree;
    /// * tree build, reduce, and broadcast contribute a small
    ///   degree-independent constant.
    ///
    /// The absolute scale is irrelevant (only ratios drive the LPT
    /// packing), so the estimate is deliberately coarse:
    /// `deg(u) · (2 + |S|) + |S| + 4`, clamping source-count to ≥ 1.
    /// Nodes excluded from the source set still relay every wave, so the
    /// same formula applies to them; `sources` only sets `|S|`.
    pub fn partition_weights(&self, degrees: &[usize], sources: &[bool]) -> Vec<u64> {
        let s = sources.iter().filter(|&&b| b).count().max(1) as u64;
        degrees
            .iter()
            .map(|&d| d as u64 * (2 + s) + s + 4)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_monotone_and_linear() {
        for n in [1usize, 2, 5, 100, 1000] {
            let s = PhaseSchedule::new(n, Scheduling::DfsPipelined);
            assert!(s.counting_start < s.reduce_start);
            assert!(s.reduce_start < s.broadcast_start);
            assert!(s.broadcast_start < s.agg_start);
            // Linear in n: agg_start ≤ 9n + c.
            assert!(s.agg_start <= 9 * n as u64 + 32, "n={n}: {}", s.agg_start);
        }
    }

    #[test]
    fn sequential_is_quadratic() {
        let s = PhaseSchedule::new(100, Scheduling::Sequential);
        assert!(s.reduce_start > 100 * 100);
        let p = PhaseSchedule::new(100, Scheduling::DfsPipelined);
        assert!(s.reduce_start > 10 * p.reduce_start);
    }

    #[test]
    fn sequential_slots_disjoint_and_ordered() {
        let s = PhaseSchedule::new(50, Scheduling::Sequential);
        for src in 0..49u64 {
            let a = s.sequential_ts(src);
            let b = s.sequential_ts(src + 1);
            // Next slot starts after the previous wave fully drained
            // (≤ n − 1 rounds of propagation).
            assert!(b > a + s.n - 1);
        }
        // Last wave drains before the reduce phase.
        assert!(s.sequential_ts(49) + s.n < s.reduce_start);
    }

    #[test]
    fn agg_send_round_matches_paper_formula() {
        // Figure 1: T_{v1}(v4) = T_{v1} + D − d(v1,v4) = 0 + 3 − 3 = 0
        // relative to the aggregation base and the first wave.
        let s = PhaseSchedule::new(5, Scheduling::DfsPipelined);
        let tv1 = s.min_ts(); // v1 is the first DFS visit
        assert_eq!(s.agg_send_round(tv1, 3, 3), s.agg_start);
        assert_eq!(s.agg_send_round(tv1, 3, 1), s.agg_start + 2);
        // A later source shifts by its T_s offset.
        assert_eq!(s.agg_send_round(tv1 + 2, 3, 2), s.agg_start + 3);
    }

    #[test]
    fn agg_end_after_all_sends() {
        let s = PhaseSchedule::new(10, Scheduling::DfsPipelined);
        let max_ts = s.min_ts() + 30;
        let d = 4;
        // Any send (distance ≥ 1) is strictly before agg_end − 1.
        for ts in [s.min_ts(), max_ts] {
            for dist in 1..=d {
                assert!(s.agg_send_round(ts, d, dist) + 1 < s.agg_end(max_ts, d) + 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn zero_nodes_panics() {
        let _ = PhaseSchedule::new(0, Scheduling::DfsPipelined);
    }

    #[test]
    fn partition_weights_scale_with_degree_and_sources() {
        let s = PhaseSchedule::new(4, Scheduling::DfsPipelined);
        // Star: hub degree 3, leaves degree 1; all four nodes source.
        let w = s.partition_weights(&[3, 1, 1, 1], &[true; 4]);
        assert_eq!(w.len(), 4);
        assert!(w[0] > w[1]);
        assert_eq!(w[1], w[2]);
        // Halving the source set shrinks every weight.
        let w2 = s.partition_weights(&[3, 1, 1, 1], &[true, true, false, false]);
        assert!(w2[0] < w[0] && w2[1] < w[1]);
        // Degenerate all-false mask clamps |S| to 1 instead of zeroing.
        let w3 = s.partition_weights(&[3, 1, 1, 1], &[false; 4]);
        assert!(w3.iter().all(|&x| x > 0));
    }
}
