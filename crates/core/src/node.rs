//! The per-node state machine of the distributed algorithm.
//!
//! One [`DistBcNode`] runs at every vertex and advances through the phases
//! of [`crate::schedule::PhaseSchedule`]:
//!
//! * **Tree build** — synchronous BFS flooding from node 0; each node
//!   learns its parent, children, and depth.
//! * **Counting (Algorithm 2)** — a DFS token walks the tree. A node first
//!   visited at round `r` waits one slot and broadcasts its BFS wave at
//!   `T_s = r + 1`; waves from different sources are pipelined and, by the
//!   triangle-inequality argument of Lemma 4 (and Holzer–Wattenhofer's
//!   token-lags-behind-waves invariant), no two messages ever share a
//!   directed edge in a round. Each node ends up with
//!   `(T_s, d(s,v), σ̂_sv, P_s(v))` for every source `s` — the list `L_v`
//!   of Algorithm 2 — with `σ̂` carried in the paper's `L`-bit floating
//!   point (Section VI).
//! * **Reduce / broadcast** — `(max T_s, D)` is convergecast to the root
//!   and flooded back (Algorithm 2 line 22's diameter broadcast).
//! * **Aggregation (Algorithm 3)** — node `u` sends
//!   `1/σ̂_su + ψ̂_s(u)` to each predecessor in `P_s(u)` at round
//!   `agg_start + (T_s − min T_s) + D − d(s,u)`, accumulating incoming
//!   values into `ψ̂_s(u)` (Eq. 14). When it sends for source `s` it also
//!   locally finalizes `δ̂_s·(u) = ψ̂_s(u) · σ̂_su` and adds it to its
//!   betweenness accumulator (Algorithm 3 lines 16–18).
//!
//! Two extensions beyond the paper's pseudocode, both opt-in:
//!
//! * **Stress centrality** (the paper's footnote 3): aggregation messages
//!   additionally carry `1 + ρ̂_s(u)` where
//!   `ρ_s(v) = Σ_{w: v ∈ P_s(w)} (1 + ρ_s(w))`; then
//!   `C_S`-dependency is `σ̂_sv · ρ̂_s(v)`. Same schedule, one message.
//! * **Sampled sources** (the related-work approximation): only a
//!   deterministic pseudo-random subset of `k` nodes launch waves, and
//!   betweenness is extrapolated by `N/k`. Sampling is coordination-free —
//!   every node recomputes the same sample locally.

use crate::codec::{Codec, ProtocolMsg};
use crate::sampling::{Estimator, SourceIndex, SourceSelection};
use crate::schedule::{PhaseSchedule, Scheduling};
use bc_congest::trace::ProtocolDetail;
use bc_congest::{Message, Protocol, RoundCtx};
use bc_numeric::{CeilFloat, FpParams};
use std::sync::Arc;

/// First-contact wave messages for one source in one round:
/// `(port, sender distance, σ̂)` per predecessor.
type WaveBatch = Vec<(usize, u32, CeilFloat)>;

/// The globally agreed aggregation parameters, fixed by the root's
/// `AggStart` broadcast: a common base round plus the reduced
/// `(min T_s, max T_s, D)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggInfo {
    /// Common base round of the aggregation phase.
    pub base: u64,
    /// Global minimum wave start round.
    pub min_ts: u64,
    /// Global maximum wave start round.
    pub max_ts: u64,
    /// The diameter (with [`SourceSelection::All`]) or sampled horizon.
    pub d: u32,
}

impl AggInfo {
    /// Algorithm 3 line 3: the send round of a node at distance `dist`
    /// from a source whose wave started at `ts`.
    fn send_round(&self, ts: u64, dist: u32) -> u64 {
        self.base + (ts - self.min_ts) + self.d as u64 - dist as u64
    }

    /// First round by which all aggregation messages are processed.
    fn end_round(&self) -> u64 {
        self.base + (self.max_ts - self.min_ts) + self.d as u64 + 2
    }
}

/// Algorithm-level options shared by every node of a run (engine-level
/// options live in [`crate::DistBcConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoOptions {
    /// Floating-point parameters for σ/ψ values on the wire.
    pub fp: FpParams,
    /// Counting-phase scheduling discipline.
    pub scheduling: Scheduling,
    /// Also compute stress centrality (Eq. 3) in the same pass.
    pub compute_stress: bool,
    /// Which nodes act as BFS sources.
    pub sources: SourceSelection,
    /// Which nodes count as shortest-path *targets* (`None` = all): the
    /// `1/σ` (resp. `1`) own-term of Eq. 14 is emitted only by targets.
    /// The weighted extension restricts targets to original nodes.
    pub targets: Option<std::sync::Arc<[bool]>>,
    /// How sampled runs fold dependencies into an estimate. Only
    /// meaningful with [`SourceSelection::Sample`].
    pub estimator: Estimator,
    /// Precomputed dense source remap, shared across all nodes of a run.
    /// `None` means "build it locally from `sources`" — the result is
    /// identical either way (the index is a pure function of the
    /// selection), sharing just saves the per-node rebuild.
    pub source_index: Option<Arc<SourceIndex>>,
}

impl AlgoOptions {
    /// The paper's configuration for an `n`-node network: `L = Θ(log N)`
    /// ceiling floats, pipelined scheduling, all sources, no extensions.
    pub fn for_graph_size(n: usize) -> Self {
        AlgoOptions {
            fp: FpParams::for_graph_size(n),
            scheduling: Scheduling::DfsPipelined,
            compute_stress: false,
            sources: SourceSelection::All,
            targets: None,
            estimator: Estimator::default(),
            source_index: None,
        }
    }
}

/// Protocol state of one node.
#[derive(Debug)]
pub struct DistBcNode {
    /// This node's id (also available as `ctx.id()`; stored so
    /// [`Protocol::idle_at`] can answer without a context).
    me: u32,
    /// Network size `N` (per-source arrays below are `O(|S|)`, not `O(N)`).
    n: usize,
    codec: Codec,
    sched: PhaseSchedule,
    opts: AlgoOptions,
    /// Dense remap of sampled source ids (same at every node).
    src_index: Arc<SourceIndex>,
    /// Whether this node is itself a source.
    is_source_self: bool,
    /// Ji–Yan refinement active: track the in-sample-target dependency
    /// sum `ψ_in` alongside `ψ` (sampled runs only).
    refined: bool,
    // Phase A.
    tree_dist: Option<u32>,
    parent_port: Option<usize>,
    children_ports: Vec<usize>,
    announce_round: Option<u64>,
    // Adaptive phase-A termination detection.
    children_done: usize,
    subtree_done_sent: bool,
    subtree_max_depth: u32,
    /// Root only: global tree depth, once all subtrees reported.
    tree_depth: Option<u32>,
    /// Root only: the round to flood `StartReduce` (counting + drain over).
    start_reduce_round: Option<u64>,
    // Phase B: per-source state as a struct-of-arrays keyed by the dense
    // source index (`L_v` of Algorithm 2, memory-dieted to O(|S|)).
    /// Bitset over dense indices: which sources' waves reached this node.
    seen: Vec<u64>,
    /// `T_s` per dense index (valid iff seen).
    ts: Vec<u64>,
    /// `d(s, v)` per dense index (valid iff seen).
    dist: Vec<u32>,
    /// `σ̂_sv` per dense index (valid iff seen).
    sigma: Vec<CeilFloat>,
    /// Accumulated `ψ̂_s(v)` (Eq. 14) per dense index.
    psi: Vec<CeilFloat>,
    /// Accumulated `ρ̂_s(v)` per dense index (empty unless stress).
    rho: Vec<CeilFloat>,
    /// Accumulated in-sample-target `ψ̂^S_s(v)` per dense index (empty
    /// unless `refined`).
    psi_in: Vec<CeilFloat>,
    /// CSR predecessor-port lists: `pred_arena[pred_start[i]..][..pred_len[i]]`
    /// holds `P_s(v)` for dense index `i`. Valid because each source's
    /// first-contact wave batch arrives in exactly one round (Lemma 4), so
    /// the arena is bump-appended once per source.
    pred_start: Vec<u32>,
    pred_len: Vec<u32>,
    pred_arena: Vec<u32>,
    visited: bool,
    wave_round: Option<u64>,
    token_forward_round: Option<u64>,
    next_child: usize,
    dfs_done_round: Option<u64>,
    // Phase C.
    reduce_armed: bool,
    reduce_sent: bool,
    reduce_received: usize,
    acc_min_ts: u64,
    acc_max_ts: u64,
    acc_max_d: u32,
    agg_info: Option<AggInfo>,
    agg_announced: bool,
    /// Flat `(send round, global source id)` schedule, sorted ascending and
    /// consumed front-to-back by `agg_cursor` — deterministic iteration
    /// order by construction, no hashing in the round hot path.
    agg_schedule: Vec<(u64, u32)>,
    agg_cursor: usize,
    // Per-round staging: wave sends (at most one per port — Lemma 4) and
    // an optional token move, merged at flush into `WaveWithToken` when
    // they share an edge so the token travels at wave speed without
    // collisions.
    out_waves: Vec<(usize, u32, u32, CeilFloat)>,
    out_token: Option<usize>,
    // Results.
    delta_sum: f64,
    delta_in_sum: f64,
    stress_sum: f64,
    done: bool,
}

impl DistBcNode {
    /// Creates the initial state for one node (id `me`) of an `n`-node
    /// network.
    pub fn new(n: usize, me: u32, opts: AlgoOptions) -> Self {
        // The index is a pure function of the (coordination-free) source
        // selection; runs share one Arc, ad-hoc constructions rebuild it.
        let src_index = opts
            .source_index
            .clone()
            .unwrap_or_else(|| Arc::new(SourceIndex::build(&opts.sources, n)));
        debug_assert_eq!(src_index.n(), n, "source index built for wrong n");
        let k = src_index.len();
        let refined = opts.estimator == Estimator::JiYan
            && matches!(opts.sources, SourceSelection::Sample { .. });
        let zero = CeilFloat::zero(opts.fp);
        DistBcNode {
            me,
            n,
            codec: Codec::new(n, opts.fp),
            sched: PhaseSchedule::new(n, opts.scheduling),
            is_source_self: src_index.contains(me),
            refined,
            seen: vec![0u64; k.div_ceil(64)],
            ts: vec![0; k],
            dist: vec![0; k],
            sigma: vec![zero; k],
            psi: vec![zero; k],
            rho: if opts.compute_stress {
                vec![zero; k]
            } else {
                Vec::new()
            },
            psi_in: if refined { vec![zero; k] } else { Vec::new() },
            pred_start: vec![0; k],
            pred_len: vec![0; k],
            pred_arena: Vec::new(),
            src_index,
            opts,
            tree_dist: None,
            parent_port: None,
            children_ports: Vec::new(),
            announce_round: None,
            children_done: 0,
            subtree_done_sent: false,
            subtree_max_depth: 0,
            tree_depth: None,
            start_reduce_round: None,
            visited: false,
            wave_round: None,
            token_forward_round: None,
            next_child: 0,
            dfs_done_round: None,
            reduce_armed: false,
            reduce_sent: false,
            reduce_received: 0,
            acc_min_ts: u64::MAX,
            acc_max_ts: 0,
            acc_max_d: 0,
            agg_info: None,
            agg_announced: false,
            agg_schedule: Vec::new(),
            agg_cursor: 0,
            out_waves: Vec::new(),
            out_token: None,
            delta_sum: 0.0,
            delta_in_sum: 0.0,
            stress_sum: 0.0,
            done: false,
        }
    }

    /// Whether the wave of dense source `i` has reached this node.
    #[inline]
    fn seen(&self, i: u32) -> bool {
        self.seen[i as usize / 64] >> (i % 64) & 1 != 0
    }

    #[inline]
    fn mark_seen(&mut self, i: u32) {
        self.seen[i as usize / 64] |= 1 << (i % 64);
    }

    /// Extrapolation factor: `N / |S|` when sampling, 1 otherwise
    /// (explicit masks are restricted sums, not estimates).
    fn scale(&self) -> f64 {
        match self.opts.sources {
            SourceSelection::Sample { .. } => self.n as f64 / self.src_index.len() as f64,
            _ => 1.0,
        }
    }

    /// Whether this node counts as a shortest-path target.
    fn is_target(&self, me: u32) -> bool {
        self.opts.targets.as_ref().is_none_or(|m| m[me as usize])
    }

    /// Betweenness centrality of this node (paper convention: unordered
    /// pairs, i.e. the directed dependency sum halved). With sampled
    /// sources this is the `N/k`-scaled estimate.
    pub fn betweenness(&self) -> f64 {
        self.delta_sum * self.scale() / 2.0
    }

    /// Stress centrality (Eq. 3) under the same conventions, if the run
    /// computed it.
    pub fn stress(&self) -> Option<f64> {
        self.opts
            .compute_stress
            .then(|| self.stress_sum * self.scale() / 2.0)
    }

    /// Raw directed dependency sum `Σ_{s∈S} δ̂_s(v)` (unscaled).
    pub fn delta_all(&self) -> f64 {
        self.delta_sum
    }

    /// Raw in-sample-target dependency sum `Σ_{s∈S} δ̂^S_s(v)` — zero
    /// unless the run used the Ji–Yan estimator.
    pub fn delta_in(&self) -> f64 {
        self.delta_in_sum
    }

    /// Dense index of global source id `s`, if `s` is a source whose wave
    /// reached this node.
    #[inline]
    fn seen_index(&self, s: u32) -> Option<u32> {
        self.src_index.index_of(s).filter(|&i| self.seen(i))
    }

    /// `d(s, self)` for every node `s` (`None` for non-sources or, on
    /// disconnected graphs, unreachable ones).
    pub fn distances(&self) -> Vec<Option<u32>> {
        (0..self.n as u32)
            .map(|s| self.seen_index(s).map(|i| self.dist[i as usize]))
            .collect()
    }

    /// `(Σ_s d(s,v), max_s d(s,v))` over seen sources — the O(|S|)
    /// harvest used for result assembly (no O(N) materialization).
    pub fn distance_stats(&self) -> (u64, u32) {
        let mut total = 0u64;
        let mut ecc = 0u32;
        for i in 0..self.src_index.len() as u32 {
            if self.seen(i) {
                let d = self.dist[i as usize];
                total += d as u64;
                ecc = ecc.max(d);
            }
        }
        (total, ecc)
    }

    /// Heap + inline bytes of this node's protocol state: the measured
    /// footprint behind the `state_bytes` telemetry. Arrays only grow over
    /// a run, so the end-of-run value is the peak. The source remap is one
    /// `Arc` shared by every node in the process, so each node carries its
    /// `1/N` share of it rather than the full `O(N)` table.
    pub fn state_bytes(&self) -> u64 {
        use std::mem::{size_of, size_of_val};
        fn heap<T>(v: &[T]) -> u64 {
            size_of_val(v) as u64
        }
        let shared_index =
            heap(self.src_index.ids()) + self.src_index.n() as u64 * size_of::<u32>() as u64;
        size_of::<Self>() as u64
            + heap(&self.seen)
            + heap(&self.ts)
            + heap(&self.dist)
            + heap(&self.sigma)
            + heap(&self.psi)
            + heap(&self.rho)
            + heap(&self.psi_in)
            + heap(&self.pred_start)
            + heap(&self.pred_len)
            + heap(&self.pred_arena)
            + heap(&self.agg_schedule)
            + heap(&self.children_ports)
            + shared_index.div_ceil(self.n as u64)
    }

    /// `σ̂_{s,self}` as learned during counting.
    pub fn sigma_to(&self, s: u32) -> Option<CeilFloat> {
        self.seen_index(s).map(|i| self.sigma[i as usize])
    }

    /// Absolute wave start round `T_s` observed for source `s`.
    pub fn ts_of(&self, s: u32) -> Option<u64> {
        self.seen_index(s).map(|i| self.ts[i as usize])
    }

    /// The globally agreed aggregation parameters, once broadcast.
    pub fn agg_info(&self) -> Option<AggInfo> {
        self.agg_info
    }

    /// Network diameter as broadcast by the root (exact with
    /// [`SourceSelection::All`]; a lower bound under sampling).
    pub fn diameter(&self) -> Option<u32> {
        self.agg_info.map(|i| i.d)
    }

    /// Port of the tree parent (None for the root).
    pub fn tree_parent(&self) -> Option<usize> {
        self.parent_port
    }

    /// Number of BFS sources in this run.
    pub fn source_count(&self) -> usize {
        self.src_index.len()
    }

    /// The round the DFS token returned to the root (root only): the
    /// *actual* end of the counting phase, as opposed to the provisioned
    /// window.
    pub fn dfs_done_round(&self) -> Option<u64> {
        self.dfs_done_round
    }

    fn send_pm(&self, ctx: &mut RoundCtx<'_>, port: usize, msg: &ProtocolMsg) {
        ctx.send(port, self.codec.encode(msg));
    }

    /// Phase A: adopt a tree depth and announce it (flagging the parent).
    fn announce_tree(&mut self, ctx: &mut RoundCtx<'_>, r: u64, dist: u32) {
        ctx.trace(ProtocolDetail::PhaseEnter { phase: 'A' });
        self.tree_dist = Some(dist);
        self.announce_round = Some(r);
        self.subtree_max_depth = dist;
        for port in 0..ctx.degree() {
            let msg = ProtocolMsg::TreeAnnounce {
                dist,
                chooses_you: Some(port) == self.parent_port,
            };
            self.send_pm(ctx, port, &msg);
        }
    }

    /// Adaptive phase-A termination: once this node's children are known
    /// (exactly two rounds after its announce) and all have reported their
    /// subtrees complete, report upward — or, at the root, record the tree
    /// depth and launch the DFS immediately.
    fn maybe_finish_tree(&mut self, ctx: &mut RoundCtx<'_>, r: u64) {
        if self.opts.scheduling != Scheduling::Adaptive || self.subtree_done_sent {
            return;
        }
        let Some(announced) = self.announce_round else {
            return;
        };
        if r < announced + 2 || self.children_done < self.children_ports.len() {
            return;
        }
        self.subtree_done_sent = true;
        if let Some(p) = self.parent_port {
            let msg = ProtocolMsg::SubtreeDone {
                max_depth: self.subtree_max_depth,
            };
            self.send_pm(ctx, p, &msg);
        } else {
            // Root: phase A is globally complete; start counting now. The
            // token departs riding the root's own wave.
            self.tree_depth = Some(self.subtree_max_depth);
            self.visited = true;
            ctx.trace(ProtocolDetail::PhaseEnter { phase: 'B' });
            self.wave_round = Some(r + 1);
            self.token_forward_round = Some(r + 1);
        }
    }

    /// Arms the reduce convergecast: local (min, max) of wave start times
    /// and the local max distance (all waves are complete by now).
    fn arm_reduce(&mut self, ctx: &mut RoundCtx<'_>) {
        if self.reduce_armed {
            return;
        }
        self.reduce_armed = true;
        ctx.trace(ProtocolDetail::PhaseEnter { phase: 'C' });
        for i in 0..self.src_index.len() as u32 {
            if self.seen(i) {
                self.acc_min_ts = self.acc_min_ts.min(self.ts[i as usize]);
                self.acc_max_ts = self.acc_max_ts.max(self.ts[i as usize]);
                self.acc_max_d = self.acc_max_d.max(self.dist[i as usize]);
            }
        }
    }

    /// Phase B: broadcast this node's own BFS wave and register itself as a
    /// source (Algorithm 2 lines 2–6).
    fn start_own_wave(&mut self, ctx: &mut RoundCtx<'_>, r: u64) {
        ctx.trace(ProtocolDetail::WaveStart { ts: r });
        let one = CeilFloat::one(self.codec.fp);
        let i = self
            .src_index
            .index_of(ctx.id())
            .expect("own wave from a non-source") as usize;
        self.ts[i] = r;
        self.dist[i] = 0;
        self.sigma[i] = one;
        self.pred_start[i] = self.pred_arena.len() as u32;
        self.pred_len[i] = 0;
        self.mark_seen(i as u32);
        for port in 0..ctx.degree() {
            self.out_waves.push((port, ctx.id(), 0, one));
        }
    }

    /// Phase B: move the DFS token onward — next unvisited child, else back
    /// to the parent, else (at the root) the traversal is complete. The
    /// move is staged; [`DistBcNode::flush_counting_sends`] merges it with
    /// a same-edge wave if one is staged this round.
    fn forward_token(&mut self, r: u64) {
        debug_assert!(self.out_token.is_none(), "token moved twice in a round");
        if self.next_child < self.children_ports.len() {
            let port = self.children_ports[self.next_child];
            self.next_child += 1;
            self.out_token = Some(port);
        } else if let Some(p) = self.parent_port {
            self.out_token = Some(p);
        } else {
            self.dfs_done_round = Some(r);
        }
    }

    /// Ships this round's staged counting-phase messages, merging the token
    /// into a same-edge wave (`WaveWithToken`) when possible.
    fn flush_counting_sends(&mut self, ctx: &mut RoundCtx<'_>) {
        let token_port = self.out_token.take();
        if let Some(port) = token_port {
            let to = ctx.neighbor(port);
            ctx.trace(ProtocolDetail::TokenSend { to });
        }
        let mut token_merged = false;
        for (port, source, sender_dist, sigma) in std::mem::take(&mut self.out_waves) {
            let msg = if token_port == Some(port) {
                token_merged = true;
                ProtocolMsg::WaveWithToken {
                    source,
                    sender_dist,
                    sigma,
                }
            } else {
                ProtocolMsg::Wave {
                    source,
                    sender_dist,
                    sigma,
                }
            };
            self.send_pm(ctx, port, &msg);
        }
        if let (Some(port), false) = (token_port, token_merged) {
            self.send_pm(ctx, port, &ProtocolMsg::Token);
        }
    }

    /// Phase B: a batch of first-contact wave messages for source `s`
    /// (all from predecessors, all in the same round — Lemma 4's timing).
    fn absorb_wave(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        r: u64,
        source: u32,
        batch: &[(usize, u32, CeilFloat)],
    ) {
        debug_assert!(!batch.is_empty());
        let dist = batch[0].1 + 1;
        debug_assert!(
            batch.iter().all(|&(_, d, _)| d + 1 == dist),
            "mixed-distance wave batch"
        );
        let mut sigma = CeilFloat::zero(self.codec.fp);
        let i = self
            .src_index
            .index_of(source)
            .expect("dispatch checked membership") as usize;
        // Bump-append the predecessor ports: this is the only round this
        // source's list is written, so the CSR slice stays contiguous.
        self.pred_start[i] = self.pred_arena.len() as u32;
        self.pred_len[i] = batch.len() as u32;
        for &(port, _, s) in batch {
            sigma += s;
            self.pred_arena.push(port as u32);
        }
        self.ts[i] = r - dist as u64;
        self.dist[i] = dist;
        self.sigma[i] = sigma;
        self.mark_seen(i as u32);
        for port in 0..ctx.degree() {
            self.out_waves.push((port, source, dist, sigma));
        }
    }

    /// Phase C1: send the subtree extrema to the parent once armed and all
    /// children reported; the root finalizes the global `AggInfo` instead.
    fn maybe_finish_reduce(&mut self, ctx: &mut RoundCtx<'_>, r: u64) {
        if self.reduce_sent
            || !self.reduce_armed
            || self.reduce_received < self.children_ports.len()
        {
            return;
        }
        self.reduce_sent = true;
        if let Some(p) = self.parent_port {
            let msg = ProtocolMsg::Reduce {
                min_ts: self.acc_min_ts,
                max_ts: self.acc_max_ts,
                max_d: self.acc_max_d,
            };
            self.send_pm(ctx, p, &msg);
        } else {
            // Root: the reduced triple is global. The aggregation base is
            // the deterministic window in provisioned modes; in adaptive
            // mode, far enough ahead for the AggStart flood (depth + slack)
            // to reach everyone first.
            let base = match self.opts.scheduling {
                Scheduling::Adaptive => r + self.tree_depth.unwrap_or(self.n as u32) as u64 + 2,
                _ => self.sched.agg_start,
            };
            self.agg_info = Some(AggInfo {
                base,
                min_ts: self.acc_min_ts,
                max_ts: self.acc_max_ts,
                d: self.acc_max_d,
            });
        }
    }

    /// Phase C2/D setup: with the global [`AggInfo`] known, precompute this
    /// node's aggregation send rounds (Algorithm 3 line 3).
    fn build_agg_schedule(&mut self, my_id: u32) {
        let info = self.agg_info.expect("agg info set");
        self.agg_schedule.reserve(self.src_index.len());
        for i in 0..self.src_index.len() as u32 {
            let s = self.src_index.id_of(i);
            if s == my_id || !self.seen(i) {
                continue;
            }
            let round = info.send_round(self.ts[i as usize], self.dist[i as usize]);
            self.agg_schedule.push((round, s));
        }
        // Keys are unique (one entry per source), so this yields exactly
        // the old HashMap iteration: ascending rounds, ascending ids
        // within a round — the bit-identity-critical send order.
        self.agg_schedule.sort_unstable();
    }

    /// Phase D: finalize source `s` (its ψ/ρ are complete), add its
    /// dependency contributions, and ship the values to the predecessors.
    fn aggregate_and_send(&mut self, ctx: &mut RoundCtx<'_>, s: u32) {
        ctx.trace(ProtocolDetail::AggSend { source: s });
        let zero = CeilFloat::zero(self.codec.fp);
        let one = CeilFloat::one(self.codec.fp);
        let is_target = self.is_target(ctx.id());
        let i = self.src_index.index_of(s).expect("scheduled source exists") as usize;
        debug_assert!(self.seen(i as u32), "scheduled source was seen");
        let (sigma, psi) = (self.sigma[i], self.psi[i]);
        // δ̂_s·(u) = ψ̂_s(u)·σ̂_su — ψ is complete at this round (all
        // descendants sent one round earlier).
        self.delta_sum += (psi * sigma).to_f64();
        // The own-term of Eq. 14 (1/σ) is contributed only by targets:
        // restricting it projects out virtual nodes in the weighted
        // extension.
        let own_psi = if is_target { sigma.recip() } else { zero };
        let psi_msg = own_psi + psi;
        let msg = if self.opts.compute_stress {
            let rho = self.rho[i];
            self.stress_sum += (rho * sigma).to_f64();
            let own_rho = if is_target { one } else { zero };
            ProtocolMsg::AggWithStress {
                source: s,
                psi: psi_msg,
                rho: own_rho + rho,
            }
        } else if self.refined {
            // Ji–Yan: the ψ_in own-term is emitted only when this node is
            // itself in the sample (targets restricted to S).
            let psi_in = self.psi_in[i];
            self.delta_in_sum += (psi_in * sigma).to_f64();
            let own_in = if is_target && self.is_source_self {
                sigma.recip()
            } else {
                zero
            };
            ProtocolMsg::AggRefined {
                source: s,
                psi: psi_msg,
                psi_in: own_in + psi_in,
            }
        } else {
            ProtocolMsg::Agg {
                source: s,
                value: psi_msg,
            }
        };
        let start = self.pred_start[i] as usize;
        let len = self.pred_len[i] as usize;
        for k in start..start + len {
            self.send_pm(ctx, self.pred_arena[k] as usize, &msg);
        }
    }

    /// Extracts the (uniform) announced depth from this round's
    /// tree-announce messages.
    fn tree_dist_from_inbox(&self, inbox: &[(usize, Message)]) -> u32 {
        for (_, raw) in inbox {
            if let Ok(ProtocolMsg::TreeAnnounce { dist, .. }) = self.codec.decode(raw) {
                return dist + 1;
            }
        }
        unreachable!("caller guarantees an announce is present")
    }
}

impl Protocol for DistBcNode {
    fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]) {
        let r = ctx.round();
        let my_id = ctx.id();

        // ---- 1. Decode and dispatch the inbox. -------------------------
        let mut new_waves: Vec<(u32, WaveBatch)> = Vec::new();
        let mut token_arrived = false;
        let mut got_agg_start: Option<AggInfo> = None;
        let mut got_start_reduce = false;
        let mut first_announce_batch: Vec<usize> = Vec::new();
        for (port, raw) in inbox {
            // A corrupt payload becomes a CongestError::NodePanic naming
            // this node and round, not a process abort.
            let decoded = match self.codec.decode(raw) {
                Ok(m) => m,
                Err(e) => panic!("undecodable message on port {port}: {e}"),
            };
            match decoded {
                ProtocolMsg::TreeAnnounce {
                    dist: _,
                    chooses_you,
                } => {
                    if chooses_you {
                        self.children_ports.push(*port);
                    }
                    if self.tree_dist.is_none() {
                        first_announce_batch.push(*port);
                    }
                }
                ProtocolMsg::Token => token_arrived = true,
                decoded @ (ProtocolMsg::Wave {
                    source,
                    sender_dist,
                    sigma,
                }
                | ProtocolMsg::WaveWithToken {
                    source,
                    sender_dist,
                    sigma,
                }) => {
                    if matches!(decoded, ProtocolMsg::WaveWithToken { .. }) {
                        token_arrived = true;
                    }
                    // Waves for unindexed ids (possible only via best-effort
                    // corruption) are dropped: there is no slot to store
                    // them, and they can't be legitimate first contacts.
                    if self
                        .src_index
                        .index_of(source)
                        .is_some_and(|i| !self.seen(i))
                    {
                        match new_waves.iter_mut().find(|(s, _)| *s == source) {
                            Some((_, batch)) => batch.push((*port, sender_dist, sigma)),
                            None => new_waves.push((source, vec![(*port, sender_dist, sigma)])),
                        }
                    }
                }
                ProtocolMsg::Reduce {
                    min_ts,
                    max_ts,
                    max_d,
                } => {
                    self.reduce_received += 1;
                    self.acc_min_ts = self.acc_min_ts.min(min_ts);
                    self.acc_max_ts = self.acc_max_ts.max(max_ts);
                    self.acc_max_d = self.acc_max_d.max(max_d);
                }
                ProtocolMsg::AggStart {
                    base,
                    min_ts,
                    max_ts,
                    d,
                } => {
                    got_agg_start = Some(AggInfo {
                        base,
                        min_ts,
                        max_ts,
                        d,
                    });
                }
                ProtocolMsg::StartReduce => got_start_reduce = true,
                ProtocolMsg::SubtreeDone { max_depth } => {
                    self.children_done += 1;
                    self.subtree_max_depth = self.subtree_max_depth.max(max_depth);
                }
                ProtocolMsg::Agg { source, value } => {
                    if let Some(i) = self.seen_index(source) {
                        self.psi[i as usize] += value;
                    }
                }
                ProtocolMsg::AggWithStress { source, psi, rho } => {
                    if let Some(i) = self.seen_index(source) {
                        self.psi[i as usize] += psi;
                        if self.opts.compute_stress {
                            self.rho[i as usize] += rho;
                        }
                    }
                }
                ProtocolMsg::AggRefined {
                    source,
                    psi,
                    psi_in,
                } => {
                    if let Some(i) = self.seen_index(source) {
                        self.psi[i as usize] += psi;
                        if self.refined {
                            self.psi_in[i as usize] += psi_in;
                        }
                    }
                }
            }
        }

        // ---- 2. Phase A: tree build. ------------------------------------
        if r == 0 && my_id == 0 {
            self.announce_tree(ctx, r, 0);
        } else if self.tree_dist.is_none() && !first_announce_batch.is_empty() {
            // All announces in one round carry the same depth (synchronous
            // BFS); adopt the lowest-port sender as parent.
            self.parent_port = Some(first_announce_batch[0]);
            let dist = self.tree_dist_from_inbox(inbox);
            self.announce_tree(ctx, r, dist);
        }
        self.maybe_finish_tree(ctx, r);

        // ---- 3. Phase B: counting. --------------------------------------
        if token_arrived {
            ctx.trace(ProtocolDetail::TokenReceive);
        }
        match self.opts.scheduling {
            // Adaptive mode reuses the DFS pipeline; the root's virtual
            // token arrival is produced by maybe_finish_tree instead of the
            // provisioned window.
            Scheduling::DfsPipelined | Scheduling::Adaptive => {
                let virtual_root_arrival = self.opts.scheduling == Scheduling::DfsPipelined
                    && r == self.sched.counting_start
                    && my_id == 0
                    && !self.visited;
                if token_arrived || virtual_root_arrival {
                    if self.visited {
                        // Returning token: forward immediately (staged; it
                        // merges with this round's wave rebroadcasts).
                        self.forward_token(r);
                    } else {
                        self.visited = true;
                        ctx.trace(ProtocolDetail::PhaseEnter { phase: 'B' });
                        if self.is_source_self {
                            // Wait one slot, then wave with the token
                            // riding it — the paper's T_next = T_prev + d + 1
                            // spacing.
                            self.wave_round = Some(r + 1);
                            self.token_forward_round = Some(r + 1);
                        } else {
                            // Sampled out: relay the token without delay.
                            self.forward_token(r);
                        }
                    }
                }
            }
            Scheduling::Sequential => {
                if r >= self.sched.counting_start && self.wave_round.is_none() {
                    // Sources wave in ascending-id order; the dense index
                    // is exactly this node's rank among sources.
                    if let Some(rank) = self.src_index.index_of(my_id) {
                        self.wave_round = Some(self.sched.sequential_ts(rank as u64));
                    }
                }
            }
        }
        for (source, batch) in std::mem::take(&mut new_waves) {
            self.absorb_wave(ctx, r, source, &batch);
        }
        if self.wave_round == Some(r) {
            self.start_own_wave(ctx, r);
        }
        if self.token_forward_round == Some(r) {
            self.token_forward_round = None;
            self.forward_token(r);
        }
        self.flush_counting_sends(ctx);

        // ---- 4. Phase C: reduce and broadcast. --------------------------
        match self.opts.scheduling {
            Scheduling::Adaptive => {
                // Root: after the DFS token returned, wait out the wave
                // drain bound (≤ D + 1 ≤ 2·depth + 1) then flood
                // StartReduce.
                if my_id == 0 && self.start_reduce_round.is_none() {
                    if let (Some(done), Some(depth)) = (self.dfs_done_round, self.tree_depth) {
                        self.start_reduce_round = Some(done + 2 * depth as u64 + 2);
                    }
                }
                if self.start_reduce_round == Some(r) {
                    for &port in &self.children_ports.clone() {
                        self.send_pm(ctx, port, &ProtocolMsg::StartReduce);
                    }
                    self.arm_reduce(ctx);
                }
                if got_start_reduce {
                    for &port in &self.children_ports.clone() {
                        self.send_pm(ctx, port, &ProtocolMsg::StartReduce);
                    }
                    self.arm_reduce(ctx);
                }
            }
            _ => {
                if r == self.sched.reduce_start {
                    self.arm_reduce(ctx);
                }
            }
        }
        if self.agg_info.is_none() {
            self.maybe_finish_reduce(ctx, r);
        }
        let mut announce_agg = false;
        match self.opts.scheduling {
            Scheduling::Adaptive => {
                // Root broadcasts as soon as its reduce completes.
                if my_id == 0 && self.agg_info.is_some() && !self.agg_announced {
                    announce_agg = true;
                }
            }
            _ => {
                if my_id == 0 && r == self.sched.broadcast_start {
                    debug_assert!(self.agg_info.is_some(), "root reduce incomplete");
                    announce_agg = true;
                }
            }
        }
        if let Some(info) = got_agg_start {
            self.agg_info = Some(info);
            announce_agg = true;
        }
        if announce_agg {
            if let Some(info) = self.agg_info {
                self.agg_announced = true;
                let msg = ProtocolMsg::AggStart {
                    base: info.base,
                    min_ts: info.min_ts,
                    max_ts: info.max_ts,
                    d: info.d,
                };
                for &port in &self.children_ports.clone() {
                    self.send_pm(ctx, port, &msg);
                }
                ctx.trace(ProtocolDetail::PhaseEnter { phase: 'D' });
                self.build_agg_schedule(my_id);
            }
        }

        // ---- 5. Phase D: aggregation. -----------------------------------
        while let Some(&(round, s)) = self.agg_schedule.get(self.agg_cursor) {
            if round != r {
                debug_assert!(round > r, "missed aggregation slot");
                break;
            }
            self.agg_cursor += 1;
            self.aggregate_and_send(ctx, s);
        }
        if let Some(info) = self.agg_info {
            if r >= info.end_round() {
                self.done = true;
            }
        }
    }

    fn is_halted(&self) -> bool {
        self.done
    }

    /// True when `round(r)` with an empty inbox is provably a no-op, so the
    /// engine may skip stepping this node. Each clause below mirrors one
    /// self-timed trigger in [`DistBcNode::round`] — anything message-driven
    /// is covered by the engine's own non-empty-inbox check.
    fn idle_at(&self, r: u64) -> bool {
        // Phase A: the root kicks off the tree at round 0; adaptive nodes
        // report SubtreeDone two rounds after their own announce.
        if r == 0 && self.me == 0 {
            return false;
        }
        if self.opts.scheduling == Scheduling::Adaptive
            && !self.subtree_done_sent
            && self.announce_round.is_some_and(|a| r >= a + 2)
            && self.children_done >= self.children_ports.len()
        {
            return false;
        }
        // Phase B: self-timed wave starts and token forwards.
        match self.opts.scheduling {
            Scheduling::DfsPipelined => {
                if self.me == 0 && !self.visited && r == self.sched.counting_start {
                    return false;
                }
            }
            Scheduling::Sequential => {
                if r >= self.sched.counting_start
                    && self.wave_round.is_none()
                    && self.is_source_self
                {
                    return false;
                }
            }
            Scheduling::Adaptive => {}
        }
        if self.wave_round == Some(r) || self.token_forward_round == Some(r) {
            return false;
        }
        // Phase C: reduce arming and the root's broadcast trigger.
        match self.opts.scheduling {
            Scheduling::Adaptive => {
                if self.start_reduce_round == Some(r) {
                    return false;
                }
                if self.me == 0 && self.agg_info.is_some() && !self.agg_announced {
                    return false;
                }
            }
            _ => {
                if r == self.sched.reduce_start {
                    return false;
                }
                if self.me == 0 && r == self.sched.broadcast_start {
                    return false;
                }
            }
        }
        if self.agg_info.is_none()
            && self.reduce_armed
            && !self.reduce_sent
            && self.reduce_received >= self.children_ports.len()
        {
            return false;
        }
        // Phase D: scheduled aggregation slots and the halting round.
        if self
            .agg_schedule
            .get(self.agg_cursor)
            .is_some_and(|&(round, _)| round == r)
        {
            return false;
        }
        if !self.done && self.agg_info.is_some_and(|info| r >= info.end_round()) {
            return false;
        }
        true
    }
}
