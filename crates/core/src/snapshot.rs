//! Versioned, immutable centrality snapshots and the epoch cell that
//! publishes them — the result-versioning boundary the serving runtime
//! (`bc-serve`) is built on.
//!
//! A [`CentralitySnapshot`] freezes one complete answer set: the scores,
//! the precomputed descending rank index, and enough metadata (graph
//! hash, config fingerprint, schema version) to check the bit-identity
//! contract "same graph + same config ⇒ same bytes as the offline CLI".
//! Snapshots are immutable once built; a recompute produces a *new*
//! snapshot with a higher version and swaps it in atomically through a
//! [`SnapshotStore`], so readers never observe a half-updated answer —
//! they hold an `Arc` to whichever complete snapshot was current when
//! their query arrived.

use bc_brandes::ranking::{percentile, rank_index, top_k};
use bc_congest::telemetry::SCHEMA_VERSION;
use bc_congest::wire::{put_f64, put_str, put_u32, put_u64, ByteReader, WireError};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::result::DistBcResult;

/// One immutable, versioned set of centrality answers.
///
/// The `scores` vector is indexed by node id; `rank` is the
/// deterministic descending index from
/// [`bc_brandes::ranking::rank_index`] (ties broken by ascending id), so
/// top-K and percentile queries are O(1)–O(k) lookups with no
/// per-query sorting and no comparison quirks.
#[derive(Debug, Clone, PartialEq)]
pub struct CentralitySnapshot {
    /// Monotonically increasing snapshot version (1 = initial compute).
    pub version: u64,
    /// Telemetry/wire schema version stamped at build time; decode
    /// rejects snapshots from a different schema.
    pub schema_version: u32,
    /// FNV-1a hash of the graph's edge list ([`bc_congest::wire::graph_hash`])
    /// *as of this snapshot* — mutations change it.
    pub graph_hash: u64,
    /// [`crate::DistBcConfig::fingerprint`] of the producing
    /// configuration (or a mode-specific constant for non-driver
    /// algorithms).
    pub config_hash: u64,
    /// Human-readable algorithm label (`"distributed"`, `"brandes"`, …).
    pub algo: String,
    /// Number of BFS sources behind the scores (`n` for exact runs).
    pub sample_size: usize,
    /// Rounds the producing run took (0 for in-process Brandes).
    pub rounds: u64,
    /// Betweenness score per node id.
    pub scores: Vec<f64>,
    /// Node ids ordered by score descending, ties by ascending id.
    pub rank: Vec<u32>,
}

impl CentralitySnapshot {
    /// Builds a snapshot from a raw score vector, computing the rank
    /// index.
    pub fn from_scores(
        version: u64,
        graph_hash: u64,
        config_hash: u64,
        algo: &str,
        scores: Vec<f64>,
        sample_size: usize,
        rounds: u64,
    ) -> CentralitySnapshot {
        let rank = rank_index(&scores);
        CentralitySnapshot {
            version,
            schema_version: SCHEMA_VERSION,
            graph_hash,
            config_hash,
            algo: algo.to_string(),
            sample_size,
            rounds,
            scores,
            rank,
        }
    }

    /// Builds a snapshot from a finished driver run.
    pub fn from_result(
        version: u64,
        graph_hash: u64,
        config_hash: u64,
        algo: &str,
        result: &DistBcResult,
    ) -> CentralitySnapshot {
        CentralitySnapshot::from_scores(
            version,
            graph_hash,
            config_hash,
            algo,
            result.betweenness.clone(),
            result.sample_size,
            result.rounds,
        )
    }

    /// Number of nodes covered by this snapshot.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when the snapshot covers an empty graph.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Top-`k` `(node, score)` pairs; `k > n` truncates.
    pub fn top_k(&self, k: usize) -> Vec<(u32, f64)> {
        top_k(&self.scores, &self.rank, k)
    }

    /// Score of node `v`, or `None` when out of range.
    pub fn node(&self, v: u32) -> Option<f64> {
        self.scores.get(v as usize).copied()
    }

    /// Nearest-rank percentile; `None` for an empty snapshot or `p`
    /// outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        percentile(&self.scores, &self.rank, p)
    }

    /// Serializes the snapshot to the binary form persisted/shipped by
    /// the serving layer (little-endian, same primitives as the wire
    /// protocol).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + 12 * self.scores.len());
        put_u32(&mut buf, self.schema_version);
        put_u64(&mut buf, self.version);
        put_u64(&mut buf, self.graph_hash);
        put_u64(&mut buf, self.config_hash);
        put_str(&mut buf, &self.algo);
        put_u64(&mut buf, self.sample_size as u64);
        put_u64(&mut buf, self.rounds);
        put_u64(&mut buf, self.scores.len() as u64);
        for &s in &self.scores {
            put_f64(&mut buf, s);
        }
        for &r in &self.rank {
            put_u32(&mut buf, r);
        }
        buf
    }

    /// Decodes a snapshot previously produced by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// Rejects truncated or over-long buffers, a foreign schema
    /// version, and a rank index that is not a permutation of the node
    /// ids — a decoded snapshot upholds the same invariants as a built
    /// one.
    pub fn decode(bytes: &[u8]) -> Result<CentralitySnapshot, SnapshotDecodeError> {
        let mut r = ByteReader::new(bytes);
        let schema_version = r.u32()?;
        if schema_version != SCHEMA_VERSION {
            return Err(SnapshotDecodeError::SchemaMismatch {
                got: schema_version,
                expected: SCHEMA_VERSION,
            });
        }
        let version = r.u64()?;
        let graph_hash = r.u64()?;
        let config_hash = r.u64()?;
        let algo = r.str()?;
        let sample_size = r.u64()? as usize;
        let rounds = r.u64()?;
        let n = r.u64()? as usize;
        if n > bytes.len() {
            // A plausibility bound before allocating: each node needs at
            // least 12 more payload bytes, so n can never exceed the
            // buffer length.
            return Err(SnapshotDecodeError::Malformed(WireError::Protocol(
                format!("claimed {n} nodes in a {}-byte snapshot", bytes.len()),
            )));
        }
        let mut scores = Vec::with_capacity(n);
        for _ in 0..n {
            scores.push(r.f64()?);
        }
        let mut rank = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for _ in 0..n {
            let v = r.u32()?;
            if (v as usize) >= n || seen[v as usize] {
                return Err(SnapshotDecodeError::BadRank { node: v });
            }
            seen[v as usize] = true;
            rank.push(v);
        }
        r.finish()?;
        Ok(CentralitySnapshot {
            version,
            schema_version,
            graph_hash,
            config_hash,
            algo,
            sample_size,
            rounds,
            scores,
            rank,
        })
    }
}

/// Why a serialized snapshot failed to decode.
#[derive(Debug)]
pub enum SnapshotDecodeError {
    /// Truncated buffer, trailing bytes, or a malformed field.
    Malformed(WireError),
    /// The snapshot was written under a different telemetry/wire schema.
    SchemaMismatch {
        /// Schema version found in the buffer.
        got: u32,
        /// Schema version this build expects.
        expected: u32,
    },
    /// The rank index is not a permutation of the node ids.
    BadRank {
        /// The offending entry.
        node: u32,
    },
}

impl fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotDecodeError::Malformed(e) => write!(f, "malformed snapshot: {e}"),
            SnapshotDecodeError::SchemaMismatch { got, expected } => {
                write!(f, "snapshot schema {got} (expected {expected})")
            }
            SnapshotDecodeError::BadRank { node } => {
                write!(f, "rank index is not a permutation (entry {node})")
            }
        }
    }
}

impl std::error::Error for SnapshotDecodeError {}

impl From<WireError> for SnapshotDecodeError {
    fn from(e: WireError) -> Self {
        SnapshotDecodeError::Malformed(e)
    }
}

/// The epoch cell: readers `load()` an `Arc` to the current snapshot
/// and keep answering from it for as long as they hold the `Arc`;
/// `publish()` swaps the pointer to a newly built snapshot. The write
/// lock is held only for the pointer swap — never while a snapshot is
/// being computed — so queries are wait-free in practice and can never
/// observe a torn (partially updated) snapshot: versions advance
/// atomically with their data.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<CentralitySnapshot>>,
    swaps: AtomicU64,
}

impl SnapshotStore {
    /// Creates a store holding the initial snapshot.
    pub fn new(initial: CentralitySnapshot) -> SnapshotStore {
        SnapshotStore {
            current: RwLock::new(Arc::new(initial)),
            swaps: AtomicU64::new(0),
        }
    }

    /// The current snapshot. The returned `Arc` stays valid (and
    /// unchanged) even if a newer snapshot is published while the
    /// caller is still reading.
    pub fn load(&self) -> Arc<CentralitySnapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Publishes `next` as the current snapshot and returns its
    /// version. Panics if `next.version` does not advance — version
    /// order is the public contract that lets clients reason about
    /// which answers came before which.
    pub fn publish(&self, next: CentralitySnapshot) -> u64 {
        let version = next.version;
        let next = Arc::new(next);
        let mut cur = self.current.write().expect("snapshot lock poisoned");
        assert!(
            version > cur.version,
            "snapshot version must advance ({} -> {version})",
            cur.version
        );
        *cur = next;
        self.swaps.fetch_add(1, Ordering::Relaxed);
        version
    }

    /// Number of `publish` calls so far (telemetry mirror).
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(version: u64) -> CentralitySnapshot {
        CentralitySnapshot::from_scores(
            version,
            0xfeed,
            0xc0ffee,
            "brandes",
            vec![0.5, 3.0, 3.0, 1.0],
            4,
            0,
        )
    }

    #[test]
    fn query_helpers_agree_with_ranking() {
        let s = sample(1);
        assert_eq!(s.rank, vec![1, 2, 3, 0]);
        assert_eq!(s.top_k(2), vec![(1, 3.0), (2, 3.0)]);
        assert_eq!(s.top_k(99).len(), 4);
        assert_eq!(s.node(3), Some(1.0));
        assert_eq!(s.node(4), None);
        assert_eq!(s.percentile(100.0), Some(3.0));
        assert_eq!(s.percentile(0.0), Some(0.5));
    }

    #[test]
    fn encode_decode_round_trips() {
        let s = sample(7);
        let bytes = s.encode();
        let back = CentralitySnapshot::decode(&bytes).unwrap();
        assert_eq!(back, s);
        // Bit-level check on a signaling value: -0.0 must survive.
        let tricky = CentralitySnapshot::from_scores(2, 1, 2, "x", vec![-0.0, f64::INFINITY], 2, 9);
        let back = CentralitySnapshot::decode(&tricky.encode()).unwrap();
        assert_eq!(back.scores[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.scores[1], f64::INFINITY);
    }

    #[test]
    fn decode_rejects_corruption() {
        let s = sample(1);
        let bytes = s.encode();
        // Truncation at every prefix must error, never panic.
        for cut in 0..bytes.len() {
            assert!(CentralitySnapshot::decode(&bytes[..cut]).is_err());
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(CentralitySnapshot::decode(&long).is_err());
        // Foreign schema.
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xff;
        assert!(matches!(
            CentralitySnapshot::decode(&wrong),
            Err(SnapshotDecodeError::SchemaMismatch { .. })
        ));
        // Rank entry out of range / duplicated.
        let rank_at = bytes.len() - 4 * s.rank.len();
        let mut bad = bytes.clone();
        bad[rank_at..rank_at + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            CentralitySnapshot::decode(&bad),
            Err(SnapshotDecodeError::BadRank { node: 99 })
        ));
        let mut dup = bytes;
        let second = s.rank[0];
        dup[rank_at + 4..rank_at + 8].copy_from_slice(&second.to_le_bytes());
        assert!(matches!(
            CentralitySnapshot::decode(&dup),
            Err(SnapshotDecodeError::BadRank { .. })
        ));
    }

    #[test]
    fn store_swaps_atomically_under_concurrent_readers() {
        use std::sync::atomic::AtomicBool;
        // Snapshot invariant the readers check: scores are all equal to
        // the version number, so any torn mix of two snapshots is
        // detectable.
        let make =
            |v: u64| CentralitySnapshot::from_scores(v, 1, 2, "test", vec![v as f64; 64], 64, 0);
        let store = Arc::new(SnapshotStore::new(make(1)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = store.load();
                        assert!(snap.version >= last, "versions move forward");
                        last = snap.version;
                        assert!(
                            snap.scores.iter().all(|&s| s == snap.version as f64),
                            "torn snapshot observed"
                        );
                    }
                })
            })
            .collect();
        for v in 2..200 {
            assert_eq!(store.publish(make(v)), v);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(store.swap_count(), 198);
        assert_eq!(store.load().version, 199);
    }

    #[test]
    #[should_panic(expected = "version must advance")]
    fn publish_rejects_stale_version() {
        let store = SnapshotStore::new(sample(5));
        store.publish(sample(5));
    }
}
