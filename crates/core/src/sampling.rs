//! Source selection: exact (all `N` sources, the paper's algorithm) or a
//! deterministic pseudo-random sample (the sampling-based approximation the
//! paper's related work attributes to Holzer's thesis and, centrally, to
//! Brandes–Pich).
//!
//! Sampling is coordination-free: every node knows `N` and the shared seed,
//! so every node can recompute the *same* sample locally — membership is
//! "the `k` smallest keyed hashes", which needs no messages to agree on.

/// Which nodes act as BFS sources in the counting phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SourceSelection {
    /// Every node is a source — the paper's exact algorithm.
    #[default]
    All,
    /// The `k` nodes with smallest keyed hash are sources; betweenness is
    /// estimated as `(N/k) · Σ_{s ∈ S} δ_s(v) / 2` (unbiased over the
    /// random seed). Traffic shrinks by ≈ `k/N`.
    Sample {
        /// Number of sources (clamped to `1..=N`).
        k: usize,
        /// Shared seed; all nodes must use the same value.
        seed: u64,
    },
    /// Exactly the marked nodes are sources (no extrapolation). Used by
    /// the weighted extension, where only original (non-virtual) nodes
    /// launch waves on the subdivided graph.
    Explicit(std::sync::Arc<[bool]>),
}

/// How sampled per-source dependencies are folded into a betweenness
/// estimate. Irrelevant (and rejected by the driver) unless the run uses
/// `SourceSelection::Sample`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Estimator {
    /// Brandes–Pich: `BC(v) ≈ (N/k) · Σ_{s ∈ S} δ_s(v) / 2`.
    #[default]
    Scaled,
    /// Ji–Yan refinement (arXiv:1608.04472): split the dependency sum into
    /// in-sample-target and out-of-sample-target parts. Pairs `(s, t)` with
    /// both endpoints in `S` are counted *exactly*; only the remainder is
    /// extrapolated, which shrinks variance at equal `k`:
    ///
    /// `BC(v) ≈ δ_in/2 + (δ_all − δ_in) · (1 + (N − k − 1) / (2k))`
    ///
    /// where `δ_all = Σ_{s∈S} δ_s(v)` (all targets) and
    /// `δ_in = Σ_{s∈S} δ_s^S(v)` (targets restricted to `S`). At `k = N`
    /// the two sums coincide bitwise and the estimate is exact.
    JiYan,
}

/// A run-wide dense remap of sampled source ids: global node id ↔ compact
/// index `0..|S|`. Every per-source array in `DistBcNode` is keyed by the
/// dense index, so sampled runs allocate O(|S|) per node instead of O(N).
///
/// Built deterministically from the [`SourceSelection`] (itself
/// coordination-free), so shards rebuild an identical index from the SETUP
/// frame without shipping the map itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceIndex {
    /// `idx_of[v]` = dense index of global id `v`, or `u32::MAX` if `v` is
    /// not a source.
    idx_of: Vec<u32>,
    /// Dense index → global id, ascending (so iterating `0..len()` visits
    /// sources in ascending global-id order).
    ids: Vec<u32>,
}

impl SourceIndex {
    const NONE: u32 = u32::MAX;

    /// Build the index for an `n`-node network.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or (for `Explicit`) the mask is malformed — same
    /// contract as [`source_mask`].
    pub fn build(selection: &SourceSelection, n: usize) -> Self {
        let mask = source_mask(selection, n);
        let mut idx_of = vec![Self::NONE; n];
        let mut ids = Vec::new();
        for (v, &is_src) in mask.iter().enumerate() {
            if is_src {
                idx_of[v] = ids.len() as u32;
                ids.push(v as u32);
            }
        }
        SourceIndex { idx_of, ids }
    }

    /// Number of sources `|S|`.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True iff no sources (never happens for a well-formed selection).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Network size `N` the index was built for.
    pub fn n(&self) -> usize {
        self.idx_of.len()
    }

    /// Dense index of global id `v`, or `None` if `v` is not a source.
    #[inline]
    pub fn index_of(&self, v: u32) -> Option<u32> {
        match self.idx_of[v as usize] {
            Self::NONE => None,
            i => Some(i),
        }
    }

    /// Global id of dense index `i`.
    #[inline]
    pub fn id_of(&self, i: u32) -> u32 {
        self.ids[i as usize]
    }

    /// True iff global id `v` is a source.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.idx_of[v as usize] != Self::NONE
    }

    /// Global ids of all sources, ascending.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }
}

/// SplitMix64 — a tiny, high-quality keyed hash every node can evaluate.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic source indicator for an `n`-node network: exactly the
/// `k` nodes with the smallest `splitmix64(seed ⊕ id)` (ties by id).
///
/// ```
/// use bc_core::{source_mask, SourceSelection};
///
/// let mask = source_mask(&SourceSelection::Sample { k: 3, seed: 1 }, 10);
/// assert_eq!(mask.iter().filter(|&&b| b).count(), 3);
/// // Coordination-free: every node recomputes the identical mask.
/// assert_eq!(mask, source_mask(&SourceSelection::Sample { k: 3, seed: 1 }, 10));
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn source_mask(selection: &SourceSelection, n: usize) -> Vec<bool> {
    assert!(n > 0, "source mask for empty network");
    match *selection {
        SourceSelection::All => vec![true; n],
        SourceSelection::Explicit(ref mask) => {
            assert_eq!(mask.len(), n, "explicit source mask length mismatch");
            assert!(
                mask.iter().any(|&b| b),
                "explicit source mask selects no sources"
            );
            mask.to_vec()
        }
        SourceSelection::Sample { k, seed } => {
            let k = k.clamp(1, n);
            let mut keyed: Vec<(u64, usize)> =
                (0..n).map(|v| (splitmix64(seed ^ v as u64), v)).collect();
            keyed.sort_unstable();
            let mut mask = vec![false; n];
            for &(_, v) in keyed.iter().take(k) {
                mask[v] = true;
            }
            mask
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_selects_everyone() {
        assert_eq!(source_mask(&SourceSelection::All, 5), vec![true; 5]);
    }

    #[test]
    fn sample_is_exact_size_and_deterministic() {
        let sel = SourceSelection::Sample { k: 7, seed: 42 };
        let a = source_mask(&sel, 50);
        assert_eq!(a.iter().filter(|&&b| b).count(), 7);
        assert_eq!(a, source_mask(&sel, 50));
        let b = source_mask(&SourceSelection::Sample { k: 7, seed: 43 }, 50);
        assert_ne!(a, b, "different seeds differ w.h.p.");
    }

    #[test]
    fn sample_clamps_k() {
        let all = source_mask(&SourceSelection::Sample { k: 100, seed: 1 }, 6);
        assert_eq!(all.iter().filter(|&&b| b).count(), 6);
        let one = source_mask(&SourceSelection::Sample { k: 0, seed: 1 }, 6);
        assert_eq!(one.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Over many seeds, each node is selected ≈ k/n of the time.
        let (n, k, trials) = (20usize, 5usize, 400u64);
        let mut counts = vec![0u32; n];
        for seed in 0..trials {
            for (v, &sel) in source_mask(&SourceSelection::Sample { k, seed }, n)
                .iter()
                .enumerate()
            {
                if sel {
                    counts[v] += 1;
                }
            }
        }
        let expected = trials as f64 * k as f64 / n as f64;
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 0.5 * expected,
                "node {v}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn explicit_mask_passthrough() {
        let mask: std::sync::Arc<[bool]> = vec![true, false, true].into();
        let got = source_mask(&SourceSelection::Explicit(mask), 3);
        assert_eq!(got, vec![true, false, true]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn explicit_mask_wrong_length_panics() {
        let mask: std::sync::Arc<[bool]> = vec![true].into();
        let _ = source_mask(&SourceSelection::Explicit(mask), 3);
    }

    #[test]
    #[should_panic(expected = "no sources")]
    fn explicit_mask_empty_panics() {
        let mask: std::sync::Arc<[bool]> = vec![false, false].into();
        let _ = source_mask(&SourceSelection::Explicit(mask), 2);
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn empty_network_panics() {
        let _ = source_mask(&SourceSelection::All, 0);
    }

    #[test]
    fn source_index_matches_mask() {
        let sel = SourceSelection::Sample { k: 5, seed: 9 };
        let n = 32;
        let mask = source_mask(&sel, n);
        let idx = SourceIndex::build(&sel, n);
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.n(), n);
        let mut dense = 0u32;
        for v in 0..n as u32 {
            assert_eq!(idx.contains(v), mask[v as usize]);
            if mask[v as usize] {
                assert_eq!(idx.index_of(v), Some(dense));
                assert_eq!(idx.id_of(dense), v);
                dense += 1;
            } else {
                assert_eq!(idx.index_of(v), None);
            }
        }
        // ids are ascending by construction.
        assert!(idx.ids().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn source_index_all_is_identity() {
        let idx = SourceIndex::build(&SourceSelection::All, 7);
        assert_eq!(idx.len(), 7);
        for v in 0..7u32 {
            assert_eq!(idx.index_of(v), Some(v));
            assert_eq!(idx.id_of(v), v);
        }
    }
}
