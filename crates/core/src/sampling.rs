//! Source selection: exact (all `N` sources, the paper's algorithm) or a
//! deterministic pseudo-random sample (the sampling-based approximation the
//! paper's related work attributes to Holzer's thesis and, centrally, to
//! Brandes–Pich).
//!
//! Sampling is coordination-free: every node knows `N` and the shared seed,
//! so every node can recompute the *same* sample locally — membership is
//! "the `k` smallest keyed hashes", which needs no messages to agree on.

/// Which nodes act as BFS sources in the counting phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SourceSelection {
    /// Every node is a source — the paper's exact algorithm.
    #[default]
    All,
    /// The `k` nodes with smallest keyed hash are sources; betweenness is
    /// estimated as `(N/k) · Σ_{s ∈ S} δ_s(v) / 2` (unbiased over the
    /// random seed). Traffic shrinks by ≈ `k/N`.
    Sample {
        /// Number of sources (clamped to `1..=N`).
        k: usize,
        /// Shared seed; all nodes must use the same value.
        seed: u64,
    },
    /// Exactly the marked nodes are sources (no extrapolation). Used by
    /// the weighted extension, where only original (non-virtual) nodes
    /// launch waves on the subdivided graph.
    Explicit(std::sync::Arc<[bool]>),
}

/// SplitMix64 — a tiny, high-quality keyed hash every node can evaluate.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic source indicator for an `n`-node network: exactly the
/// `k` nodes with the smallest `splitmix64(seed ⊕ id)` (ties by id).
///
/// ```
/// use bc_core::{source_mask, SourceSelection};
///
/// let mask = source_mask(&SourceSelection::Sample { k: 3, seed: 1 }, 10);
/// assert_eq!(mask.iter().filter(|&&b| b).count(), 3);
/// // Coordination-free: every node recomputes the identical mask.
/// assert_eq!(mask, source_mask(&SourceSelection::Sample { k: 3, seed: 1 }, 10));
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn source_mask(selection: &SourceSelection, n: usize) -> Vec<bool> {
    assert!(n > 0, "source mask for empty network");
    match *selection {
        SourceSelection::All => vec![true; n],
        SourceSelection::Explicit(ref mask) => {
            assert_eq!(mask.len(), n, "explicit source mask length mismatch");
            assert!(
                mask.iter().any(|&b| b),
                "explicit source mask selects no sources"
            );
            mask.to_vec()
        }
        SourceSelection::Sample { k, seed } => {
            let k = k.clamp(1, n);
            let mut keyed: Vec<(u64, usize)> =
                (0..n).map(|v| (splitmix64(seed ^ v as u64), v)).collect();
            keyed.sort_unstable();
            let mut mask = vec![false; n];
            for &(_, v) in keyed.iter().take(k) {
                mask[v] = true;
            }
            mask
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_selects_everyone() {
        assert_eq!(source_mask(&SourceSelection::All, 5), vec![true; 5]);
    }

    #[test]
    fn sample_is_exact_size_and_deterministic() {
        let sel = SourceSelection::Sample { k: 7, seed: 42 };
        let a = source_mask(&sel, 50);
        assert_eq!(a.iter().filter(|&&b| b).count(), 7);
        assert_eq!(a, source_mask(&sel, 50));
        let b = source_mask(&SourceSelection::Sample { k: 7, seed: 43 }, 50);
        assert_ne!(a, b, "different seeds differ w.h.p.");
    }

    #[test]
    fn sample_clamps_k() {
        let all = source_mask(&SourceSelection::Sample { k: 100, seed: 1 }, 6);
        assert_eq!(all.iter().filter(|&&b| b).count(), 6);
        let one = source_mask(&SourceSelection::Sample { k: 0, seed: 1 }, 6);
        assert_eq!(one.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Over many seeds, each node is selected ≈ k/n of the time.
        let (n, k, trials) = (20usize, 5usize, 400u64);
        let mut counts = vec![0u32; n];
        for seed in 0..trials {
            for (v, &sel) in source_mask(&SourceSelection::Sample { k, seed }, n)
                .iter()
                .enumerate()
            {
                if sel {
                    counts[v] += 1;
                }
            }
        }
        let expected = trials as f64 * k as f64 / n as f64;
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 0.5 * expected,
                "node {v}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn explicit_mask_passthrough() {
        let mask: std::sync::Arc<[bool]> = vec![true, false, true].into();
        let got = source_mask(&SourceSelection::Explicit(mask), 3);
        assert_eq!(got, vec![true, false, true]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn explicit_mask_wrong_length_panics() {
        let mask: std::sync::Arc<[bool]> = vec![true].into();
        let _ = source_mask(&SourceSelection::Explicit(mask), 3);
    }

    #[test]
    #[should_panic(expected = "no sources")]
    fn explicit_mask_empty_panics() {
        let mask: std::sync::Arc<[bool]> = vec![false, false].into();
        let _ = source_mask(&SourceSelection::Explicit(mask), 2);
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn empty_network_panics() {
        let _ = source_mask(&SourceSelection::All, 0);
    }
}
