//! Bit-exact wire format for the protocol's messages.
//!
//! Every logical message of Algorithms 2–3 is encoded to a bit string whose
//! width is `O(log N)`: node identifiers take `⌈log₂ N⌉` bits, distances
//! one more, schedule offsets `2⌈log₂ N⌉ + 4` (enough for the sequential
//! baseline's quadratic schedule too), and σ/ψ values the `L + 16` bits of
//! [`FpParams::encoded_bits`]. The CONGEST engine charges each message its
//! exact encoded size, so Lemma 3 / Lemma 5 ("all the values sent can be
//! packed into `O(log N)` bits") is enforced rather than assumed.

use bc_congest::Message;
use bc_numeric::bits::{id_bits, BitReader, BitWriter};
use bc_numeric::{CeilFloat, FpParams};

/// Field widths for an `n`-node network with float parameters `fp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Codec {
    /// Node-id width: `⌈log₂ n⌉`.
    pub id_w: u32,
    /// Distance width (distances are `< n`).
    pub dist_w: u32,
    /// Schedule-offset width (covers the sequential baseline's `Θ(n²)`
    /// offsets).
    pub ts_w: u32,
    /// Float parameters (mantissa width, rounding).
    pub fp: FpParams,
}

/// Message tag width (11 tags).
const TAG_BITS: u32 = 4;

impl Codec {
    /// Builds the codec for an `n`-node network.
    pub fn new(n: usize, fp: FpParams) -> Self {
        let id_w = id_bits(n.max(2));
        Codec {
            id_w,
            dist_w: id_w + 1,
            ts_w: 2 * id_w + 6,
            fp,
        }
    }

    /// Upper bound on any encoded message, in bits. `O(log N)`:
    /// `4 + max(3·ts_w + dist_w, id_w + dist_w + L + 16, id_w + 2(L + 16))`.
    pub fn max_message_bits(&self) -> usize {
        let body = (3 * self.ts_w + self.dist_w)
            .max(self.id_w + self.dist_w + self.fp.encoded_bits())
            .max(self.id_w + 2 * self.fp.encoded_bits());
        (TAG_BITS + body) as usize
    }

    /// Encodes a message.
    pub fn encode(&self, msg: &ProtocolMsg) -> Message {
        let mut w = BitWriter::new();
        match *msg {
            ProtocolMsg::TreeAnnounce { dist, chooses_you } => {
                w.push(0, TAG_BITS);
                w.push(dist as u64, self.dist_w);
                w.push_bool(chooses_you);
            }
            ProtocolMsg::Token => {
                w.push(1, TAG_BITS);
            }
            ProtocolMsg::Wave {
                source,
                sender_dist,
                sigma,
            } => {
                w.push(2, TAG_BITS);
                w.push(source as u64, self.id_w);
                w.push(sender_dist as u64, self.dist_w);
                w.push(sigma.encode(), self.fp.encoded_bits());
            }
            ProtocolMsg::Reduce {
                min_ts,
                max_ts,
                max_d,
            } => {
                w.push(3, TAG_BITS);
                w.push(min_ts, self.ts_w);
                w.push(max_ts, self.ts_w);
                w.push(max_d as u64, self.dist_w);
            }
            ProtocolMsg::AggStart {
                base,
                min_ts,
                max_ts,
                d,
            } => {
                w.push(4, TAG_BITS);
                w.push(base, self.ts_w);
                w.push(min_ts, self.ts_w);
                w.push(max_ts, self.ts_w);
                w.push(d as u64, self.dist_w);
            }
            ProtocolMsg::Agg { source, value } => {
                w.push(5, TAG_BITS);
                w.push(source as u64, self.id_w);
                w.push(value.encode(), self.fp.encoded_bits());
            }
            ProtocolMsg::AggWithStress { source, psi, rho } => {
                w.push(6, TAG_BITS);
                w.push(source as u64, self.id_w);
                w.push(psi.encode(), self.fp.encoded_bits());
                w.push(rho.encode(), self.fp.encoded_bits());
            }
            ProtocolMsg::StartReduce => {
                w.push(7, TAG_BITS);
            }
            ProtocolMsg::SubtreeDone { max_depth } => {
                w.push(8, TAG_BITS);
                w.push(max_depth as u64, self.dist_w);
            }
            ProtocolMsg::WaveWithToken {
                source,
                sender_dist,
                sigma,
            } => {
                w.push(9, TAG_BITS);
                w.push(source as u64, self.id_w);
                w.push(sender_dist as u64, self.dist_w);
                w.push(sigma.encode(), self.fp.encoded_bits());
            }
            ProtocolMsg::AggRefined {
                source,
                psi,
                psi_in,
            } => {
                w.push(10, TAG_BITS);
                w.push(source as u64, self.id_w);
                w.push(psi.encode(), self.fp.encoded_bits());
                w.push(psi_in.encode(), self.fp.encoded_bits());
            }
        }
        Message::new(w.finish())
    }

    /// Bits the body of a `tag` message occupies beyond the tag field, or
    /// `None` for an unknown tag.
    fn body_bits(&self, tag: u64) -> Option<u32> {
        Some(match tag {
            0 => self.dist_w + 1,
            1 | 7 => 0,
            2 | 9 => self.id_w + self.dist_w + self.fp.encoded_bits(),
            3 => 2 * self.ts_w + self.dist_w,
            4 => 3 * self.ts_w + self.dist_w,
            5 => self.id_w + self.fp.encoded_bits(),
            6 | 10 => self.id_w + 2 * self.fp.encoded_bits(),
            8 => self.dist_w,
            _ => return None,
        })
    }

    /// Reads one σ/ψ float field, rejecting bit patterns `encode` cannot
    /// produce (the unchecked decoder would assert on them).
    fn take_float(&self, r: &mut BitReader<'_>) -> Result<CeilFloat, DecodeError> {
        let raw = r.read(self.fp.encoded_bits());
        CeilFloat::try_decode(raw, self.fp).ok_or(DecodeError::BadFloat { raw })
    }

    /// Decodes a message previously encoded with the same codec.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on an unknown tag or a payload shorter
    /// than the tag's fields — a corrupt message is surfaced to the caller
    /// instead of crashing the simulator.
    pub fn decode(&self, msg: &Message) -> Result<ProtocolMsg, DecodeError> {
        let have = msg.bit_len();
        if have < TAG_BITS as usize {
            return Err(DecodeError::Truncated {
                tag: None,
                needed_bits: TAG_BITS as usize,
                have_bits: have,
            });
        }
        let mut r = msg.payload().reader();
        let tag = r.read(TAG_BITS);
        let body = self
            .body_bits(tag)
            .ok_or(DecodeError::UnknownTag { tag: tag as u8 })?;
        let needed = (TAG_BITS + body) as usize;
        if have < needed {
            return Err(DecodeError::Truncated {
                tag: Some(tag as u8),
                needed_bits: needed,
                have_bits: have,
            });
        }
        Ok(match tag {
            0 => ProtocolMsg::TreeAnnounce {
                dist: r.read(self.dist_w) as u32,
                chooses_you: r.read_bool(),
            },
            1 => ProtocolMsg::Token,
            2 => ProtocolMsg::Wave {
                source: r.read(self.id_w) as u32,
                sender_dist: r.read(self.dist_w) as u32,
                sigma: self.take_float(&mut r)?,
            },
            3 => ProtocolMsg::Reduce {
                min_ts: r.read(self.ts_w),
                max_ts: r.read(self.ts_w),
                max_d: r.read(self.dist_w) as u32,
            },
            4 => ProtocolMsg::AggStart {
                base: r.read(self.ts_w),
                min_ts: r.read(self.ts_w),
                max_ts: r.read(self.ts_w),
                d: r.read(self.dist_w) as u32,
            },
            5 => ProtocolMsg::Agg {
                source: r.read(self.id_w) as u32,
                value: self.take_float(&mut r)?,
            },
            6 => ProtocolMsg::AggWithStress {
                source: r.read(self.id_w) as u32,
                psi: self.take_float(&mut r)?,
                rho: self.take_float(&mut r)?,
            },
            7 => ProtocolMsg::StartReduce,
            8 => ProtocolMsg::SubtreeDone {
                max_depth: r.read(self.dist_w) as u32,
            },
            9 => ProtocolMsg::WaveWithToken {
                source: r.read(self.id_w) as u32,
                sender_dist: r.read(self.dist_w) as u32,
                sigma: self.take_float(&mut r)?,
            },
            10 => ProtocolMsg::AggRefined {
                source: r.read(self.id_w) as u32,
                psi: self.take_float(&mut r)?,
                psi_in: self.take_float(&mut r)?,
            },
            _ => unreachable!("body_bits vetted the tag"),
        })
    }
}

/// Why a payload failed to decode — the simulator surfaces it as a node
/// error ([`bc_congest::CongestError::NodePanic`]) instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The tag field names no protocol message.
    UnknownTag {
        /// The unrecognized tag value.
        tag: u8,
    },
    /// The payload ended before the message's fields were read.
    Truncated {
        /// The tag whose body was being read (`None`: too short for a tag).
        tag: Option<u8>,
        /// Bits the message needed in total.
        needed_bits: usize,
        /// Bits actually present.
        have_bits: usize,
    },
    /// A σ/ψ field holds a bit pattern the float encoder cannot produce.
    BadFloat {
        /// The offending field bits.
        raw: u64,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownTag { tag } => write!(f, "unknown protocol tag {tag}"),
            DecodeError::Truncated {
                tag,
                needed_bits,
                have_bits,
            } => match tag {
                Some(tag) => write!(
                    f,
                    "truncated message: tag {tag} needs {needed_bits} bits, got {have_bits}"
                ),
                None => write!(
                    f,
                    "truncated message: {have_bits} bits is too short for a tag"
                ),
            },
            DecodeError::BadFloat { raw } => {
                write!(f, "corrupt float field {raw:#x} in message body")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// The logical messages of the distributed algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolMsg {
    /// Phase A: BFS-tree construction announce; `chooses_you` marks the
    /// receiver as the sender's tree parent.
    TreeAnnounce {
        /// Sender's tree depth.
        dist: u32,
        /// Whether the receiver is the sender's chosen parent.
        chooses_you: bool,
    },
    /// Phase B: the DFS coordination token (Algorithm 2, line 1).
    Token,
    /// Phase B: a BFS wave of source `source` (Algorithm 2, lines 10–19).
    Wave {
        /// The BFS source `s`.
        source: u32,
        /// `d(s, sender)`.
        sender_dist: u32,
        /// `σ̂_{s,sender}` in the paper's floating point.
        sigma: CeilFloat,
    },
    /// Phase C1: convergecast of `(min T_s, max T_s, max d)` toward the
    /// root.
    Reduce {
        /// Minimum wave start round seen in the subtree (absolute).
        min_ts: u64,
        /// Maximum wave start round seen in the subtree (absolute).
        max_ts: u64,
        /// Maximum distance seen in the subtree (→ diameter at the root).
        max_d: u32,
    },
    /// Phase C2: root's broadcast of the aggregation base round and the
    /// global `(min T_s, max T_s, D)` that fix every send time
    /// (Algorithm 3, line 3).
    AggStart {
        /// Common base round of the aggregation phase (absolute).
        base: u64,
        /// Global minimum wave start round.
        min_ts: u64,
        /// Global maximum wave start round.
        max_ts: u64,
        /// The diameter `D`.
        d: u32,
    },
    /// Phase D: the aggregation value `1/σ̂_su + ψ̂_s(u)` sent to a
    /// predecessor (Algorithm 3, line 12).
    Agg {
        /// The source `s` this value belongs to.
        source: u32,
        /// `1/σ̂_su + ψ̂_s(u)` in the paper's floating point.
        value: CeilFloat,
    },
    /// Adaptive scheduling: root's signal that counting has ended and the
    /// reduce convergecast may begin (flooded down the tree).
    StartReduce,
    /// Adaptive scheduling: phase-A termination detection — a node reports
    /// to its parent that its whole subtree has joined the tree, carrying
    /// the subtree's maximum depth (the root derives the bound
    /// `D ≤ 2·depth` from these).
    SubtreeDone {
        /// Maximum tree depth within the reporting subtree.
        max_depth: u32,
    },
    /// A [`ProtocolMsg::Wave`] carrying the DFS token on the same edge in
    /// the same round (CONGEST permits one merged `O(log N)`-bit message;
    /// merging is what lets the token travel at wave speed — the paper's
    /// `T_next = T_prev + d + 1` spacing — without ever colliding).
    WaveWithToken {
        /// The BFS source `s`.
        source: u32,
        /// `d(s, sender)`.
        sender_dist: u32,
        /// `σ̂_{s,sender}`.
        sigma: CeilFloat,
    },
    /// Phase D with the stress-centrality extension enabled (the paper's
    /// footnote 3: stress "can also be computed in a similar way"): the ψ
    /// value plus the stress recursion value `1 + ρ̂_s(u)`, where
    /// `ρ_s(v) = Σ_{w: v ∈ P_s(w)} (1 + ρ_s(w))` counts shortest-path
    /// continuations below `v` and `C_S`-dependency is `σ̂_sv · ρ̂_s(v)`.
    AggWithStress {
        /// The source `s` these values belong to.
        source: u32,
        /// `1/σ̂_su + ψ̂_s(u)`.
        psi: CeilFloat,
        /// `1 + ρ̂_s(u)`.
        rho: CeilFloat,
    },
    /// Phase D with the Ji–Yan refined estimator (arXiv:1608.04472): the ψ
    /// value plus a second accumulator `ψ^S` whose own-term is emitted only
    /// by in-sample nodes — it tracks dependencies restricted to targets in
    /// `S`, letting the driver count in-sample pairs exactly and
    /// extrapolate only the remainder.
    AggRefined {
        /// The source `s` these values belong to.
        source: u32,
        /// `1/σ̂_su + ψ̂_s(u)` (all targets).
        psi: CeilFloat,
        /// `[u ∈ S]/σ̂_su + ψ̂^S_s(u)` (in-sample targets only).
        psi_in: CeilFloat,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_numeric::Rounding;

    fn codec(n: usize) -> Codec {
        Codec::new(n, FpParams::new(12, Rounding::Ceil))
    }

    #[test]
    fn roundtrip_all_variants() {
        let c = codec(100);
        let fp = c.fp;
        let sigma = CeilFloat::from_u64(123_456, fp);
        let value = CeilFloat::from_u64(7, fp).recip();
        let msgs = [
            ProtocolMsg::TreeAnnounce {
                dist: 42,
                chooses_you: true,
            },
            ProtocolMsg::TreeAnnounce {
                dist: 0,
                chooses_you: false,
            },
            ProtocolMsg::Token,
            ProtocolMsg::Wave {
                source: 99,
                sender_dist: 55,
                sigma,
            },
            ProtocolMsg::Reduce {
                min_ts: 120,
                max_ts: 40_000,
                max_d: 99,
            },
            ProtocolMsg::AggStart {
                base: 50_000,
                min_ts: 120,
                max_ts: 12_345,
                d: 31,
            },
            ProtocolMsg::Agg { source: 3, value },
            ProtocolMsg::StartReduce,
            ProtocolMsg::SubtreeDone { max_depth: 77 },
            ProtocolMsg::WaveWithToken {
                source: 12,
                sender_dist: 9,
                sigma,
            },
            ProtocolMsg::AggWithStress {
                source: 5,
                psi: value,
                rho: sigma,
            },
            ProtocolMsg::AggRefined {
                source: 8,
                psi: value,
                psi_in: value,
            },
        ];
        for m in msgs {
            let enc = c.encode(&m);
            assert_eq!(c.decode(&enc), Ok(m), "roundtrip failed for {m:?}");
            assert!(enc.bit_len() <= c.max_message_bits());
        }
    }

    #[test]
    fn sizes_are_logarithmic() {
        // Message size grows like log n, not n.
        let small = codec(16).max_message_bits();
        let large = codec(1 << 20).max_message_bits();
        assert!(large < 4 * small, "small={small}, large={large}");
        // And fits the engine's Auto budget at every scale.
        for n in [2usize, 10, 100, 1000, 100_000] {
            let c = Codec::new(n, FpParams::for_graph_size(n));
            let budget = bc_congest::Budget::Auto.resolve(n).unwrap();
            assert!(
                c.max_message_bits() <= budget,
                "n={n}: {} > {budget}",
                c.max_message_bits()
            );
        }
    }

    #[test]
    fn sequential_offsets_fit() {
        // ts field must hold the sequential baseline's Θ(n²) offsets.
        for n in [4usize, 100, 5000] {
            let c = codec(n);
            let max_off = (n as u64 + 2) * n as u64 + 16;
            assert!(max_off < (1u64 << c.ts_w), "n={n}");
        }
    }

    #[test]
    fn bad_tag_is_an_error() {
        let c = codec(8);
        let mut w = BitWriter::new();
        w.push(15, 4);
        assert_eq!(
            c.decode(&Message::new(w.finish())),
            Err(DecodeError::UnknownTag { tag: 15 })
        );
    }

    #[test]
    fn truncated_payloads_are_errors() {
        let c = codec(8);
        // Too short for even a tag.
        let mut w = BitWriter::new();
        w.push(0, 2);
        assert!(matches!(
            c.decode(&Message::new(w.finish())),
            Err(DecodeError::Truncated { tag: None, .. })
        ));
        // A valid tag whose body is cut off.
        let mut w = BitWriter::new();
        w.push(3, 4);
        w.push(0, 5);
        let err = c.decode(&Message::new(w.finish())).unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { tag: Some(3), .. }));
        assert!(err.to_string().contains("truncated"), "{err}");
    }
}
