//! Reliable transport over lossy CONGEST links.
//!
//! The simulator's fault layer ([`bc_congest::faults`]) can drop,
//! duplicate, reorder (via delays), and corrupt messages. This module
//! wraps any [`Protocol`] in [`Reliable`], a per-edge sliding-window
//! transport that restores the synchronous abstraction on top of such a
//! network: the wrapped protocol executes exactly the *virtual* rounds it
//! would execute on a lossless network, with exactly the same inboxes, so
//! its final state is bit-identical to a fault-free run.
//!
//! # Wire protocol
//!
//! Each physical CONGEST message carries one *frame*:
//!
//! ```text
//! | checksum:8 | ack_only:1 | has_payload:1 | halted:1 | vround:32 | ack:32 | payload:* |
//! ```
//!
//! * `checksum` — XOR-fold of every bit after it. Any single-bit
//!   corruption is detected (each body bit feeds exactly one checksum
//!   bit), and a mismatching frame is silently discarded — the
//!   retransmission machinery recovers it, so corruption degrades into
//!   loss and never reaches the inner protocol's decoder.
//! * `ack` — cumulative: the number of contiguous frames received on this
//!   edge, piggybacked on every frame (including retransmissions and
//!   ack-only frames).
//! * `vround` — the virtual round the payload belongs to. The transport
//!   sends exactly one frame per virtual round per edge — an *empty*
//!   frame (`has_payload = 0`) when the inner protocol had nothing to
//!   say — so virtual rounds double as per-edge sequence numbers and a
//!   receiver can distinguish "nothing was sent" from "the message was
//!   lost".
//! * `halted` — set on a node's final frame for an edge: a promise that
//!   no frame with a higher `vround` will ever be sent on it, letting the
//!   peer run ahead without waiting. This requires [`Protocol::is_halted`]
//!   to be *stable* (a halted protocol stays halted and sends nothing) —
//!   true for `DistBcNode` and every protocol in this workspace.
//!
//! # Execution model
//!
//! Virtual round `v` of the inner protocol runs once the frame for
//! virtual round `v − 1` has arrived from every neighbor (or the
//! neighbor's halted promise covers it), mirroring the synchronous
//! engine's sent-in-`r`, delivered-in-`r + 1` rule. On a fault-free
//! network this pipelines perfectly — one virtual round per physical
//! round. Under faults the transport retransmits the oldest unacknowledged
//! frame once per [`ReliableConfig::rto`] physical rounds, and a run costs
//! roughly `1 / (1 − p)` physical rounds per virtual round at drop
//! probability `p`.
//!
//! Crash-recover windows compose with this: a crashed node loses the
//! frames delivered while it was down, but its transport state survives,
//! so peers' retransmissions repair the gap after recovery. Crash-*stop*
//! failures are not masked — peers retransmit forever and the engine
//! reports [`bc_congest::CongestError::RoundLimit`].

use bc_congest::telemetry::{Counter, Telemetry};
use bc_congest::{Message, Protocol, RoundCtx};
use bc_numeric::bits::BitWriter;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Frame-header overhead in bits: checksum (8) + flags (3) + vround (32)
/// \+ cumulative ack (32). A reliable run needs its per-message budget
/// raised by this amount over the inner protocol's budget.
///
/// The sequence fields were widened from 16 to 32 bits after a run
/// crossing 65 535 virtual rounds was found to wrap the sequence space
/// (corrupting dedup and cumulative acks). 2³² virtual rounds is beyond
/// any reachable run length — `Config::max_rounds` caps physical rounds
/// well below it — so the remaining guard is a hard assert, not a wrap.
pub const HEADER_BITS: usize = 75;

/// Largest virtual round / ack the 32-bit frame fields can carry.
const SEQ_LIMIT: u64 = 1 << 32;

/// Tuning knobs for [`Reliable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Retransmission timeout in physical rounds: the oldest
    /// unacknowledged frame on an edge is resent once it has been
    /// outstanding this long. Should exceed the network's round-trip
    /// (2 plus the fault layer's maximum delivery delay).
    pub rto: u64,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig { rto: 3 }
    }
}

/// Transport counters for one node, harvested by the driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Physical frames sent (first transmissions + retransmissions +
    /// ack-only frames).
    pub frames_sent: u64,
    /// Frames resent after a retransmission timeout.
    pub retransmits: u64,
    /// Pure-acknowledgment frames (no sequence number; never themselves
    /// acknowledged, so two idle peers cannot ack-ping-pong forever).
    pub ack_only_frames: u64,
    /// Received frames discarded as duplicates of an already-received
    /// virtual round.
    pub deduped: u64,
    /// Received frames discarded for a checksum mismatch (corruption).
    pub checksum_drops: u64,
}

impl TransportStats {
    /// Accumulates `other` into `self` (driver-side aggregation).
    pub fn merge(&mut self, other: &TransportStats) {
        self.frames_sent += other.frames_sent;
        self.retransmits += other.retransmits;
        self.ack_only_frames += other.ack_only_frames;
        self.deduped += other.deduped;
        self.checksum_drops += other.checksum_drops;
    }
}

/// A decoded frame.
struct Frame {
    ack_only: bool,
    halted: bool,
    vround: u64,
    ack: u64,
    payload: Option<Message>,
}

/// One queued outbound frame awaiting acknowledgment.
struct OutFrame {
    vround: u64,
    halted: bool,
    payload: Option<Message>,
    /// Physical round of the last transmission (`None` = never sent).
    last_sent: Option<u64>,
}

/// Per-port (per-incident-edge) transport state.
struct PortState {
    /// Outbound frames not yet cumulatively acknowledged, oldest first.
    out: VecDeque<OutFrame>,
    /// Peer's cumulative ack: frames with `vround < acked_upto` are done.
    acked_upto: u64,
    /// Received frames not yet consumed by the inner protocol, keyed by
    /// virtual round (holds out-of-order arrivals too).
    frames: BTreeMap<u64, (Option<Message>, bool)>,
    /// Number of contiguous virtual rounds received — doubles as the
    /// cumulative ack we send.
    expected: u64,
    /// First virtual round the peer promised never to send (its halted
    /// frame's `vround + 1`).
    peer_halted_from: Option<u64>,
    /// A sequenced frame arrived since we last sent anything; if no
    /// regular frame goes out this round, an ack-only frame will.
    owes_ack: bool,
}

impl PortState {
    fn new() -> Self {
        PortState {
            out: VecDeque::new(),
            acked_upto: 0,
            frames: BTreeMap::new(),
            expected: 0,
            peer_halted_from: None,
            owes_ack: false,
        }
    }
}

/// Wraps a [`Protocol`] in the reliable transport. Run it on a faulty
/// [`bc_congest::Network`] (with the engine budget raised by
/// [`HEADER_BITS`]) and the inner protocol's final state is bit-identical
/// to a fault-free run of the bare protocol.
pub struct Reliable<P> {
    inner: P,
    cfg: ReliableConfig,
    /// Next inner virtual round to execute.
    vr: u64,
    inner_halted: bool,
    ports: Vec<PortState>,
    stats: TransportStats,
    /// Live telemetry mirror of `stats` (registry + shard). Counter-only:
    /// never consulted by the protocol, so it cannot perturb execution.
    telemetry: Option<(Arc<Telemetry>, usize)>,
    /// Recycled inbox staging buffer for nested rounds.
    scratch: Vec<(usize, Message)>,
}

impl<P: Protocol> Reliable<P> {
    /// Wraps `inner` for a node with `degree` incident edges.
    pub fn new(inner: P, degree: usize, cfg: ReliableConfig) -> Self {
        Reliable {
            inner,
            cfg,
            vr: 0,
            inner_halted: false,
            ports: (0..degree).map(|_| PortState::new()).collect(),
            stats: TransportStats::default(),
            telemetry: None,
            scratch: Vec::new(),
        }
    }

    /// Mirrors this node's transport counters into `telemetry` as they
    /// change, attributed to `shard`.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>, shard: usize) {
        self.telemetry = Some((telemetry, shard));
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the transport, returning the inner protocol.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Virtual (inner-protocol) rounds executed so far.
    pub fn virtual_rounds(&self) -> u64 {
        self.vr
    }

    /// This node's transport counters.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// True when every port has the frame for virtual round `vr − 1` (or
    /// a halted promise covering it), so inner round `vr` can run.
    fn executable(&self) -> bool {
        let vr = self.vr;
        if vr == 0 {
            return true;
        }
        self.ports
            .iter()
            .all(|ps| ps.expected >= vr || ps.peer_halted_from.is_some_and(|p| p < vr))
    }

    fn process_frame(&mut self, port: usize, raw: &Message) {
        let Some(frame) = decode(raw) else {
            self.stats.checksum_drops += 1;
            if let Some((t, s)) = &self.telemetry {
                t.add(*s, Counter::ChecksumDrops, 1);
            }
            return;
        };
        let ps = &mut self.ports[port];
        if frame.ack > ps.acked_upto {
            ps.acked_upto = frame.ack;
            while ps.out.front().is_some_and(|f| f.vround < ps.acked_upto) {
                ps.out.pop_front();
            }
        }
        if frame.ack_only {
            return;
        }
        ps.owes_ack = true;
        if frame.vround < ps.expected || ps.frames.contains_key(&frame.vround) {
            self.stats.deduped += 1;
            if let Some((t, s)) = &self.telemetry {
                t.add(*s, Counter::FramesDeduped, 1);
            }
            return;
        }
        ps.frames
            .insert(frame.vround, (frame.payload, frame.halted));
        while let Some(halted) = ps.frames.get(&ps.expected).map(|e| e.1) {
            if halted {
                ps.peer_halted_from = Some(ps.expected + 1);
            }
            ps.expected += 1;
        }
    }

    /// Runs every inner virtual round whose inbox is complete and queues
    /// the resulting frames.
    fn advance_inner(&mut self, ctx: &mut RoundCtx<'_>) {
        while !self.inner_halted && self.executable() {
            let vr = self.vr;
            assert!(vr < SEQ_LIMIT, "virtual round exceeds 32-bit frame field");
            let mut inbox = std::mem::take(&mut self.scratch);
            inbox.clear();
            if vr > 0 {
                for (port, ps) in self.ports.iter_mut().enumerate() {
                    if let Some((Some(m), _)) = ps.frames.remove(&(vr - 1)) {
                        inbox.push((port, m));
                    }
                }
            }
            let sends = ctx.nested_round(vr, &mut self.inner, &inbox);
            inbox.clear();
            self.scratch = inbox;
            self.inner_halted = self.inner.is_halted();
            let mut per_port: Vec<Option<Message>> = vec![None; self.ports.len()];
            for (port, m) in sends {
                assert!(
                    per_port[port].is_none(),
                    "nested protocol sent two messages on port {port} in one round \
                     (CONGEST violation)"
                );
                per_port[port] = Some(m);
            }
            for (port, payload) in per_port.into_iter().enumerate() {
                self.ports[port].out.push_back(OutFrame {
                    vround: vr,
                    halted: self.inner_halted,
                    payload,
                    last_sent: None,
                });
            }
            self.vr = vr + 1;
        }
    }

    /// Emits at most one physical frame per port: a never-sent frame
    /// first, else an RTO retransmission of the oldest unacked frame,
    /// else an ack-only frame if one is owed.
    fn emit_frames(&mut self, ctx: &mut RoundCtx<'_>, now: u64) {
        for port in 0..self.ports.len() {
            let ps = &mut self.ports[port];
            let ack = ps.expected;
            assert!(ack < SEQ_LIMIT, "cumulative ack exceeds 32-bit frame field");
            if let Some(f) = ps.out.iter_mut().find(|f| f.last_sent.is_none()) {
                f.last_sent = Some(now);
                let msg = encode(&Frame {
                    ack_only: false,
                    halted: f.halted,
                    vround: f.vround,
                    ack,
                    payload: f.payload.clone(),
                });
                ps.owes_ack = false;
                self.stats.frames_sent += 1;
                if let Some((t, s)) = &self.telemetry {
                    t.add(*s, Counter::FramesSent, 1);
                }
                ctx.send(port, msg);
                continue;
            }
            let rto = self.cfg.rto;
            if let Some(f) = ps.out.front_mut() {
                if f.last_sent.is_some_and(|t| now >= t + rto) {
                    f.last_sent = Some(now);
                    let msg = encode(&Frame {
                        ack_only: false,
                        halted: f.halted,
                        vround: f.vround,
                        ack,
                        payload: f.payload.clone(),
                    });
                    ps.owes_ack = false;
                    self.stats.frames_sent += 1;
                    self.stats.retransmits += 1;
                    if let Some((t, s)) = &self.telemetry {
                        t.add(*s, Counter::FramesSent, 1);
                        t.add(*s, Counter::Retransmits, 1);
                    }
                    ctx.send(port, msg);
                    continue;
                }
            }
            if ps.owes_ack {
                let msg = encode(&Frame {
                    ack_only: true,
                    halted: false,
                    vround: 0,
                    ack,
                    payload: None,
                });
                ps.owes_ack = false;
                self.stats.frames_sent += 1;
                self.stats.ack_only_frames += 1;
                if let Some((t, s)) = &self.telemetry {
                    t.add(*s, Counter::FramesSent, 1);
                    t.add(*s, Counter::AckOnlyFrames, 1);
                }
                ctx.send(port, msg);
            }
        }
    }
}

impl<P: Protocol> Protocol for Reliable<P> {
    fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]) {
        let now = ctx.round();
        for (port, raw) in inbox {
            self.process_frame(*port, raw);
        }
        self.advance_inner(ctx);
        self.emit_frames(ctx, now);
    }

    /// Halted once the inner protocol halted, every outbound frame is
    /// acknowledged, and no ack is owed. Receiving a peer's retransmission
    /// briefly un-halts the node so it can re-acknowledge.
    fn is_halted(&self) -> bool {
        self.inner_halted
            && self
                .ports
                .iter()
                .all(|ps| ps.out.is_empty() && !ps.owes_ack)
    }
}

fn fold_checksum(acc: u64) -> u64 {
    let mut x = acc;
    x ^= x >> 32;
    x ^= x >> 16;
    x ^= x >> 8;
    x & 0xff
}

/// XOR-fold of a bit stream read in `min(64, remaining)`-bit chunks —
/// both sides chunk identically, so the fold is well-defined.
fn checksum_bits(r: &mut bc_numeric::bits::BitReader<'_>, mut rem: usize) -> u64 {
    let mut acc = 0u64;
    while rem > 0 {
        let w = rem.min(64);
        acc ^= r.read(w as u32);
        rem -= w;
    }
    fold_checksum(acc)
}

fn encode(f: &Frame) -> Message {
    let mut body = BitWriter::new();
    body.push(f.ack_only as u64, 1);
    body.push(f.payload.is_some() as u64, 1);
    body.push(f.halted as u64, 1);
    body.push(f.vround, 32);
    body.push(f.ack, 32);
    if let Some(p) = &f.payload {
        let buf = p.payload();
        let mut r = buf.reader();
        let mut rem = buf.bit_len();
        while rem > 0 {
            let w = rem.min(64);
            body.push(r.read(w as u32), w as u32);
            rem -= w;
        }
    }
    let body = body.finish();
    let checksum = checksum_bits(&mut body.reader(), body.bit_len());
    let mut out = BitWriter::new();
    out.push(checksum, 8);
    let mut r = body.reader();
    let mut rem = body.bit_len();
    while rem > 0 {
        let w = rem.min(64);
        out.push(r.read(w as u32), w as u32);
        rem -= w;
    }
    Message::new(out.finish())
}

/// Decodes a frame; `None` means the frame is malformed or fails its
/// checksum and must be treated as lost.
fn decode(msg: &Message) -> Option<Frame> {
    let total = msg.bit_len();
    if total < HEADER_BITS {
        return None;
    }
    let buf = msg.payload();
    let mut r = buf.reader();
    let stored = r.read(8);
    let computed = {
        let mut rr = buf.reader();
        let _ = rr.read(8);
        checksum_bits(&mut rr, total - 8)
    };
    if computed != stored {
        return None;
    }
    let ack_only = r.read(1) == 1;
    let has_payload = r.read(1) == 1;
    let halted = r.read(1) == 1;
    let vround = r.read(32);
    let ack = r.read(32);
    let payload_bits = total - HEADER_BITS;
    let payload = if has_payload {
        let mut w = BitWriter::new();
        let mut rem = payload_bits;
        while rem > 0 {
            let width = rem.min(64);
            w.push(r.read(width as u32), width as u32);
            rem -= width;
        }
        Some(Message::new(w.finish()))
    } else {
        if payload_bits != 0 {
            return None;
        }
        None
    };
    Some(Frame {
        ack_only,
        halted,
        vround,
        ack,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_congest::faults::{corrupt_message, FaultPlan};
    use bc_congest::{Budget, Config, Network};
    use bc_graph::{generators, Graph, NodeId};

    fn frame_roundtrip(f: Frame) {
        let msg = encode(&f);
        assert_eq!(
            msg.bit_len() - f.payload.as_ref().map_or(0, |p| p.bit_len()),
            HEADER_BITS
        );
        let d = decode(&msg).expect("valid frame decodes");
        assert_eq!(d.ack_only, f.ack_only);
        assert_eq!(d.halted, f.halted);
        assert_eq!(d.vround, f.vround);
        assert_eq!(d.ack, f.ack);
        match (&d.payload, &f.payload) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.bit_len(), b.bit_len());
                let mut ra = a.payload().reader();
                let mut rb = b.payload().reader();
                let mut rem = a.bit_len();
                while rem > 0 {
                    let w = rem.min(64);
                    assert_eq!(ra.read(w as u32), rb.read(w as u32));
                    rem -= w;
                }
            }
            _ => panic!("payload presence mismatch"),
        }
    }

    fn payload(bits: &[(u64, u32)]) -> Message {
        let mut w = BitWriter::new();
        for &(v, width) in bits {
            w.push(v, width);
        }
        Message::new(w.finish())
    }

    #[test]
    fn frames_roundtrip() {
        frame_roundtrip(Frame {
            ack_only: true,
            halted: false,
            vround: 0,
            ack: 17,
            payload: None,
        });
        frame_roundtrip(Frame {
            ack_only: false,
            halted: true,
            vround: 65_535,
            ack: 65_535,
            payload: None,
        });
        frame_roundtrip(Frame {
            ack_only: false,
            halted: false,
            vround: 12,
            ack: 3,
            payload: Some(payload(&[(0xdead_beef, 32), (5, 3)])),
        });
        // Zero-length payloads are representable and distinct from "no
        // payload".
        frame_roundtrip(Frame {
            ack_only: false,
            halted: false,
            vround: 1,
            ack: 1,
            payload: Some(payload(&[])),
        });
    }

    #[test]
    fn frames_roundtrip_beyond_16_bit_sequence_space() {
        // Regression: vround/ack were 16-bit fields until a long run
        // wrapped the sequence space at 65 536 virtual rounds; frames must
        // round-trip well past the old boundary.
        frame_roundtrip(Frame {
            ack_only: false,
            halted: false,
            vround: 65_536,
            ack: 65_536,
            payload: None,
        });
        frame_roundtrip(Frame {
            ack_only: false,
            halted: true,
            vround: (1 << 32) - 1,
            ack: 1 << 20,
            payload: Some(payload(&[(0xfeed, 16)])),
        });
    }

    /// Broadcasts the current round number every round up to a limit;
    /// checks arrivals are strictly sequential (any sequence-space wrap
    /// would alias an old vround onto a new one and break the order).
    struct LongHaul {
        limit: u64,
        last_seen: u64,
    }

    impl Protocol for LongHaul {
        fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]) {
            for (_, m) in inbox {
                let v = m.payload().reader().read(32);
                assert_eq!(v, self.last_seen, "out-of-sequence arrival");
                self.last_seen = v + 1;
            }
            if ctx.round() < self.limit {
                let mut w = BitWriter::new();
                w.push(ctx.round(), 32);
                ctx.broadcast(&Message::new(w.finish()));
            }
        }

        fn is_halted(&self) -> bool {
            self.last_seen >= self.limit
        }
    }

    #[test]
    fn virtual_rounds_cross_the_old_16_bit_boundary() {
        // Regression: with 16-bit sequence fields this run hit the
        // sequence-space ceiling at virtual round 65 536. It must now run
        // through the boundary with dedup and acks intact.
        const LIMIT: u64 = 65_600;
        let g = generators::path(2);
        let cfg = Config {
            budget: Budget::Unlimited,
            ..Config::default()
        };
        let mut net = Network::new(&g, cfg, |v, g| {
            Reliable::new(
                LongHaul {
                    limit: LIMIT,
                    last_seen: 0,
                },
                g.degree(v),
                ReliableConfig::default(),
            )
        });
        net.run(200_000).unwrap();
        for v in g.nodes() {
            let node = net.node(v);
            assert_eq!(node.inner().last_seen, LIMIT, "node {v}");
            assert!(node.virtual_rounds() > 65_536, "node {v} stopped short");
            assert_eq!(node.stats().retransmits, 0);
            assert_eq!(node.stats().deduped, 0);
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let msg = encode(&Frame {
            ack_only: false,
            halted: false,
            vround: 40,
            ack: 39,
            payload: Some(payload(&[(0x1234_5678_9abc_def0, 64), (0x2a, 7)])),
        });
        for bit in 0..msg.bit_len() as u64 {
            let corrupted = corrupt_message(&msg, bit);
            assert!(
                decode(&corrupted).is_none(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        assert!(decode(&payload(&[(0, 10)])).is_none());
        assert!(decode(&payload(&[])).is_none());
    }

    /// The flooding protocol used across the engine test suites.
    struct Flood {
        dist: Option<u64>,
        announced: bool,
    }

    impl Protocol for Flood {
        fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]) {
            if ctx.round() == 0 && ctx.id() == 0 {
                self.dist = Some(0);
            }
            for (_, m) in inbox {
                let d = m.payload().reader().read(32);
                if self.dist.is_none() {
                    self.dist = Some(d + 1);
                }
            }
            if let (Some(d), false) = (self.dist, self.announced) {
                self.announced = true;
                let mut w = BitWriter::new();
                w.push(d, 32);
                ctx.broadcast(&Message::new(w.finish()));
            }
        }

        fn is_halted(&self) -> bool {
            self.announced
        }
    }

    fn reliable_flood(v: NodeId, g: &Graph) -> Reliable<Flood> {
        Reliable::new(
            Flood {
                dist: None,
                announced: false,
            },
            g.degree(v),
            ReliableConfig::default(),
        )
    }

    fn faulty_config(plan: FaultPlan) -> Config {
        Config {
            budget: Budget::Unlimited,
            faults: Some(plan),
            ..Config::default()
        }
    }

    #[test]
    fn lossless_reliable_flood_matches_bare_run() {
        let g = generators::erdos_renyi_connected(24, 0.12, 9);
        let mut bare = Network::new(&g, Config::default(), |_, _| Flood {
            dist: None,
            announced: false,
        });
        bare.run(10_000).unwrap();
        // Like the driver, raise the per-message budget by the frame
        // header so the inner protocol keeps its full payload allowance.
        let cfg = Config {
            budget: Budget::Bits(Budget::Auto.resolve(g.n()).unwrap() + HEADER_BITS),
            ..Config::default()
        };
        let mut net = Network::new(&g, cfg, reliable_flood);
        net.run(10_000).unwrap();
        let mut totals = TransportStats::default();
        for v in g.nodes() {
            assert_eq!(net.node(v).inner().dist, bare.node(v).dist, "node {v}");
            totals.merge(&net.node(v).stats());
        }
        assert_eq!(totals.retransmits, 0, "lossless run retransmitted");
        assert_eq!(totals.deduped, 0);
        assert_eq!(totals.checksum_drops, 0);
    }

    #[test]
    fn flood_survives_heavy_drop_dup_and_reorder() {
        let g = generators::erdos_renyi_connected(20, 0.15, 3);
        let mut bare = Network::new(&g, Config::default(), |_, _| Flood {
            dist: None,
            announced: false,
        });
        bare.run(10_000).unwrap();
        for seed in 0..4 {
            let plan = FaultPlan {
                drop: 0.2,
                duplicate: 0.15,
                delay: 0.2,
                max_delay: 3,
                ..FaultPlan::seeded(seed)
            };
            let mut net = Network::new(&g, faulty_config(plan), reliable_flood);
            let report = net.run(50_000).unwrap();
            let mut retransmits = 0;
            for v in g.nodes() {
                assert_eq!(
                    net.node(v).inner().dist,
                    bare.node(v).dist,
                    "seed {seed} node {v}"
                );
                retransmits += net.node(v).stats().retransmits;
            }
            assert!(retransmits > 0, "seed {seed}: faults caused no retransmits");
            assert!(report.rounds > 0);
        }
    }

    #[test]
    fn flood_survives_pure_corruption() {
        let g = generators::cycle(12);
        let mut bare = Network::new(&g, Config::default(), |_, _| Flood {
            dist: None,
            announced: false,
        });
        bare.run(10_000).unwrap();
        let plan = FaultPlan {
            corrupt: 0.3,
            ..FaultPlan::seeded(11)
        };
        let mut net = Network::new(&g, faulty_config(plan), reliable_flood);
        net.run(50_000).unwrap();
        let mut checksum_drops = 0;
        for v in g.nodes() {
            assert_eq!(net.node(v).inner().dist, bare.node(v).dist, "node {v}");
            checksum_drops += net.node(v).stats().checksum_drops;
        }
        assert!(checksum_drops > 0, "corruption never reached the checksum");
    }
}
