//! The paper's primary contribution: an `O(N)`-round deterministic
//! distributed algorithm computing the betweenness centrality of **every**
//! node of an undirected, unweighted graph under the CONGEST model
//! (Hua et al., ICDCS 2016).
//!
//! The implementation follows the paper's two phases:
//!
//! 1. **Counting (Algorithm 2):** a DFS token walks a BFS tree of the
//!    network; each first visit launches one BFS wave, and the waves are
//!    pipelined so that all `N` single-source computations finish in
//!    `O(N)` rounds (Holzer–Wattenhofer). Every node `v` ends up with
//!    `(T_s, d(s,v), σ̂_sv, P_s(v))` for every source `s`, with the
//!    potentially exponential path counts `σ` carried in the `L`-bit
//!    ceiling floating point of Section VI.
//! 2. **Aggregation (Algorithm 3):** node `u` sends `1/σ̂_su + ψ̂_s(u)` to
//!    its predecessors at round `T_s + D − d(s,u)` — the schedule of
//!    Lemma 4, under which no two messages ever share a directed edge in
//!    a round — and finalizes `δ̂_s·(u) = ψ̂_s(u)·σ̂_su`, accumulating
//!    `C_B(u)`.
//!
//! The execution is CONGEST-*enforced*, not just CONGEST-styled: all
//! payloads are bit-encoded ([`Codec`]) and the simulator fails on any
//! collision or oversized message (strict mode), so Lemmas 3–5 and
//! Theorem 2 are checked on every run. The round totals verify Theorem 3
//! (`O(N)`), and the floating-point error obeys Theorem 1 / Corollary 1.
//!
//! A deliberately unpipelined [`Scheduling::Sequential`] baseline
//! (`Θ(N²)` counting rounds) quantifies what the paper's scheduling buys
//! (experiment E10a).
//!
//! # Quickstart
//!
//! ```
//! use bc_core::{run_distributed_bc, DistBcConfig};
//! use bc_graph::generators;
//!
//! let g = generators::erdos_renyi_connected(40, 0.08, 1);
//! let out = run_distributed_bc(&g, DistBcConfig::default())?;
//! assert_eq!(out.betweenness.len(), 40);
//! assert!(out.metrics.congest_compliant());     // Lemmas 3–5
//! assert!(out.rounds < 16 * 40);                // Theorem 3, O(N)
//! # Ok::<(), bc_core::DistBcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apsp_pipeline;
mod codec;
mod driver;
mod node;
mod result;
mod sampling;
mod schedule;
pub mod snapshot;
pub mod transport;
pub mod wire;

pub use codec::{Codec, DecodeError, ProtocolMsg};
pub use driver::{
    auto_threads, auto_threads_for, run_distributed_bc, run_distributed_bc_profiled,
    run_distributed_bc_traced, run_distributed_bc_traced_profiled, run_distributed_bc_weighted,
    run_distributed_closeness, run_distributed_diameter, DistBcConfig, DistBcError, DistBcResult,
    PartitionStrategy, WeightedDistBcResult, AUTO_THREADS_MIN_NODES,
};
pub use node::{AggInfo, AlgoOptions, DistBcNode};
pub use sampling::{source_mask, Estimator, SourceIndex, SourceSelection};
pub use schedule::{PhaseSchedule, Scheduling};
pub use snapshot::{CentralitySnapshot, SnapshotDecodeError, SnapshotStore};
pub use transport::{Reliable, ReliableConfig, TransportStats, HEADER_BITS};
pub use wire::{run_leader, serve_shard, WireRunError};
