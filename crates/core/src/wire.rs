//! The process-per-shard runtime: a `serve-shard` worker that runs one
//! shard of the round loop behind a socket lane mesh, and a leader that
//! distributes the partition, collects per-shard results, and performs
//! the same canonical merge the in-process engines use.
//!
//! Division of labor with [`bc_congest::wire`]: the congest layer owns
//! framing, the handshake frames, and the shard-side round engine (it
//! needs the engine's internal routing hooks); this module owns
//! everything algorithm-specific — the `SETUP` payload describing a
//! betweenness run, the `DONE` payload carrying a shard's harvest, node
//! construction behind the [`Reliable`] transport, and the leader-side
//! merge that reassembles a [`DistBcResult`] bit-identical to
//! [`run_distributed_bc`](crate::run_distributed_bc) on one process.
//!
//! Wire runs are always reliable: every node sits behind the
//! [`Reliable`] transport exactly as `DistBcConfig { reliable: true }`
//! runs do in process, so budgets, round limits, and results line up
//! with the in-process reliable oracle by construction.

use crate::driver::{DistBcConfig, DistBcError, PartitionStrategy};
use crate::node::{AggInfo, AlgoOptions, DistBcNode};
use crate::result::{
    assemble_result, profile_phases, summarize_node, summarize_root, DistBcResult, NodeSummary,
    RootSummary,
};
use crate::sampling::{Estimator, SourceIndex, SourceSelection};
use crate::schedule::{PhaseSchedule, Scheduling};
use crate::transport::{Reliable, ReliableConfig, TransportStats, HEADER_BITS};
use bc_congest::telemetry::{Counter, HistogramId, COUNTERS};
use bc_congest::wire::{
    fnv1a64, graph_hash, put_f64, put_str, put_u32, put_u64, put_u8, run_shard_engine, ByteReader,
    Hello, ShardEngineConfig, WireError, WireListener, WireProfRow, WireStream, COUNTER_COUNT,
    PEER_READ_TIMEOUT, ROLE_LEADER, ROLE_SHARD, TAG_DONE, TAG_ERROR, TAG_HELLO, TAG_SETUP,
    VERDICT_QUIESCENT, VERDICT_ROUND_LIMIT,
};
use bc_congest::{
    Budget, CongestError, Enforcement, NetMetrics, ProfileReport, Profiler, RoundSpan, Telemetry,
};
use bc_graph::{algo, Graph, NodeId};
use bc_numeric::{FpParams, Rounding};
use std::fmt;
use std::sync::Arc;

/// Errors from a wire run (leader or shard side).
#[derive(Debug, Clone, PartialEq)]
pub enum WireRunError {
    /// The algorithm itself failed (bad input graph, CONGEST violation,
    /// node panic, round limit) — the same errors an in-process run
    /// reports, reassembled canonically from the shard reports.
    Algo(DistBcError),
    /// The wire itself failed: connect/handshake errors, a peer that
    /// died mid-run, or malformed frames.
    Net(WireError),
}

impl fmt::Display for WireRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireRunError::Algo(e) => write!(f, "{e}"),
            WireRunError::Net(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireRunError {}

impl From<WireError> for WireRunError {
    fn from(e: WireError) -> Self {
        WireRunError::Net(e)
    }
}

impl From<DistBcError> for WireRunError {
    fn from(e: DistBcError) -> Self {
        WireRunError::Algo(e)
    }
}

fn proto(msg: impl Into<String>) -> WireRunError {
    WireRunError::Net(WireError::Protocol(msg.into()))
}

// ---------------------------------------------------------------------------
// SETUP codec
// ---------------------------------------------------------------------------

/// The run description the leader distributes to every shard. All fields
/// are already resolved (fp, budget) so every process derives identical
/// schedules, partitions, and node options from the same bytes.
#[derive(Debug, Clone, PartialEq)]
struct Setup {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    addrs: Vec<String>,
    partition: PartitionStrategy,
    scheduling: Scheduling,
    compute_stress: bool,
    sources: SourceSelection,
    targets: Option<Arc<[bool]>>,
    fp: FpParams,
    budget: Budget,
    strict: bool,
    skip_idle: bool,
    telemetry: bool,
    profiling: bool,
    estimator: Estimator,
}

fn put_mask(buf: &mut Vec<u8>, mask: &[bool]) {
    put_u32(buf, mask.len() as u32);
    let mut byte = 0u8;
    for (i, &b) in mask.iter().enumerate() {
        byte |= (b as u8) << (i % 8);
        if i % 8 == 7 {
            buf.push(byte);
            byte = 0;
        }
    }
    if !mask.len().is_multiple_of(8) {
        buf.push(byte);
    }
}

fn get_mask(r: &mut ByteReader<'_>) -> Result<Vec<bool>, WireError> {
    let len = r.u32()? as usize;
    let mut out = Vec::with_capacity(len);
    let mut byte = 0u8;
    for i in 0..len {
        if i % 8 == 0 {
            byte = r.u8()?;
        }
        out.push(byte >> (i % 8) & 1 != 0);
    }
    Ok(out)
}

impl Setup {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.edges.len() * 8);
        put_u32(&mut buf, self.n as u32);
        put_u32(&mut buf, self.edges.len() as u32);
        for &(u, v) in &self.edges {
            put_u32(&mut buf, u);
            put_u32(&mut buf, v);
        }
        put_u32(&mut buf, self.addrs.len() as u32);
        for a in &self.addrs {
            put_str(&mut buf, a);
        }
        put_u8(
            &mut buf,
            match self.partition {
                PartitionStrategy::Contiguous => 0,
                PartitionStrategy::DegreeBalanced => 1,
                PartitionStrategy::ScheduleAware => 2,
            },
        );
        put_u8(
            &mut buf,
            match self.scheduling {
                Scheduling::DfsPipelined => 0,
                Scheduling::Sequential => 1,
                Scheduling::Adaptive => 2,
            },
        );
        put_u8(&mut buf, self.compute_stress as u8);
        match &self.sources {
            SourceSelection::All => put_u8(&mut buf, 0),
            SourceSelection::Sample { k, seed } => {
                put_u8(&mut buf, 1);
                put_u32(&mut buf, *k as u32);
                put_u64(&mut buf, *seed);
            }
            SourceSelection::Explicit(mask) => {
                put_u8(&mut buf, 2);
                put_mask(&mut buf, mask);
            }
        }
        match &self.targets {
            None => put_u8(&mut buf, 0),
            Some(mask) => {
                put_u8(&mut buf, 1);
                put_mask(&mut buf, mask);
            }
        }
        put_u32(&mut buf, self.fp.mantissa_bits());
        put_u8(
            &mut buf,
            match self.fp.rounding() {
                Rounding::Ceil => 0,
                Rounding::Nearest => 1,
            },
        );
        match self.budget {
            Budget::Auto => put_u8(&mut buf, 0),
            Budget::Bits(b) => {
                put_u8(&mut buf, 1);
                put_u64(&mut buf, b as u64);
            }
            Budget::Unlimited => put_u8(&mut buf, 2),
        }
        put_u8(&mut buf, self.strict as u8);
        put_u8(&mut buf, self.skip_idle as u8);
        put_u8(&mut buf, self.telemetry as u8);
        put_u8(&mut buf, self.profiling as u8);
        put_u8(&mut buf, self.estimator as u8);
        buf
    }

    fn decode(payload: &[u8]) -> Result<Setup, WireError> {
        let mut r = ByteReader::new(payload);
        let n = r.u32()? as usize;
        let m = r.u32()? as usize;
        let mut edges = Vec::with_capacity(m.min(1 << 24));
        for _ in 0..m {
            let u = r.u32()?;
            let v = r.u32()?;
            edges.push((u, v));
        }
        let a = r.u32()? as usize;
        let mut addrs = Vec::with_capacity(a.min(1 << 16));
        for _ in 0..a {
            addrs.push(r.str()?);
        }
        let partition = match r.u8()? {
            0 => PartitionStrategy::Contiguous,
            1 => PartitionStrategy::DegreeBalanced,
            2 => PartitionStrategy::ScheduleAware,
            t => return Err(WireError::Protocol(format!("unknown partition tag {t}"))),
        };
        let scheduling = match r.u8()? {
            0 => Scheduling::DfsPipelined,
            1 => Scheduling::Sequential,
            2 => Scheduling::Adaptive,
            t => return Err(WireError::Protocol(format!("unknown scheduling tag {t}"))),
        };
        let compute_stress = r.u8()? != 0;
        let sources = match r.u8()? {
            0 => SourceSelection::All,
            1 => SourceSelection::Sample {
                k: r.u32()? as usize,
                seed: r.u64()?,
            },
            2 => SourceSelection::Explicit(get_mask(&mut r)?.into()),
            t => return Err(WireError::Protocol(format!("unknown sources tag {t}"))),
        };
        let targets = match r.u8()? {
            0 => None,
            1 => Some(get_mask(&mut r)?.into()),
            t => return Err(WireError::Protocol(format!("unknown targets tag {t}"))),
        };
        let l = r.u32()?;
        let rounding = match r.u8()? {
            0 => Rounding::Ceil,
            1 => Rounding::Nearest,
            t => return Err(WireError::Protocol(format!("unknown rounding tag {t}"))),
        };
        if !(1..=31).contains(&l) {
            return Err(WireError::Protocol(format!(
                "mantissa bits {l} out of range"
            )));
        }
        let fp = FpParams::new(l, rounding);
        let budget = match r.u8()? {
            0 => Budget::Auto,
            1 => Budget::Bits(r.u64()? as usize),
            2 => Budget::Unlimited,
            t => return Err(WireError::Protocol(format!("unknown budget tag {t}"))),
        };
        let strict = r.u8()? != 0;
        let skip_idle = r.u8()? != 0;
        let telemetry = r.u8()? != 0;
        let profiling = r.u8()? != 0;
        let estimator = match r.u8()? {
            0 => Estimator::Scaled,
            1 => Estimator::JiYan,
            t => return Err(WireError::Protocol(format!("unknown estimator tag {t}"))),
        };
        r.finish()?;
        Ok(Setup {
            n,
            edges,
            addrs,
            partition,
            scheduling,
            compute_stress,
            sources,
            targets,
            fp,
            budget,
            strict,
            skip_idle,
            telemetry,
            profiling,
            estimator,
        })
    }
}

// ---------------------------------------------------------------------------
// DONE codec
// ---------------------------------------------------------------------------

/// One shard's complete report back to the leader.
#[derive(Debug, Clone, PartialEq)]
struct ShardDone {
    shard_id: u32,
    committed: u64,
    verdict: u8,
    panic: Option<(NodeId, String)>,
    first_error: Option<CongestError>,
    metrics: NetMetrics,
    transport: TransportStats,
    /// Summaries in shard-local order; empty unless the run quiesced.
    summaries: Vec<NodeSummary>,
    /// Present only from the shard owning global node 0 (quiescent runs).
    root: Option<RootSummary>,
    telemetry_deltas: Vec<[u64; COUNTER_COUNT]>,
    prof: Vec<WireProfRow>,
    round_wall_ns: Vec<u64>,
}

fn put_congest_error(buf: &mut Vec<u8>, e: &CongestError) {
    match e {
        CongestError::Collision { node, port, round } => {
            put_u8(buf, 0);
            put_u32(buf, *node);
            put_u64(buf, *port as u64);
            put_u64(buf, *round);
        }
        CongestError::Oversized {
            node,
            bits,
            budget,
            round,
        } => {
            put_u8(buf, 1);
            put_u32(buf, *node);
            put_u64(buf, *bits as u64);
            put_u64(buf, *budget as u64);
            put_u64(buf, *round);
        }
        CongestError::RoundLimit { max_rounds } => {
            put_u8(buf, 2);
            put_u64(buf, *max_rounds);
        }
        CongestError::NodePanic {
            node,
            round,
            message,
        } => {
            put_u8(buf, 3);
            put_u32(buf, *node);
            put_u64(buf, *round);
            put_str(buf, message);
        }
    }
}

fn get_congest_error(r: &mut ByteReader<'_>) -> Result<CongestError, WireError> {
    Ok(match r.u8()? {
        0 => CongestError::Collision {
            node: r.u32()?,
            port: r.u64()? as usize,
            round: r.u64()?,
        },
        1 => CongestError::Oversized {
            node: r.u32()?,
            bits: r.u64()? as usize,
            budget: r.u64()? as usize,
            round: r.u64()?,
        },
        2 => CongestError::RoundLimit {
            max_rounds: r.u64()?,
        },
        3 => CongestError::NodePanic {
            node: r.u32()?,
            round: r.u64()?,
            message: r.str()?,
        },
        t => return Err(WireError::Protocol(format!("unknown error tag {t}"))),
    })
}

fn put_u64_vec(buf: &mut Vec<u8>, v: &[u64]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_u64(buf, x);
    }
}

fn get_u64_vec(r: &mut ByteReader<'_>) -> Result<Vec<u64>, WireError> {
    let len = r.u32()? as usize;
    let mut out = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        out.push(r.u64()?);
    }
    Ok(out)
}

fn put_metrics(buf: &mut Vec<u8>, m: &NetMetrics) {
    put_u64(buf, m.rounds);
    put_u64(buf, m.total_messages);
    put_u64(buf, m.total_bits);
    put_u64(buf, m.max_message_bits as u64);
    put_u32(buf, m.max_messages_per_edge_round);
    put_u64(buf, m.collisions);
    put_u64(buf, m.oversized_messages);
    put_u64(buf, m.cut_bits);
    put_u64(buf, m.cut_messages);
    put_u64_vec(buf, &m.per_round_messages);
    put_u64_vec(buf, &m.per_round_bits);
    put_u32(buf, m.per_round_max_bits.len() as u32);
    for &x in &m.per_round_max_bits {
        put_u32(buf, x);
    }
    put_u64_vec(buf, &m.message_size_hist);
    put_u64(buf, m.faults_dropped);
    put_u64(buf, m.faults_duplicated);
    put_u64(buf, m.faults_corrupted);
    put_u64(buf, m.faults_delayed);
    put_u64(buf, m.messages_retransmitted);
    put_u64(buf, m.messages_deduped);
}

fn get_metrics(r: &mut ByteReader<'_>) -> Result<NetMetrics, WireError> {
    // Field order matches `put_metrics` (struct literals evaluate in
    // written order, so the reads line up with the encoder).
    Ok(NetMetrics {
        rounds: r.u64()?,
        total_messages: r.u64()?,
        total_bits: r.u64()?,
        max_message_bits: r.u64()? as usize,
        max_messages_per_edge_round: r.u32()?,
        collisions: r.u64()?,
        oversized_messages: r.u64()?,
        cut_bits: r.u64()?,
        cut_messages: r.u64()?,
        per_round_messages: get_u64_vec(r)?,
        per_round_bits: get_u64_vec(r)?,
        per_round_max_bits: {
            let len = r.u32()? as usize;
            let mut v = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                v.push(r.u32()?);
            }
            v
        },
        message_size_hist: get_u64_vec(r)?,
        faults_dropped: r.u64()?,
        faults_duplicated: r.u64()?,
        faults_corrupted: r.u64()?,
        faults_delayed: r.u64()?,
        messages_retransmitted: r.u64()?,
        messages_deduped: r.u64()?,
    })
}

impl ShardDone {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256 + self.summaries.len() * 28);
        put_u32(&mut buf, self.shard_id);
        put_u64(&mut buf, self.committed);
        put_u8(&mut buf, self.verdict);
        match &self.panic {
            None => put_u8(&mut buf, 0),
            Some((node, message)) => {
                put_u8(&mut buf, 1);
                put_u32(&mut buf, *node);
                put_str(&mut buf, message);
            }
        }
        match &self.first_error {
            None => put_u8(&mut buf, 0),
            Some(e) => {
                put_u8(&mut buf, 1);
                put_congest_error(&mut buf, e);
            }
        }
        put_metrics(&mut buf, &self.metrics);
        put_u64(&mut buf, self.transport.frames_sent);
        put_u64(&mut buf, self.transport.retransmits);
        put_u64(&mut buf, self.transport.ack_only_frames);
        put_u64(&mut buf, self.transport.deduped);
        put_u64(&mut buf, self.transport.checksum_drops);
        put_u32(&mut buf, self.summaries.len() as u32);
        for s in &self.summaries {
            put_f64(&mut buf, s.betweenness);
            put_f64(&mut buf, s.delta_all);
            put_f64(&mut buf, s.delta_in);
            put_u64(&mut buf, s.dist_total);
            put_u32(&mut buf, s.ecc);
            put_f64(&mut buf, s.stress);
            put_u64(&mut buf, s.state_bytes);
        }
        match &self.root {
            None => put_u8(&mut buf, 0),
            Some(root) => {
                put_u8(&mut buf, 1);
                put_u64(&mut buf, root.source_count as u64);
                put_u64(&mut buf, root.agg.base);
                put_u64(&mut buf, root.agg.min_ts);
                put_u64(&mut buf, root.agg.max_ts);
                put_u32(&mut buf, root.agg.d);
                match root.dfs_done_round {
                    None => put_u8(&mut buf, 0),
                    Some(r) => {
                        put_u8(&mut buf, 1);
                        put_u64(&mut buf, r);
                    }
                }
            }
        }
        put_u32(&mut buf, self.telemetry_deltas.len() as u32);
        for delta in &self.telemetry_deltas {
            for &x in delta.iter() {
                put_u64(&mut buf, x);
            }
        }
        put_u32(&mut buf, self.prof.len() as u32);
        for row in &self.prof {
            put_u64(&mut buf, row.busy_ns);
            put_u64(&mut buf, row.compute_ns);
            put_u64(&mut buf, row.route_ns);
            put_u64(&mut buf, row.inbox_messages);
            put_u64(&mut buf, row.nodes_stepped);
            put_u64(&mut buf, row.intra);
            put_u64(&mut buf, row.cross);
        }
        put_u64_vec(&mut buf, &self.round_wall_ns);
        buf
    }

    fn decode(payload: &[u8]) -> Result<ShardDone, WireError> {
        let mut r = ByteReader::new(payload);
        let shard_id = r.u32()?;
        let committed = r.u64()?;
        let verdict = r.u8()?;
        let panic = match r.u8()? {
            0 => None,
            _ => Some((r.u32()?, r.str()?)),
        };
        let first_error = match r.u8()? {
            0 => None,
            _ => Some(get_congest_error(&mut r)?),
        };
        let metrics = get_metrics(&mut r)?;
        let transport = TransportStats {
            frames_sent: r.u64()?,
            retransmits: r.u64()?,
            ack_only_frames: r.u64()?,
            deduped: r.u64()?,
            checksum_drops: r.u64()?,
        };
        let count = r.u32()? as usize;
        let mut summaries = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            summaries.push(NodeSummary {
                betweenness: r.f64()?,
                delta_all: r.f64()?,
                delta_in: r.f64()?,
                dist_total: r.u64()?,
                ecc: r.u32()?,
                stress: r.f64()?,
                state_bytes: r.u64()?,
            });
        }
        let root = match r.u8()? {
            0 => None,
            _ => {
                let source_count = r.u64()? as usize;
                let agg = AggInfo {
                    base: r.u64()?,
                    min_ts: r.u64()?,
                    max_ts: r.u64()?,
                    d: r.u32()?,
                };
                let dfs_done_round = match r.u8()? {
                    0 => None,
                    _ => Some(r.u64()?),
                };
                Some(RootSummary {
                    source_count,
                    agg,
                    dfs_done_round,
                })
            }
        };
        let count = r.u32()? as usize;
        let mut telemetry_deltas = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let mut delta = [0u64; COUNTER_COUNT];
            for x in delta.iter_mut() {
                *x = r.u64()?;
            }
            telemetry_deltas.push(delta);
        }
        let count = r.u32()? as usize;
        let mut prof = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            prof.push(WireProfRow {
                busy_ns: r.u64()?,
                compute_ns: r.u64()?,
                route_ns: r.u64()?,
                inbox_messages: r.u64()?,
                nodes_stepped: r.u64()?,
                intra: r.u64()?,
                cross: r.u64()?,
            });
        }
        let round_wall_ns = get_u64_vec(&mut r)?;
        r.finish()?;
        Ok(ShardDone {
            shard_id,
            committed,
            verdict,
            panic,
            first_error,
            metrics,
            transport,
            summaries,
            root,
            telemetry_deltas,
            prof,
            round_wall_ns,
        })
    }
}

// ---------------------------------------------------------------------------
// Shared derivations
// ---------------------------------------------------------------------------

/// The engine parameters both sides derive from a [`Setup`] — one code
/// path, so a leader and its shards can never disagree.
fn derive_engine(setup: &Setup) -> (PhaseSchedule, ShardEngineConfig) {
    let sched = PhaseSchedule::new(setup.n, setup.scheduling);
    let budget_bits = setup.budget.resolve(setup.n).map(|b| b + HEADER_BITS);
    let cfg = ShardEngineConfig {
        budget_bits,
        strict: setup.strict,
        skip_idle: setup.skip_idle,
        // Same provisioning as the in-process reliable driver: fault-free
        // pipelining needs ~1 physical round per virtual round; the limit
        // only guards non-termination.
        max_rounds: sched.max_rounds() * 8 + 64,
        profiling: setup.profiling,
    };
    (sched, cfg)
}

/// Round-trip timeout the transport is configured with; the wire carries
/// no injected faults, so this matches the in-process fault-free `rto`.
const WIRE_RTO: u64 = 3;

// ---------------------------------------------------------------------------
// Shard side
// ---------------------------------------------------------------------------

/// Runs one shard process: binds `listen` (`tcp:HOST:PORT` or
/// `unix:PATH`), waits for the leader's handshake and `SETUP`, builds the
/// socket lane mesh with its peer shards, executes the run, and reports
/// its harvest back with a `DONE` frame. Serves exactly one run, then
/// returns.
///
/// # Errors
///
/// [`WireRunError::Net`] on any transport or handshake failure — after
/// best-effort reporting the failure to the leader with an `ERROR` frame
/// so the leader errors out instead of hanging.
pub fn serve_shard(listen: &str) -> Result<(), WireRunError> {
    let listener = WireListener::bind(listen)?;
    let mut leader = listener.accept()?;
    leader.set_read_timeout(Some(PEER_READ_TIMEOUT))?;
    let (tag, payload) = leader.read_frame()?;
    if tag != TAG_HELLO {
        return Err(proto(format!("expected HELLO from leader, got tag {tag}")));
    }
    let hello = Hello::decode(&payload)?;
    if hello.role != ROLE_LEADER {
        return Err(proto("first connection was not the leader"));
    }
    let me = hello.shard_id as usize;
    let k = hello.shards as usize;
    let (tag, payload) = leader.read_frame()?;
    if tag != TAG_SETUP {
        return Err(proto(format!("expected SETUP, got tag {tag}")));
    }
    if fnv1a64(&payload) != hello.config_hash {
        return Err(proto("SETUP payload does not match the HELLO config hash"));
    }
    let setup = Setup::decode(&payload)?;
    if setup.addrs.len() != k || me >= k {
        return Err(proto(format!(
            "inconsistent topology: shard {me} of {k}, {} addresses",
            setup.addrs.len()
        )));
    }
    let graph = Graph::from_edges(setup.n, setup.edges.iter().copied())
        .map_err(|e| proto(format!("bad graph in SETUP: {e}")))?;
    if graph_hash(&graph) != hello.graph_hash {
        return Err(proto("graph does not match the HELLO graph hash"));
    }
    let my_hello = Hello {
        role: ROLE_SHARD,
        shard_id: me as u32,
        shards: k as u32,
        graph_hash: hello.graph_hash,
        config_hash: hello.config_hash,
    };
    leader.write_frame(TAG_HELLO, &my_hello.encode())?;

    match shard_run(&graph, me, k, &setup, my_hello, &listener) {
        Ok(done) => {
            leader.write_frame(TAG_DONE, &done)?;
            Ok(())
        }
        Err(e) => {
            // Best effort: turn a local failure into a leader-visible run
            // error rather than a silent death.
            let _ = leader.write_frame(TAG_ERROR, e.to_string().as_bytes());
            Err(e)
        }
    }
}

/// Builds the mesh, runs the engine, and harvests this shard's `DONE`.
fn shard_run(
    graph: &Graph,
    me: usize,
    k: usize,
    setup: &Setup,
    my_hello: Hello,
    listener: &WireListener,
) -> Result<Vec<u8>, WireRunError> {
    let (sched, engine_cfg) = derive_engine(setup);
    let partition = setup.partition.to_engine(graph, &sched, &setup.sources);
    let map = partition.shard_map(graph, k);
    if map.len() != k {
        return Err(proto(format!(
            "partition produced {} shards for requested {k} (n = {})",
            map.len(),
            graph.n()
        )));
    }

    // Mesh: dial every lower shard (they finished their leader handshake
    // before ours started — the leader is sequential), then accept every
    // higher shard, identifying each by its HELLO.
    let mut peers: Vec<Option<WireStream>> = (0..k).map(|_| None).collect();
    let check = |h: &Hello| -> Result<(), WireRunError> {
        if h.role != ROLE_SHARD
            || h.graph_hash != my_hello.graph_hash
            || h.config_hash != my_hello.config_hash
        {
            return Err(proto("peer handshake mismatch (role or run hashes)"));
        }
        Ok(())
    };
    for (j, addr) in setup.addrs.iter().enumerate().take(me) {
        let mut s = WireStream::connect(addr)?;
        s.write_frame(TAG_HELLO, &my_hello.encode())?;
        let (tag, payload) = s.read_frame()?;
        if tag != TAG_HELLO {
            return Err(proto(format!("expected HELLO from shard {j}, got {tag}")));
        }
        let h = Hello::decode(&payload)?;
        check(&h)?;
        if h.shard_id as usize != j {
            return Err(proto(format!(
                "dialed shard {j} but {} answered",
                h.shard_id
            )));
        }
        s.set_read_timeout(Some(PEER_READ_TIMEOUT))?;
        peers[j] = Some(s);
    }
    for _ in me + 1..k {
        let mut s = listener.accept()?;
        s.set_read_timeout(Some(PEER_READ_TIMEOUT))?;
        let (tag, payload) = s.read_frame()?;
        if tag != TAG_HELLO {
            return Err(proto(format!("expected HELLO from a peer, got {tag}")));
        }
        let h = Hello::decode(&payload)?;
        check(&h)?;
        let j = h.shard_id as usize;
        if j <= me || j >= k || peers[j].is_some() {
            return Err(proto(format!("unexpected peer shard id {j}")));
        }
        s.write_frame(TAG_HELLO, &my_hello.encode())?;
        peers[j] = Some(s);
    }

    // Node construction mirrors the in-process reliable driver; the
    // telemetry registry is shard-local (1 shard, minimal ring) and only
    // feeds the per-round deltas the leader replays.
    let opts = AlgoOptions {
        fp: setup.fp,
        scheduling: setup.scheduling,
        compute_stress: setup.compute_stress,
        sources: setup.sources.clone(),
        targets: setup.targets.clone(),
        estimator: setup.estimator,
        // Built once per shard from the selection; every process derives
        // the identical dense remap from the same SETUP bytes.
        source_index: Some(Arc::new(SourceIndex::build(&setup.sources, graph.n()))),
    };
    let rcfg = ReliableConfig { rto: WIRE_RTO };
    let telemetry = setup.telemetry.then(|| Arc::new(Telemetry::new(1, 1)));
    let n = graph.n();
    let nodes: Vec<Reliable<DistBcNode>> = map.shards()[me]
        .iter()
        .map(|&v| {
            let mut node =
                Reliable::new(DistBcNode::new(n, v, opts.clone()), graph.degree(v), rcfg);
            if let Some(t) = &telemetry {
                node.set_telemetry(t.clone(), 0);
            }
            node
        })
        .collect();

    let outcome = run_shard_engine(
        graph,
        &map,
        me,
        &engine_cfg,
        nodes,
        &mut peers,
        telemetry.as_ref(),
    )?;

    let mut transport = TransportStats::default();
    let inner: Vec<DistBcNode> = outcome
        .nodes
        .into_iter()
        .map(|r| {
            transport.merge(&r.stats());
            r.into_inner()
        })
        .collect();
    // Only a quiescent run has a harvestable protocol state (the root's
    // aggregation broadcast happened); error verdicts carry attribution
    // instead and the leader never assembles a result from them.
    let (summaries, root) = if outcome.verdict == VERDICT_QUIESCENT {
        let summaries: Vec<NodeSummary> = inner.iter().map(summarize_node).collect();
        let root = map.shards()[me]
            .iter()
            .position(|&v| v == 0)
            .map(|local| summarize_root(&inner[local]));
        (summaries, root)
    } else {
        (Vec::new(), None)
    };

    let done = ShardDone {
        shard_id: me as u32,
        committed: outcome.committed,
        verdict: outcome.verdict,
        panic: outcome.panic,
        first_error: outcome.first_error,
        metrics: outcome.metrics,
        transport,
        summaries,
        root,
        telemetry_deltas: outcome.telemetry_deltas,
        prof: outcome.prof,
        round_wall_ns: outcome.round_wall_ns,
    };
    Ok(done.encode())
}

// ---------------------------------------------------------------------------
// Leader side
// ---------------------------------------------------------------------------

/// `error_node` ordering for canonical violation attribution (the same
/// rule as the in-process join: `RoundLimit` sorts last).
fn error_node(e: &CongestError) -> NodeId {
    match e {
        CongestError::Collision { node, .. }
        | CongestError::Oversized { node, .. }
        | CongestError::NodePanic { node, .. } => *node,
        CongestError::RoundLimit { .. } => NodeId::MAX,
    }
}

/// Replays one shard's one-round telemetry delta into the leader's
/// registry — the adds `TelemetryHandle::on_round` performed remotely,
/// re-performed against shard slot `shard` so per-shard load attribution
/// (and thus straggler detection) survives the wire.
fn replay_delta(t: &Telemetry, shard: usize, delta: &[u64; COUNTER_COUNT]) {
    for (i, (c, _)) in COUNTERS.iter().enumerate() {
        t.add(shard, *c, delta[i]);
    }
    let idx = |c: Counter| {
        COUNTERS
            .iter()
            .position(|(x, _)| *x == c)
            .expect("counter listed")
    };
    t.record(
        shard,
        HistogramId::InboxDepth,
        delta[idx(Counter::InboxMessages)],
    );
    t.record(
        shard,
        HistogramId::RoundMessages,
        delta[idx(Counter::Messages)],
    );
}

/// Runs a betweenness-centrality execution across the shard processes
/// listening on `addrs` (one address per shard, in shard order) and
/// merges their reports into a [`DistBcResult`] — bit-identical to the
/// in-process reliable run of the same configuration, including metrics
/// and replayed telemetry.
///
/// `config.threads` is ignored (the shard count is `addrs.len()`);
/// `config.faults`, `config.cut`, and trace sinks are unsupported on the
/// wire and rejected. `config.reliable` is implied.
///
/// # Errors
///
/// [`WireRunError::Algo`] for algorithm-level failures (empty or
/// disconnected graphs, CONGEST violations, node panics, the round
/// limit) with the same canonical attribution as the in-process engines;
/// [`WireRunError::Net`] when a shard dies, misbehaves, or cannot be
/// reached.
pub fn run_leader(
    g: &Graph,
    config: &DistBcConfig,
    addrs: &[String],
    profile: bool,
) -> Result<(DistBcResult, Option<ProfileReport>), WireRunError> {
    let n = g.n();
    if n == 0 {
        return Err(DistBcError::EmptyGraph.into());
    }
    if !algo::is_connected(g) {
        return Err(DistBcError::Disconnected.into());
    }
    let k = addrs.len();
    if k == 0 {
        return Err(proto("no shard addresses"));
    }
    if k > n {
        return Err(proto(format!("{k} shards for {n} nodes")));
    }
    if config.faults.is_some() || config.cut.is_some() {
        return Err(proto(
            "fault plans and edge cuts are in-process features; the wire \
             engine takes real faults via the network itself",
        ));
    }

    if config.estimator == Estimator::JiYan {
        if !matches!(config.sources, SourceSelection::Sample { .. }) {
            return Err(DistBcError::BadConfig(
                "the Ji–Yan estimator requires sampled sources".into(),
            )
            .into());
        }
        if config.compute_stress {
            return Err(DistBcError::BadConfig(
                "the Ji–Yan estimator cannot be combined with stress \
                 centrality (both extend the aggregation message)"
                    .into(),
            )
            .into());
        }
    }

    let fp = config.fp.unwrap_or_else(|| FpParams::for_graph_size(n));
    let setup = Setup {
        n,
        edges: g.edges().collect(),
        addrs: addrs.to_vec(),
        partition: config.partition,
        scheduling: config.scheduling,
        compute_stress: config.compute_stress,
        sources: config.sources.clone(),
        targets: config.targets.clone(),
        fp,
        budget: config.budget,
        strict: matches!(config.enforcement, Enforcement::Strict),
        skip_idle: config.skip_idle,
        telemetry: config.telemetry.is_some(),
        profiling: profile,
        estimator: config.estimator,
    };
    let (sched, engine_cfg) = derive_engine(&setup);
    let map = setup
        .partition
        .to_engine(g, &sched, &setup.sources)
        .shard_map(g, k);
    if map.len() != k {
        return Err(proto(format!(
            "partition produced {} shards for {k}",
            map.len()
        )));
    }
    if let Some(t) = &config.telemetry {
        if config.scheduling != Scheduling::Adaptive {
            t.set_schedule(
                sched.counting_start,
                sched.reduce_start,
                sched.broadcast_start,
                sched.agg_start,
            );
        }
    }

    let setup_bytes = setup.encode();
    let ghash = graph_hash(g);
    let chash = fnv1a64(&setup_bytes);

    // Sequential handshakes, in shard order — the ordering the mesh
    // build relies on (shard i only dials j < i once i has its SETUP,
    // by which point j has long since answered ours).
    let mut streams: Vec<WireStream> = Vec::with_capacity(k);
    for (i, addr) in addrs.iter().enumerate() {
        let mut s = WireStream::connect(addr)?;
        s.write_frame(
            TAG_HELLO,
            &Hello {
                role: ROLE_LEADER,
                shard_id: i as u32,
                shards: k as u32,
                graph_hash: ghash,
                config_hash: chash,
            }
            .encode(),
        )?;
        s.write_frame(TAG_SETUP, &setup_bytes)?;
        let (tag, payload) = s.read_frame()?;
        if tag == TAG_ERROR {
            let msg = String::from_utf8_lossy(&payload).into_owned();
            return Err(WireError::Peer(format!("shard {i}: {msg}")).into());
        }
        if tag != TAG_HELLO {
            return Err(proto(format!("expected HELLO from shard {i}, got {tag}")));
        }
        let h = Hello::decode(&payload)?;
        if h.role != ROLE_SHARD
            || h.shard_id as usize != i
            || h.graph_hash != ghash
            || h.config_hash != chash
        {
            return Err(proto(format!("shard {i} handshake mismatch")));
        }
        streams.push(s);
    }

    // Collect every shard's DONE (no read timeout here: the run itself
    // may take arbitrarily long, and a dying shard surfaces as EOF or as
    // a neighbor's ERROR frame instead).
    let mut dones: Vec<ShardDone> = Vec::with_capacity(k);
    for (i, s) in streams.iter_mut().enumerate() {
        let (tag, payload) = s.read_frame().map_err(|e| match e {
            WireError::Io(m) => WireError::Peer(format!("shard {i} died mid-run: {m}")),
            other => other,
        })?;
        match tag {
            TAG_DONE => {
                let d = ShardDone::decode(&payload)?;
                if d.shard_id as usize != i {
                    return Err(proto(format!("shard {i} reported as shard {}", d.shard_id)));
                }
                dones.push(d);
            }
            TAG_ERROR => {
                let msg = String::from_utf8_lossy(&payload).into_owned();
                return Err(WireError::Peer(format!("shard {i}: {msg}")).into());
            }
            t => return Err(proto(format!("expected DONE from shard {i}, got tag {t}"))),
        }
    }

    // Lockstep sanity: every shard must have seen the same run.
    let committed = dones[0].committed;
    let verdict = dones[0].verdict;
    if dones
        .iter()
        .any(|d| d.committed != committed || d.verdict != verdict)
    {
        return Err(proto("shards disagree on committed rounds or verdict"));
    }

    // Merge metrics exactly like the in-process join: partials add, the
    // committed count becomes the round total.
    let mut metrics = NetMetrics::default();
    for d in &dones {
        metrics.merge(&d.metrics);
    }
    if committed > 0 {
        metrics.rounds = committed;
    }
    let mut transport = TransportStats::default();
    for d in &dones {
        transport.merge(&d.transport);
    }
    metrics.messages_retransmitted = transport.retransmits;
    metrics.messages_deduped = transport.deduped;

    // Replay telemetry before any error return so a postmortem carries
    // the flight recorder up to the failure. Committed rounds replay
    // with a finish_round commit; an aborted round's trailing deltas
    // land in the counters only — the same visibility an in-process
    // abort leaves behind.
    if let Some(t) = &config.telemetry {
        for r in 0..committed as usize {
            for (i, d) in dones.iter().enumerate() {
                if let Some(delta) = d.telemetry_deltas.get(r) {
                    replay_delta(t, i, delta);
                }
            }
            t.finish_round(r as u64);
        }
        for (i, d) in dones.iter().enumerate() {
            for delta in d.telemetry_deltas.iter().skip(committed as usize) {
                replay_delta(t, i, delta);
            }
        }
    }

    // Canonical error attribution, mirroring the in-process join.
    let first_panic = dones
        .iter()
        .filter_map(|d| d.panic.clone())
        .min_by_key(|&(v, _)| v);
    let clip = first_panic.as_ref().map_or(NodeId::MAX, |&(v, _)| v);
    let first_error = dones
        .iter()
        .filter_map(|d| d.first_error.as_ref())
        .filter(|e| error_node(e) < clip)
        .min_by_key(|e| error_node(e))
        .cloned();
    if let Some((node, message)) = first_panic {
        return Err(DistBcError::Congest(CongestError::NodePanic {
            node,
            round: committed,
            message,
        })
        .into());
    }
    if let Some(e) = first_error {
        return Err(DistBcError::Congest(e).into());
    }
    if verdict == VERDICT_ROUND_LIMIT {
        return Err(DistBcError::Congest(CongestError::RoundLimit {
            max_rounds: engine_cfg.max_rounds,
        })
        .into());
    }
    if verdict != VERDICT_QUIESCENT {
        return Err(proto(format!("unexpected final verdict {verdict}")));
    }

    // Reassemble per-node summaries in global id order via the shared map.
    let mut summaries: Vec<Option<NodeSummary>> = vec![None; n];
    let mut root: Option<RootSummary> = None;
    for (i, d) in dones.iter().enumerate() {
        let shard = &map.shards()[i];
        if d.summaries.len() != shard.len() {
            return Err(proto(format!(
                "shard {i} reported {} summaries for {} nodes",
                d.summaries.len(),
                shard.len()
            )));
        }
        for (local, &v) in shard.iter().enumerate() {
            summaries[v as usize] = Some(d.summaries[local]);
        }
        if let Some(rs) = d.root {
            if root.replace(rs).is_some() {
                return Err(proto("two shards claimed the root"));
            }
        }
    }
    let summaries: Vec<NodeSummary> = summaries
        .into_iter()
        .collect::<Option<_>>()
        .ok_or_else(|| proto("incomplete node coverage across shards"))?;
    let root = root.ok_or_else(|| proto("no shard reported the root summary"))?;

    // Leader-recorded run-level state footprint, mirroring the in-process
    // driver: shards already measured each node, the leader just folds.
    let state_bytes_total: u64 = summaries.iter().map(|s| s.state_bytes).sum();
    let state_bytes_peak: u64 = summaries.iter().map(|s| s.state_bytes).max().unwrap_or(0);
    if let Some(t) = &config.telemetry {
        t.add(0, Counter::StateBytes, state_bytes_total);
    }

    let profile_report = profile.then(|| {
        let mut profiler = Profiler::new();
        for r in 0..committed as usize {
            let mut worker_busy_ns = Vec::with_capacity(k);
            let mut worker_route_ns = Vec::with_capacity(k);
            let mut compute_ns = 0u64;
            let mut inbox_messages = 0u64;
            let mut nodes_stepped = 0u64;
            let (mut cross, mut intra) = (0u64, 0u64);
            for d in &dones {
                let row = d.prof.get(r).copied().unwrap_or_default();
                worker_busy_ns.push(row.busy_ns);
                worker_route_ns.push(row.route_ns);
                compute_ns += row.compute_ns;
                inbox_messages += row.inbox_messages;
                nodes_stepped += row.nodes_stepped;
                cross += row.cross;
                intra += row.intra;
            }
            profiler.record_round(RoundSpan {
                round: r as u64,
                total_ns: dones[0].round_wall_ns.get(r).copied().unwrap_or(0),
                compute_ns,
                inbox_messages,
                nodes_stepped,
                worker_busy_ns,
                worker_route_ns,
                cross_shard_messages: cross,
                intra_shard_messages: intra,
            });
        }
        let mut engine = format!("wire({k})");
        if config.partition != PartitionStrategy::Contiguous {
            engine.push('+');
            engine.push_str(config.partition.label());
        }
        engine.push_str("+reliable");
        let phases = profile_phases(config.scheduling, &sched, committed);
        let mut rep = profiler.report(&engine, &phases);
        rep.messages_retransmitted = transport.retransmits;
        rep.messages_deduped = transport.deduped;
        rep.faults_injected = metrics.faults_dropped
            + metrics.faults_duplicated
            + metrics.faults_corrupted
            + metrics.faults_delayed;
        rep.state_bytes_total = state_bytes_total;
        rep.state_bytes_peak = state_bytes_peak;
        rep
    });

    let result = assemble_result(
        n,
        &config.sources,
        config.estimator,
        config.compute_stress,
        config.scheduling,
        sched,
        fp,
        committed,
        metrics,
        &summaries,
        &root,
    );
    Ok((result, profile_report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_codec_round_trips() {
        let setup = Setup {
            n: 9,
            edges: vec![(0, 1), (1, 2), (2, 3)],
            addrs: vec!["tcp:127.0.0.1:4100".into(), "unix:/tmp/s1.sock".into()],
            partition: PartitionStrategy::DegreeBalanced,
            scheduling: Scheduling::Sequential,
            compute_stress: true,
            sources: SourceSelection::Sample { k: 4, seed: 99 },
            targets: Some(vec![true, false, true, true, false, true, true, false, true].into()),
            fp: FpParams::new(13, Rounding::Nearest),
            budget: Budget::Bits(96),
            strict: true,
            skip_idle: false,
            telemetry: true,
            profiling: true,
            estimator: Estimator::JiYan,
        };
        let enc = setup.encode();
        assert_eq!(Setup::decode(&enc).unwrap(), setup);

        let explicit = Setup {
            sources: SourceSelection::Explicit(vec![true; 9].into()),
            targets: None,
            budget: Budget::Auto,
            ..setup
        };
        assert_eq!(Setup::decode(&explicit.encode()).unwrap(), explicit);
    }

    #[test]
    fn done_codec_round_trips() {
        let metrics = NetMetrics {
            total_messages: 42,
            per_round_messages: vec![1, 2, 3],
            per_round_max_bits: vec![7, 9],
            message_size_hist: vec![0; 12],
            ..NetMetrics::default()
        };
        let done = ShardDone {
            shard_id: 1,
            committed: 17,
            verdict: VERDICT_QUIESCENT,
            panic: Some((3, "boom".into())),
            first_error: Some(CongestError::Oversized {
                node: 2,
                bits: 130,
                budget: 104,
                round: 5,
            }),
            metrics,
            transport: TransportStats {
                frames_sent: 10,
                retransmits: 1,
                ack_only_frames: 2,
                deduped: 3,
                checksum_drops: 0,
            },
            summaries: vec![
                NodeSummary {
                    betweenness: 3.5,
                    delta_all: 7.0,
                    delta_in: 1.5,
                    dist_total: 12,
                    ecc: 3,
                    stress: 0.0,
                    state_bytes: 4096,
                },
                NodeSummary {
                    betweenness: 0.25,
                    delta_all: 0.5,
                    delta_in: 0.0,
                    dist_total: 9,
                    ecc: 2,
                    stress: 7.0,
                    state_bytes: 2048,
                },
            ],
            root: Some(RootSummary {
                source_count: 9,
                agg: AggInfo {
                    base: 100,
                    min_ts: 12,
                    max_ts: 30,
                    d: 3,
                },
                dfs_done_round: Some(44),
            }),
            telemetry_deltas: vec![[1u64; COUNTER_COUNT], [2u64; COUNTER_COUNT]],
            prof: vec![WireProfRow {
                busy_ns: 1,
                compute_ns: 2,
                route_ns: 3,
                inbox_messages: 4,
                nodes_stepped: 5,
                intra: 6,
                cross: 7,
            }],
            round_wall_ns: vec![11, 22],
        };
        assert_eq!(ShardDone::decode(&done.encode()).unwrap(), done);
    }

    #[test]
    fn mask_codec_handles_odd_lengths() {
        for len in [0usize, 1, 7, 8, 9, 64, 65] {
            let mask: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let mut buf = Vec::new();
            put_mask(&mut buf, &mask);
            let mut r = ByteReader::new(&buf);
            assert_eq!(get_mask(&mut r).unwrap(), mask);
            r.finish().unwrap();
        }
    }

    #[test]
    fn congest_error_codec_round_trips() {
        for e in [
            CongestError::Collision {
                node: 1,
                port: 2,
                round: 3,
            },
            CongestError::Oversized {
                node: 4,
                bits: 5,
                budget: 6,
                round: 7,
            },
            CongestError::RoundLimit { max_rounds: 8 },
            CongestError::NodePanic {
                node: 9,
                round: 10,
                message: "x".into(),
            },
        ] {
            let mut buf = Vec::new();
            put_congest_error(&mut buf, &e);
            let mut r = ByteReader::new(&buf);
            assert_eq!(get_congest_error(&mut r).unwrap(), e);
            r.finish().unwrap();
        }
    }
}
