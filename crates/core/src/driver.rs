//! High-level entry points: configure and run a distributed
//! betweenness-centrality execution. Harvesting a run into a
//! [`DistBcResult`] lives in [`crate::result`]; versioning a result for
//! serving lives in [`crate::snapshot`].

use crate::node::{AlgoOptions, DistBcNode};
use crate::result::{assemble_result, profile_phases, summarize_node, summarize_root, NodeSummary};
use crate::sampling::{source_mask, Estimator, SourceIndex, SourceSelection};
use crate::schedule::{PhaseSchedule, Scheduling};
use crate::transport::{Reliable, ReliableConfig, TransportStats, HEADER_BITS};
use bc_congest::trace::{TraceEvent, TraceSink};
use bc_congest::wire::{fnv1a64, put_str, put_u32, put_u64, put_u8};
use bc_congest::{
    Budget, Config, CongestError, EdgeCut, Enforcement, FaultPlan, NetMetrics, Network, Partition,
    ProfileReport, Profiler, Telemetry,
};
use bc_graph::{algo, Graph, NodeId};
use bc_numeric::FpParams;
use std::fmt;

pub use crate::result::DistBcResult;

/// Node→worker partitioning strategy for the parallel round engine
/// (`threads > 1`); maps onto [`bc_congest::Partition`].
///
/// Partitioning never changes observable output — results, metrics, and
/// traces are bit-identical across strategies — only how evenly the
/// per-round work spreads across the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Contiguous equal-count id chunks (the historical default).
    #[default]
    Contiguous,
    /// Degree-balanced shards via LPT greedy packing.
    DegreeBalanced,
    /// Shards balanced by each node's provisioned `T_s(u)` schedule
    /// density ([`PhaseSchedule::partition_weights`]): degree-proportional
    /// wave/aggregation traffic plus per-source bookkeeping.
    ScheduleAware,
}

impl PartitionStrategy {
    /// Short label for logs and profile headers.
    pub fn label(self) -> &'static str {
        match self {
            PartitionStrategy::Contiguous => "contiguous",
            PartitionStrategy::DegreeBalanced => "degree",
            PartitionStrategy::ScheduleAware => "schedule",
        }
    }

    /// Parses the CLI spelling (`contiguous` | `degree` | `schedule`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "contiguous" => Some(PartitionStrategy::Contiguous),
            "degree" => Some(PartitionStrategy::DegreeBalanced),
            "schedule" => Some(PartitionStrategy::ScheduleAware),
            _ => None,
        }
    }

    /// Resolves to the engine-level [`Partition`], deriving schedule-aware
    /// weights from the graph, the phase schedule, and the source set.
    pub(crate) fn to_engine(
        self,
        g: &Graph,
        sched: &PhaseSchedule,
        sources: &SourceSelection,
    ) -> Partition {
        match self {
            PartitionStrategy::Contiguous => Partition::Contiguous,
            PartitionStrategy::DegreeBalanced => Partition::DegreeBalanced,
            PartitionStrategy::ScheduleAware => {
                let degrees: Vec<usize> = (0..g.n()).map(|v| g.degree(v as NodeId)).collect();
                let mask = source_mask(sources, g.n());
                Partition::ScheduleAware(sched.partition_weights(&degrees, &mask).into())
            }
        }
    }
}

/// Node count at or above which the parallel engine starts paying off
/// (given enough cores — see [`auto_threads`]).
///
/// E18's scaling sweep shows the sharded data plane losing to serial on
/// every family at n = 64 and 128 (per-round barrier cost dominates);
/// n = 256 is where per-round compute grows large enough to amortize the
/// two barrier crossings. `--threads auto` uses this threshold.
pub const AUTO_THREADS_MIN_NODES: usize = 192;

/// [`auto_threads`] with the core count passed explicitly (testable
/// without depending on the host): serial (0) below
/// [`AUTO_THREADS_MIN_NODES`] or when fewer than two cores are available
/// — parallel workers cannot beat serial wall-clock without real
/// parallelism, only pay barrier overhead — otherwise up to four workers
/// (the sweet spot in E18's thread sweep; 8 workers add barrier cost
/// faster than useful parallelism at these sizes), capped at the core
/// count so the pool is never oversubscribed.
///
/// ```
/// use bc_core::{auto_threads_for, AUTO_THREADS_MIN_NODES};
/// assert_eq!(auto_threads_for(64, 8), 0); // below the size threshold
/// assert_eq!(auto_threads_for(AUTO_THREADS_MIN_NODES, 1), 0); // no parallelism
/// assert_eq!(auto_threads_for(256, 2), 2); // capped at the core count
/// assert_eq!(auto_threads_for(256, 16), 4); // E18's sweet spot
/// ```
pub fn auto_threads_for(n: usize, cores: usize) -> usize {
    if n < AUTO_THREADS_MIN_NODES || cores < 2 {
        0
    } else {
        cores.min(4)
    }
}

/// Thread count `--threads auto` resolves to for an `n`-node graph on
/// this host (detected via `std::thread::available_parallelism`).
pub fn auto_threads(n: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    auto_threads_for(n, cores)
}

/// Configuration for [`run_distributed_bc`].
#[derive(Debug, Clone)]
pub struct DistBcConfig {
    /// Floating-point parameters; `None` selects the paper's
    /// `L = Θ(log N)` via [`FpParams::for_graph_size`].
    pub fp: Option<FpParams>,
    /// Counting-phase scheduling (the paper's pipelined DFS or the
    /// sequential baseline).
    pub scheduling: Scheduling,
    /// CONGEST constraint handling; [`Enforcement::Strict`] (default)
    /// turns any collision or oversized message into an error.
    pub enforcement: Enforcement,
    /// Per-message bit budget (default: `Θ(log N)` auto).
    pub budget: Budget,
    /// Worker threads for the round engine; `0` or `1` runs serially.
    pub threads: usize,
    /// Node→worker partitioning for the parallel engine (ignored when
    /// running serially). Never changes observable output.
    pub partition: PartitionStrategy,
    /// Optional edge cut across which bit flow is measured (experiment E8).
    pub cut: Option<EdgeCut>,
    /// Also compute stress centrality (Eq. 3) in the same pass — the
    /// paper's footnote 3 extension. Aggregation messages carry one extra
    /// `L + 16`-bit value (still `O(log N)`).
    pub compute_stress: bool,
    /// Which nodes act as BFS sources: all (the paper's exact algorithm)
    /// or a deterministic sample of `k` (the related-work approximation;
    /// results become `N/k`-scaled estimates).
    pub sources: SourceSelection,
    /// Which nodes count as shortest-path targets (`None` = all). The
    /// weighted extension restricts both sources and targets to the
    /// original nodes of the subdivision.
    pub targets: Option<std::sync::Arc<[bool]>>,
    /// How sampled dependencies fold into the betweenness estimate
    /// ([`Estimator::Scaled`] N/k scaling, or the Ji–Yan refinement).
    /// Only valid with [`SourceSelection::Sample`].
    pub estimator: Estimator,
    /// Let the engine skip nodes with an empty inbox and no self-timed
    /// work this round (on by default; observationally free). Turn off to
    /// force every node through `round()` each round.
    pub skip_idle: bool,
    /// Inject network faults (drops, duplicates, corruption, delays,
    /// crashes) per this plan. Without [`DistBcConfig::reliable`] the
    /// protocol sees the raw faulty network and will generally fail
    /// (stall or decode error) — useful for chaos testing the failure
    /// modes themselves.
    pub faults: Option<FaultPlan>,
    /// Run every node behind the [`Reliable`] transport
    /// ([`crate::transport`]): the per-message budget is raised by
    /// [`HEADER_BITS`], the round limit is scaled for retransmissions, and
    /// the result is bit-identical to a fault-free run for any
    /// non-crashing fault plan.
    pub reliable: bool,
    /// Shared telemetry registry: engines, the reliable transport, and the
    /// fault layer stream counters/histograms into it as the run executes,
    /// and its flight recorder retains the last K rounds for postmortems.
    /// Telemetry writes counters only — results are bit-identical with or
    /// without it (asserted by the test suite).
    pub telemetry: Option<std::sync::Arc<Telemetry>>,
}

impl DistBcConfig {
    /// A stable 64-bit fingerprint of every field that can change the
    /// *numeric output* of a run on a fixed graph — the serving layer
    /// stamps it into snapshot metadata so "same graph + same config"
    /// (the bit-identity contract of the query server vs the offline CLI)
    /// is checkable, and a client can detect a server answering under a
    /// different configuration.
    ///
    /// Observability attachments (telemetry, tracing, profiling), engine
    /// placement (`threads`, `partition`, `skip_idle`), and measurement
    /// taps (`cut`) are deliberately excluded: they never alter results
    /// (the test suite asserts bit-identity across all of them).
    /// Fault plans and enforcement are likewise excluded — a reliable run
    /// under faults is bit-identical to a fault-free one by design.
    ///
    /// ```
    /// use bc_core::{DistBcConfig, SourceSelection};
    ///
    /// let base = DistBcConfig::default();
    /// let threaded = DistBcConfig { threads: 4, ..DistBcConfig::default() };
    /// assert_eq!(base.fingerprint(), threaded.fingerprint());
    /// let sampled = DistBcConfig {
    ///     sources: SourceSelection::Sample { k: 8, seed: 1 },
    ///     ..DistBcConfig::default()
    /// };
    /// assert_ne!(base.fingerprint(), sampled.fingerprint());
    /// ```
    pub fn fingerprint(&self) -> u64 {
        let mut buf = Vec::new();
        match self.fp {
            None => put_u8(&mut buf, 0),
            Some(fp) => {
                put_u8(&mut buf, 1);
                put_u32(&mut buf, fp.mantissa_bits());
                put_u8(&mut buf, fp.rounding() as u8);
            }
        }
        put_u8(&mut buf, self.scheduling as u8);
        put_u8(&mut buf, self.compute_stress as u8);
        match &self.sources {
            SourceSelection::All => put_u8(&mut buf, 0),
            SourceSelection::Sample { k, seed } => {
                put_u8(&mut buf, 1);
                put_u64(&mut buf, *k as u64);
                put_u64(&mut buf, *seed);
            }
            SourceSelection::Explicit(mask) => {
                put_u8(&mut buf, 2);
                put_u64(&mut buf, mask.len() as u64);
                let mut packed = String::with_capacity(mask.len());
                packed.extend(mask.iter().map(|&b| if b { '1' } else { '0' }));
                put_str(&mut buf, &packed);
            }
        }
        match &self.targets {
            None => put_u8(&mut buf, 0),
            Some(mask) => {
                put_u8(&mut buf, 1);
                put_u64(&mut buf, mask.len() as u64);
                let mut packed = String::with_capacity(mask.len());
                packed.extend(mask.iter().map(|&b| if b { '1' } else { '0' }));
                put_str(&mut buf, &packed);
            }
        }
        put_u8(&mut buf, self.estimator as u8);
        fnv1a64(&buf)
    }
}

impl Default for DistBcConfig {
    fn default() -> Self {
        DistBcConfig {
            fp: None,
            scheduling: Scheduling::default(),
            enforcement: Enforcement::default(),
            budget: Budget::default(),
            threads: 0,
            partition: PartitionStrategy::default(),
            cut: None,
            compute_stress: false,
            sources: SourceSelection::default(),
            targets: None,
            estimator: Estimator::default(),
            skip_idle: true,
            faults: None,
            reliable: false,
            telemetry: None,
        }
    }
}

/// Errors from [`run_distributed_bc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistBcError {
    /// The graph has no nodes.
    EmptyGraph,
    /// The graph is disconnected; the paper's algorithm (and betweenness
    /// on shortest paths between all pairs) assumes a connected network.
    Disconnected,
    /// The configuration combines options that contradict each other
    /// (e.g. the Ji–Yan estimator without sampled sources).
    BadConfig(String),
    /// The simulated execution violated the CONGEST model or did not halt.
    Congest(CongestError),
}

impl fmt::Display for DistBcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistBcError::EmptyGraph => write!(f, "graph has no nodes"),
            DistBcError::Disconnected => write!(f, "graph is disconnected"),
            DistBcError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            DistBcError::Congest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DistBcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistBcError::Congest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CongestError> for DistBcError {
    fn from(e: CongestError) -> Self {
        DistBcError::Congest(e)
    }
}

/// Runs the paper's distributed betweenness-centrality algorithm on `g`
/// under the CONGEST simulator.
///
/// With [`SourceSelection::Sample`], the returned betweenness/closeness
/// values are `N/k`-extrapolated estimates and `diameter` is the sampled
/// horizon `max_{s ∈ S} ecc(s)` (a lower bound on the true diameter).
///
/// # Errors
///
/// * [`DistBcError::EmptyGraph`] / [`DistBcError::Disconnected`] for
///   inputs outside the paper's model (connected networks);
/// * [`DistBcError::Congest`] if the execution violates the CONGEST
///   constraints under strict enforcement (a protocol bug) or exceeds its
///   round bound.
///
/// # Examples
///
/// ```
/// use bc_core::{run_distributed_bc, DistBcConfig};
/// use bc_graph::generators;
///
/// // Figure 1 of the paper: C_B(v2) = 7/2.
/// let g = generators::paper_figure1();
/// let out = run_distributed_bc(&g, DistBcConfig::default())?;
/// assert!((out.betweenness[1] - 3.5).abs() < 1e-6);
/// assert_eq!(out.diameter, 3);
/// assert!(out.metrics.congest_compliant());
/// # Ok::<(), bc_core::DistBcError>(())
/// ```
pub fn run_distributed_bc(g: &Graph, config: DistBcConfig) -> Result<DistBcResult, DistBcError> {
    run_impl(g, config, None, false).map(|(result, _, _)| result)
}

/// Runs [`run_distributed_bc`] with the wall-clock profiler attached to
/// the engine: per-round spans split into node compute vs engine overhead,
/// inbox depths, and (for `threads > 1`) per-worker busy times. The
/// returned [`ProfileReport`] slices the spans at the provisioned phase
/// boundaries ([`Scheduling::Adaptive`] has none, so its report carries no
/// phase rows). Profiling never alters the execution: the `DistBcResult`
/// is bit-identical to an unprofiled run (asserted by the test suite).
///
/// # Errors
///
/// Same as [`run_distributed_bc`].
pub fn run_distributed_bc_profiled(
    g: &Graph,
    config: DistBcConfig,
) -> Result<(DistBcResult, ProfileReport), DistBcError> {
    let (result, _, profile) = run_impl(g, config, None, true)?;
    Ok((result, profile.expect("profile requested")))
}

/// Runs [`run_distributed_bc`] with both a trace sink and the profiler
/// attached — one execution yields the event stream for offline analytics
/// and the wall-clock profile.
///
/// # Errors
///
/// Same as [`run_distributed_bc`]. On error the sink is dropped (a file
/// sink will have written the events up to the failure).
pub fn run_distributed_bc_traced_profiled(
    g: &Graph,
    config: DistBcConfig,
    sink: Box<dyn TraceSink>,
) -> Result<(DistBcResult, Box<dyn TraceSink>, ProfileReport), DistBcError> {
    let (result, sink, profile) = run_impl(g, config, Some(sink), true)?;
    Ok((
        result,
        sink.expect("sink returned"),
        profile.expect("profile requested"),
    ))
}

/// Runs [`run_distributed_bc`] with a trace sink attached to the engine.
///
/// Before the first round the driver records the context an offline
/// analyzer needs: a [`TraceEvent::Topology`] with the full edge list and,
/// for the provisioned scheduling modes, a [`TraceEvent::Schedule`] with
/// the phase boundaries ([`Scheduling::Adaptive`] discovers its boundaries
/// at run time, so no schedule is recorded and
/// [`bc_congest::trace::check`] skips the window checks). The sink is
/// returned for flushing or draining; the recorded stream satisfies the
/// invariants validated by [`bc_congest::trace::check::check`].
///
/// # Errors
///
/// Same as [`run_distributed_bc`]. On error the sink is dropped (a file
/// sink will have written the events up to the failure).
pub fn run_distributed_bc_traced(
    g: &Graph,
    config: DistBcConfig,
    sink: Box<dyn TraceSink>,
) -> Result<(DistBcResult, Box<dyn TraceSink>), DistBcError> {
    let (result, sink, _) = run_impl(g, config, Some(sink), false)?;
    Ok((result, sink.expect("sink returned")))
}

#[allow(clippy::type_complexity)]
fn run_impl(
    g: &Graph,
    config: DistBcConfig,
    mut sink: Option<Box<dyn TraceSink>>,
    profile: bool,
) -> Result<
    (
        DistBcResult,
        Option<Box<dyn TraceSink>>,
        Option<ProfileReport>,
    ),
    DistBcError,
> {
    let n = g.n();
    if n == 0 {
        return Err(DistBcError::EmptyGraph);
    }
    if !algo::is_connected(g) {
        return Err(DistBcError::Disconnected);
    }
    if config.estimator == Estimator::JiYan {
        if !matches!(config.sources, SourceSelection::Sample { .. }) {
            return Err(DistBcError::BadConfig(
                "the Ji–Yan estimator requires sampled sources".into(),
            ));
        }
        if config.compute_stress {
            return Err(DistBcError::BadConfig(
                "the Ji–Yan estimator cannot be combined with stress centrality \
                 (both extend the aggregation message)"
                    .into(),
            ));
        }
    }
    let fp = config.fp.unwrap_or_else(|| FpParams::for_graph_size(n));
    let sched = PhaseSchedule::new(n, config.scheduling);
    // Built once and shared: every node keys its O(|S|) state off this map.
    let source_index = std::sync::Arc::new(SourceIndex::build(&config.sources, n));
    let opts = AlgoOptions {
        fp,
        scheduling: config.scheduling,
        compute_stress: config.compute_stress,
        sources: config.sources.clone(),
        targets: config.targets.clone(),
        estimator: config.estimator,
        source_index: Some(source_index),
    };
    let engine_budget = if config.reliable {
        // Frames wrap each protocol message in a HEADER_BITS-bit header;
        // the inner protocol still respects the configured budget.
        match config.budget.resolve(n) {
            Some(b) => Budget::Bits(b + HEADER_BITS),
            None => Budget::Unlimited,
        }
    } else {
        config.budget
    };
    let engine_cfg = Config {
        budget: engine_budget,
        enforcement: config.enforcement,
        cut: config.cut.clone(),
        skip_idle: config.skip_idle,
        faults: config.faults.clone(),
        partition: config.partition.to_engine(g, &sched, &config.sources),
    };
    if let Some(s) = sink.as_deref_mut() {
        s.event(&TraceEvent::Topology {
            n,
            edges: g.edges().collect(),
        });
        // A reliable run's trace records physical transport frames whose
        // rounds drift past the virtual schedule under faults, so no
        // schedule is declared and the checker skips its window checks.
        if config.scheduling != Scheduling::Adaptive && !config.reliable {
            s.event(&TraceEvent::Schedule {
                counting_start: sched.counting_start,
                reduce_start: sched.reduce_start,
                broadcast_start: sched.broadcast_start,
                agg_start: sched.agg_start,
            });
        }
    }
    let telemetry = config.telemetry.clone();
    if let Some(t) = &telemetry {
        if config.scheduling != Scheduling::Adaptive {
            t.set_schedule(
                sched.counting_start,
                sched.reduce_start,
                sched.broadcast_start,
                sched.agg_start,
            );
        }
    }
    let max_rounds = if config.reliable {
        // Fault-free reliable runs pipeline one virtual round per physical
        // round; under faults every loss stalls its edge for up to an RTO.
        // The limit only guards non-termination, so scale generously.
        sched.max_rounds() * 8 + 64
    } else {
        sched.max_rounds()
    };
    let (report, sink, profiler, metrics, nodes, transport) = if config.reliable {
        let rcfg = ReliableConfig {
            rto: config.faults.as_ref().map_or(3, |f| f.max_delay + 2),
        };
        let node_tel = telemetry.clone();
        let mut net = Network::new(g, engine_cfg, |v, gg| {
            let mut node = Reliable::new(DistBcNode::new(n, v, opts.clone()), gg.degree(v), rcfg);
            if let Some(t) = &node_tel {
                node.set_telemetry(t.clone(), v as usize % t.shards());
            }
            node
        });
        if let Some(s) = sink.take() {
            net.set_trace_sink(s);
        }
        if profile {
            net.set_profiler(Profiler::new());
        }
        if let Some(t) = &telemetry {
            net.set_telemetry(t.clone());
        }
        let report = if config.threads > 1 {
            net.run_parallel(max_rounds, config.threads)?
        } else {
            net.run(max_rounds)?
        };
        let sink = net.take_trace_sink();
        let profiler = net.take_profiler();
        let metrics = net.metrics().clone();
        let mut totals = TransportStats::default();
        let nodes: Vec<DistBcNode> = net
            .into_nodes()
            .into_iter()
            .map(|r| {
                totals.merge(&r.stats());
                r.into_inner()
            })
            .collect();
        (report, sink, profiler, metrics, nodes, totals)
    } else {
        let mut net = Network::new(g, engine_cfg, |v, _| DistBcNode::new(n, v, opts.clone()));
        if let Some(s) = sink.take() {
            net.set_trace_sink(s);
        }
        if profile {
            net.set_profiler(Profiler::new());
        }
        if let Some(t) = &telemetry {
            net.set_telemetry(t.clone());
        }
        let report = if config.threads > 1 {
            net.run_parallel(max_rounds, config.threads)?
        } else {
            net.run(max_rounds)?
        };
        let sink = net.take_trace_sink();
        let profiler = net.take_profiler();
        let metrics = net.metrics().clone();
        let nodes = net.into_nodes();
        (
            report,
            sink,
            profiler,
            metrics,
            nodes,
            TransportStats::default(),
        )
    };
    let mut metrics = metrics;
    metrics.messages_retransmitted = transport.retransmits;
    metrics.messages_deduped = transport.deduped;

    let summaries: Vec<NodeSummary> = nodes.iter().map(summarize_node).collect();
    let root = summarize_root(&nodes[0]);
    let state_bytes_total: u64 = summaries.iter().map(|s| s.state_bytes).sum();
    let state_bytes_peak = summaries.iter().map(|s| s.state_bytes).max().unwrap_or(0);
    if let Some(t) = &telemetry {
        t.add(0, bc_congest::Counter::StateBytes, state_bytes_total);
    }
    let profile = profiler.map(|p| {
        let mut engine = if config.threads > 1 {
            format!("parallel({})", config.threads)
        } else {
            "serial".to_string()
        };
        if config.threads > 1 && config.partition != PartitionStrategy::Contiguous {
            engine.push('+');
            engine.push_str(config.partition.label());
        }
        if config.reliable {
            engine.push_str("+reliable");
        }
        let phases = profile_phases(config.scheduling, &sched, report.rounds);
        let mut rep = p.report(&engine, &phases);
        rep.messages_retransmitted = transport.retransmits;
        rep.messages_deduped = transport.deduped;
        rep.faults_injected = metrics.faults_dropped
            + metrics.faults_duplicated
            + metrics.faults_corrupted
            + metrics.faults_delayed;
        rep.state_bytes_total = state_bytes_total;
        rep.state_bytes_peak = state_bytes_peak;
        rep
    });
    let result = assemble_result(
        n,
        &config.sources,
        config.estimator,
        config.compute_stress,
        config.scheduling,
        sched,
        fp,
        report.rounds,
        metrics,
        &summaries,
        &root,
    );
    Ok((result, sink, profile))
}

/// Convenience wrapper returning only the closeness centralities computed
/// distributively (Eq. 1 — the `O(N)`-round by-product the introduction
/// mentions for APSP-based centralities).
///
/// # Errors
///
/// Same as [`run_distributed_bc`].
pub fn run_distributed_closeness(g: &Graph, config: DistBcConfig) -> Result<Vec<f64>, DistBcError> {
    run_distributed_bc(g, config).map(|r| r.closeness)
}

/// Convenience wrapper returning the distributively computed diameter.
///
/// # Errors
///
/// Same as [`run_distributed_bc`].
pub fn run_distributed_diameter(g: &Graph, config: DistBcConfig) -> Result<u32, DistBcError> {
    run_distributed_bc(g, config).map(|r| r.diameter)
}

/// Results of a weighted run (see [`run_distributed_bc_weighted`]),
/// projected back to the original nodes.
#[derive(Debug, Clone)]
pub struct WeightedDistBcResult {
    /// Weighted betweenness centrality of each original node.
    pub betweenness: Vec<f64>,
    /// Weighted closeness centrality of each original node.
    pub closeness: Vec<f64>,
    /// The weighted diameter (max weighted distance between original
    /// nodes... realized over original sources; equals the classic
    /// weighted diameter since virtual nodes lie on edges).
    pub diameter: u32,
    /// Nodes of the subdivided (simulated) network.
    pub simulated_n: usize,
    /// Rounds of the simulated execution: `O(Σ_e w(e) + N)`.
    pub rounds: u64,
    /// Engine metrics of the run.
    pub metrics: NetMetrics,
}

/// The paper's future-work extension (Section X): weighted betweenness via
/// virtual-node subdivision. Every weight-`w` edge becomes a path of `w`
/// unit edges; the unweighted distributed algorithm runs on the result
/// with sources and targets restricted to original nodes, which makes the
/// computation *exact* for positive integer weights (not merely the
/// `(1+ε)`-approximation the paper sketches).
///
/// Cost: the simulated network has `N' = N + Σ_e (w(e) − 1)` nodes, so the
/// round count is `O(Σ_e w(e))` — worthwhile for small integer weights.
///
/// # Errors
///
/// Same as [`run_distributed_bc`] (the subdivision of a connected weighted
/// graph is connected, so only engine errors can occur in practice).
///
/// # Examples
///
/// ```
/// use bc_core::{run_distributed_bc_weighted, DistBcConfig};
/// use bc_graph::weighted::WeightedGraph;
///
/// // Weighted path 0 -2- 1 -3- 2: node 1 is between 0 and 2.
/// let wg = WeightedGraph::from_edges(3, [(0, 1, 2), (1, 2, 3)])?;
/// let out = run_distributed_bc_weighted(&wg, DistBcConfig::default())?;
/// assert!((out.betweenness[1] - 1.0).abs() < 1e-6);
/// assert_eq!(out.diameter, 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_distributed_bc_weighted(
    wg: &bc_graph::weighted::WeightedGraph,
    config: DistBcConfig,
) -> Result<WeightedDistBcResult, DistBcError> {
    let sub = wg.subdivide();
    let real: std::sync::Arc<[bool]> = sub.real.clone().into();
    let cfg = DistBcConfig {
        sources: SourceSelection::Explicit(real.clone()),
        targets: Some(real),
        ..config
    };
    let out = run_distributed_bc(&sub.graph, cfg)?;
    Ok(WeightedDistBcResult {
        betweenness: out.betweenness[..sub.original_n].to_vec(),
        closeness: out.closeness[..sub.original_n].to_vec(),
        diameter: out.diameter,
        simulated_n: sub.graph.n(),
        rounds: out.rounds,
        metrics: out.metrics,
    })
}
