//! High-level entry points: configure, run, and harvest a distributed
//! betweenness-centrality execution.

use crate::node::{AggInfo, AlgoOptions, DistBcNode};
use crate::sampling::{source_mask, SourceSelection};
use crate::schedule::{PhaseSchedule, Scheduling};
use crate::transport::{Reliable, ReliableConfig, TransportStats, HEADER_BITS};
use bc_congest::trace::{TraceEvent, TraceSink};
use bc_congest::{
    Budget, Config, CongestError, EdgeCut, Enforcement, FaultPlan, NetMetrics, Network, Partition,
    PhaseStat, ProfileReport, Profiler, Telemetry,
};
use bc_graph::{algo, Graph, NodeId};
use bc_numeric::FpParams;
use std::fmt;

/// Node→worker partitioning strategy for the parallel round engine
/// (`threads > 1`); maps onto [`bc_congest::Partition`].
///
/// Partitioning never changes observable output — results, metrics, and
/// traces are bit-identical across strategies — only how evenly the
/// per-round work spreads across the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Contiguous equal-count id chunks (the historical default).
    #[default]
    Contiguous,
    /// Degree-balanced shards via LPT greedy packing.
    DegreeBalanced,
    /// Shards balanced by each node's provisioned `T_s(u)` schedule
    /// density ([`PhaseSchedule::partition_weights`]): degree-proportional
    /// wave/aggregation traffic plus per-source bookkeeping.
    ScheduleAware,
}

impl PartitionStrategy {
    /// Short label for logs and profile headers.
    pub fn label(self) -> &'static str {
        match self {
            PartitionStrategy::Contiguous => "contiguous",
            PartitionStrategy::DegreeBalanced => "degree",
            PartitionStrategy::ScheduleAware => "schedule",
        }
    }

    /// Parses the CLI spelling (`contiguous` | `degree` | `schedule`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "contiguous" => Some(PartitionStrategy::Contiguous),
            "degree" => Some(PartitionStrategy::DegreeBalanced),
            "schedule" => Some(PartitionStrategy::ScheduleAware),
            _ => None,
        }
    }

    /// Resolves to the engine-level [`Partition`], deriving schedule-aware
    /// weights from the graph, the phase schedule, and the source set.
    pub(crate) fn to_engine(
        self,
        g: &Graph,
        sched: &PhaseSchedule,
        sources: &SourceSelection,
    ) -> Partition {
        match self {
            PartitionStrategy::Contiguous => Partition::Contiguous,
            PartitionStrategy::DegreeBalanced => Partition::DegreeBalanced,
            PartitionStrategy::ScheduleAware => {
                let degrees: Vec<usize> = (0..g.n()).map(|v| g.degree(v as NodeId)).collect();
                let mask = source_mask(sources, g.n());
                Partition::ScheduleAware(sched.partition_weights(&degrees, &mask).into())
            }
        }
    }
}

/// Node count at or above which the parallel engine starts paying off
/// (given enough cores — see [`auto_threads`]).
///
/// E18's scaling sweep shows the sharded data plane losing to serial on
/// every family at n = 64 and 128 (per-round barrier cost dominates);
/// n = 256 is where per-round compute grows large enough to amortize the
/// two barrier crossings. `--threads auto` uses this threshold.
pub const AUTO_THREADS_MIN_NODES: usize = 192;

/// [`auto_threads`] with the core count passed explicitly (testable
/// without depending on the host): serial (0) below
/// [`AUTO_THREADS_MIN_NODES`] or when fewer than two cores are available
/// — parallel workers cannot beat serial wall-clock without real
/// parallelism, only pay barrier overhead — otherwise up to four workers
/// (the sweet spot in E18's thread sweep; 8 workers add barrier cost
/// faster than useful parallelism at these sizes), capped at the core
/// count so the pool is never oversubscribed.
///
/// ```
/// use bc_core::{auto_threads_for, AUTO_THREADS_MIN_NODES};
/// assert_eq!(auto_threads_for(64, 8), 0); // below the size threshold
/// assert_eq!(auto_threads_for(AUTO_THREADS_MIN_NODES, 1), 0); // no parallelism
/// assert_eq!(auto_threads_for(256, 2), 2); // capped at the core count
/// assert_eq!(auto_threads_for(256, 16), 4); // E18's sweet spot
/// ```
pub fn auto_threads_for(n: usize, cores: usize) -> usize {
    if n < AUTO_THREADS_MIN_NODES || cores < 2 {
        0
    } else {
        cores.min(4)
    }
}

/// Thread count `--threads auto` resolves to for an `n`-node graph on
/// this host (detected via `std::thread::available_parallelism`).
pub fn auto_threads(n: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    auto_threads_for(n, cores)
}

/// Configuration for [`run_distributed_bc`].
#[derive(Debug, Clone)]
pub struct DistBcConfig {
    /// Floating-point parameters; `None` selects the paper's
    /// `L = Θ(log N)` via [`FpParams::for_graph_size`].
    pub fp: Option<FpParams>,
    /// Counting-phase scheduling (the paper's pipelined DFS or the
    /// sequential baseline).
    pub scheduling: Scheduling,
    /// CONGEST constraint handling; [`Enforcement::Strict`] (default)
    /// turns any collision or oversized message into an error.
    pub enforcement: Enforcement,
    /// Per-message bit budget (default: `Θ(log N)` auto).
    pub budget: Budget,
    /// Worker threads for the round engine; `0` or `1` runs serially.
    pub threads: usize,
    /// Node→worker partitioning for the parallel engine (ignored when
    /// running serially). Never changes observable output.
    pub partition: PartitionStrategy,
    /// Optional edge cut across which bit flow is measured (experiment E8).
    pub cut: Option<EdgeCut>,
    /// Also compute stress centrality (Eq. 3) in the same pass — the
    /// paper's footnote 3 extension. Aggregation messages carry one extra
    /// `L + 16`-bit value (still `O(log N)`).
    pub compute_stress: bool,
    /// Which nodes act as BFS sources: all (the paper's exact algorithm)
    /// or a deterministic sample of `k` (the related-work approximation;
    /// results become `N/k`-scaled estimates).
    pub sources: SourceSelection,
    /// Which nodes count as shortest-path targets (`None` = all). The
    /// weighted extension restricts both sources and targets to the
    /// original nodes of the subdivision.
    pub targets: Option<std::sync::Arc<[bool]>>,
    /// Let the engine skip nodes with an empty inbox and no self-timed
    /// work this round (on by default; observationally free). Turn off to
    /// force every node through `round()` each round.
    pub skip_idle: bool,
    /// Inject network faults (drops, duplicates, corruption, delays,
    /// crashes) per this plan. Without [`DistBcConfig::reliable`] the
    /// protocol sees the raw faulty network and will generally fail
    /// (stall or decode error) — useful for chaos testing the failure
    /// modes themselves.
    pub faults: Option<FaultPlan>,
    /// Run every node behind the [`Reliable`] transport
    /// ([`crate::transport`]): the per-message budget is raised by
    /// [`HEADER_BITS`], the round limit is scaled for retransmissions, and
    /// the result is bit-identical to a fault-free run for any
    /// non-crashing fault plan.
    pub reliable: bool,
    /// Shared telemetry registry: engines, the reliable transport, and the
    /// fault layer stream counters/histograms into it as the run executes,
    /// and its flight recorder retains the last K rounds for postmortems.
    /// Telemetry writes counters only — results are bit-identical with or
    /// without it (asserted by the test suite).
    pub telemetry: Option<std::sync::Arc<Telemetry>>,
}

impl Default for DistBcConfig {
    fn default() -> Self {
        DistBcConfig {
            fp: None,
            scheduling: Scheduling::default(),
            enforcement: Enforcement::default(),
            budget: Budget::default(),
            threads: 0,
            partition: PartitionStrategy::default(),
            cut: None,
            compute_stress: false,
            sources: SourceSelection::default(),
            targets: None,
            skip_idle: true,
            faults: None,
            reliable: false,
            telemetry: None,
        }
    }
}

/// Errors from [`run_distributed_bc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistBcError {
    /// The graph has no nodes.
    EmptyGraph,
    /// The graph is disconnected; the paper's algorithm (and betweenness
    /// on shortest paths between all pairs) assumes a connected network.
    Disconnected,
    /// The simulated execution violated the CONGEST model or did not halt.
    Congest(CongestError),
}

impl fmt::Display for DistBcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistBcError::EmptyGraph => write!(f, "graph has no nodes"),
            DistBcError::Disconnected => write!(f, "graph is disconnected"),
            DistBcError::Congest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DistBcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistBcError::Congest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CongestError> for DistBcError {
    fn from(e: CongestError) -> Self {
        DistBcError::Congest(e)
    }
}

/// Results of a distributed execution.
#[derive(Debug, Clone)]
pub struct DistBcResult {
    /// Betweenness centrality of every node (paper convention: each
    /// unordered pair counted once).
    pub betweenness: Vec<f64>,
    /// Closeness centrality (Eq. 1) — a free by-product: every node knows
    /// all its distances after the counting phase.
    pub closeness: Vec<f64>,
    /// Graph centrality (Eq. 2), likewise free.
    pub graph_centrality: Vec<f64>,
    /// Network diameter as computed and broadcast by the protocol.
    pub diameter: u32,
    /// Total rounds until every node halted — the paper's complexity
    /// measure (Theorem 3: `O(N)`).
    pub rounds: u64,
    /// The deterministic phase boundaries used.
    pub schedule: PhaseSchedule,
    /// Engine metrics: messages, bits, max message size, collisions (must
    /// be 0), cut flow.
    pub metrics: NetMetrics,
    /// Stress centralities (Eq. 3) when [`DistBcConfig::compute_stress`]
    /// was set.
    pub stress: Option<Vec<f64>>,
    /// Number of BFS sources used (`N` for the exact algorithm).
    pub sample_size: usize,
    /// `max_s T_s − min_s T_s`: the spread of wave start times, which
    /// (plus `D`) is the aggregation phase's true length.
    pub ts_spread: u64,
    /// Round (relative to the counting start) at which the DFS token
    /// returned to the root — the counting phase's true length.
    pub counting_rounds_used: u64,
    /// Floating-point parameters used on the wire.
    pub fp: FpParams,
    /// Per-phase traffic breakdown (A tree build, B counting, C
    /// reduce/broadcast, D aggregation), sliced from the engine's
    /// per-round timelines at the provisioned phase boundaries. Empty for
    /// [`Scheduling::Adaptive`], whose boundaries are data-dependent and
    /// not provisioned up front.
    pub phase_stats: Vec<PhaseStat>,
}

/// Runs the paper's distributed betweenness-centrality algorithm on `g`
/// under the CONGEST simulator.
///
/// With [`SourceSelection::Sample`], the returned betweenness/closeness
/// values are `N/k`-extrapolated estimates and `diameter` is the sampled
/// horizon `max_{s ∈ S} ecc(s)` (a lower bound on the true diameter).
///
/// # Errors
///
/// * [`DistBcError::EmptyGraph`] / [`DistBcError::Disconnected`] for
///   inputs outside the paper's model (connected networks);
/// * [`DistBcError::Congest`] if the execution violates the CONGEST
///   constraints under strict enforcement (a protocol bug) or exceeds its
///   round bound.
///
/// # Examples
///
/// ```
/// use bc_core::{run_distributed_bc, DistBcConfig};
/// use bc_graph::generators;
///
/// // Figure 1 of the paper: C_B(v2) = 7/2.
/// let g = generators::paper_figure1();
/// let out = run_distributed_bc(&g, DistBcConfig::default())?;
/// assert!((out.betweenness[1] - 3.5).abs() < 1e-6);
/// assert_eq!(out.diameter, 3);
/// assert!(out.metrics.congest_compliant());
/// # Ok::<(), bc_core::DistBcError>(())
/// ```
pub fn run_distributed_bc(g: &Graph, config: DistBcConfig) -> Result<DistBcResult, DistBcError> {
    run_impl(g, config, None, false).map(|(result, _, _)| result)
}

/// Runs [`run_distributed_bc`] with the wall-clock profiler attached to
/// the engine: per-round spans split into node compute vs engine overhead,
/// inbox depths, and (for `threads > 1`) per-worker busy times. The
/// returned [`ProfileReport`] slices the spans at the provisioned phase
/// boundaries ([`Scheduling::Adaptive`] has none, so its report carries no
/// phase rows). Profiling never alters the execution: the `DistBcResult`
/// is bit-identical to an unprofiled run (asserted by the test suite).
///
/// # Errors
///
/// Same as [`run_distributed_bc`].
pub fn run_distributed_bc_profiled(
    g: &Graph,
    config: DistBcConfig,
) -> Result<(DistBcResult, ProfileReport), DistBcError> {
    let (result, _, profile) = run_impl(g, config, None, true)?;
    Ok((result, profile.expect("profile requested")))
}

/// Runs [`run_distributed_bc`] with both a trace sink and the profiler
/// attached — one execution yields the event stream for offline analytics
/// and the wall-clock profile.
///
/// # Errors
///
/// Same as [`run_distributed_bc`]. On error the sink is dropped (a file
/// sink will have written the events up to the failure).
pub fn run_distributed_bc_traced_profiled(
    g: &Graph,
    config: DistBcConfig,
    sink: Box<dyn TraceSink>,
) -> Result<(DistBcResult, Box<dyn TraceSink>, ProfileReport), DistBcError> {
    let (result, sink, profile) = run_impl(g, config, Some(sink), true)?;
    Ok((
        result,
        sink.expect("sink returned"),
        profile.expect("profile requested"),
    ))
}

/// Runs [`run_distributed_bc`] with a trace sink attached to the engine.
///
/// Before the first round the driver records the context an offline
/// analyzer needs: a [`TraceEvent::Topology`] with the full edge list and,
/// for the provisioned scheduling modes, a [`TraceEvent::Schedule`] with
/// the phase boundaries ([`Scheduling::Adaptive`] discovers its boundaries
/// at run time, so no schedule is recorded and
/// [`bc_congest::trace::check`] skips the window checks). The sink is
/// returned for flushing or draining; the recorded stream satisfies the
/// invariants validated by [`bc_congest::trace::check::check`].
///
/// # Errors
///
/// Same as [`run_distributed_bc`]. On error the sink is dropped (a file
/// sink will have written the events up to the failure).
pub fn run_distributed_bc_traced(
    g: &Graph,
    config: DistBcConfig,
    sink: Box<dyn TraceSink>,
) -> Result<(DistBcResult, Box<dyn TraceSink>), DistBcError> {
    let (result, sink, _) = run_impl(g, config, Some(sink), false)?;
    Ok((result, sink.expect("sink returned")))
}

#[allow(clippy::type_complexity)]
fn run_impl(
    g: &Graph,
    config: DistBcConfig,
    mut sink: Option<Box<dyn TraceSink>>,
    profile: bool,
) -> Result<
    (
        DistBcResult,
        Option<Box<dyn TraceSink>>,
        Option<ProfileReport>,
    ),
    DistBcError,
> {
    let n = g.n();
    if n == 0 {
        return Err(DistBcError::EmptyGraph);
    }
    if !algo::is_connected(g) {
        return Err(DistBcError::Disconnected);
    }
    let fp = config.fp.unwrap_or_else(|| FpParams::for_graph_size(n));
    let sched = PhaseSchedule::new(n, config.scheduling);
    let opts = AlgoOptions {
        fp,
        scheduling: config.scheduling,
        compute_stress: config.compute_stress,
        sources: config.sources.clone(),
        targets: config.targets.clone(),
    };
    let engine_budget = if config.reliable {
        // Frames wrap each protocol message in a HEADER_BITS-bit header;
        // the inner protocol still respects the configured budget.
        match config.budget.resolve(n) {
            Some(b) => Budget::Bits(b + HEADER_BITS),
            None => Budget::Unlimited,
        }
    } else {
        config.budget
    };
    let engine_cfg = Config {
        budget: engine_budget,
        enforcement: config.enforcement,
        cut: config.cut.clone(),
        skip_idle: config.skip_idle,
        faults: config.faults.clone(),
        partition: config.partition.to_engine(g, &sched, &config.sources),
    };
    if let Some(s) = sink.as_deref_mut() {
        s.event(&TraceEvent::Topology {
            n,
            edges: g.edges().collect(),
        });
        // A reliable run's trace records physical transport frames whose
        // rounds drift past the virtual schedule under faults, so no
        // schedule is declared and the checker skips its window checks.
        if config.scheduling != Scheduling::Adaptive && !config.reliable {
            s.event(&TraceEvent::Schedule {
                counting_start: sched.counting_start,
                reduce_start: sched.reduce_start,
                broadcast_start: sched.broadcast_start,
                agg_start: sched.agg_start,
            });
        }
    }
    let telemetry = config.telemetry.clone();
    if let Some(t) = &telemetry {
        if config.scheduling != Scheduling::Adaptive {
            t.set_schedule(
                sched.counting_start,
                sched.reduce_start,
                sched.broadcast_start,
                sched.agg_start,
            );
        }
    }
    let max_rounds = if config.reliable {
        // Fault-free reliable runs pipeline one virtual round per physical
        // round; under faults every loss stalls its edge for up to an RTO.
        // The limit only guards non-termination, so scale generously.
        sched.max_rounds() * 8 + 64
    } else {
        sched.max_rounds()
    };
    let (report, sink, profiler, metrics, nodes, transport) = if config.reliable {
        let rcfg = ReliableConfig {
            rto: config.faults.as_ref().map_or(3, |f| f.max_delay + 2),
        };
        let node_tel = telemetry.clone();
        let mut net = Network::new(g, engine_cfg, |v, gg| {
            let mut node = Reliable::new(DistBcNode::new(n, v, opts.clone()), gg.degree(v), rcfg);
            if let Some(t) = &node_tel {
                node.set_telemetry(t.clone(), v as usize % t.shards());
            }
            node
        });
        if let Some(s) = sink.take() {
            net.set_trace_sink(s);
        }
        if profile {
            net.set_profiler(Profiler::new());
        }
        if let Some(t) = &telemetry {
            net.set_telemetry(t.clone());
        }
        let report = if config.threads > 1 {
            net.run_parallel(max_rounds, config.threads)?
        } else {
            net.run(max_rounds)?
        };
        let sink = net.take_trace_sink();
        let profiler = net.take_profiler();
        let metrics = net.metrics().clone();
        let mut totals = TransportStats::default();
        let nodes: Vec<DistBcNode> = net
            .into_nodes()
            .into_iter()
            .map(|r| {
                totals.merge(&r.stats());
                r.into_inner()
            })
            .collect();
        (report, sink, profiler, metrics, nodes, totals)
    } else {
        let mut net = Network::new(g, engine_cfg, |v, _| DistBcNode::new(n, v, opts.clone()));
        if let Some(s) = sink.take() {
            net.set_trace_sink(s);
        }
        if profile {
            net.set_profiler(Profiler::new());
        }
        if let Some(t) = &telemetry {
            net.set_telemetry(t.clone());
        }
        let report = if config.threads > 1 {
            net.run_parallel(max_rounds, config.threads)?
        } else {
            net.run(max_rounds)?
        };
        let sink = net.take_trace_sink();
        let profiler = net.take_profiler();
        let metrics = net.metrics().clone();
        let nodes = net.into_nodes();
        (
            report,
            sink,
            profiler,
            metrics,
            nodes,
            TransportStats::default(),
        )
    };
    let mut metrics = metrics;
    metrics.messages_retransmitted = transport.retransmits;
    metrics.messages_deduped = transport.deduped;

    let summaries: Vec<NodeSummary> = nodes.iter().map(summarize_node).collect();
    let root = summarize_root(&nodes[0]);
    let profile = profiler.map(|p| {
        let mut engine = if config.threads > 1 {
            format!("parallel({})", config.threads)
        } else {
            "serial".to_string()
        };
        if config.threads > 1 && config.partition != PartitionStrategy::Contiguous {
            engine.push('+');
            engine.push_str(config.partition.label());
        }
        if config.reliable {
            engine.push_str("+reliable");
        }
        let phases = profile_phases(config.scheduling, &sched, report.rounds);
        let mut rep = p.report(&engine, &phases);
        rep.messages_retransmitted = transport.retransmits;
        rep.messages_deduped = transport.deduped;
        rep.faults_injected = metrics.faults_dropped
            + metrics.faults_duplicated
            + metrics.faults_corrupted
            + metrics.faults_delayed;
        rep
    });
    let result = assemble_result(
        n,
        &config.sources,
        config.compute_stress,
        config.scheduling,
        sched,
        fp,
        report.rounds,
        metrics,
        &summaries,
        &root,
    );
    Ok((result, sink, profile))
}

/// The per-node observables the result assembly needs, decoupled from the
/// node state itself so the socket leader can collect them from remote
/// shards and still run the byte-identical float pipeline of
/// [`assemble_result`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct NodeSummary {
    /// The node's accumulated betweenness value.
    pub betweenness: f64,
    /// Integer sum of all (known) distances from sources to this node.
    pub dist_total: u64,
    /// Max distance seen (eccentricity over the source set).
    pub ecc: u32,
    /// Stress centrality (0.0 when not computed).
    pub stress: f64,
}

/// The root-only observables (node 0 drives the schedule and holds the
/// globally reduced aggregation parameters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RootSummary {
    /// Number of BFS sources actually used.
    pub source_count: usize,
    /// The globally agreed `(base, min T_s, max T_s, D)`.
    pub agg: AggInfo,
    /// Round the DFS token returned to the root (pipelined modes).
    pub dfs_done_round: Option<u64>,
}

/// Extracts a [`NodeSummary`] from a finished node. The distance fold is
/// pure integer arithmetic, so summarizing on a remote shard and shipping
/// the summary is bit-exact with summarizing locally.
pub(crate) fn summarize_node(nd: &DistBcNode) -> NodeSummary {
    let mut dist_total = 0u64;
    let mut ecc = 0u32;
    for d in nd.distances().into_iter().flatten() {
        dist_total += d as u64;
        ecc = ecc.max(d);
    }
    NodeSummary {
        betweenness: nd.betweenness(),
        dist_total,
        ecc,
        stress: nd.stress().unwrap_or(0.0),
    }
}

/// Extracts the [`RootSummary`] from node 0 of a completed run.
///
/// # Panics
///
/// Panics if the node never received the aggregation broadcast — i.e. the
/// run did not actually complete.
pub(crate) fn summarize_root(nd: &DistBcNode) -> RootSummary {
    RootSummary {
        source_count: nd.source_count(),
        agg: nd.agg_info().expect("run completed"),
        dfs_done_round: nd.dfs_done_round(),
    }
}

/// The provisioned phase windows for a profile report (empty for
/// [`Scheduling::Adaptive`], whose boundaries are data-dependent).
pub(crate) fn profile_phases(
    scheduling: Scheduling,
    sched: &PhaseSchedule,
    rounds: u64,
) -> Vec<(String, u64, u64)> {
    if scheduling == Scheduling::Adaptive {
        Vec::new()
    } else {
        vec![
            ("A:tree".to_string(), 0, sched.counting_start),
            (
                "B:counting".to_string(),
                sched.counting_start,
                sched.reduce_start,
            ),
            (
                "C:reduce+bcast".to_string(),
                sched.reduce_start,
                sched.agg_start,
            ),
            ("D:aggregation".to_string(), sched.agg_start, rounds),
        ]
    }
}

/// Derives the [`DistBcResult`] from per-node summaries — the single
/// shared harvest path for the in-process engines and the socket leader,
/// so both produce bit-identical floats from identical summaries.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_result(
    n: usize,
    sources: &SourceSelection,
    compute_stress: bool,
    scheduling: Scheduling,
    sched: PhaseSchedule,
    fp: FpParams,
    rounds: u64,
    metrics: NetMetrics,
    summaries: &[NodeSummary],
    root: &RootSummary,
) -> DistBcResult {
    let betweenness = summaries.iter().map(|s| s.betweenness).collect();
    let sample_size = root.source_count;
    // With sampling, extrapolate the distance sum by N/k (the eccentricity
    // view stays a max over the sample); explicit masks are restricted
    // sums, not estimates.
    let dist_scale = match sources {
        SourceSelection::Sample { .. } => n as f64 / sample_size as f64,
        _ => 1.0,
    };
    let mut closeness = Vec::with_capacity(n);
    let mut graph_centrality = Vec::with_capacity(n);
    for s in summaries {
        closeness.push(if s.dist_total == 0 {
            0.0
        } else {
            1.0 / (s.dist_total as f64 * dist_scale)
        });
        graph_centrality.push(if s.ecc == 0 { 0.0 } else { 1.0 / s.ecc as f64 });
    }
    let stress = compute_stress.then(|| summaries.iter().map(|s| s.stress).collect());
    let info = root.agg;
    let counting_rounds_used = root
        .dfs_done_round
        .map(|r| r.saturating_sub(sched.counting_start))
        .unwrap_or(sched.reduce_start - sched.counting_start);
    let phase_stats = if scheduling == Scheduling::Adaptive {
        Vec::new()
    } else {
        vec![
            metrics.phase_window("A:tree", 0, sched.counting_start),
            metrics.phase_window("B:counting", sched.counting_start, sched.reduce_start),
            metrics.phase_window("C:reduce+bcast", sched.reduce_start, sched.agg_start),
            metrics.phase_window("D:aggregation", sched.agg_start, rounds),
        ]
    };
    DistBcResult {
        betweenness,
        closeness,
        graph_centrality,
        diameter: info.d,
        rounds,
        schedule: sched,
        metrics,
        stress,
        sample_size,
        ts_spread: info.max_ts - info.min_ts,
        counting_rounds_used,
        fp,
        phase_stats,
    }
}

/// Convenience wrapper returning only the closeness centralities computed
/// distributively (Eq. 1 — the `O(N)`-round by-product the introduction
/// mentions for APSP-based centralities).
///
/// # Errors
///
/// Same as [`run_distributed_bc`].
pub fn run_distributed_closeness(g: &Graph, config: DistBcConfig) -> Result<Vec<f64>, DistBcError> {
    run_distributed_bc(g, config).map(|r| r.closeness)
}

/// Convenience wrapper returning the distributively computed diameter.
///
/// # Errors
///
/// Same as [`run_distributed_bc`].
pub fn run_distributed_diameter(g: &Graph, config: DistBcConfig) -> Result<u32, DistBcError> {
    run_distributed_bc(g, config).map(|r| r.diameter)
}

/// Results of a weighted run (see [`run_distributed_bc_weighted`]),
/// projected back to the original nodes.
#[derive(Debug, Clone)]
pub struct WeightedDistBcResult {
    /// Weighted betweenness centrality of each original node.
    pub betweenness: Vec<f64>,
    /// Weighted closeness centrality of each original node.
    pub closeness: Vec<f64>,
    /// The weighted diameter (max weighted distance between original
    /// nodes... realized over original sources; equals the classic
    /// weighted diameter since virtual nodes lie on edges).
    pub diameter: u32,
    /// Nodes of the subdivided (simulated) network.
    pub simulated_n: usize,
    /// Rounds of the simulated execution: `O(Σ_e w(e) + N)`.
    pub rounds: u64,
    /// Engine metrics of the run.
    pub metrics: NetMetrics,
}

/// The paper's future-work extension (Section X): weighted betweenness via
/// virtual-node subdivision. Every weight-`w` edge becomes a path of `w`
/// unit edges; the unweighted distributed algorithm runs on the result
/// with sources and targets restricted to original nodes, which makes the
/// computation *exact* for positive integer weights (not merely the
/// `(1+ε)`-approximation the paper sketches).
///
/// Cost: the simulated network has `N' = N + Σ_e (w(e) − 1)` nodes, so the
/// round count is `O(Σ_e w(e))` — worthwhile for small integer weights.
///
/// # Errors
///
/// Same as [`run_distributed_bc`] (the subdivision of a connected weighted
/// graph is connected, so only engine errors can occur in practice).
///
/// # Examples
///
/// ```
/// use bc_core::{run_distributed_bc_weighted, DistBcConfig};
/// use bc_graph::weighted::WeightedGraph;
///
/// // Weighted path 0 -2- 1 -3- 2: node 1 is between 0 and 2.
/// let wg = WeightedGraph::from_edges(3, [(0, 1, 2), (1, 2, 3)])?;
/// let out = run_distributed_bc_weighted(&wg, DistBcConfig::default())?;
/// assert!((out.betweenness[1] - 1.0).abs() < 1e-6);
/// assert_eq!(out.diameter, 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_distributed_bc_weighted(
    wg: &bc_graph::weighted::WeightedGraph,
    config: DistBcConfig,
) -> Result<WeightedDistBcResult, DistBcError> {
    let sub = wg.subdivide();
    let real: std::sync::Arc<[bool]> = sub.real.clone().into();
    let cfg = DistBcConfig {
        sources: SourceSelection::Explicit(real.clone()),
        targets: Some(real),
        ..config
    };
    let out = run_distributed_bc(&sub.graph, cfg)?;
    Ok(WeightedDistBcResult {
        betweenness: out.betweenness[..sub.original_n].to_vec(),
        closeness: out.closeness[..sub.original_n].to_vec(),
        diameter: out.diameter,
        simulated_n: sub.graph.n(),
        rounds: out.rounds,
        metrics: out.metrics,
    })
}
