//! Failure injection: deliberately sabotage a running protocol and verify
//! the strict CONGEST engine detects the violation — i.e. the Lemma 3–5
//! checks have teeth, and a compliant run is meaningful evidence.

use bc_congest::{Budget, Config, CongestError, Enforcement, Message, Network, Protocol, RoundCtx};
use bc_core::{run_distributed_bc, AlgoOptions, DistBcConfig, DistBcError, DistBcNode};
use bc_graph::generators;
use bc_numeric::bits::BitWriter;

/// Wraps a [`DistBcNode`] and injects a fault at a chosen round.
struct Saboteur {
    inner: DistBcNode,
    victim: bool,
    at_round: u64,
    fault: Fault,
}

#[derive(Clone, Copy, PartialEq)]
enum Fault {
    /// Send two messages on port 0 in one round (collision — violates the
    /// Lemma 4 schedule).
    DoubleSend,
    /// Send one absurdly large message (violates the O(log N) budget of
    /// Lemmas 3/5).
    Oversized,
    /// Send a well-sized message whose tag names no protocol message; the
    /// receiver's decode must reject it (and the engine must report which
    /// node died) instead of crashing the process.
    CorruptPayload,
}

impl Protocol for Saboteur {
    fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]) {
        self.inner.round(ctx, inbox);
        if self.victim && ctx.round() == self.at_round && ctx.degree() > 0 {
            match self.fault {
                Fault::DoubleSend => {
                    let mut w = BitWriter::new();
                    w.push(1, 4); // a Token-tagged message
                    let m = Message::new(w.finish());
                    ctx.send(0, m.clone());
                    ctx.send(0, m);
                }
                Fault::Oversized => {
                    let mut w = BitWriter::new();
                    for _ in 0..200 {
                        w.push(u64::MAX, 64);
                    }
                    ctx.send(0, Message::new(w.finish()));
                }
                Fault::CorruptPayload => {
                    let mut w = BitWriter::new();
                    w.push(15, 4); // no protocol message carries tag 15
                    ctx.send(0, Message::new(w.finish()));
                }
            }
        }
    }

    fn is_halted(&self) -> bool {
        self.inner.is_halted()
    }
}

fn run_sabotaged(fault: Fault, at_round: u64) -> Result<(), CongestError> {
    let g = generators::erdos_renyi_connected(24, 0.12, 8);
    let n = g.n();
    let opts = AlgoOptions::for_graph_size(n);
    let mut net = Network::new(&g, Config::default(), |v, _| Saboteur {
        inner: DistBcNode::new(n, v, opts.clone()),
        victim: v == 3,
        at_round,
        fault,
    });
    net.run(1_000_000).map(|_| ())
}

#[test]
fn double_send_is_caught_mid_protocol() {
    // Inject during the counting phase (round 40 is mid-waves for n=24).
    let err = run_sabotaged(Fault::DoubleSend, 40).unwrap_err();
    assert!(
        matches!(
            err,
            CongestError::Collision {
                node: 3,
                round: 40,
                ..
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn double_send_is_caught_during_aggregation() {
    // Aggregation starts after the Θ(N) windows; round 220 is inside it.
    let err = run_sabotaged(Fault::DoubleSend, 220).unwrap_err();
    assert!(matches!(err, CongestError::Collision { node: 3, .. }));
}

#[test]
fn oversized_message_is_caught() {
    let err = run_sabotaged(Fault::Oversized, 40).unwrap_err();
    assert!(
        matches!(
            err,
            CongestError::Oversized {
                node: 3,
                bits: 12800,
                ..
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn corrupt_payload_is_a_node_panic_error_on_every_engine() {
    // Node 3 slips a tag-15 message to its port-0 neighbour (node 2 on the
    // path) in round 1; node 2's decode refuses it in round 2. The run
    // must fail with a NodePanic naming that node and round — identically
    // on the serial and pooled engines.
    let g = generators::path(6);
    let n = g.n();
    let opts = AlgoOptions::for_graph_size(n);
    let run_engine = |threads: usize| -> CongestError {
        let mut net = Network::new(&g, Config::default(), |v, _| Saboteur {
            inner: DistBcNode::new(n, v, opts.clone()),
            victim: v == 3,
            at_round: 1,
            fault: Fault::CorruptPayload,
        });
        if threads == 0 {
            net.run(10_000).unwrap_err()
        } else {
            net.run_parallel(10_000, threads).unwrap_err()
        }
    };
    let serial_err = run_engine(0);
    match &serial_err {
        CongestError::NodePanic {
            node: 2,
            round: 2,
            message,
        } => {
            assert!(message.contains("undecodable message on port"), "{message}");
            assert!(message.contains("unknown protocol tag 15"), "{message}");
        }
        other => panic!("expected a NodePanic at node 2, round 2; got {other:?}"),
    }
    for threads in [1usize, 2, 5] {
        assert_eq!(run_engine(threads), serial_err, "threads={threads}");
    }
}

#[test]
fn starved_budget_fails_loudly_not_silently() {
    // A 10-bit budget cannot carry even a Wave message; the run must error
    // rather than quietly truncate.
    let g = generators::path(6);
    let out = run_distributed_bc(
        &g,
        DistBcConfig {
            budget: Budget::Bits(10),
            ..DistBcConfig::default()
        },
    );
    assert!(matches!(
        out.unwrap_err(),
        DistBcError::Congest(CongestError::Oversized { .. })
    ));
}

#[test]
fn record_mode_completes_but_reports_the_fault() {
    // Under Enforcement::Record the same sabotage is tallied instead of
    // fatal (useful for measuring how broken a broken schedule is). The
    // injected Token perturbs the DFS, so results are garbage — but the
    // metrics must say so.
    let g = generators::erdos_renyi_connected(24, 0.12, 8);
    let n = g.n();
    let opts = AlgoOptions::for_graph_size(n);
    let cfg = Config {
        enforcement: Enforcement::Record,
        ..Config::default()
    };
    let mut net = Network::new(&g, cfg, |v, _| Saboteur {
        inner: DistBcNode::new(n, v, opts.clone()),
        victim: v == 3,
        at_round: 40,
        fault: Fault::DoubleSend,
    });
    // The run may or may not converge to quiescence — either way, the
    // violation is recorded.
    let _ = net.run(10_000);
    assert!(net.metrics().collisions >= 1);
    assert!(!net.metrics().congest_compliant());
}
