//! Partitioning must be observationally free: every `PartitionStrategy`
//! × worker count must produce bit-identical results *and* bit-identical
//! trace event streams vs the serial engine — on clean networks and over
//! a lossy network behind the reliable transport. The sharded data plane
//! (per-destination outboxes, barrier drain, canonical merge order) is
//! only allowed to change wall-clock, never a single observable bit.

use bc_congest::trace::{RingSink, TraceEvent, TraceSink};
use bc_congest::FaultPlan;
use bc_core::{
    run_distributed_bc, run_distributed_bc_traced, DistBcConfig, PartitionStrategy, Scheduling,
};
use bc_graph::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

const STRATEGIES: [PartitionStrategy; 3] = [
    PartitionStrategy::Contiguous,
    PartitionStrategy::DegreeBalanced,
    PartitionStrategy::ScheduleAware,
];
const THREADS: [usize; 3] = [1, 2, 7];

/// Random connected graph: a random recursive tree plus extra edges.
fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..max_n, any::<u64>(), 0usize..24).prop_map(|(n, seed, extra)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_edge(rng.gen_range(0..v), v).expect("valid");
        }
        for _ in 0..extra {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if u != v {
                b.add_edge(u, v).expect("valid");
            }
        }
        b.build()
    })
}

/// Runs with a ring sink attached and returns the full event stream
/// alongside the result.
fn run_traced(g: &Graph, cfg: DistBcConfig) -> (bc_core::DistBcResult, Vec<TraceEvent>) {
    let sink: Box<dyn TraceSink> = Box::new(RingSink::new(1 << 22));
    let (out, mut sink) = run_distributed_bc_traced(g, cfg, sink).expect("traced run succeeds");
    (out, sink.drain_events())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Clean network: every strategy × thread count reproduces the serial
    /// betweenness/closeness/diameter and the serial trace, bit for bit.
    #[test]
    fn partitioning_is_observationally_free(
        g in arb_connected_graph(22),
        adaptive in any::<bool>(),
    ) {
        let scheduling = if adaptive { Scheduling::Adaptive } else { Scheduling::DfsPipelined };
        let (serial, serial_events) = run_traced(
            &g,
            DistBcConfig { scheduling, ..DistBcConfig::default() },
        );
        for partition in STRATEGIES {
            for threads in THREADS {
                let (par, par_events) = run_traced(
                    &g,
                    DistBcConfig { threads, partition, scheduling, ..DistBcConfig::default() },
                );
                let tag = format!("{}/threads={threads}", partition.label());
                prop_assert_eq!(&serial.betweenness, &par.betweenness, "{}", &tag);
                prop_assert_eq!(&serial.closeness, &par.closeness, "{}", &tag);
                prop_assert_eq!(serial.diameter, par.diameter, "{}", &tag);
                prop_assert_eq!(serial.rounds, par.rounds, "{}", &tag);
                prop_assert_eq!(&serial.metrics, &par.metrics, "{}", &tag);
                prop_assert_eq!(&serial_events, &par_events, "{}", &tag);
            }
        }
    }

    /// Lossy network behind the reliable transport: the same guarantee
    /// holds, including the physical (retransmission-bearing) trace.
    #[test]
    fn partitioning_is_observationally_free_under_faults(
        g in arb_connected_graph(18),
        seed in any::<u64>(),
        drop_pct in 0u32..=15,
        dup_pct in 0u32..=20,
    ) {
        let plan = FaultPlan {
            drop: drop_pct as f64 / 100.0,
            duplicate: dup_pct as f64 / 100.0,
            delay: 0.1,
            max_delay: 3,
            ..FaultPlan::seeded(seed)
        };
        let faulty = |threads: usize, partition: PartitionStrategy| DistBcConfig {
            faults: Some(plan.clone()),
            reliable: true,
            threads,
            partition,
            ..DistBcConfig::default()
        };
        let (serial, serial_events) = run_traced(&g, faulty(0, PartitionStrategy::Contiguous));
        // The transport must also have recovered the fault-free answer.
        let clean = run_distributed_bc(&g, DistBcConfig::default()).expect("clean run");
        prop_assert_eq!(&clean.betweenness, &serial.betweenness);
        for partition in STRATEGIES {
            for threads in THREADS {
                let (par, par_events) = run_traced(&g, faulty(threads, partition));
                let tag = format!("{}/threads={threads}", partition.label());
                prop_assert_eq!(&serial.betweenness, &par.betweenness, "{}", &tag);
                prop_assert_eq!(&serial.closeness, &par.closeness, "{}", &tag);
                prop_assert_eq!(serial.diameter, par.diameter, "{}", &tag);
                prop_assert_eq!(&serial.metrics, &par.metrics, "{}", &tag);
                prop_assert_eq!(&serial_events, &par_events, "{}", &tag);
            }
        }
    }
}

/// Deterministic spot check at a fixed size large enough for every
/// thread count to get a populated shard under all three strategies.
#[test]
fn strategies_agree_on_fixed_graph() {
    let g = bc_graph::generators::barabasi_albert(48, 2, 7);
    let serial = run_distributed_bc(&g, DistBcConfig::default()).expect("serial");
    for partition in STRATEGIES {
        for threads in [2usize, 4, 8] {
            let par = run_distributed_bc(
                &g,
                DistBcConfig {
                    threads,
                    partition,
                    ..DistBcConfig::default()
                },
            )
            .expect("parallel");
            assert_eq!(
                serial.betweenness,
                par.betweenness,
                "{}/threads={threads}",
                partition.label()
            );
            assert_eq!(serial.metrics, par.metrics);
        }
    }
}
