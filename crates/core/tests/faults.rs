//! Chaos tests: the full betweenness protocol over lossy, crash-prone
//! networks.
//!
//! The reliable transport ([`bc_core::transport`]) must make DistBC's
//! output **bit-identical** to a fault-free run under any drop (≤ 20%),
//! duplication, reordering (delay), or corruption plan — on the serial
//! engine, the pooled parallel engine, and the α-synchronizer alike. And
//! corruption-only plans must never abort the process even *without* the
//! transport: an undecodable payload surfaces as a `DistBcError`, not a
//! panic.

use bc_congest::asynchronous::{run_synchronized_faulty, AsyncConfig};
use bc_congest::{CongestError, FaultPlan};
use bc_core::transport::{Reliable, ReliableConfig};
use bc_core::{run_distributed_bc, AlgoOptions, DistBcConfig, DistBcError, DistBcNode};
use bc_graph::{generators, Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

/// Random connected graph: a random recursive tree plus extra edges.
fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..max_n, any::<u64>(), 0usize..24).prop_map(|(n, seed, extra)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_edge(rng.gen_range(0..v), v).expect("valid");
        }
        for _ in 0..extra {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if u != v {
                b.add_edge(u, v).expect("valid");
            }
        }
        b.build()
    })
}

/// Random loss plan within the transport's guaranteed envelope: drop up to
/// 20%, plus arbitrary duplication and reordering (delays up to 3 rounds).
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), 0u32..=20, 0u32..=30, 0u32..=30).prop_map(
        |(seed, drop_pct, dup_pct, delay_pct)| FaultPlan {
            drop: drop_pct as f64 / 100.0,
            duplicate: dup_pct as f64 / 100.0,
            delay: delay_pct as f64 / 100.0,
            max_delay: 3,
            ..FaultPlan::seeded(seed)
        },
    )
}

fn reliable_cfg(plan: &FaultPlan, threads: usize) -> DistBcConfig {
    DistBcConfig {
        faults: Some(plan.clone()),
        reliable: true,
        threads,
        ..DistBcConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole acceptance property: one fault plan, four engines, one
    /// bit-identical answer — equal to the fault-free baseline.
    #[test]
    fn reliable_transport_is_bit_identical_across_engines(
        g in arb_connected_graph(22),
        plan in arb_fault_plan(),
    ) {
        let baseline = run_distributed_bc(&g, DistBcConfig::default()).expect("fault-free run");
        for threads in [0usize, 2, 7] {
            let out = run_distributed_bc(&g, reliable_cfg(&plan, threads))
                .expect("reliable run completes under faults");
            prop_assert_eq!(
                &out.betweenness, &baseline.betweenness,
                "threads={} diverged from fault-free baseline", threads
            );
            prop_assert_eq!(out.diameter, baseline.diameter);
            prop_assert_eq!(&out.closeness, &baseline.closeness);
        }
    }

    /// Corruption-only chaos: a single flipped bit per hit. Without the
    /// transport the run must *fail gracefully* (error, never a process
    /// abort); with it the checksum turns corruption into loss and the
    /// output is exact.
    #[test]
    fn corruption_never_panics_and_reliable_absorbs_it(
        g in arb_connected_graph(18),
        seed in any::<u64>(),
        corrupt_pct in 5u32..=40,
    ) {
        let plan = FaultPlan { corrupt: corrupt_pct as f64 / 100.0, ..FaultPlan::seeded(seed) };
        // Raw faulty network: completing the call (Ok or Err) is the
        // assertion — a node panic is converted to CongestError::NodePanic
        // by the engine, and anything else failing this test is a bug.
        let raw = run_distributed_bc(
            &g,
            DistBcConfig { faults: Some(plan.clone()), ..DistBcConfig::default() },
        );
        if let Err(e) = raw {
            prop_assert!(
                matches!(e, DistBcError::Congest(_)),
                "unexpected error class: {e}"
            );
        }
        let baseline = run_distributed_bc(&g, DistBcConfig::default()).expect("fault-free run");
        let out = run_distributed_bc(&g, reliable_cfg(&plan, 0))
            .expect("reliable run absorbs corruption");
        prop_assert_eq!(&out.betweenness, &baseline.betweenness);
    }
}

/// The α-synchronizer injects the same seeded faults at its payload layer;
/// wrapping the node in the reliable transport must again reproduce the
/// fault-free answer bit for bit.
#[test]
fn alpha_synchronizer_with_faults_and_transport_matches_baseline() {
    let g = generators::erdos_renyi_connected(18, 0.16, 21);
    let n = g.n();
    let baseline = run_distributed_bc(&g, DistBcConfig::default()).expect("fault-free run");
    let opts = AlgoOptions::for_graph_size(n);
    for seed in [3u64, 8, 13] {
        let plan = FaultPlan {
            drop: 0.12,
            duplicate: 0.1,
            delay: 0.15,
            max_delay: 2,
            ..FaultPlan::seeded(seed)
        };
        // Physical-round envelope: mirror the driver's reliable scaling.
        let serial = run_distributed_bc(&g, reliable_cfg(&plan, 0)).expect("serial reliable");
        let pulses = serial.rounds + 4;
        let rcfg = ReliableConfig {
            rto: plan.max_delay + 2,
        };
        let (nodes, _) = run_synchronized_faulty(
            &g,
            AsyncConfig {
                max_delay: 4,
                seed: seed ^ 0xa5a5,
            },
            pulses,
            plan,
            |v, gg| Reliable::new(DistBcNode::new(n, v, opts.clone()), gg.degree(v), rcfg),
        );
        for (v, node) in nodes.iter().enumerate() {
            assert_eq!(
                node.inner().betweenness(),
                baseline.betweenness[v],
                "seed {seed} node {v}: α-sync reliable diverged"
            );
        }
    }
}

/// A node that crashes and recovers mid-run loses every message delivered
/// while it is down; retransmissions repair the gap and the answer is
/// still exact.
#[test]
fn crash_recover_window_is_masked_by_retransmission() {
    let g = generators::erdos_renyi_connected(16, 0.2, 5);
    let baseline = run_distributed_bc(&g, DistBcConfig::default()).expect("fault-free run");
    for (node, from, to) in [(2u32, 4u64, 10u64), (7, 1, 6), (0, 8, 16)] {
        let plan = FaultPlan::parse(&format!("seed=5,drop=0.05,crash={node}@{from}..{to}"))
            .expect("valid spec");
        let out =
            run_distributed_bc(&g, reliable_cfg(&plan, 0)).expect("crash-recover run completes");
        assert_eq!(
            out.betweenness, baseline.betweenness,
            "crash {node}@{from}..{to} diverged"
        );
        assert!(out.metrics.messages_retransmitted > 0);
    }
}

/// Crash-*stop* is not masked: peers retransmit forever and the engine
/// hits its round limit instead of hanging.
#[test]
fn crash_stop_fails_with_round_limit() {
    let g = generators::cycle(10);
    let plan = FaultPlan::parse("seed=1,crash=3@5..").expect("valid spec");
    let err =
        run_distributed_bc(&g, reliable_cfg(&plan, 0)).expect_err("crash-stop cannot complete");
    assert!(
        matches!(err, DistBcError::Congest(CongestError::RoundLimit { .. })),
        "unexpected error: {err}"
    );
}

/// Lossless reliable runs pay only the pipeline fill: rounds stay within a
/// small constant of the bare run, and nothing is ever retransmitted.
#[test]
fn lossless_reliable_overhead_is_bounded() {
    let g = generators::erdos_renyi_connected(20, 0.15, 2);
    let bare = run_distributed_bc(&g, DistBcConfig::default()).expect("bare");
    let reliable = run_distributed_bc(
        &g,
        DistBcConfig {
            reliable: true,
            ..DistBcConfig::default()
        },
    )
    .expect("reliable");
    assert_eq!(reliable.betweenness, bare.betweenness);
    assert_eq!(reliable.metrics.messages_retransmitted, 0);
    assert_eq!(reliable.metrics.messages_deduped, 0);
    assert!(
        reliable.rounds <= bare.rounds + 8,
        "pipeline overhead too large: {} vs {}",
        reliable.rounds,
        bare.rounds
    );
}
