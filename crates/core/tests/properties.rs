//! Property-based tests of the distributed protocol on random connected
//! graphs: correctness vs Brandes, CONGEST compliance, engine determinism
//! (serial == parallel), stress extension, sampling invariants, and the
//! codec round-trip under random parameters.

use bc_brandes::{betweenness_f64, dependencies_from, stress_centrality};
use bc_core::{
    run_distributed_bc, source_mask, Codec, DistBcConfig, Estimator, ProtocolMsg, Scheduling,
    SourceSelection,
};
use bc_graph::{Graph, GraphBuilder, NodeId};
use bc_numeric::{CeilFloat, FpParams, Rounding};
use proptest::prelude::*;

/// Random connected graph: a random recursive tree plus extra edges.
fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..max_n, any::<u64>(), 0usize..40).prop_map(|(n, seed, extra)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_edge(rng.gen_range(0..v), v).expect("valid");
        }
        for _ in 0..extra {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if u != v {
                b.add_edge(u, v).expect("valid");
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_matches_brandes_and_is_compliant(g in arb_connected_graph(40)) {
        let out = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
        prop_assert!(out.metrics.congest_compliant());
        prop_assert_eq!(out.metrics.max_messages_per_edge_round, 1);
        let exact = betweenness_f64(&g);
        for (v, (a, e)) in out.betweenness.iter().zip(&exact).enumerate() {
            prop_assert!(
                (a - e).abs() <= 1e-2 * (1.0 + e),
                "node {}: {} vs {}", v, a, e
            );
        }
        // Rounds stay linear with the schedule constant.
        prop_assert!(out.rounds <= 16 * g.n() as u64 + 64);
    }

    #[test]
    fn parallel_engine_is_deterministic(
        g in arb_connected_graph(30),
        threads in 2usize..6,
        adaptive in any::<bool>(),
    ) {
        let scheduling = if adaptive { Scheduling::Adaptive } else { Scheduling::DfsPipelined };
        let serial = run_distributed_bc(
            &g,
            DistBcConfig { scheduling, ..DistBcConfig::default() },
        )
        .expect("runs");
        let par = run_distributed_bc(
            &g,
            DistBcConfig { threads, scheduling, ..DistBcConfig::default() },
        )
        .expect("runs");
        prop_assert_eq!(&serial.betweenness, &par.betweenness);
        prop_assert_eq!(serial.metrics, par.metrics);
    }

    #[test]
    fn adaptive_matches_brandes(g in arb_connected_graph(30)) {
        let out = run_distributed_bc(
            &g,
            DistBcConfig { scheduling: Scheduling::Adaptive, ..DistBcConfig::default() },
        )
        .expect("runs");
        prop_assert!(out.metrics.congest_compliant());
        let exact = betweenness_f64(&g);
        for (v, (a, e)) in out.betweenness.iter().zip(&exact).enumerate() {
            prop_assert!((a - e).abs() <= 1e-2 * (1.0 + e), "node {}", v);
        }
        prop_assert_eq!(out.diameter, bc_graph::algo::diameter(&g));
    }

    #[test]
    fn stress_extension_matches_oracle(g in arb_connected_graph(26)) {
        let out = run_distributed_bc(
            &g,
            DistBcConfig { compute_stress: true, ..DistBcConfig::default() },
        )
        .expect("runs");
        let stress = out.stress.expect("requested");
        let oracle = stress_centrality(&g);
        for (v, (a, e)) in stress.iter().zip(&oracle).enumerate() {
            prop_assert!(
                (a - e).abs() <= 2e-2 * (1.0 + e),
                "node {}: {} vs {}", v, a, e
            );
        }
    }

    #[test]
    fn diameter_always_exact(g in arb_connected_graph(30)) {
        let out = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
        prop_assert_eq!(out.diameter, bc_graph::algo::diameter(&g));
    }

    #[test]
    fn sampling_stays_compliant_and_scales(
        g in arb_connected_graph(30),
        k in 1usize..10,
        seed in any::<u64>(),
    ) {
        let out = run_distributed_bc(
            &g,
            DistBcConfig {
                sources: SourceSelection::Sample { k, seed },
                ..DistBcConfig::default()
            },
        )
        .expect("runs");
        prop_assert!(out.metrics.congest_compliant());
        prop_assert_eq!(out.sample_size, k.min(g.n()));
        // With all sources the estimator reduces to the exact algorithm;
        // with a sample, values are nonnegative and finite.
        for &b in &out.betweenness {
            prop_assert!(b.is_finite() && b >= 0.0);
        }
    }

    #[test]
    fn sampled_run_is_bit_identical_to_its_explicit_mask(
        g in arb_connected_graph(26),
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        // Sample{k, seed} is pure notation: the run must be
        // indistinguishable from naming the drawn set explicitly, up to
        // the n/|S| extrapolation only Sample applies. Scaling by a
        // power-of-two-exact half and one shared factor commutes with
        // rounding, so even the floats agree bit for bit.
        let sources = SourceSelection::Sample { k, seed };
        let mask = source_mask(&sources, g.n());
        let sampled = run_distributed_bc(
            &g,
            DistBcConfig { sources, ..DistBcConfig::default() },
        )
        .expect("runs");
        let explicit = run_distributed_bc(
            &g,
            DistBcConfig {
                sources: SourceSelection::Explicit(mask.into()),
                ..DistBcConfig::default()
            },
        )
        .expect("runs");
        let scale = g.n() as f64 / explicit.sample_size as f64;
        for (v, (s, e)) in sampled.betweenness.iter().zip(&explicit.betweenness).enumerate() {
            prop_assert_eq!(s.to_bits(), (e * scale).to_bits(), "node {}: {} vs {}", v, s, e * scale);
        }
        prop_assert_eq!(sampled.rounds, explicit.rounds);
        prop_assert_eq!(sampled.diameter, explicit.diameter);
        prop_assert_eq!(sampled.sample_size, explicit.sample_size);
        prop_assert_eq!(sampled.metrics, explicit.metrics);
    }

    #[test]
    fn sampled_run_matches_centralized_fold(
        g in arb_connected_graph(26),
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        // The distributed sampled estimate is the Brandes–Pich fold over
        // the drawn set: (n/|S|) · Σ_{s ∈ S} δ_s·(v) / 2, up to the
        // CeilFloat rounding of the wire arithmetic.
        let sources = SourceSelection::Sample { k, seed };
        let mask = source_mask(&sources, g.n());
        let out = run_distributed_bc(
            &g,
            DistBcConfig { sources, ..DistBcConfig::default() },
        )
        .expect("runs");
        let drawn: Vec<usize> = mask.iter().enumerate().filter(|(_, &b)| b).map(|(v, _)| v).collect();
        prop_assert_eq!(drawn.len(), out.sample_size);
        let scale = g.n() as f64 / drawn.len() as f64;
        let mut expect = vec![0.0f64; g.n()];
        for &s in &drawn {
            for (v, d) in dependencies_from(&g, s as u32).into_iter().enumerate() {
                if v != s {
                    expect[v] += d;
                }
            }
        }
        for (v, (a, e)) in out.betweenness.iter().zip(&expect).enumerate() {
            let e = e * scale / 2.0;
            prop_assert!(
                (a - e).abs() <= 1e-2 * (1.0 + e),
                "node {}: {} vs {}", v, a, e
            );
        }
    }

    #[test]
    fn jiyan_with_full_sample_is_exact(g in arb_connected_graph(24), seed in any::<u64>()) {
        // At k = n the drawn set is every node, the in-sample and total
        // dependencies coincide, and the refined estimator collapses to
        // δ/2 — bit-identical to the exact run.
        let exact = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
        let refined = run_distributed_bc(
            &g,
            DistBcConfig {
                sources: SourceSelection::Sample { k: g.n(), seed },
                estimator: Estimator::JiYan,
                ..DistBcConfig::default()
            },
        )
        .expect("runs");
        prop_assert_eq!(refined.sample_size, g.n());
        prop_assert_eq!(&exact.betweenness, &refined.betweenness);
    }

    #[test]
    fn sequential_mode_matches_pipelined(g in arb_connected_graph(18)) {
        let a = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
        let b = run_distributed_bc(
            &g,
            DistBcConfig { scheduling: Scheduling::Sequential, ..DistBcConfig::default() },
        )
        .expect("runs");
        for (x, y) in a.betweenness.iter().zip(&b.betweenness) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn codec_roundtrips_random_messages(
        n in 2usize..100_000,
        l in 2u32..30,
        source in any::<u32>(),
        dist in any::<u32>(),
        ts in any::<u64>(),
        sigma_raw in 1u64..u64::MAX,
    ) {
        let fp = FpParams::new(l, Rounding::Ceil);
        let c = Codec::new(n, fp);
        let source = source % n as u32;
        let dist = dist % n as u32;
        let ts = ts % (1u64 << (c.ts_w - 1));
        let sigma = CeilFloat::from_u64(sigma_raw, fp);
        let msgs = [
            ProtocolMsg::TreeAnnounce { dist, chooses_you: sigma_raw % 2 == 0 },
            ProtocolMsg::Token,
            ProtocolMsg::Wave { source, sender_dist: dist, sigma },
            ProtocolMsg::Reduce { min_ts: ts / 2, max_ts: ts, max_d: dist },
            ProtocolMsg::AggStart { base: ts, min_ts: ts / 2, max_ts: ts, d: dist },
            ProtocolMsg::StartReduce,
            ProtocolMsg::SubtreeDone { max_depth: dist },
            ProtocolMsg::Agg { source, value: sigma.recip() },
            ProtocolMsg::AggWithStress { source, psi: sigma.recip(), rho: sigma },
        ];
        for m in msgs {
            let enc = c.encode(&m);
            prop_assert!(enc.bit_len() <= c.max_message_bits());
            prop_assert_eq!(c.decode(&enc), Ok(m));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_engines_are_bit_identical(g in arb_connected_graph(22), adaptive in any::<bool>()) {
        // Serial, pooled-parallel at several widths, and the α-synchronizer
        // must agree bit-for-bit — the pool and the idle-skipping active
        // set are required to be observationally free.
        use bc_congest::asynchronous::{run_synchronized, AsyncConfig};
        let scheduling = if adaptive { Scheduling::Adaptive } else { Scheduling::DfsPipelined };
        let serial = run_distributed_bc(
            &g,
            DistBcConfig { scheduling, ..DistBcConfig::default() },
        )
        .expect("serial runs");
        for threads in [1usize, 2, 7] {
            let par = run_distributed_bc(
                &g,
                DistBcConfig { threads, scheduling, ..DistBcConfig::default() },
            )
            .expect("parallel runs");
            prop_assert_eq!(&serial.betweenness, &par.betweenness, "threads={}", threads);
            prop_assert_eq!(&serial.closeness, &par.closeness, "threads={}", threads);
            prop_assert_eq!(&serial.metrics, &par.metrics, "threads={}", threads);
            prop_assert_eq!(serial.rounds, par.rounds, "threads={}", threads);
        }
        let n = g.n();
        let opts = bc_core::AlgoOptions { scheduling, ..bc_core::AlgoOptions::for_graph_size(n) };
        let (nodes, _) = run_synchronized(
            &g,
            AsyncConfig::default(),
            serial.rounds + 1,
            |v, _| bc_core::DistBcNode::new(n, v, opts.clone()),
        );
        for (v, node) in nodes.iter().enumerate() {
            prop_assert_eq!(node.betweenness(), serial.betweenness[v], "α-sync node {}", v);
        }
    }

    #[test]
    fn decode_never_panics_on_random_bits(
        n in 2usize..100_000,
        l in 2u32..30,
        words in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..8),
    ) {
        // Corrupt or truncated payloads must surface as `Err`, never as a
        // panic out of the bit reader.
        use bc_numeric::bits::BitWriter;
        let fp = FpParams::new(l, Rounding::Ceil);
        let c = Codec::new(n, fp);
        let mut w = BitWriter::new();
        for (value, width) in words {
            w.push(value & ((1u128 << width) as u64).wrapping_sub(1), width);
        }
        let raw = bc_congest::Message::new(w.finish());
        let _ = c.decode(&raw); // Ok or Err are both fine; panics are not.
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn apsp_pipeline_matches_oracle(g in arb_connected_graph(40)) {
        // The DFS-free pipelined APSP (related work [7]/[15]): distances,
        // eccentricities and diameter must match the centralized oracle on
        // every random graph, under strict CONGEST enforcement, in
        // O(N + D) rounds.
        let out = bc_core::apsp_pipeline::run_apsp_pipeline(&g).expect("runs");
        prop_assert!(out.metrics.congest_compliant());
        prop_assert_eq!(out.diameter, bc_graph::algo::diameter(&g));
        let ecc = bc_graph::algo::eccentricities(&g);
        for (mine, truth) in out.eccentricity.iter().zip(&ecc) {
            prop_assert_eq!(mine, truth);
        }
        prop_assert!(out.rounds <= 4 * g.n() as u64 + out.diameter as u64 + 16);
    }
}
