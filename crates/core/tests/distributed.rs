//! End-to-end tests of the distributed algorithm against the centralized
//! Brandes oracles: correctness (Figure 1 and generator suite), CONGEST
//! compliance (Lemmas 3–5 / Theorem 2), linear round complexity
//! (Theorem 3), and the sequential-baseline contrast.

use bc_brandes::{betweenness_f64, closeness_centrality, graph_centrality};
use bc_core::{run_distributed_bc, DistBcConfig, DistBcError, Scheduling};
use bc_graph::{algo, generators, Graph};
use bc_numeric::{FpParams, Rounding};

/// Generous relative tolerance for the default L = Θ(log N) mantissa.
fn assert_bc_close(dist: &[f64], exact: &[f64], tol: f64) {
    for (v, (a, e)) in dist.iter().zip(exact).enumerate() {
        assert!(
            (a - e).abs() <= tol * (1.0 + e.abs()),
            "node {v}: distributed {a} vs exact {e}"
        );
    }
}

fn run_default(g: &Graph) -> bc_core::DistBcResult {
    run_distributed_bc(g, DistBcConfig::default()).expect("run succeeds")
}

#[test]
fn figure1_worked_example() {
    let g = generators::paper_figure1();
    let out = run_default(&g);
    // Paper Section VII: C_B(v2) = 7/2; diameter 3.
    assert!((out.betweenness[1] - 3.5).abs() < 1e-9);
    assert_eq!(out.diameter, 3);
    assert!(out.metrics.congest_compliant());
    // Leaf v1 has zero betweenness; symmetric v3/v5 agree.
    assert!(out.betweenness[0].abs() < 1e-9);
    assert!((out.betweenness[2] - out.betweenness[4]).abs() < 1e-9);
}

#[test]
fn matches_brandes_on_deterministic_families() {
    let graphs: Vec<(&str, Graph)> = vec![
        ("path", generators::path(17)),
        ("cycle", generators::cycle(16)),
        ("complete", generators::complete(9)),
        ("star", generators::star(12)),
        ("grid", generators::grid(4, 5)),
        ("torus", generators::torus(3, 5)),
        ("tree", generators::balanced_tree(2, 4)),
        ("hypercube", generators::hypercube(4)),
        ("barbell", generators::barbell(4, 3)),
        ("lollipop", generators::lollipop(5, 4)),
        ("caterpillar", generators::caterpillar(5, 2)),
    ];
    for (name, g) in graphs {
        let out = run_default(&g);
        let exact = betweenness_f64(&g);
        assert_bc_close(&out.betweenness, &exact, 1e-2);
        assert!(out.metrics.congest_compliant(), "{name} not compliant");
        assert_eq!(out.diameter, algo::diameter(&g), "{name} diameter mismatch");
    }
}

#[test]
fn matches_brandes_on_random_graphs() {
    for seed in 0..6 {
        let g = generators::erdos_renyi_connected(48, 0.07, seed);
        let out = run_default(&g);
        assert_bc_close(&out.betweenness, &betweenness_f64(&g), 1e-2);
    }
    for seed in 0..3 {
        let g = generators::barabasi_albert(60, 2, seed);
        let out = run_default(&g);
        assert_bc_close(&out.betweenness, &betweenness_f64(&g), 1e-2);
    }
    for seed in 0..3 {
        let g = generators::random_tree(50, seed);
        let out = run_default(&g);
        // Trees: σ ≡ 1, arithmetic exact up to ψ sums.
        assert_bc_close(&out.betweenness, &betweenness_f64(&g), 1e-6);
    }
}

#[test]
fn high_precision_l_matches_tightly() {
    let g = generators::erdos_renyi_connected(40, 0.1, 11);
    let cfg = DistBcConfig {
        fp: Some(FpParams::new(28, Rounding::Ceil)),
        ..DistBcConfig::default()
    };
    let out = run_distributed_bc(&g, cfg).unwrap();
    assert_bc_close(&out.betweenness, &betweenness_f64(&g), 1e-6);
}

#[test]
fn congest_constraints_hold() {
    let g = generators::erdos_renyi_connected(56, 0.06, 3);
    let out = run_default(&g);
    let m = &out.metrics;
    assert_eq!(m.collisions, 0, "Lemma 4 violated");
    assert_eq!(m.oversized_messages, 0, "Lemma 3/5 violated");
    assert_eq!(m.max_messages_per_edge_round, 1);
    // Message sizes are Θ(log N): below the engine's 8·⌈log₂N⌉ + 64.
    assert!(m.max_message_bits <= 8 * 6 + 64);
}

#[test]
fn rounds_are_linear_theorem3() {
    // Rounds/N stays bounded (≈ the schedule constant) across sizes and
    // families — the empirical Theorem 3.
    for n in [20usize, 60, 120] {
        let g = generators::path(n);
        let out = run_default(&g);
        assert!(
            out.rounds <= 16 * n as u64 + 64,
            "path n={n}: {} rounds",
            out.rounds
        );
    }
    let g = generators::erdos_renyi_connected(100, 0.05, 5);
    let out = run_default(&g);
    assert!(out.rounds <= 16 * 100 + 64);
    // The DFS actually finishes within its 4N bound.
    assert!(out.counting_rounds_used <= 4 * 100 + 8);
}

#[test]
fn sequential_baseline_correct_but_quadratic() {
    let g = generators::erdos_renyi_connected(30, 0.1, 7);
    let exact = betweenness_f64(&g);
    let seq = run_distributed_bc(
        &g,
        DistBcConfig {
            scheduling: Scheduling::Sequential,
            ..DistBcConfig::default()
        },
    )
    .unwrap();
    assert_bc_close(&seq.betweenness, &exact, 1e-2);
    assert!(seq.metrics.congest_compliant());
    let pip = run_default(&g);
    // The pipelined schedule is asymptotically (and here concretely) far
    // cheaper.
    assert!(
        seq.rounds > 5 * pip.rounds,
        "sequential {} vs pipelined {}",
        seq.rounds,
        pip.rounds
    );
}

#[test]
fn closeness_and_graph_centrality_byproducts() {
    let g = generators::grid(5, 4);
    let out = run_default(&g);
    let cc = closeness_centrality(&g);
    let cg = graph_centrality(&g);
    for v in 0..g.n() {
        assert!((out.closeness[v] - cc[v]).abs() < 1e-12, "closeness {v}");
        assert!(
            (out.graph_centrality[v] - cg[v]).abs() < 1e-12,
            "graph centrality {v}"
        );
    }
}

#[test]
fn parallel_engine_matches_serial() {
    let g = generators::erdos_renyi_connected(40, 0.08, 13);
    let serial = run_default(&g);
    let par = run_distributed_bc(
        &g,
        DistBcConfig {
            threads: 4,
            ..DistBcConfig::default()
        },
    )
    .unwrap();
    assert_eq!(serial.betweenness, par.betweenness);
    assert_eq!(serial.rounds, par.rounds);
    assert_eq!(serial.metrics, par.metrics);
}

#[test]
fn error_cases() {
    let empty = Graph::from_edges(0, []).unwrap();
    assert_eq!(
        run_distributed_bc(&empty, DistBcConfig::default()).unwrap_err(),
        DistBcError::EmptyGraph
    );
    let disconnected = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
    assert_eq!(
        run_distributed_bc(&disconnected, DistBcConfig::default()).unwrap_err(),
        DistBcError::Disconnected
    );
    assert!(DistBcError::Disconnected
        .to_string()
        .contains("disconnected"));
}

#[test]
fn trivial_graphs() {
    let single = Graph::from_edges(1, []).unwrap();
    let out = run_distributed_bc(&single, DistBcConfig::default()).unwrap();
    assert_eq!(out.betweenness, vec![0.0]);
    assert_eq!(out.diameter, 0);

    let pair = generators::path(2);
    let out = run_distributed_bc(&pair, DistBcConfig::default()).unwrap();
    assert_eq!(out.betweenness, vec![0.0, 0.0]);
    assert_eq!(out.diameter, 1);

    let triangle = generators::cycle(3);
    let out = run_distributed_bc(&triangle, DistBcConfig::default()).unwrap();
    assert!(out.betweenness.iter().all(|&b| b.abs() < 1e-9));
}

#[test]
fn convenience_wrappers() {
    let g = generators::star(8);
    let cc = bc_core::run_distributed_closeness(&g, DistBcConfig::default()).unwrap();
    assert_eq!(cc.len(), 8);
    assert!(cc[0] > cc[1]);
    let d = bc_core::run_distributed_diameter(&g, DistBcConfig::default()).unwrap();
    assert_eq!(d, 2);
}

#[test]
fn wave_start_times_satisfy_lemma4_premise() {
    // Distinct T_s per source, and T_t ≥ T_s + d(s,t) + 1 for the DFS
    // visit order — the premise Lemma 4's collision-freeness rests on.
    use bc_congest::{Config, Network};
    let g = generators::erdos_renyi_connected(24, 0.12, 21);
    let n = g.n();
    let opts = bc_core::AlgoOptions::for_graph_size(n);
    let mut net = Network::new(&g, Config::default(), |v, _| {
        bc_core::DistBcNode::new(n, v, opts.clone())
    });
    net.run(100_000).unwrap();
    let dmat = algo::apsp(&g);
    // Read every source's T_s as observed by node 0 (all nodes agree).
    let ts: Vec<u64> = (0..n as u32)
        .map(|s| net.node(0).ts_of(s).expect("connected"))
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| ts[v]);
    for w in order.windows(2) {
        let (a, b) = (w[0], w[1]);
        // The paper's premise: T_t ≥ T_s + d(s,t) + 1 (strictly later).
        assert!(
            ts[b] > ts[a] + dmat[a][b] as u64,
            "T_{b}={} vs T_{a}={} d={}",
            ts[b],
            ts[a],
            dmat[a][b]
        );
    }
}

#[test]
fn ts_observed_consistently_across_nodes() {
    use bc_congest::{Config, Network};
    let g = generators::grid(4, 4);
    let n = g.n();
    let opts = bc_core::AlgoOptions::for_graph_size(n);
    let mut net = Network::new(&g, Config::default(), |v, _| {
        bc_core::DistBcNode::new(n, v, opts.clone())
    });
    net.run(100_000).unwrap();
    for s in 0..n as u32 {
        let t0 = net.node(0).ts_of(s);
        for v in 1..n as u32 {
            assert_eq!(net.node(v).ts_of(s), t0, "source {s} seen at {v}");
        }
    }
}

#[test]
fn stress_extension_matches_centralized() {
    // The paper's footnote 3: stress centrality "can also be computed in a
    // similar way" — same schedule, aggregation messages carry (ψ, ρ).
    for (name, g) in [
        ("path", generators::path(13)),
        ("grid", generators::grid(4, 4)),
        ("er", generators::erdos_renyi_connected(36, 0.1, 19)),
    ] {
        let out = run_distributed_bc(
            &g,
            DistBcConfig {
                compute_stress: true,
                ..DistBcConfig::default()
            },
        )
        .unwrap();
        let stress = out.stress.expect("stress requested");
        let oracle = bc_brandes::stress_centrality(&g);
        for (v, (a, e)) in stress.iter().zip(&oracle).enumerate() {
            assert!(
                (a - e).abs() <= 1e-2 * (1.0 + e),
                "{name} node {v}: {a} vs {e}"
            );
        }
        assert!(out.metrics.congest_compliant(), "{name}");
        // And betweenness is still right in the same pass.
        assert_bc_close(&out.betweenness, &betweenness_f64(&g), 1e-2);
    }
}

#[test]
fn stress_disabled_by_default() {
    let g = generators::path(5);
    let out = run_default(&g);
    assert!(out.stress.is_none());
    assert_eq!(out.sample_size, 5);
}

#[test]
fn sampled_sources_estimate_reasonably() {
    use bc_core::SourceSelection;
    let g = generators::barabasi_albert(80, 3, 4);
    let exact = betweenness_f64(&g);
    let full = run_default(&g);
    // Average the estimator over several seeds: it should land near the
    // truth for the high-centrality nodes, with far less traffic per run.
    let k = 20;
    let seeds = 8;
    let mut mean = vec![0.0f64; g.n()];
    let mut traffic = 0u64;
    for seed in 0..seeds {
        let out = run_distributed_bc(
            &g,
            DistBcConfig {
                sources: SourceSelection::Sample { k, seed },
                ..DistBcConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.sample_size, k);
        assert!(out.metrics.congest_compliant());
        traffic += out.metrics.total_bits;
        for (m, e) in mean.iter_mut().zip(&out.betweenness) {
            *m += e / seeds as f64;
        }
    }
    // Traffic per sampled run is a fraction of the full run's.
    assert!(
        traffic / seeds < full.metrics.total_bits,
        "sampling must reduce traffic"
    );
    // Estimates track the truth on the top nodes (sampling noise bounded).
    let mut order: Vec<usize> = (0..g.n()).collect();
    order.sort_by(|&a, &b| exact[b].total_cmp(&exact[a]));
    for &v in order.iter().take(5) {
        let rel = (mean[v] - exact[v]).abs() / exact[v];
        assert!(
            rel < 0.5,
            "node {v}: mean {} vs exact {}",
            mean[v],
            exact[v]
        );
    }
}

#[test]
fn sampled_sequential_mode_also_works() {
    use bc_core::SourceSelection;
    let g = generators::grid(4, 4);
    let out = run_distributed_bc(
        &g,
        DistBcConfig {
            scheduling: Scheduling::Sequential,
            sources: SourceSelection::Sample { k: 6, seed: 3 },
            compute_stress: true,
            ..DistBcConfig::default()
        },
    )
    .unwrap();
    assert_eq!(out.sample_size, 6);
    assert!(out.metrics.congest_compliant());
    assert!(out.stress.is_some());
}

#[test]
fn weighted_extension_matches_dijkstra_brandes() {
    use bc_graph::weighted::random_weighted;
    for seed in 0..3 {
        let wg = random_weighted(14, 0.2, 4, seed);
        let out = bc_core::run_distributed_bc_weighted(
            &wg,
            DistBcConfig {
                fp: Some(FpParams::new(24, Rounding::Ceil)),
                ..DistBcConfig::default()
            },
        )
        .unwrap();
        let oracle = bc_brandes::weighted::betweenness_weighted_f64(&wg);
        assert_eq!(out.betweenness.len(), 14);
        for (v, (a, e)) in out.betweenness.iter().zip(&oracle).enumerate() {
            assert!(
                (a - e).abs() <= 1e-4 * (1.0 + e),
                "seed {seed} node {v}: {a} vs {e}"
            );
        }
        assert!(out.metrics.congest_compliant());
        assert!(out.simulated_n >= 14);
    }
}

#[test]
fn weighted_unit_weights_match_unweighted_run() {
    use bc_graph::weighted::WeightedGraph;
    let g = generators::cycle(9);
    let wg = WeightedGraph::from_edges(9, g.edges().map(|(u, v)| (u, v, 1))).unwrap();
    let w = bc_core::run_distributed_bc_weighted(&wg, DistBcConfig::default()).unwrap();
    let u = run_default(&g);
    for (a, b) in w.betweenness.iter().zip(&u.betweenness) {
        assert!((a - b).abs() < 1e-9);
    }
    assert_eq!(w.diameter, u.diameter);
    assert_eq!(w.simulated_n, 9);
}

#[test]
fn weighted_closeness_is_weighted() {
    use bc_graph::weighted::WeightedGraph;
    // 0 -1- 1 -10- 2: node 0's weighted distance sum is 1 + 11 = 12.
    let wg = WeightedGraph::from_edges(3, [(0, 1, 1), (1, 2, 10)]).unwrap();
    let out = bc_core::run_distributed_bc_weighted(&wg, DistBcConfig::default()).unwrap();
    assert!((out.closeness[0] - 1.0 / 12.0).abs() < 1e-12);
    assert!((out.closeness[1] - 1.0 / 11.0).abs() < 1e-12);
    assert_eq!(out.diameter, 11);
}

#[test]
fn full_protocol_runs_on_asynchronous_network_via_synchronizer() {
    // The paper assumes synchronized pulses (Section III-A); the classic
    // α-synchronizer (Peleg [14]) lifts that assumption. The complete
    // betweenness protocol, unmodified, must produce bit-identical results
    // on an asynchronous network with random FIFO delays.
    use bc_congest::asynchronous::{run_synchronized, AsyncConfig};
    let g = generators::erdos_renyi_connected(20, 0.15, 77);
    let n = g.n();
    let sync = run_default(&g);
    let pulses = sync.rounds + 1;
    let opts = bc_core::AlgoOptions::for_graph_size(n);
    for (max_delay, seed) in [(1u64, 0u64), (4, 9), (12, 5)] {
        let (nodes, report) =
            run_synchronized(&g, AsyncConfig { max_delay, seed }, pulses, |v, _| {
                bc_core::DistBcNode::new(n, v, opts.clone())
            });
        for (v, node) in nodes.iter().enumerate() {
            assert_eq!(
                node.betweenness(),
                sync.betweenness[v],
                "delay={max_delay} node {v}: async/sync divergence"
            );
        }
        assert!(report.virtual_time >= pulses);
        assert!(report.control_messages > report.payload_messages);
    }
}

#[test]
fn adaptive_mode_matches_and_is_compliant() {
    for (name, g) in [
        ("star", generators::star(24)),
        ("er", generators::erdos_renyi_connected(48, 0.08, 15)),
        ("grid", generators::grid(5, 5)),
        ("path", generators::path(24)),
        ("cycle", generators::cycle(16)),
        ("figure1", generators::paper_figure1()),
    ] {
        let out = run_distributed_bc(
            &g,
            DistBcConfig {
                scheduling: Scheduling::Adaptive,
                ..DistBcConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(out.metrics.congest_compliant(), "{name}");
        let exact = betweenness_f64(&g);
        assert_bc_close(&out.betweenness, &exact, 1e-2);
        assert_eq!(out.diameter, algo::diameter(&g), "{name}");
    }
}

#[test]
fn adaptive_mode_is_diameter_sensitive() {
    // On a low-diameter graph the adaptive barriers finish far earlier
    // than the provisioned Θ(N) windows.
    let g = generators::barabasi_albert(128, 3, 2); // D ≈ 4
    let det = run_default(&g);
    let ada = run_distributed_bc(
        &g,
        DistBcConfig {
            scheduling: Scheduling::Adaptive,
            ..DistBcConfig::default()
        },
    )
    .unwrap();
    assert!(
        ada.rounds * 3 < det.rounds * 2,
        "adaptive {} vs provisioned {}",
        ada.rounds,
        det.rounds
    );
    for (a, b) in ada.betweenness.iter().zip(&det.betweenness) {
        assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()));
    }
}

#[test]
fn adaptive_trivial_graphs() {
    for g in [
        bc_graph_single(),
        generators::path(2),
        generators::path(3),
        generators::cycle(3),
    ] {
        let out = run_distributed_bc(
            &g,
            DistBcConfig {
                scheduling: Scheduling::Adaptive,
                ..DistBcConfig::default()
            },
        )
        .unwrap();
        assert!(out.metrics.congest_compliant());
    }
}

fn bc_graph_single() -> Graph {
    Graph::from_edges(1, []).unwrap()
}

#[test]
fn adaptive_with_extensions() {
    use bc_core::SourceSelection;
    let g = generators::erdos_renyi_connected(40, 0.1, 8);
    let out = run_distributed_bc(
        &g,
        DistBcConfig {
            scheduling: Scheduling::Adaptive,
            compute_stress: true,
            sources: SourceSelection::Sample { k: 10, seed: 3 },
            ..DistBcConfig::default()
        },
    )
    .unwrap();
    assert!(out.metrics.congest_compliant());
    assert_eq!(out.sample_size, 10);
    assert!(out.stress.is_some());
}

#[test]
fn adaptive_mode_survives_asynchrony_too() {
    // Adaptive barriers are event-driven, so they must be exactly as
    // synchronizer-transparent as the provisioned schedule.
    use bc_congest::asynchronous::{run_synchronized, AsyncConfig};
    let g = generators::erdos_renyi_connected(18, 0.15, 33);
    let n = g.n();
    let sync = run_distributed_bc(
        &g,
        DistBcConfig {
            scheduling: Scheduling::Adaptive,
            ..DistBcConfig::default()
        },
    )
    .unwrap();
    let opts = bc_core::AlgoOptions {
        scheduling: Scheduling::Adaptive,
        ..bc_core::AlgoOptions::for_graph_size(n)
    };
    let (nodes, _) = run_synchronized(
        &g,
        AsyncConfig {
            max_delay: 6,
            seed: 2,
        },
        sync.rounds + 1,
        |v, _| bc_core::DistBcNode::new(n, v, opts.clone()),
    );
    for (v, node) in nodes.iter().enumerate() {
        assert_eq!(node.betweenness(), sync.betweenness[v], "node {v}");
    }
}
