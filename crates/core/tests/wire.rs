//! Socket-engine oracle tests: the process-per-shard wire runtime must be
//! **bit-identical** to the in-process engines — results, metrics, and
//! telemetry totals — on clean links and through a lossy proxy injecting
//! drops, duplication, reordering, and corruption within the reliable
//! transport's guaranteed envelope (≤ 20% drop).
//!
//! Shards here run as threads of this test process, but every byte
//! between them crosses a real Unix-domain socket through the same
//! `serve_shard` entry point the `distbc serve-shard` CLI uses; the
//! separate-process path is exercised by the repo's CLI tests and the CI
//! multi-process job.

use bc_congest::telemetry::COUNTERS;
use bc_congest::wire::LossyProxy;
use bc_congest::{FaultPlan, Partition, Telemetry};
use bc_core::wire::{run_leader, serve_shard, WireRunError};
use bc_core::{run_distributed_bc, DistBcConfig, DistBcResult, SourceSelection};
use bc_graph::{generators, Graph, GraphBuilder, NodeId};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

static SOCKET_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Fresh `unix:` socket addresses, unique across tests and processes.
fn socket_addrs(k: usize) -> Vec<String> {
    let pid = std::process::id();
    (0..k)
        .map(|_| {
            let seq = SOCKET_SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!("bcw-{pid}-{seq}.sock"));
            format!("unix:{}", path.display())
        })
        .collect()
}

/// Runs `g` across `k` shard threads over real sockets, optionally
/// routing every connection through a per-shard lossy proxy.
fn run_wire(
    g: &Graph,
    config: &DistBcConfig,
    k: usize,
    plan: Option<&FaultPlan>,
) -> Result<DistBcResult, WireRunError> {
    let shard_addrs = socket_addrs(k);
    let shards: Vec<_> = shard_addrs
        .iter()
        .map(|a| {
            let a = a.clone();
            thread::spawn(move || serve_shard(&a))
        })
        .collect();
    let mut proxies = Vec::new();
    let leader_addrs = match plan {
        None => shard_addrs.clone(),
        Some(plan) => {
            let graph = Arc::new(g.clone());
            let map = Arc::new(Partition::Contiguous.shard_map(g, k));
            let fronts = socket_addrs(k);
            let mut addrs = Vec::with_capacity(k);
            for i in 0..k {
                let p = LossyProxy::start(
                    &fronts[i],
                    shard_addrs[i].clone(),
                    i,
                    graph.clone(),
                    map.clone(),
                    plan.clone(),
                )
                .expect("proxy starts");
                addrs.push(p.addr().to_string());
                proxies.push(p);
            }
            addrs
        }
    };
    let result = run_leader(g, config, &leader_addrs, false).map(|(r, _)| r);
    if result.is_ok() {
        for h in shards {
            h.join()
                .expect("shard thread not poisoned")
                .expect("shard exits cleanly when the leader succeeded");
        }
    }
    // On a leader error the shard threads may still be parked in accept();
    // leak them (the test harness tears the process down) so the failure
    // surfaces as an assertion instead of a hang.
    result
}

/// Field-by-field oracle comparison (results *and* merged metrics).
fn assert_bit_identical(wire: &DistBcResult, oracle: &DistBcResult, what: &str) {
    assert_eq!(wire.betweenness, oracle.betweenness, "{what}: betweenness");
    assert_eq!(wire.closeness, oracle.closeness, "{what}: closeness");
    assert_eq!(
        wire.graph_centrality, oracle.graph_centrality,
        "{what}: graph centrality"
    );
    assert_eq!(wire.diameter, oracle.diameter, "{what}: diameter");
    assert_eq!(wire.rounds, oracle.rounds, "{what}: rounds");
    assert_eq!(wire.stress, oracle.stress, "{what}: stress");
    assert_eq!(wire.sample_size, oracle.sample_size, "{what}: sample size");
    assert_eq!(wire.ts_spread, oracle.ts_spread, "{what}: ts spread");
    assert_eq!(
        wire.counting_rounds_used, oracle.counting_rounds_used,
        "{what}: counting rounds"
    );
    assert_eq!(wire.metrics, oracle.metrics, "{what}: metrics");
}

fn reliable_oracle(g: &Graph, config: &DistBcConfig) -> DistBcResult {
    let cfg = DistBcConfig {
        reliable: true,
        threads: 0,
        telemetry: None,
        ..config.clone()
    };
    run_distributed_bc(g, cfg).expect("serial reliable oracle")
}

/// Random connected graph: a random recursive tree plus extra edges
/// (the same family the chaos tests use).
fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..max_n, any::<u64>(), 0usize..24).prop_map(|(n, seed, extra)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_edge(rng.gen_range(0..v), v).expect("valid");
        }
        for _ in 0..extra {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if u != v {
                b.add_edge(u, v).expect("valid");
            }
        }
        b.build()
    })
}

/// Loss plans within the transport's envelope: drop ≤ 20%, plus
/// duplication, reordering (delays up to 3 rounds), and corruption.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), 0u32..=20, 0u32..=30, 0u32..=30, 0u32..=15).prop_map(
        |(seed, drop_pct, dup_pct, delay_pct, corrupt_pct)| FaultPlan {
            drop: drop_pct as f64 / 100.0,
            duplicate: dup_pct as f64 / 100.0,
            delay: delay_pct as f64 / 100.0,
            corrupt: corrupt_pct as f64 / 100.0,
            max_delay: 3,
            ..FaultPlan::seeded(seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole acceptance property: the socket engine on 2 and 4 shards
    /// reproduces the serial oracle bit for bit — results and metrics.
    #[test]
    fn socket_engine_matches_serial_oracle(g in arb_connected_graph(20)) {
        let oracle = reliable_oracle(&g, &DistBcConfig::default());
        for k in [2usize, 4] {
            // Contiguous chunking can only realize k shards when
            // ceil-division leaves none of them empty; the leader rejects
            // a mismatched process count, so skip those combinations.
            if k > g.n() || Partition::Contiguous.shard_map(&g, k).len() != k {
                continue;
            }
            let out = run_wire(&g, &DistBcConfig::default(), k, None)
                .expect("wire run completes");
            assert_bit_identical(&out, &oracle, &format!("k={k}"));
        }
    }

    /// The same property through a lossy proxy: the reliable transport
    /// must absorb socket-level drops/duplication/reordering/corruption
    /// and still produce the oracle's exact results.
    #[test]
    fn socket_engine_survives_lossy_proxy(
        g in arb_connected_graph(16),
        plan in arb_fault_plan(),
    ) {
        let oracle = reliable_oracle(&g, &DistBcConfig::default());
        let out = run_wire(&g, &DistBcConfig::default(), 2, Some(&plan))
            .expect("wire run completes under the lossy proxy");
        prop_assert_eq!(&out.betweenness, &oracle.betweenness);
        prop_assert_eq!(&out.closeness, &oracle.closeness);
        prop_assert_eq!(out.diameter, oracle.diameter);
    }
}

/// Non-default configurations cross the SETUP wire intact: sampled
/// sources (the `--sample-seed` plumbing), sequential scheduling, and
/// stress centrality all reproduce their in-process counterparts.
#[test]
fn setup_options_round_trip_through_the_wire() {
    let g = generators::erdos_renyi_connected(18, 0.18, 7);
    let configs = [
        DistBcConfig {
            sources: SourceSelection::Sample { k: 6, seed: 42 },
            ..DistBcConfig::default()
        },
        DistBcConfig {
            compute_stress: true,
            ..DistBcConfig::default()
        },
        DistBcConfig {
            scheduling: bc_core::Scheduling::Sequential,
            ..DistBcConfig::default()
        },
    ];
    for (i, config) in configs.iter().enumerate() {
        let oracle = reliable_oracle(&g, config);
        let out = run_wire(&g, config, 3, None).expect("wire run completes");
        assert_bit_identical(&out, &oracle, &format!("config #{i}"));
    }
}

/// The leader's telemetry replay reproduces the in-process registry:
/// identical counter totals and round count for the same 2-shard
/// partition, so straggler detection and postmortems keep working
/// across processes.
#[test]
fn telemetry_replay_matches_in_process_totals() {
    let g = generators::erdos_renyi_connected(16, 0.2, 11);
    let t_oracle = Arc::new(Telemetry::new(2, 64));
    let oracle_cfg = DistBcConfig {
        reliable: true,
        threads: 2,
        telemetry: Some(t_oracle.clone()),
        ..DistBcConfig::default()
    };
    let oracle = run_distributed_bc(&g, oracle_cfg).expect("in-process run");

    let t_wire = Arc::new(Telemetry::new(2, 64));
    let wire_cfg = DistBcConfig {
        telemetry: Some(t_wire.clone()),
        ..DistBcConfig::default()
    };
    let out = run_wire(&g, &wire_cfg, 2, None).expect("wire run completes");
    assert_eq!(out.betweenness, oracle.betweenness);
    assert_eq!(out.rounds, oracle.rounds);

    let snap_oracle = t_oracle.snapshot();
    let snap_wire = t_wire.snapshot();
    for (c, name) in COUNTERS {
        assert_eq!(
            snap_wire.get(c),
            snap_oracle.get(c),
            "telemetry counter {name} diverged across the wire"
        );
    }
}

/// A single shard process degenerates to the serial engine: no peers,
/// same answer.
#[test]
fn single_shard_wire_run_works() {
    let g = generators::paper_figure1();
    let oracle = reliable_oracle(&g, &DistBcConfig::default());
    let out = run_wire(&g, &DistBcConfig::default(), 1, None).expect("wire run completes");
    assert_bit_identical(&out, &oracle, "k=1");
    assert!((out.betweenness[1] - 3.5).abs() < 1e-6);
}

/// Leader-side validation: more shards than nodes is a wire error, and
/// in-process fault plans are rejected before any socket is touched.
#[test]
fn leader_rejects_invalid_configurations() {
    let g = generators::cycle(4);
    let addrs: Vec<String> = (0..8)
        .map(|i| format!("tcp:127.0.0.1:{}", 59000 + i))
        .collect();
    let err = run_leader(&g, &DistBcConfig::default(), &addrs, false)
        .expect_err("8 shards for 4 nodes must fail");
    assert!(matches!(err, WireRunError::Net(_)), "unexpected: {err}");

    let cfg = DistBcConfig {
        faults: Some(FaultPlan::seeded(1)),
        ..DistBcConfig::default()
    };
    let err =
        run_leader(&g, &cfg, &addrs[..2], false).expect_err("fault plans are in-process only");
    assert!(matches!(err, WireRunError::Net(_)), "unexpected: {err}");
}
