//! Property-based tests of the CONGEST engine with a reference flooding
//! protocol: distances match a centralized oracle, the parallel engine is
//! bit-identical to the serial one, and metric accounting is consistent.

use bc_congest::{Config, EdgeCut, Message, Network, Protocol, RoundCtx};
use bc_graph::{algo, Graph, GraphBuilder, NodeId};
use bc_numeric::bits::BitWriter;
use proptest::prelude::*;

/// Distance flooding from node 0 (one 32-bit message per node).
struct Flood {
    dist: Option<u64>,
    announced: bool,
}

impl Protocol for Flood {
    fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]) {
        if ctx.round() == 0 && ctx.id() == 0 {
            self.dist = Some(0);
        }
        for (_, m) in inbox {
            let d = m.payload().reader().read(32);
            if self.dist.is_none() {
                self.dist = Some(d + 1);
            }
        }
        if let (Some(d), false) = (self.dist, self.announced) {
            self.announced = true;
            let mut w = BitWriter::new();
            w.push(d, 32);
            ctx.broadcast(&Message::new(w.finish()));
        }
    }

    fn is_halted(&self) -> bool {
        self.announced
    }
}

fn arb_connected(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n, any::<u64>(), 0usize..50).prop_map(|(n, seed, extra)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_edge(rng.gen_range(0..v), v).expect("valid");
        }
        for _ in 0..extra {
            let (u, v) = (rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId));
            if u != v {
                b.add_edge(u, v).expect("valid");
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flood_matches_bfs_oracle(g in arb_connected(50)) {
        let mut net = Network::new(&g, Config::default(), |_, _| Flood {
            dist: None,
            announced: false,
        });
        net.run(10_000).expect("flood halts on connected graphs");
        let oracle = algo::bfs(&g, 0);
        for v in g.nodes() {
            prop_assert_eq!(net.node(v).dist, Some(oracle.dist[v as usize] as u64));
        }
        prop_assert!(net.metrics().congest_compliant());
    }

    #[test]
    fn parallel_equals_serial(g in arb_connected(40), threads in 1usize..8) {
        let mk = || Network::new(&g, Config::default(), |_, _| Flood {
            dist: None,
            announced: false,
        });
        let mut serial = mk();
        serial.run(10_000).expect("halts");
        let mut par = mk();
        par.run_parallel(10_000, threads).expect("halts");
        for v in g.nodes() {
            prop_assert_eq!(serial.node(v).dist, par.node(v).dist);
        }
        prop_assert_eq!(serial.metrics(), par.metrics());
    }

    #[test]
    fn metric_accounting_consistent(g in arb_connected(40)) {
        // Every node broadcasts exactly once: deg(v) messages of 32 bits.
        let mut net = Network::new(&g, Config::default(), |_, _| Flood {
            dist: None,
            announced: false,
        });
        net.run(10_000).expect("halts");
        let m = net.metrics();
        prop_assert_eq!(m.total_messages, 2 * g.m() as u64);
        prop_assert_eq!(m.total_bits, 64 * g.m() as u64);
        prop_assert_eq!(m.max_message_bits, 32);
        prop_assert_eq!(m.max_messages_per_edge_round, 1);
    }

    #[test]
    fn cut_flow_bounded_by_totals(g in arb_connected(40), pick in any::<u64>()) {
        // Declare a pseudo-random subset of edges as the cut.
        let edges: Vec<_> = g.edges().collect();
        let cut_edges: Vec<_> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| (pick >> (i % 64)) & 1 == 1)
            .map(|(_, &e)| e)
            .collect();
        let expected_msgs: u64 = cut_edges.len() as u64 * 2; // both endpoints announce
        let cfg = Config {
            cut: Some(EdgeCut::new(cut_edges)),
            ..Config::default()
        };
        let mut net = Network::new(&g, cfg, |_, _| Flood {
            dist: None,
            announced: false,
        });
        net.run(10_000).expect("halts");
        let m = net.metrics();
        prop_assert!(m.cut_bits <= m.total_bits);
        prop_assert_eq!(m.cut_messages, expected_msgs);
        prop_assert_eq!(m.cut_bits, 32 * expected_msgs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synchronizer_is_transparent(
        g in arb_connected(30),
        max_delay in 1u64..15,
        seed in any::<u64>(),
    ) {
        use bc_congest::asynchronous::{run_synchronized, AsyncConfig};
        let mut sync = Network::new(&g, Config::default(), |_, _| Flood {
            dist: None,
            announced: false,
        });
        let rounds = sync.run(10_000).expect("halts").rounds;
        let (nodes, report) = run_synchronized(
            &g,
            AsyncConfig { max_delay, seed },
            rounds,
            |_, _| Flood { dist: None, announced: false },
        );
        for v in g.nodes() {
            prop_assert_eq!(nodes[v as usize].dist, sync.node(v).dist);
        }
        // Time dilation bounded by the synchronizer's constant factor:
        // each pulse costs at most ~3 message latencies (payload, ack,
        // safe), each ≤ max_delay, plus FIFO backpressure.
        prop_assert!(report.virtual_time >= rounds);
        prop_assert_eq!(report.pulses, rounds);
    }
}
