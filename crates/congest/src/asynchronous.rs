//! Asynchronous execution of synchronous protocols via an α-synchronizer.
//!
//! The paper's system model (Section III-A) assumes globally synchronized
//! pulses. Real networks are asynchronous; the classical bridge (Awerbuch;
//! Peleg's book, the paper's ref.\[14\]) is a *synchronizer*: a wrapper protocol
//! that generates local pulses such that every node has received all its
//! pulse-`p` messages before its pulse `p + 1` begins.
//!
//! This module implements
//!
//! * an event-driven asynchronous network with per-message delays drawn
//!   deterministically from a seeded RNG (FIFO links), and
//! * the **α-synchronizer**: each payload is acknowledged; once a node's
//!   pulse-`p` payloads are all acked it announces *safe* to its
//!   neighbors; a node enters pulse `p + 1` when it is safe and all
//!   neighbors are safe for pulse `p`.
//!
//! Any [`Protocol`] written for the synchronous engine runs unmodified:
//! [`run_synchronized`] produces the *same node states* as
//! [`crate::Network::run`], which is verified in the test suite for the
//! full betweenness protocol. The price is the classic α-synchronizer
//! overhead: `O(M)` control messages per pulse and a constant-factor
//! time dilation.

use crate::faults::{self, FaultPlan};
use crate::message::Message;
use crate::network::{Protocol, RoundCtx};
use crate::profile::Profiler;
use crate::telemetry::{Counter, HistogramId, Telemetry};
use crate::trace::{ProtocolDetail, TraceEvent, TraceSink};
use bc_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the asynchronous transport.
#[derive(Debug, Clone, Copy)]
pub struct AsyncConfig {
    /// Maximum per-message delay; each delivery takes `1..=max_delay` time
    /// units (FIFO per directed link).
    pub max_delay: u64,
    /// Seed for the delay distribution.
    pub seed: u64,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            max_delay: 5,
            seed: 0,
        }
    }
}

/// Outcome of an asynchronous synchronized execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncReport {
    /// Virtual time at which the event queue drained.
    pub virtual_time: u64,
    /// Pulses executed per node.
    pub pulses: u64,
    /// Payload (application) messages transported.
    pub payload_messages: u64,
    /// Synchronizer control messages (acks + safes).
    pub control_messages: u64,
}

/// Synchronizer wire format.
#[derive(Debug, Clone)]
enum SyncMsg {
    /// An application message of the given pulse.
    Payload { pulse: u64, inner: Message },
    /// Acknowledgment of one payload.
    Ack,
    /// The sender finished pulse `pulse` and all its payloads were acked.
    Safe { pulse: u64 },
}

/// Per-node synchronizer state wrapping the inner protocol.
struct SyncNode<P> {
    inner: P,
    pulse: u64,
    /// Buffered payloads keyed by pulse.
    buffers: HashMap<u64, Vec<(usize, Message)>>,
    /// Outstanding acks for the current pulse.
    acks_pending: usize,
    /// Whether this node has announced safety for the current pulse.
    announced_safe: bool,
    /// Safe announcements received, keyed by pulse.
    safe_counts: HashMap<u64, usize>,
}

/// The asynchronous engine state.
struct Engine<'g, P> {
    graph: &'g Graph,
    nodes: Vec<SyncNode<P>>,
    queue: BinaryHeap<Reverse<(u64, u64, NodeId, usize)>>,
    payloads: HashMap<(u64, u64), SyncMsg>,
    last_delivery: HashMap<(NodeId, usize), u64>,
    rng: SmallRng,
    now: u64,
    seq: u64,
    max_delay: u64,
    pulse_limit: u64,
    payload_messages: u64,
    control_messages: u64,
    sink: Option<Box<dyn TraceSink>>,
    profiler: Option<Profiler>,
    /// Telemetry registry (single shard: the engine is single-threaded).
    /// Writes counters only — never protocol state — so a telemetry-on run
    /// is bit-identical to a telemetry-off run.
    telemetry: Option<Arc<Telemetry>>,
    /// Fault plan applied at payload-delivery time (`None` = lossless).
    faults: Option<FaultPlan>,
    /// One past the highest pulse for which `RoundStart` was emitted.
    rounds_announced: u64,
    /// Recycled `RoundCtx` staging buffers (drained after every pulse).
    stage_sends: Vec<(usize, Message)>,
    stage_events: Vec<ProtocolDetail>,
}

impl<P: Protocol> Engine<'_, P> {
    fn send(&mut self, from: NodeId, port: usize, msg: SyncMsg) {
        match &msg {
            SyncMsg::Payload { inner, .. } => {
                self.payload_messages += 1;
                if let Some(t) = &self.telemetry {
                    t.add(0, Counter::Messages, 1);
                    t.add(0, Counter::MessageBits, inner.bit_len() as u64);
                }
            }
            _ => {
                self.control_messages += 1;
                if let Some(t) = &self.telemetry {
                    t.add(0, Counter::ControlMessages, 1);
                }
            }
        }
        let delay = self.rng.gen_range(1..=self.max_delay);
        let link = (from, port);
        let at = (self.now + delay).max(self.last_delivery.get(&link).copied().unwrap_or(0) + 1);
        self.last_delivery.insert(link, at);
        let to = self.graph.neighbors(from)[port];
        let back_port = self
            .graph
            .neighbors(to)
            .binary_search(&from)
            .expect("reverse edge");
        self.seq += 1;
        self.payloads.insert((at, self.seq), msg);
        self.queue.push(Reverse((at, self.seq, to, back_port)));
        if let Some(p) = self.profiler.as_mut() {
            let depth = self.queue.len();
            let sync = p.sync_counters();
            sync.max_queue_depth = sync.max_queue_depth.max(depth);
        }
    }

    /// Runs the inner protocol's next pulse at `v` and ships its output.
    /// Pulse `p` consumes the payloads senders emitted in their pulse
    /// `p − 1` (the synchronous engine's "sent in round r, delivered in
    /// round r + 1"); the α-synchronizer's entry condition guarantees all
    /// of them are buffered by now.
    fn execute_pulse(&mut self, v: NodeId) {
        let node = &mut self.nodes[v as usize];
        let pulse = node.pulse;
        let mut inbox = if pulse > 0 {
            node.buffers.remove(&(pulse - 1)).unwrap_or_default()
        } else {
            Vec::new()
        };
        inbox.sort_by_key(|&(port, _)| port);
        if pulse >= self.rounds_announced {
            if let Some(s) = self.sink.as_deref_mut() {
                // The first node to enter a pulse announces its round. Event
                // order across nodes follows the asynchronous schedule, but
                // every event carries its pulse number, so offline analysis
                // is unaffected.
                for round in self.rounds_announced..=pulse {
                    s.event(&TraceEvent::RoundStart { round });
                }
            }
            if let Some(t) = &self.telemetry {
                // Pulses overlap across nodes; the first node to *enter*
                // pulse p+1 marks pulse p as committed for the flight
                // recorder, mirroring the RoundStart trace events.
                for round in self.rounds_announced..=pulse {
                    if round > 0 {
                        t.finish_round(round - 1);
                    }
                }
            }
            self.rounds_announced = pulse + 1;
        }
        if self.faults.as_ref().is_some_and(|p| p.crashed(v, pulse)) {
            // A crashed node executes no protocol code and its pending inbox
            // is lost, but the synchronizer bookkeeping must keep moving or
            // the whole network deadlocks: with zero sends there is nothing
            // to ack, so the node immediately announces safety for the pulse.
            drop(inbox);
            let node = &mut self.nodes[v as usize];
            node.acks_pending = 0;
            node.announced_safe = false;
            self.maybe_announce_safe(v);
            return;
        }
        if let Some(t) = &self.telemetry {
            t.add(0, Counter::NodesStepped, 1);
            t.add(0, Counter::InboxMessages, inbox.len() as u64);
            t.record(0, HistogramId::InboxDepth, inbox.len() as u64);
        }
        let node = &mut self.nodes[v as usize];
        let mut ctx = RoundCtx::with_buffers(
            v,
            pulse,
            self.graph,
            self.sink.is_some(),
            std::mem::take(&mut self.stage_sends),
            std::mem::take(&mut self.stage_events),
        );
        if self.profiler.is_some() {
            let t = Instant::now();
            node.inner.round(&mut ctx, &inbox);
            let ns = t.elapsed().as_nanos() as u64;
            if let Some(p) = self.profiler.as_mut() {
                p.add_pulse_compute(pulse, ns);
            }
        } else {
            node.inner.round(&mut ctx, &inbox);
        }
        let mut events = ctx.take_events();
        if let Some(s) = self.sink.as_deref_mut() {
            for detail in events.drain(..) {
                s.event(&TraceEvent::Protocol {
                    round: pulse,
                    node: v,
                    detail,
                });
            }
        }
        events.clear();
        let mut sends = ctx.take_sends();
        self.nodes[v as usize].acks_pending = sends.len();
        self.nodes[v as usize].announced_safe = false;
        for (port, inner) in sends.drain(..) {
            let to = self.graph.neighbors(v)[port];
            let duplicated = self
                .faults
                .as_ref()
                .is_some_and(|p| p.decide(v, to, pulse).duplicate);
            let payload = self.faults.as_ref().map(|_| faults::payload_hash(&inner));
            if let Some(s) = self.sink.as_deref_mut() {
                let event = TraceEvent::MessageSent {
                    round: pulse,
                    from: v,
                    to,
                    bits: inner.bit_len(),
                    payload,
                };
                s.event(&event);
                if duplicated {
                    s.event(&event);
                }
            }
            self.send(v, port, SyncMsg::Payload { pulse, inner });
        }
        self.stage_sends = sends;
        self.stage_events = events;
        self.maybe_announce_safe(v);
    }

    fn maybe_announce_safe(&mut self, v: NodeId) {
        let node = &mut self.nodes[v as usize];
        if node.acks_pending > 0 || node.announced_safe {
            return;
        }
        node.announced_safe = true;
        let pulse = node.pulse;
        for port in 0..self.graph.degree(v) {
            self.send(v, port, SyncMsg::Safe { pulse });
        }
        self.maybe_advance(v);
    }

    fn maybe_advance(&mut self, v: NodeId) {
        loop {
            let node = &mut self.nodes[v as usize];
            let pulse = node.pulse;
            let all_neighbors_safe =
                node.safe_counts.get(&pulse).copied().unwrap_or(0) == self.graph.degree(v);
            if !(node.announced_safe && all_neighbors_safe) {
                return;
            }
            node.safe_counts.remove(&pulse);
            node.pulse += 1;
            if node.pulse >= self.pulse_limit {
                return;
            }
            self.execute_pulse(v);
            // execute_pulse may have already advanced us via
            // maybe_announce_safe → loop to settle.
            if self.nodes[v as usize].pulse == pulse + 1 {
                return;
            }
        }
    }

    fn deliver(&mut self, at: u64, seq: u64, to: NodeId, port: usize) {
        self.now = at;
        let msg = self.payloads.remove(&(at, seq)).expect("event payload");
        match msg {
            SyncMsg::Payload { pulse, inner } => {
                debug_assert!(
                    pulse == self.nodes[to as usize].pulse
                        || pulse + 1 == self.nodes[to as usize].pulse
                        || pulse == self.nodes[to as usize].pulse + 1,
                    "synchronizer pulse skew"
                );
                if let Some(p) = self.profiler.as_mut() {
                    let skew = pulse.abs_diff(self.nodes[to as usize].pulse);
                    let sync = p.sync_counters();
                    sync.deliveries += 1;
                    if skew > 0 {
                        sync.skewed_deliveries += 1;
                    }
                    sync.max_pulse_skew = sync.max_pulse_skew.max(skew);
                }
                // The synchronizer acks every physical arrival: the sender's
                // safety bookkeeping counts one ack per send regardless of
                // what the fault layer then does to the payload.
                self.send(to, port, SyncMsg::Ack);
                let from = self.graph.neighbors(to)[port];
                let decision = self
                    .faults
                    .as_ref()
                    .map(|p| p.decide(from, to, pulse))
                    .unwrap_or_default();
                if decision.drop {
                    return;
                }
                let inner = match decision.corrupt {
                    Some(entropy) => faults::corrupt_message(&inner, entropy),
                    None => inner,
                };
                let copies = if decision.duplicate { 2 } else { 1 };
                // Delay by `d` pulses: the payload lands in the buffer the
                // receiver consumes at pulse `pulse + 1 + d`, matching the
                // synchronous engine's delivery at round `r + 1 + d`.
                let buffers = &mut self.nodes[to as usize].buffers;
                for _ in 0..copies {
                    buffers
                        .entry(pulse + decision.delay)
                        .or_default()
                        .push((port, inner.clone()));
                }
            }
            SyncMsg::Ack => {
                let node = &mut self.nodes[to as usize];
                debug_assert!(node.acks_pending > 0, "spurious ack");
                node.acks_pending -= 1;
                self.maybe_announce_safe(to);
            }
            SyncMsg::Safe { pulse } => {
                let node = &mut self.nodes[to as usize];
                *node.safe_counts.entry(pulse).or_default() += 1;
                if pulse == node.pulse {
                    self.maybe_advance(to);
                }
            }
        }
    }
}

/// Runs `pulses` synchronous rounds of protocol `P` on an asynchronous
/// network with randomized FIFO delays, using the α-synchronizer. Returns
/// the node states (identical to `pulses` rounds of the synchronous
/// engine) and transport statistics.
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn run_synchronized<P, F>(
    graph: &Graph,
    cfg: AsyncConfig,
    pulses: u64,
    factory: F,
) -> (Vec<P>, AsyncReport)
where
    P: Protocol,
    F: FnMut(NodeId, &Graph) -> P,
{
    let (nodes, report, _, _) = run_impl(graph, cfg, pulses, factory, None, None, None, None);
    (nodes, report)
}

/// Like [`run_synchronized`], but records payload/control message counts,
/// nodes stepped, and inbox depths into `telemetry` as pulses execute, and
/// commits a flight-recorder round each time the first node enters the
/// next pulse. Pass `plan` to combine with fault injection. Telemetry
/// writes counters only — node states and the [`AsyncReport`] are
/// bit-identical to an untelemetered run.
pub fn run_synchronized_telemetry<P, F>(
    graph: &Graph,
    cfg: AsyncConfig,
    pulses: u64,
    plan: Option<FaultPlan>,
    factory: F,
    telemetry: Arc<Telemetry>,
) -> (Vec<P>, AsyncReport)
where
    P: Protocol,
    F: FnMut(NodeId, &Graph) -> P,
{
    let (nodes, report, _, _) = run_impl(
        graph,
        cfg,
        pulses,
        factory,
        None,
        None,
        Some(telemetry),
        plan,
    );
    (nodes, report)
}

/// Like [`run_synchronized`], but applies `plan` to every payload delivery:
/// drops, duplicates, corruptions and pulse-delays are decided by the same
/// seeded hash as the synchronous engines (keyed on the *sender's* pulse),
/// and crashed nodes skip their protocol code while the synchronizer keeps
/// the network live. Synchronizer control traffic (acks, safes) is never
/// faulted — the fault model targets application messages, mirroring the
/// synchronous engines which only carry application messages.
pub fn run_synchronized_faulty<P, F>(
    graph: &Graph,
    cfg: AsyncConfig,
    pulses: u64,
    plan: FaultPlan,
    factory: F,
) -> (Vec<P>, AsyncReport)
where
    P: Protocol,
    F: FnMut(NodeId, &Graph) -> P,
{
    let (nodes, report, _, _) = run_impl(graph, cfg, pulses, factory, None, None, None, Some(plan));
    (nodes, report)
}

/// Like [`run_synchronized`], but records wall-clock profiling data into
/// `profiler`: per-pulse node-compute spans (pulses execute out of node
/// order, so only compute time is attributed — there is no meaningful
/// per-pulse engine span), plus synchronizer counters (payload deliveries,
/// pulse-skewed deliveries, maximum pulse skew, event-queue high-water
/// mark). Profiling never alters the execution: node states and the
/// [`AsyncReport`] are bit-identical to an unprofiled run.
pub fn run_synchronized_profiled<P, F>(
    graph: &Graph,
    cfg: AsyncConfig,
    pulses: u64,
    factory: F,
    profiler: Profiler,
) -> (Vec<P>, AsyncReport, Profiler)
where
    P: Protocol,
    F: FnMut(NodeId, &Graph) -> P,
{
    let (nodes, report, _, profiler) = run_impl(
        graph,
        cfg,
        pulses,
        factory,
        None,
        Some(profiler),
        None,
        None,
    );
    (nodes, report, profiler.expect("profiler returned"))
}

/// Like [`run_synchronized`], but emits [`TraceEvent`]s into `sink` as the
/// synchronizer executes: one `RoundStart` when the first node enters each
/// pulse, each node's protocol events and payload `MessageSent`s as its
/// pulse executes. Event order across nodes follows the asynchronous
/// schedule (not node-id order), but every event carries its pulse, so
/// [`crate::trace::check`] applies unchanged. Returns the sink for
/// flushing/draining.
pub fn run_synchronized_traced<P, F>(
    graph: &Graph,
    cfg: AsyncConfig,
    pulses: u64,
    factory: F,
    sink: Box<dyn TraceSink>,
) -> (Vec<P>, AsyncReport, Box<dyn TraceSink>)
where
    P: Protocol,
    F: FnMut(NodeId, &Graph) -> P,
{
    let (nodes, report, sink, _) =
        run_impl(graph, cfg, pulses, factory, Some(sink), None, None, None);
    (nodes, report, sink.expect("sink returned"))
}

#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn run_impl<P, F>(
    graph: &Graph,
    cfg: AsyncConfig,
    pulses: u64,
    mut factory: F,
    sink: Option<Box<dyn TraceSink>>,
    profiler: Option<Profiler>,
    telemetry: Option<Arc<Telemetry>>,
    faults: Option<FaultPlan>,
) -> (
    Vec<P>,
    AsyncReport,
    Option<Box<dyn TraceSink>>,
    Option<Profiler>,
)
where
    P: Protocol,
    F: FnMut(NodeId, &Graph) -> P,
{
    assert!(graph.n() > 0, "empty graph");
    assert!(cfg.max_delay >= 1, "delays must be at least 1");
    let nodes = (0..graph.n() as NodeId)
        .map(|v| SyncNode {
            inner: factory(v, graph),
            pulse: 0,
            buffers: HashMap::new(),
            acks_pending: 0,
            announced_safe: false,
            safe_counts: HashMap::new(),
        })
        .collect();
    let mut engine = Engine {
        graph,
        nodes,
        queue: BinaryHeap::new(),
        payloads: HashMap::new(),
        last_delivery: HashMap::new(),
        rng: SmallRng::seed_from_u64(cfg.seed),
        now: 0,
        seq: 0,
        max_delay: cfg.max_delay,
        pulse_limit: pulses,
        payload_messages: 0,
        control_messages: 0,
        sink,
        profiler,
        telemetry,
        faults,
        rounds_announced: 0,
        stage_sends: Vec::new(),
        stage_events: Vec::new(),
    };
    if let Some(p) = engine.profiler.as_mut() {
        p.start_run();
    }
    if pulses > 0 {
        for v in 0..graph.n() as NodeId {
            engine.execute_pulse(v);
        }
    }
    while let Some(Reverse((at, seq, to, port))) = engine.queue.pop() {
        engine.deliver(at, seq, to, port);
    }
    if let Some(p) = engine.profiler.as_mut() {
        p.finish_run();
    }
    if let Some(t) = &engine.telemetry {
        // The last pulse has no successor to commit it; flush the tail.
        for round in engine.rounds_announced.saturating_sub(1)..pulses {
            t.finish_round(round);
        }
    }
    let report = AsyncReport {
        virtual_time: engine.now,
        pulses,
        payload_messages: engine.payload_messages,
        control_messages: engine.control_messages,
    };
    let sink = engine.sink.take();
    let profiler = engine.profiler.take();
    (
        engine.nodes.into_iter().map(|n| n.inner).collect(),
        report,
        sink,
        profiler,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Config, Network};
    use bc_graph::generators;
    use bc_numeric::bits::BitWriter;

    /// The reference flooding protocol from the engine tests.
    struct Flood {
        dist: Option<u64>,
        announced: bool,
    }

    impl Protocol for Flood {
        fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]) {
            if ctx.round() == 0 && ctx.id() == 0 {
                self.dist = Some(0);
            }
            for (_, m) in inbox {
                let d = m.payload().reader().read(32);
                if self.dist.is_none() {
                    self.dist = Some(d + 1);
                }
            }
            if let (Some(d), false) = (self.dist, self.announced) {
                self.announced = true;
                let mut w = BitWriter::new();
                w.push(d, 32);
                ctx.broadcast(&Message::new(w.finish()));
            }
        }

        fn is_halted(&self) -> bool {
            self.announced
        }
    }

    fn new_flood(_: NodeId, _: &Graph) -> Flood {
        Flood {
            dist: None,
            announced: false,
        }
    }

    #[test]
    fn synchronized_flood_matches_synchronous_engine() {
        let g = generators::erdos_renyi_connected(30, 0.1, 4);
        let mut sync = Network::new(&g, Config::default(), new_flood);
        let rounds = sync.run(10_000).unwrap().rounds;
        for (max_delay, seed) in [(1, 0), (3, 1), (9, 2), (20, 3)] {
            let (nodes, report) =
                run_synchronized(&g, AsyncConfig { max_delay, seed }, rounds, new_flood);
            for v in g.nodes() {
                assert_eq!(
                    nodes[v as usize].dist,
                    sync.node(v).dist,
                    "delay={max_delay} node {v}"
                );
            }
            assert_eq!(report.pulses, rounds);
            assert!(report.virtual_time >= rounds, "time dilation ≥ 1 per pulse");
            assert!(report.control_messages > 0);
        }
    }

    #[test]
    fn zero_pulses_is_a_noop() {
        let g = generators::path(3);
        let (nodes, report) = run_synchronized(&g, AsyncConfig::default(), 0, new_flood);
        assert!(nodes.iter().all(|n| n.dist.is_none()));
        assert_eq!(report.virtual_time, 0);
        assert_eq!(report.payload_messages, 0);
    }

    #[test]
    fn single_node_runs() {
        let g = bc_graph::Graph::from_edges(1, []).unwrap();
        let (nodes, _) = run_synchronized(&g, AsyncConfig::default(), 5, new_flood);
        assert_eq!(nodes[0].dist, Some(0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = generators::cycle(12);
        let cfg = AsyncConfig {
            max_delay: 7,
            seed: 42,
        };
        let (_, a) = run_synchronized(&g, cfg, 20, new_flood);
        let (_, b) = run_synchronized(&g, cfg, 20, new_flood);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "delays must be at least 1")]
    fn zero_delay_rejected() {
        let g = generators::path(2);
        let _ = run_synchronized(
            &g,
            AsyncConfig {
                max_delay: 0,
                seed: 0,
            },
            1,
            new_flood,
        );
    }
}
