//! The synchronous CONGEST network engine.
//!
//! Executes a [`Protocol`] state machine at every node of a graph in
//! globally synchronized rounds (Section III-A of the paper): messages sent
//! in round `r` are delivered at the start of round `r + 1`; each node may
//! send at most one message per incident edge per round; each message is
//! charged its exact payload size in bits against an `O(log N)` budget.
//!
//! The engine does not merely *assume* the CONGEST constraints — it
//! measures them ([`crate::NetMetrics`]) and, under
//! [`Enforcement::Strict`], fails the execution on the first violation,
//! which turns protocol bugs (schedule collisions, oversized encodings)
//! into test failures.
//!
//! Both engines share three throughput mechanisms, none of which may change
//! observable output (node states, metrics, traces are bit-identical with
//! them on or off):
//!
//! - **double-buffered inboxes** — current and next-round inboxes swap each
//!   round, so per-node `Vec` allocations are reused instead of reallocated;
//! - **idle-node skipping** — a node whose inbox is empty and whose
//!   [`Protocol::idle_at`] returns `true` is not stepped at all (sound
//!   because `idle_at` promises the step would be a no-op); disable via
//!   [`Config::skip_idle`] as a correctness escape hatch;
//! - **a persistent worker pool** — [`Network::run_parallel`] spawns its
//!   workers once per run and feeds them rounds over channels, instead of
//!   spawning and joining threads every round. Outputs are still merged in
//!   node-id order, keeping parallel traces byte-identical to serial.

use crate::faults::{self, FaultPlan};
use crate::message::Message;
use crate::metrics::{EdgeCut, NetMetrics};
use crate::profile::{Profiler, RoundSpan};
use crate::trace::{ProtocolDetail, TraceEvent, TraceSink, ViolationKind};
use bc_graph::{Graph, NodeId};
use bc_numeric::bits::id_bits;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Instant;

/// Per-message bit budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Budget {
    /// `8·⌈log₂ N⌉ + 64` bits — a concrete `Θ(log N)` with room for the
    /// protocol headers used in this workspace.
    #[default]
    Auto,
    /// A fixed budget in bits.
    Bits(usize),
    /// No limit (sizes are still recorded).
    Unlimited,
}

impl Budget {
    /// Resolves the budget for an `n`-node network (`None` = unlimited).
    pub fn resolve(self, n: usize) -> Option<usize> {
        match self {
            Budget::Auto => Some(8 * id_bits(n.max(2)) as usize + 64),
            Budget::Bits(b) => Some(b),
            Budget::Unlimited => None,
        }
    }
}

/// What to do when a CONGEST constraint is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Enforcement {
    /// Abort the run with a [`CongestError`].
    #[default]
    Strict,
    /// Record the violation in [`NetMetrics`] and keep going.
    Record,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Per-message bit budget.
    pub budget: Budget,
    /// Violation handling.
    pub enforcement: Enforcement,
    /// Optional edge cut across which bit flow is measured.
    pub cut: Option<EdgeCut>,
    /// Skip stepping nodes whose inbox is empty and whose
    /// [`Protocol::idle_at`] returns `true`. On by default; turn off to
    /// force every node to step every round (correctness escape hatch —
    /// output must not change either way).
    pub skip_idle: bool,
    /// Optional fault-injection plan applied between outboxes and
    /// inboxes: per-edge/per-round drop, duplication, corruption, and
    /// delay, plus node crash windows (see [`crate::faults`]). `None`
    /// (the default) is the ideal fault-free network.
    pub faults: Option<FaultPlan>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            budget: Budget::default(),
            enforcement: Enforcement::default(),
            cut: None,
            skip_idle: true,
            faults: None,
        }
    }
}

/// A CONGEST constraint violation (only surfaced under
/// [`Enforcement::Strict`]) or an execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CongestError {
    /// A node staged two messages on the same incident edge in one round.
    Collision {
        /// Sending node.
        node: NodeId,
        /// Port (index into the node's adjacency list).
        port: usize,
        /// Round in which it happened.
        round: u64,
    },
    /// A message exceeded the per-message bit budget.
    Oversized {
        /// Sending node.
        node: NodeId,
        /// The message's size in bits.
        bits: usize,
        /// The configured budget.
        budget: usize,
        /// Round in which it happened.
        round: u64,
    },
    /// `run` hit its round limit before all nodes halted.
    RoundLimit {
        /// The limit that was hit.
        max_rounds: u64,
    },
    /// A node's [`Protocol::round`] panicked. Both engines surface the
    /// lowest-id panicking node of the round rather than aborting the
    /// process.
    NodePanic {
        /// The node whose step panicked.
        node: NodeId,
        /// Round in which it happened.
        round: u64,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::Collision { node, port, round } => write!(
                f,
                "collision: node {node} sent twice on port {port} in round {round}"
            ),
            CongestError::Oversized {
                node,
                bits,
                budget,
                round,
            } => write!(
                f,
                "oversized message: node {node} sent {bits} bits (budget {budget}) in round {round}"
            ),
            CongestError::RoundLimit { max_rounds } => {
                write!(f, "network did not halt within {max_rounds} rounds")
            }
            CongestError::NodePanic {
                node,
                round,
                message,
            } => write!(f, "node {node} panicked in round {round}: {message}"),
        }
    }
}

impl std::error::Error for CongestError {}

/// The per-node state machine executed by the engine.
///
/// Implementations receive one [`Protocol::round`] call per simulated round
/// with the messages that arrived at the start of that round, and may stage
/// outgoing messages through the [`RoundCtx`]. Local computation is free,
/// matching the model ("every node can perform local computation in each
/// round and it has no influence on the time complexity").
pub trait Protocol {
    /// Executes one synchronous round.
    fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]);

    /// Returns `true` once this node will neither send nor needs to receive
    /// any further messages. The engine stops when every node is halted and
    /// no messages are in flight.
    fn is_halted(&self) -> bool;

    /// Returns `true` if calling [`Protocol::round`] for `round` with an
    /// *empty* inbox would be a no-op: no sends, no trace events, and no
    /// observable state change. The engine then skips the call entirely
    /// (unless [`Config::skip_idle`] is off). The default is `false` —
    /// protocols that act on a schedule rather than on messages must keep
    /// it that way for the rounds they act in.
    fn idle_at(&self, round: u64) -> bool {
        let _ = round;
        false
    }
}

/// Per-round, per-node execution context: identity, topology access, and
/// the staging area for outgoing messages.
#[derive(Debug)]
pub struct RoundCtx<'a> {
    id: NodeId,
    round: u64,
    graph: &'a Graph,
    sends: Vec<(usize, Message)>,
    tracing: bool,
    events: Vec<ProtocolDetail>,
}

impl<'a> RoundCtx<'a> {
    /// Builds a context staging into recycled buffers (must be empty).
    /// The engines drain and reuse them round over round.
    pub(crate) fn with_buffers(
        id: NodeId,
        round: u64,
        graph: &'a Graph,
        tracing: bool,
        sends: Vec<(usize, Message)>,
        events: Vec<ProtocolDetail>,
    ) -> Self {
        debug_assert!(sends.is_empty() && events.is_empty());
        RoundCtx {
            id,
            round,
            graph,
            sends,
            tracing,
            events,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current round number (starting at 0).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Total number of nodes `N` (known to all nodes, as the paper assumes
    /// for computing `O(log N)`-bit encodings and schedules).
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.id)
    }

    /// Identifier of the neighbor reached through `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree()`.
    pub fn neighbor(&self, port: usize) -> NodeId {
        self.graph.neighbors(self.id)[port]
    }

    /// Port through which `neighbor` is reached, if adjacent.
    pub fn port_of(&self, neighbor: NodeId) -> Option<usize> {
        self.graph.neighbors(self.id).binary_search(&neighbor).ok()
    }

    /// Stages `msg` for delivery to the neighbor on `port` at the start of
    /// the next round.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree()`. (The engine converts the panic into a
    /// [`CongestError::NodePanic`] run error.)
    pub fn send(&mut self, port: usize, msg: Message) {
        assert!(port < self.degree(), "send on nonexistent port {port}");
        self.sends.push((port, msg));
    }

    /// Stages `msg` to every neighbor (a local broadcast, one message per
    /// incident edge — permitted by CONGEST).
    pub fn broadcast(&mut self, msg: &Message) {
        for port in 0..self.degree() {
            self.sends.push((port, msg.clone()));
        }
    }

    /// Drains the staged sends (used by the asynchronous synchronizer,
    /// which transports them itself).
    pub(crate) fn take_sends(&mut self) -> Vec<(usize, Message)> {
        std::mem::take(&mut self.sends)
    }

    /// Executes one *virtual* round of a nested protocol on behalf of a
    /// wrapper protocol (e.g. a reliable-transport layer). `inner.round`
    /// runs with a context for the same node and graph but round number
    /// `vround`, and the messages it stages are returned to the wrapper —
    /// which transports them itself — instead of going to the engine.
    /// Trace events staged by the nested protocol are re-staged into this
    /// context, so they surface under the wrapper's physical round.
    pub fn nested_round<P: Protocol>(
        &mut self,
        vround: u64,
        inner: &mut P,
        inbox: &[(usize, Message)],
    ) -> Vec<(usize, Message)> {
        let mut ctx = RoundCtx::with_buffers(
            self.id,
            vround,
            self.graph,
            self.tracing,
            Vec::new(),
            Vec::new(),
        );
        inner.round(&mut ctx, inbox);
        self.events.append(&mut ctx.events);
        ctx.sends
    }

    /// Returns `true` when a trace sink is attached to the engine, so
    /// protocols can skip expensive event preparation entirely.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Stages a protocol-level trace event for this round. A no-op unless
    /// the engine has a trace sink attached ([`RoundCtx::tracing`]), so
    /// untraced runs pay only this branch.
    pub fn trace(&mut self, detail: ProtocolDetail) {
        if self.tracing {
            self.events.push(detail);
        }
    }

    /// Drains the staged trace events (engine-side).
    pub(crate) fn take_events(&mut self) -> Vec<ProtocolDetail> {
        std::mem::take(&mut self.events)
    }
}

/// Outcome of a successful run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Rounds executed until quiescence.
    pub rounds: u64,
}

/// A simulated synchronous network executing protocol `P` on every node.
pub struct Network<P> {
    graph: Graph,
    config: Config,
    budget_bits: Option<usize>,
    nodes: Vec<P>,
    inboxes: Vec<Vec<(usize, Message)>>,
    /// Next-round inboxes; swapped with `inboxes` each round so the inner
    /// `Vec` allocations are recycled. Invariant: all entries are empty
    /// between rounds.
    spare: Vec<Vec<(usize, Message)>>,
    /// Recycled staging buffers for the serial engine's `RoundCtx`.
    stage_sends: Vec<(usize, Message)>,
    stage_events: Vec<ProtocolDetail>,
    /// Recycled per-port collision counters for `account_sends`.
    port_scratch: Vec<u8>,
    /// Recycled list of next-inbox indices touched in the current round
    /// (only those get sorted).
    touched: Vec<NodeId>,
    /// Fault-delayed messages still in flight:
    /// `(delivery round, target, port, message)` in injection order.
    delayed: Vec<(u64, NodeId, usize, Message)>,
    metrics: NetMetrics,
    round: u64,
    sink: Option<Box<dyn TraceSink>>,
    profiler: Option<Profiler>,
}

impl<P> fmt::Debug for Network<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Network(n={}, round={}, metrics={:?})",
            self.graph.n(),
            self.round,
            self.metrics
        )
    }
}

impl<P: Protocol> Network<P> {
    /// Builds a network over `graph` where node `v` runs
    /// `factory(v, graph)`.
    pub fn new<F>(graph: &Graph, config: Config, mut factory: F) -> Self
    where
        F: FnMut(NodeId, &Graph) -> P,
    {
        let n = graph.n();
        let nodes = (0..n as NodeId).map(|v| factory(v, graph)).collect();
        Network {
            budget_bits: config.budget.resolve(n),
            graph: graph.clone(),
            config,
            nodes,
            inboxes: vec![Vec::new(); n],
            spare: vec![Vec::new(); n],
            stage_sends: Vec::new(),
            stage_events: Vec::new(),
            port_scratch: Vec::new(),
            touched: Vec::new(),
            delayed: Vec::new(),
            metrics: NetMetrics::default(),
            round: 0,
            sink: None,
            profiler: None,
        }
    }

    /// Installs a trace sink; subsequent rounds emit
    /// [`TraceEvent`]s into it. Returns the previously installed sink.
    ///
    /// Both engines produce the identical, deterministic event stream:
    /// per round, one `RoundStart`, then each node's protocol events
    /// followed by its `MessageSent`s, in node-id order (the parallel
    /// engine merges worker buffers back into this order).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
        self.sink.replace(sink)
    }

    /// Removes and returns the trace sink, stopping emission.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Installs a wall-clock profiler; subsequent rounds record
    /// [`RoundSpan`]s into it. Strictly opt-in, like tracing: without a
    /// profiler each round pays a single branch, and a profiled run
    /// produces bit-identical node states and metrics. Returns any
    /// previously installed profiler.
    pub fn set_profiler(&mut self, profiler: Profiler) -> Option<Profiler> {
        self.profiler.replace(profiler)
    }

    /// Removes and returns the profiler, stopping recording.
    pub fn take_profiler(&mut self) -> Option<Profiler> {
        self.profiler.take()
    }

    /// The simulated graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Read access to a node's protocol state.
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v as usize]
    }

    /// Consumes the network, returning all node states.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// Runs until every node reports halted and no messages are in flight.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::RoundLimit`] if the protocol does not halt
    /// within `max_rounds`, a constraint violation under
    /// [`Enforcement::Strict`], or [`CongestError::NodePanic`] if a node's
    /// step panicked.
    pub fn run(&mut self, max_rounds: u64) -> Result<RunReport, CongestError> {
        while !self.quiescent() {
            if self.round >= max_rounds {
                return Err(CongestError::RoundLimit { max_rounds });
            }
            self.step()?;
        }
        Ok(RunReport { rounds: self.round })
    }

    /// Runs exactly `rounds` additional rounds (useful for protocols
    /// observed mid-flight).
    ///
    /// # Errors
    ///
    /// Returns a constraint violation under [`Enforcement::Strict`].
    pub fn run_rounds(&mut self, rounds: u64) -> Result<RunReport, CongestError> {
        for _ in 0..rounds {
            self.step()?;
        }
        Ok(RunReport { rounds: self.round })
    }

    fn quiescent(&self) -> bool {
        self.inboxes.iter().all(|i| i.is_empty())
            && self.delayed.is_empty()
            && self.nodes.iter().all(|p| p.is_halted())
    }

    /// Executes a single round serially.
    fn step(&mut self) -> Result<(), CongestError> {
        let n = self.graph.n();
        let round = self.round;
        let skip_idle = self.config.skip_idle;
        let mut first_error: Option<CongestError> = None;
        if !self.delayed.is_empty() {
            for (target, port, msg) in take_due(&mut self.delayed, round) {
                let inbox = &mut self.inboxes[target as usize];
                inbox.push((port, msg));
                inbox.sort_unstable_by_key(|&(port, _)| port);
            }
        }
        self.metrics.begin_round(round);
        // The sink leaves `self` for the loop so node stepping (which
        // borrows nodes/graph/metrics) and event emission don't conflict.
        let mut sink = self.sink.take();
        if let Some(s) = sink.as_deref_mut() {
            s.event(&TraceEvent::RoundStart { round });
        }
        let tracing = sink.is_some();
        let profiling = self.profiler.is_some();
        let round_start = profiling.then(Instant::now);
        let mut compute_ns = 0u64;
        let mut inbox_messages = 0u64;
        let mut nodes_stepped = 0u64;
        let mut touched = std::mem::take(&mut self.touched);
        let spare = &mut self.spare;
        let faults = self.config.faults.as_ref();
        debug_assert!(spare.iter().all(|i| i.is_empty()));
        for v in 0..n {
            // A crashed node is down for the whole round: it neither steps
            // nor keeps the messages that arrived while it was down.
            if faults.is_some_and(|p| p.crashed(v as NodeId, round)) {
                self.inboxes[v].clear();
                continue;
            }
            let node = &mut self.nodes[v];
            let inbox = &self.inboxes[v];
            if inbox.is_empty() && skip_idle && node.idle_at(round) {
                continue;
            }
            nodes_stepped += 1;
            let mut ctx = RoundCtx::with_buffers(
                v as NodeId,
                round,
                &self.graph,
                tracing,
                std::mem::take(&mut self.stage_sends),
                std::mem::take(&mut self.stage_events),
            );
            if profiling {
                inbox_messages += inbox.len() as u64;
            }
            let t = profiling.then(Instant::now);
            let outcome = catch_unwind(AssertUnwindSafe(|| node.round(&mut ctx, inbox)));
            if let Some(t) = t {
                compute_ns += t.elapsed().as_nanos() as u64;
            }
            if let Err(payload) = outcome {
                // Abandon this round: drop the panicking node's partial
                // output and any messages already routed, restoring the
                // all-empty `spare` invariant for later steps.
                drop(ctx);
                for &t in &touched {
                    spare[t as usize].clear();
                }
                touched.clear();
                self.touched = touched;
                self.sink = sink;
                return Err(CongestError::NodePanic {
                    node: v as NodeId,
                    round,
                    message: panic_message(payload),
                });
            }
            let (mut sends, mut events) = (ctx.sends, ctx.events);
            if let Some(s) = sink.as_deref_mut() {
                for detail in events.drain(..) {
                    s.event(&TraceEvent::Protocol {
                        round,
                        node: v as NodeId,
                        detail,
                    });
                }
            }
            account_sends(
                v as NodeId,
                round,
                sends.drain(..),
                &self.graph,
                self.budget_bits,
                self.config.cut.as_ref(),
                &mut self.metrics,
                &mut self.port_scratch,
                |target, reverse_port, msg| {
                    let inbox = &mut spare[target as usize];
                    if inbox.is_empty() {
                        touched.push(target);
                    }
                    inbox.push((reverse_port, msg));
                },
                &mut first_error,
                sink.as_deref_mut(),
                faults,
                &mut self.delayed,
            );
            self.stage_sends = sends;
            self.stage_events = events;
            self.inboxes[v].clear();
        }
        self.sink = sink;
        if let (Some(err), Enforcement::Strict) = (&first_error, self.config.enforcement) {
            for &t in &touched {
                spare[t as usize].clear();
            }
            touched.clear();
            self.touched = touched;
            return Err(err.clone());
        }
        for &t in &touched {
            spare[t as usize].sort_unstable_by_key(|&(port, _)| port);
        }
        touched.clear();
        self.touched = touched;
        std::mem::swap(&mut self.inboxes, &mut self.spare);
        self.round += 1;
        self.metrics.rounds = self.round;
        if let (Some(t0), Some(p)) = (round_start, self.profiler.as_mut()) {
            p.record_round(RoundSpan {
                round,
                total_ns: t0.elapsed().as_nanos() as u64,
                compute_ns,
                inbox_messages,
                nodes_stepped,
                worker_busy_ns: Vec::new(),
            });
        }
        Ok(())
    }
}

/// Recycled per-worker reply buffers: `(index, sends, events)`.
type ReplyBufs = (
    Vec<(NodeId, u32, u32)>,
    Vec<(usize, Message)>,
    Vec<ProtocolDetail>,
);

/// One round's work order shipped to a pool worker. The buffers round-trip:
/// the worker returns them (refilled) in its [`WorkerReply`] and the main
/// thread sends them back with the next `Step`.
enum WorkerCmd {
    Step {
        round: u64,
        tracing: bool,
        profiling: bool,
        skip_idle: bool,
        /// This worker's chunk of current-round inboxes (returned cleared).
        inboxes: Vec<Vec<(usize, Message)>>,
        index: Vec<(NodeId, u32, u32)>,
        sends: Vec<(usize, Message)>,
        events: Vec<ProtocolDetail>,
    },
    Finish,
}

/// One round's results from a pool worker.
struct WorkerReply {
    /// `(node, staged sends, staged events)` counts per stepped node that
    /// produced output, in node-id order. The payloads are flattened into
    /// `sends` / `events` in the same order.
    index: Vec<(NodeId, u32, u32)>,
    sends: Vec<(usize, Message)>,
    events: Vec<ProtocolDetail>,
    inboxes: Vec<Vec<(usize, Message)>>,
    busy_ns: u64,
    compute_ns: u64,
    inbox_messages: u64,
    nodes_stepped: u64,
    all_halted: bool,
    /// First `round()` panic in the chunk; nodes after it were not stepped
    /// and its own output was discarded.
    panic: Option<(NodeId, String)>,
}

/// Body of one persistent pool worker: owns a contiguous chunk of node
/// states (`base..base + nodes.len()`), steps it per `Step` command in
/// node-id order, and returns the states on `Finish` / channel close.
fn pool_worker<P: Protocol>(
    base: NodeId,
    mut nodes: Vec<P>,
    graph: &Graph,
    faults: Option<&FaultPlan>,
    rx: mpsc::Receiver<WorkerCmd>,
    tx: mpsc::Sender<WorkerReply>,
) -> Vec<P> {
    let mut stage_sends: Vec<(usize, Message)> = Vec::new();
    let mut stage_events: Vec<ProtocolDetail> = Vec::new();
    while let Ok(cmd) = rx.recv() {
        let WorkerCmd::Step {
            round,
            tracing,
            profiling,
            skip_idle,
            mut inboxes,
            mut index,
            mut sends,
            mut events,
        } = cmd
        else {
            break;
        };
        index.clear();
        sends.clear();
        events.clear();
        let busy_start = profiling.then(Instant::now);
        let mut compute_ns = 0u64;
        let mut inbox_messages = 0u64;
        let mut nodes_stepped = 0u64;
        let mut panic = None;
        for (i, node) in nodes.iter_mut().enumerate() {
            // Crash handling mirrors the serial engine: a down node is not
            // stepped and loses its inbox for the round.
            if faults.is_some_and(|p| p.crashed(base + i as NodeId, round)) {
                inboxes[i].clear();
                continue;
            }
            let inbox = &inboxes[i];
            if inbox.is_empty() && skip_idle && node.idle_at(round) {
                continue;
            }
            nodes_stepped += 1;
            if profiling {
                inbox_messages += inbox.len() as u64;
            }
            let v = base + i as NodeId;
            let mut ctx = RoundCtx::with_buffers(
                v,
                round,
                graph,
                tracing,
                std::mem::take(&mut stage_sends),
                std::mem::take(&mut stage_events),
            );
            let t = profiling.then(Instant::now);
            let outcome = catch_unwind(AssertUnwindSafe(|| node.round(&mut ctx, inbox)));
            if let Some(t) = t {
                compute_ns += t.elapsed().as_nanos() as u64;
            }
            let (mut node_sends, mut node_events) = (ctx.sends, ctx.events);
            match outcome {
                Ok(()) => {
                    if !node_sends.is_empty() || !node_events.is_empty() {
                        index.push((v, node_sends.len() as u32, node_events.len() as u32));
                        sends.append(&mut node_sends);
                        events.append(&mut node_events);
                    }
                }
                Err(payload) => {
                    node_sends.clear();
                    node_events.clear();
                    panic = Some((v, panic_message(payload)));
                }
            }
            stage_sends = node_sends;
            stage_events = node_events;
            inboxes[i].clear();
            if panic.is_some() {
                break;
            }
        }
        let all_halted = nodes.iter().all(|p| p.is_halted());
        let busy_ns = busy_start
            .map(|t| t.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        let reply = WorkerReply {
            index,
            sends,
            events,
            inboxes,
            busy_ns,
            compute_ns,
            inbox_messages,
            nodes_stepped,
            all_halted,
            panic,
        };
        if tx.send(reply).is_err() {
            break;
        }
    }
    nodes
}

impl<P: Protocol + Send> Network<P> {
    /// Runs like [`Network::run`] but steps each round's nodes on a
    /// persistent pool of `threads` workers, fed per-round via channels.
    /// The result (node states, metrics, message order, traces) is
    /// identical to the serial engine: within a round node steps are
    /// independent, worker outputs are merged in node-id order, and
    /// inboxes are canonically sorted by port.
    ///
    /// # Errors
    ///
    /// Same as [`Network::run`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_parallel(
        &mut self,
        max_rounds: u64,
        threads: usize,
    ) -> Result<RunReport, CongestError> {
        assert!(threads > 0, "need at least one worker thread");
        if self.quiescent() {
            return Ok(RunReport { rounds: self.round });
        }
        if self.round >= max_rounds {
            return Err(CongestError::RoundLimit { max_rounds });
        }

        let n = self.graph.n();
        let chunk = n.div_ceil(threads).max(1);
        // The pool owns the node states and inbox buffers for the whole
        // run, split into contiguous per-worker chunks; everything is
        // reassembled into `self` before returning.
        let mut node_chunks: Vec<Vec<P>> = split_chunks(std::mem::take(&mut self.nodes), chunk);
        let mut chunk_inboxes = split_chunks(std::mem::take(&mut self.inboxes), chunk);
        let mut chunk_next = split_chunks(std::mem::take(&mut self.spare), chunk);
        let workers = node_chunks.len();

        let graph = &self.graph;
        let metrics = &mut self.metrics;
        let profiler = &mut self.profiler;
        let port_scratch = &mut self.port_scratch;
        let round_ref = &mut self.round;
        let budget_bits = self.budget_bits;
        let enforcement = self.config.enforcement;
        let cut = self.config.cut.as_ref();
        let skip_idle = self.config.skip_idle;
        let faults = self.config.faults.as_ref();
        let delayed = &mut self.delayed;
        let mut sink = self.sink.take();

        let result = crossbeam::thread::scope(|scope| {
            let mut cmd_txs = Vec::with_capacity(workers);
            let mut reply_rxs = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            let mut base = 0 as NodeId;
            for nodes in node_chunks.drain(..) {
                let (cmd_tx, cmd_rx) = mpsc::channel::<WorkerCmd>();
                let (reply_tx, reply_rx) = mpsc::channel::<WorkerReply>();
                let b = base;
                base += nodes.len() as NodeId;
                handles.push(
                    scope.spawn(move |_| pool_worker(b, nodes, graph, faults, cmd_rx, reply_tx)),
                );
                cmd_txs.push(cmd_tx);
                reply_rxs.push(reply_rx);
            }
            let mut reply_bufs: Vec<ReplyBufs> = (0..workers)
                .map(|_| (Vec::new(), Vec::new(), Vec::new()))
                .collect();
            // Next-inbox slots touched this round, as (worker, local index).
            let mut touched: Vec<(usize, usize)> = Vec::new();

            let run_result = loop {
                let round = *round_ref;
                if !delayed.is_empty() {
                    for (target, port, msg) in take_due(delayed, round) {
                        let (tw, tl) = (target as usize / chunk, target as usize % chunk);
                        let slot = &mut chunk_inboxes[tw][tl];
                        slot.push((port, msg));
                        slot.sort_unstable_by_key(|&(port, _)| port);
                    }
                }
                metrics.begin_round(round);
                let tracing = sink.is_some();
                let profiling = profiler.is_some();
                let round_start = profiling.then(Instant::now);
                // Ship the round to every worker before doing main-thread
                // work, so workers step while the main thread traces.
                for (w, tx) in cmd_txs.iter().enumerate() {
                    let (index, sends, events) = std::mem::take(&mut reply_bufs[w]);
                    let cmd = WorkerCmd::Step {
                        round,
                        tracing,
                        profiling,
                        skip_idle,
                        inboxes: std::mem::take(&mut chunk_inboxes[w]),
                        index,
                        sends,
                        events,
                    };
                    tx.send(cmd).expect("pool worker alive");
                }
                if let Some(s) = sink.as_deref_mut() {
                    s.event(&TraceEvent::RoundStart { round });
                }
                let mut replies: Vec<WorkerReply> = reply_rxs
                    .iter()
                    .map(|rx| rx.recv().expect("pool worker alive"))
                    .collect();
                // Chunks hold ascending node-id ranges and a worker stops
                // at its first panic, so the first panic in worker order is
                // the lowest-id panicking node — the one the serial engine
                // would have hit.
                let first_panic = replies
                    .iter()
                    .enumerate()
                    .find_map(|(w, r)| r.panic.as_ref().map(|(v, m)| (w, *v, m.clone())));
                let mut first_error: Option<CongestError> = None;
                let mut worker_busy_ns = Vec::new();
                let mut compute_ns = 0u64;
                let mut inbox_messages = 0u64;
                let mut nodes_stepped = 0u64;
                let mut all_halted = true;
                for (w, rep) in replies.iter_mut().enumerate() {
                    if profiling {
                        worker_busy_ns.push(rep.busy_ns);
                        compute_ns += rep.compute_ns;
                        inbox_messages += rep.inbox_messages;
                    }
                    nodes_stepped += rep.nodes_stepped;
                    all_halted &= rep.all_halted;
                    // Deliver and validate this chunk's output unless a
                    // lower chunk panicked (the serial engine would never
                    // have stepped these nodes).
                    let process = first_panic.as_ref().is_none_or(|&(pw, _, _)| w <= pw);
                    if process {
                        let mut sends_iter = rep.sends.drain(..);
                        let mut events_iter = rep.events.drain(..);
                        for &(v, n_sends, n_events) in rep.index.iter() {
                            for detail in events_iter.by_ref().take(n_events as usize) {
                                if let Some(s) = sink.as_deref_mut() {
                                    s.event(&TraceEvent::Protocol {
                                        round,
                                        node: v,
                                        detail,
                                    });
                                }
                            }
                            account_sends(
                                v,
                                round,
                                sends_iter.by_ref().take(n_sends as usize),
                                graph,
                                budget_bits,
                                cut,
                                metrics,
                                port_scratch,
                                |target, reverse_port, msg| {
                                    let (tw, tl) =
                                        (target as usize / chunk, target as usize % chunk);
                                    let slot = &mut chunk_next[tw][tl];
                                    if slot.is_empty() {
                                        touched.push((tw, tl));
                                    }
                                    slot.push((reverse_port, msg));
                                },
                                &mut first_error,
                                sink.as_deref_mut(),
                                faults,
                                delayed,
                            );
                        }
                    }
                    // Recycle the reply buffers (sends/events may hold
                    // unprocessed leftovers after a panic; the worker
                    // clears all three on the next Step).
                    reply_bufs[w] = (
                        std::mem::take(&mut rep.index),
                        std::mem::take(&mut rep.sends),
                        std::mem::take(&mut rep.events),
                    );
                    chunk_inboxes[w] = std::mem::take(&mut rep.inboxes);
                }
                if let Some((_, v, message)) = first_panic {
                    for &(tw, tl) in &touched {
                        chunk_next[tw][tl].clear();
                    }
                    touched.clear();
                    break Err(CongestError::NodePanic {
                        node: v,
                        round,
                        message,
                    });
                }
                if let (Some(err), Enforcement::Strict) = (&first_error, enforcement) {
                    for &(tw, tl) in &touched {
                        chunk_next[tw][tl].clear();
                    }
                    touched.clear();
                    break Err(err.clone());
                }
                let mut pending = 0usize;
                for &(tw, tl) in &touched {
                    let slot = &mut chunk_next[tw][tl];
                    slot.sort_unstable_by_key(|&(port, _)| port);
                    pending += slot.len();
                }
                touched.clear();
                std::mem::swap(&mut chunk_inboxes, &mut chunk_next);
                *round_ref += 1;
                metrics.rounds = *round_ref;
                if let (Some(t0), Some(p)) = (round_start, profiler.as_mut()) {
                    p.record_round(RoundSpan {
                        round,
                        total_ns: t0.elapsed().as_nanos() as u64,
                        compute_ns,
                        inbox_messages,
                        nodes_stepped,
                        worker_busy_ns,
                    });
                }
                if pending == 0 && all_halted && delayed.is_empty() {
                    break Ok(RunReport { rounds: *round_ref });
                }
                if *round_ref >= max_rounds {
                    break Err(CongestError::RoundLimit { max_rounds });
                }
            };
            // Shut the pool down and reclaim the node states (chunks come
            // back in spawn order = ascending node-id order).
            for tx in &cmd_txs {
                let _ = tx.send(WorkerCmd::Finish);
            }
            drop(cmd_txs);
            for h in handles {
                node_chunks.push(h.join().expect("pool worker thread died"));
            }
            run_result
        })
        .expect("worker pool scope failed");

        self.nodes = node_chunks.drain(..).flatten().collect();
        self.inboxes = chunk_inboxes.into_iter().flatten().collect();
        self.spare = chunk_next.into_iter().flatten().collect();
        debug_assert_eq!(self.nodes.len(), n);
        debug_assert!(self.spare.iter().all(|i| i.is_empty()));
        self.sink = sink;
        result
    }
}

/// Splits `items` into contiguous chunks of `chunk` elements (the last may
/// be shorter), preserving order.
fn split_chunks<T>(mut items: Vec<T>, chunk: usize) -> Vec<Vec<T>> {
    let mut chunks = Vec::with_capacity(items.len().div_ceil(chunk.max(1)));
    while !items.is_empty() {
        let rest = items.split_off(chunk.min(items.len()));
        chunks.push(items);
        items = rest;
    }
    chunks
}

/// Renders a `catch_unwind` payload (usually a `&str` or `String` from
/// `panic!`/`assert!`) for [`CongestError::NodePanic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Moves the fault-delayed messages due in `round` out of `delayed`,
/// preserving injection order (so inbox insertion stays deterministic).
fn take_due(
    delayed: &mut Vec<(u64, NodeId, usize, Message)>,
    round: u64,
) -> Vec<(NodeId, usize, Message)> {
    let mut due = Vec::new();
    for (at, target, port, msg) in std::mem::take(delayed) {
        if at == round {
            due.push((target, port, msg));
        } else {
            delayed.push((at, target, port, msg));
        }
    }
    due
}

/// Validates and delivers one node's staged sends: collision detection,
/// budget enforcement, metric accounting, cut-flow accounting, and — via
/// `deliver` — enqueueing into the receivers' next-round inboxes. With a
/// fault plan attached, each message additionally passes through the
/// plan's per-slot decision: drop, bit-corruption, duplication (a second
/// `MessageSent` is traced for the extra wire copy), or delay (parked in
/// `delayed` until its delivery round).
#[allow(clippy::too_many_arguments)]
fn account_sends<S: TraceSink + ?Sized>(
    v: NodeId,
    round: u64,
    staged: impl Iterator<Item = (usize, Message)>,
    graph: &Graph,
    budget_bits: Option<usize>,
    cut: Option<&EdgeCut>,
    metrics: &mut NetMetrics,
    port_counts: &mut Vec<u8>,
    mut deliver: impl FnMut(NodeId, usize, Message),
    first_error: &mut Option<CongestError>,
    mut sink: Option<&mut S>,
    faults: Option<&FaultPlan>,
    delayed: &mut Vec<(u64, NodeId, usize, Message)>,
) {
    // Collision detection: count messages per port (the scratch buffer is
    // only reset when the node actually sent something).
    let neighbors = graph.neighbors(v);
    let mut prepared = false;
    for (port, msg) in staged {
        if !prepared {
            prepared = true;
            port_counts.clear();
            port_counts.resize(neighbors.len(), 0);
        }
        port_counts[port] = port_counts[port].saturating_add(1);
        if port_counts[port] > 1 {
            metrics.collisions += 1;
            if first_error.is_none() {
                *first_error = Some(CongestError::Collision {
                    node: v,
                    port,
                    round,
                });
            }
            if let Some(s) = sink.as_deref_mut() {
                s.event(&TraceEvent::ViolationDetected {
                    round,
                    node: v,
                    kind: ViolationKind::Collision { port },
                });
            }
        }
        metrics.max_messages_per_edge_round = metrics
            .max_messages_per_edge_round
            .max(port_counts[port] as u32);
        let bits = msg.bit_len();
        metrics.total_messages += 1;
        metrics.total_bits += bits as u64;
        metrics.max_message_bits = metrics.max_message_bits.max(bits);
        metrics.record_message(round, bits);
        if let Some(budget) = budget_bits {
            if bits > budget {
                metrics.oversized_messages += 1;
                if first_error.is_none() {
                    *first_error = Some(CongestError::Oversized {
                        node: v,
                        bits,
                        budget,
                        round,
                    });
                }
                if let Some(s) = sink.as_deref_mut() {
                    s.event(&TraceEvent::ViolationDetected {
                        round,
                        node: v,
                        kind: ViolationKind::Oversized { bits, budget },
                    });
                }
            }
        }
        let target = neighbors[port];
        // Fault decisions are pure in (seed, from, to, round), so every
        // engine injects the identical pattern in any execution order.
        let decision = faults
            .map(|p| p.decide(v, target, round))
            .unwrap_or_default();
        if let Some(s) = sink.as_deref_mut() {
            let event = TraceEvent::MessageSent {
                round,
                from: v,
                to: target,
                bits,
                payload: faults.map(|_| faults::payload_hash(&msg)),
            };
            s.event(&event);
            if decision.duplicate {
                // The injected duplicate is a real wire event; tracing it
                // is what lets `check-trace` flag duplicate delivery.
                s.event(&event);
            }
        }
        if let Some(cut) = cut {
            if cut.contains(v, target) {
                metrics.cut_bits += bits as u64;
                metrics.cut_messages += 1;
            }
        }
        let reverse_port = graph
            .neighbors(target)
            .binary_search(&v)
            .expect("undirected graph: reverse edge exists");
        if decision.is_clean() {
            deliver(target, reverse_port, msg);
            continue;
        }
        if decision.drop {
            metrics.faults_dropped += 1;
            continue;
        }
        let msg = match decision.corrupt {
            Some(entropy) => {
                metrics.faults_corrupted += 1;
                faults::corrupt_message(&msg, entropy)
            }
            None => msg,
        };
        let copies = if decision.duplicate {
            metrics.faults_duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            if decision.delay > 0 {
                metrics.faults_delayed += 1;
                delayed.push((
                    round + 1 + decision.delay,
                    target,
                    reverse_port,
                    msg.clone(),
                ));
            } else {
                deliver(target, reverse_port, msg.clone());
            }
        }
    }
}
