//! The synchronous CONGEST network engine.
//!
//! Executes a [`Protocol`] state machine at every node of a graph in
//! globally synchronized rounds (Section III-A of the paper): messages sent
//! in round `r` are delivered at the start of round `r + 1`; each node may
//! send at most one message per incident edge per round; each message is
//! charged its exact payload size in bits against an `O(log N)` budget.
//!
//! The engine does not merely *assume* the CONGEST constraints — it
//! measures them ([`crate::NetMetrics`]) and, under
//! [`Enforcement::Strict`], fails the execution on the first violation,
//! which turns protocol bugs (schedule collisions, oversized encodings)
//! into test failures.
//!
//! Both engines share three throughput mechanisms, none of which may change
//! observable output (node states, metrics, traces are bit-identical with
//! them on or off):
//!
//! - **double-buffered inboxes** — current and next-round inboxes swap each
//!   round, so per-node `Vec` allocations are reused instead of reallocated;
//! - **idle-node skipping** — a node whose inbox is empty and whose
//!   [`Protocol::idle_at`] returns `true` is not stepped at all (sound
//!   because `idle_at` promises the step would be a no-op); disable via
//!   [`Config::skip_idle`] as a correctness escape hatch;
//! - **a sharded data plane** — [`Network::run_parallel`] spawns a
//!   persistent pool of workers, each *owning* one shard of node states and
//!   inboxes for the whole run (assignment chosen by
//!   [`Config::partition`]). Workers validate and route their own sends
//!   directly into per-destination outboxes; at the next round barrier each
//!   destination drains its peers' batches, so message payloads never pass
//!   through the main thread. Only compact summaries (trace-event buffers,
//!   fault-delayed sends, error/panic attribution) return to the main
//!   thread, which k-way-merges them in ascending node-id order — keeping
//!   parallel traces and metrics byte-identical to serial for every worker
//!   count and every partition strategy.

use crate::faults::{self, FaultPlan};
use crate::message::Message;
use crate::metrics::{EdgeCut, NetMetrics};
use crate::partition::{Partition, ShardMap};
use crate::profile::{Profiler, RoundSpan};
use crate::telemetry::{Telemetry, TelemetryHandle};
use crate::trace::{ProtocolDetail, TraceEvent, TraceSink, ViolationKind};
use bc_graph::{Graph, NodeId};
use bc_numeric::bits::id_bits;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Per-message bit budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Budget {
    /// `8·⌈log₂ N⌉ + 64` bits — a concrete `Θ(log N)` with room for the
    /// protocol headers used in this workspace.
    #[default]
    Auto,
    /// A fixed budget in bits.
    Bits(usize),
    /// No limit (sizes are still recorded).
    Unlimited,
}

impl Budget {
    /// Resolves the budget for an `n`-node network (`None` = unlimited).
    pub fn resolve(self, n: usize) -> Option<usize> {
        match self {
            Budget::Auto => Some(8 * id_bits(n.max(2)) as usize + 64),
            Budget::Bits(b) => Some(b),
            Budget::Unlimited => None,
        }
    }
}

/// What to do when a CONGEST constraint is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Enforcement {
    /// Abort the run with a [`CongestError`].
    #[default]
    Strict,
    /// Record the violation in [`NetMetrics`] and keep going.
    Record,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Per-message bit budget.
    pub budget: Budget,
    /// Violation handling.
    pub enforcement: Enforcement,
    /// Optional edge cut across which bit flow is measured.
    pub cut: Option<EdgeCut>,
    /// Skip stepping nodes whose inbox is empty and whose
    /// [`Protocol::idle_at`] returns `true`. On by default; turn off to
    /// force every node to step every round (correctness escape hatch —
    /// output must not change either way).
    pub skip_idle: bool,
    /// Optional fault-injection plan applied between outboxes and
    /// inboxes: per-edge/per-round drop, duplication, corruption, and
    /// delay, plus node crash windows (see [`crate::faults`]). `None`
    /// (the default) is the ideal fault-free network.
    pub faults: Option<FaultPlan>,
    /// Node→worker assignment strategy for [`Network::run_parallel`].
    /// Observable output (states, metrics, traces) is identical for every
    /// strategy; only how evenly the per-round work spreads across the
    /// pool changes. Ignored by the serial engine.
    pub partition: Partition,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            budget: Budget::default(),
            enforcement: Enforcement::default(),
            cut: None,
            skip_idle: true,
            faults: None,
            partition: Partition::default(),
        }
    }
}

/// A CONGEST constraint violation (only surfaced under
/// [`Enforcement::Strict`]) or an execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CongestError {
    /// A node staged two messages on the same incident edge in one round.
    Collision {
        /// Sending node.
        node: NodeId,
        /// Port (index into the node's adjacency list).
        port: usize,
        /// Round in which it happened.
        round: u64,
    },
    /// A message exceeded the per-message bit budget.
    Oversized {
        /// Sending node.
        node: NodeId,
        /// The message's size in bits.
        bits: usize,
        /// The configured budget.
        budget: usize,
        /// Round in which it happened.
        round: u64,
    },
    /// `run` hit its round limit before all nodes halted.
    RoundLimit {
        /// The limit that was hit.
        max_rounds: u64,
    },
    /// A node's [`Protocol::round`] panicked. Both engines surface the
    /// lowest-id panicking node of the round rather than aborting the
    /// process.
    NodePanic {
        /// The node whose step panicked.
        node: NodeId,
        /// Round in which it happened.
        round: u64,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::Collision { node, port, round } => write!(
                f,
                "collision: node {node} sent twice on port {port} in round {round}"
            ),
            CongestError::Oversized {
                node,
                bits,
                budget,
                round,
            } => write!(
                f,
                "oversized message: node {node} sent {bits} bits (budget {budget}) in round {round}"
            ),
            CongestError::RoundLimit { max_rounds } => {
                write!(f, "network did not halt within {max_rounds} rounds")
            }
            CongestError::NodePanic {
                node,
                round,
                message,
            } => write!(f, "node {node} panicked in round {round}: {message}"),
        }
    }
}

impl std::error::Error for CongestError {}

/// The per-node state machine executed by the engine.
///
/// Implementations receive one [`Protocol::round`] call per simulated round
/// with the messages that arrived at the start of that round, and may stage
/// outgoing messages through the [`RoundCtx`]. Local computation is free,
/// matching the model ("every node can perform local computation in each
/// round and it has no influence on the time complexity").
pub trait Protocol {
    /// Executes one synchronous round.
    fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]);

    /// Returns `true` once this node will neither send nor needs to receive
    /// any further messages. The engine stops when every node is halted and
    /// no messages are in flight.
    fn is_halted(&self) -> bool;

    /// Returns `true` if calling [`Protocol::round`] for `round` with an
    /// *empty* inbox would be a no-op: no sends, no trace events, and no
    /// observable state change. The engine then skips the call entirely
    /// (unless [`Config::skip_idle`] is off). The default is `false` —
    /// protocols that act on a schedule rather than on messages must keep
    /// it that way for the rounds they act in.
    fn idle_at(&self, round: u64) -> bool {
        let _ = round;
        false
    }
}

/// Per-round, per-node execution context: identity, topology access, and
/// the staging area for outgoing messages.
#[derive(Debug)]
pub struct RoundCtx<'a> {
    id: NodeId,
    round: u64,
    graph: &'a Graph,
    sends: Vec<(usize, Message)>,
    tracing: bool,
    events: Vec<ProtocolDetail>,
}

impl<'a> RoundCtx<'a> {
    /// Builds a context staging into recycled buffers (must be empty).
    /// The engines drain and reuse them round over round.
    pub(crate) fn with_buffers(
        id: NodeId,
        round: u64,
        graph: &'a Graph,
        tracing: bool,
        sends: Vec<(usize, Message)>,
        events: Vec<ProtocolDetail>,
    ) -> Self {
        debug_assert!(sends.is_empty() && events.is_empty());
        RoundCtx {
            id,
            round,
            graph,
            sends,
            tracing,
            events,
        }
    }

    /// Recovers the staging buffers so an engine outside this module (the
    /// wire engine) can recycle them the way the in-process workers do.
    pub(crate) fn into_buffers(self) -> (Vec<(usize, Message)>, Vec<ProtocolDetail>) {
        (self.sends, self.events)
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current round number (starting at 0).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Total number of nodes `N` (known to all nodes, as the paper assumes
    /// for computing `O(log N)`-bit encodings and schedules).
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.id)
    }

    /// Identifier of the neighbor reached through `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree()`.
    pub fn neighbor(&self, port: usize) -> NodeId {
        self.graph.neighbors(self.id)[port]
    }

    /// Port through which `neighbor` is reached, if adjacent.
    pub fn port_of(&self, neighbor: NodeId) -> Option<usize> {
        self.graph.neighbors(self.id).binary_search(&neighbor).ok()
    }

    /// Stages `msg` for delivery to the neighbor on `port` at the start of
    /// the next round.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree()`. (The engine converts the panic into a
    /// [`CongestError::NodePanic`] run error.)
    pub fn send(&mut self, port: usize, msg: Message) {
        assert!(port < self.degree(), "send on nonexistent port {port}");
        self.sends.push((port, msg));
    }

    /// Stages `msg` to every neighbor (a local broadcast, one message per
    /// incident edge — permitted by CONGEST).
    pub fn broadcast(&mut self, msg: &Message) {
        for port in 0..self.degree() {
            self.sends.push((port, msg.clone()));
        }
    }

    /// Drains the staged sends (used by the asynchronous synchronizer,
    /// which transports them itself).
    pub(crate) fn take_sends(&mut self) -> Vec<(usize, Message)> {
        std::mem::take(&mut self.sends)
    }

    /// Executes one *virtual* round of a nested protocol on behalf of a
    /// wrapper protocol (e.g. a reliable-transport layer). `inner.round`
    /// runs with a context for the same node and graph but round number
    /// `vround`, and the messages it stages are returned to the wrapper —
    /// which transports them itself — instead of going to the engine.
    /// Trace events staged by the nested protocol are re-staged into this
    /// context, so they surface under the wrapper's physical round.
    pub fn nested_round<P: Protocol>(
        &mut self,
        vround: u64,
        inner: &mut P,
        inbox: &[(usize, Message)],
    ) -> Vec<(usize, Message)> {
        let mut ctx = RoundCtx::with_buffers(
            self.id,
            vround,
            self.graph,
            self.tracing,
            Vec::new(),
            Vec::new(),
        );
        inner.round(&mut ctx, inbox);
        self.events.append(&mut ctx.events);
        ctx.sends
    }

    /// Returns `true` when a trace sink is attached to the engine, so
    /// protocols can skip expensive event preparation entirely.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Stages a protocol-level trace event for this round. A no-op unless
    /// the engine has a trace sink attached ([`RoundCtx::tracing`]), so
    /// untraced runs pay only this branch.
    pub fn trace(&mut self, detail: ProtocolDetail) {
        if self.tracing {
            self.events.push(detail);
        }
    }

    /// Drains the staged trace events (engine-side).
    pub(crate) fn take_events(&mut self) -> Vec<ProtocolDetail> {
        std::mem::take(&mut self.events)
    }
}

/// Outcome of a successful run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Rounds executed until quiescence.
    pub rounds: u64,
}

/// A simulated synchronous network executing protocol `P` on every node.
pub struct Network<P> {
    graph: Graph,
    config: Config,
    budget_bits: Option<usize>,
    nodes: Vec<P>,
    inboxes: Vec<Vec<(usize, Message)>>,
    /// Next-round inboxes; swapped with `inboxes` each round so the inner
    /// `Vec` allocations are recycled. Invariant: all entries are empty
    /// between rounds.
    spare: Vec<Vec<(usize, Message)>>,
    /// Recycled staging buffers for the serial engine's `RoundCtx`.
    stage_sends: Vec<(usize, Message)>,
    stage_events: Vec<ProtocolDetail>,
    /// Recycled per-port collision counters for `account_sends`.
    port_scratch: Vec<u8>,
    /// Recycled list of next-inbox indices touched in the current round
    /// (only those get sorted).
    touched: Vec<NodeId>,
    /// Fault-delayed messages still in flight:
    /// `(delivery round, target, port, message)` in injection order.
    delayed: Vec<(u64, NodeId, usize, Message)>,
    metrics: NetMetrics,
    round: u64,
    sink: Option<Box<dyn TraceSink>>,
    profiler: Option<Profiler>,
    telemetry: Option<TelemetryHandle>,
}

impl<P> fmt::Debug for Network<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Network(n={}, round={}, metrics={:?})",
            self.graph.n(),
            self.round,
            self.metrics
        )
    }
}

impl<P: Protocol> Network<P> {
    /// Builds a network over `graph` where node `v` runs
    /// `factory(v, graph)`.
    pub fn new<F>(graph: &Graph, config: Config, mut factory: F) -> Self
    where
        F: FnMut(NodeId, &Graph) -> P,
    {
        let n = graph.n();
        let nodes = (0..n as NodeId).map(|v| factory(v, graph)).collect();
        Network {
            budget_bits: config.budget.resolve(n),
            graph: graph.clone(),
            config,
            nodes,
            inboxes: vec![Vec::new(); n],
            spare: vec![Vec::new(); n],
            stage_sends: Vec::new(),
            stage_events: Vec::new(),
            port_scratch: Vec::new(),
            touched: Vec::new(),
            delayed: Vec::new(),
            metrics: NetMetrics::default(),
            round: 0,
            sink: None,
            profiler: None,
            telemetry: None,
        }
    }

    /// Installs a trace sink; subsequent rounds emit
    /// [`TraceEvent`]s into it. Returns the previously installed sink.
    ///
    /// Both engines produce the identical, deterministic event stream:
    /// per round, one `RoundStart`, then each node's protocol events
    /// followed by its `MessageSent`s, in node-id order (the parallel
    /// engine merges worker buffers back into this order).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
        self.sink.replace(sink)
    }

    /// Removes and returns the trace sink, stopping emission.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Installs a wall-clock profiler; subsequent rounds record
    /// [`RoundSpan`]s into it. Strictly opt-in, like tracing: without a
    /// profiler each round pays a single branch, and a profiled run
    /// produces bit-identical node states and metrics. Returns any
    /// previously installed profiler.
    pub fn set_profiler(&mut self, profiler: Profiler) -> Option<Profiler> {
        self.profiler.replace(profiler)
    }

    /// Removes and returns the profiler, stopping recording.
    pub fn take_profiler(&mut self) -> Option<Profiler> {
        self.profiler.take()
    }

    /// Attaches a shared telemetry registry; subsequent rounds batch
    /// counter/histogram updates into it (one update per worker per
    /// round) and commit each round into its flight recorder. Carries
    /// the same observational-freeness guarantee as the profiler:
    /// results, metrics, and traces are bit-identical with telemetry on
    /// or off, on every engine. Returns the previously attached
    /// registry.
    pub fn set_telemetry(
        &mut self,
        telemetry: std::sync::Arc<Telemetry>,
    ) -> Option<std::sync::Arc<Telemetry>> {
        self.telemetry
            .replace(TelemetryHandle::new(telemetry, 0))
            .map(|h| h.registry().clone())
    }

    /// Detaches and returns the telemetry registry, stopping recording.
    pub fn take_telemetry(&mut self) -> Option<std::sync::Arc<Telemetry>> {
        self.telemetry.take().map(|h| h.registry().clone())
    }

    /// The simulated graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Read access to a node's protocol state.
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v as usize]
    }

    /// Consumes the network, returning all node states.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// Runs until every node reports halted and no messages are in flight.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::RoundLimit`] if the protocol does not halt
    /// within `max_rounds`, a constraint violation under
    /// [`Enforcement::Strict`], or [`CongestError::NodePanic`] if a node's
    /// step panicked.
    pub fn run(&mut self, max_rounds: u64) -> Result<RunReport, CongestError> {
        while !self.quiescent() {
            if self.round >= max_rounds {
                return Err(CongestError::RoundLimit { max_rounds });
            }
            self.step()?;
        }
        Ok(RunReport { rounds: self.round })
    }

    /// Runs exactly `rounds` additional rounds (useful for protocols
    /// observed mid-flight).
    ///
    /// # Errors
    ///
    /// Returns a constraint violation under [`Enforcement::Strict`].
    pub fn run_rounds(&mut self, rounds: u64) -> Result<RunReport, CongestError> {
        for _ in 0..rounds {
            self.step()?;
        }
        Ok(RunReport { rounds: self.round })
    }

    fn quiescent(&self) -> bool {
        self.inboxes.iter().all(|i| i.is_empty())
            && self.delayed.is_empty()
            && self.nodes.iter().all(|p| p.is_halted())
    }

    /// Executes a single round serially.
    fn step(&mut self) -> Result<(), CongestError> {
        let n = self.graph.n();
        let round = self.round;
        let skip_idle = self.config.skip_idle;
        let mut first_error: Option<CongestError> = None;
        if !self.delayed.is_empty() {
            for (target, port, msg) in take_due(&mut self.delayed, round) {
                let inbox = &mut self.inboxes[target as usize];
                inbox.push((port, msg));
                // Stable: equal-port entries (Record-mode collisions, fault
                // duplicates) keep arrival order — normal before delayed —
                // which is the canonical order the parallel engine's shard
                // drain reproduces.
                inbox.sort_by_key(|&(port, _)| port);
            }
        }
        self.metrics.begin_round(round);
        // The sink leaves `self` for the loop so node stepping (which
        // borrows nodes/graph/metrics) and event emission don't conflict.
        let mut sink = self.sink.take();
        if let Some(s) = sink.as_deref_mut() {
            s.event(&TraceEvent::RoundStart { round });
        }
        let tracing = sink.is_some();
        let profiling = self.profiler.is_some();
        let counting_inboxes = profiling || self.telemetry.is_some();
        let round_start = profiling.then(Instant::now);
        let mut compute_ns = 0u64;
        let mut inbox_messages = 0u64;
        let mut nodes_stepped = 0u64;
        let mut touched = std::mem::take(&mut self.touched);
        let spare = &mut self.spare;
        let faults = self.config.faults.as_ref();
        debug_assert!(spare.iter().all(|i| i.is_empty()));
        for v in 0..n {
            // A crashed node is down for the whole round: it neither steps
            // nor keeps the messages that arrived while it was down.
            if faults.is_some_and(|p| p.crashed(v as NodeId, round)) {
                self.inboxes[v].clear();
                continue;
            }
            let node = &mut self.nodes[v];
            let inbox = &self.inboxes[v];
            if inbox.is_empty() && skip_idle && node.idle_at(round) {
                continue;
            }
            nodes_stepped += 1;
            let mut ctx = RoundCtx::with_buffers(
                v as NodeId,
                round,
                &self.graph,
                tracing,
                std::mem::take(&mut self.stage_sends),
                std::mem::take(&mut self.stage_events),
            );
            if counting_inboxes {
                inbox_messages += inbox.len() as u64;
            }
            let t = profiling.then(Instant::now);
            let outcome = catch_unwind(AssertUnwindSafe(|| node.round(&mut ctx, inbox)));
            if let Some(t) = t {
                compute_ns += t.elapsed().as_nanos() as u64;
            }
            if let Err(payload) = outcome {
                // Abandon this round: drop the panicking node's partial
                // output and any messages already routed, restoring the
                // all-empty `spare` invariant for later steps.
                drop(ctx);
                for &t in &touched {
                    spare[t as usize].clear();
                }
                touched.clear();
                self.touched = touched;
                self.sink = sink;
                return Err(CongestError::NodePanic {
                    node: v as NodeId,
                    round,
                    message: panic_message(payload),
                });
            }
            let (mut sends, mut events) = (ctx.sends, ctx.events);
            if let Some(s) = sink.as_deref_mut() {
                for detail in events.drain(..) {
                    s.event(&TraceEvent::Protocol {
                        round,
                        node: v as NodeId,
                        detail,
                    });
                }
            }
            account_sends(
                v as NodeId,
                round,
                sends.drain(..),
                &self.graph,
                self.budget_bits,
                self.config.cut.as_ref(),
                &mut self.metrics,
                &mut self.port_scratch,
                |target, reverse_port, msg| {
                    let inbox = &mut spare[target as usize];
                    if inbox.is_empty() {
                        touched.push(target);
                    }
                    inbox.push((reverse_port, msg));
                },
                &mut first_error,
                sink.as_deref_mut(),
                faults,
                &mut self.delayed,
            );
            self.stage_sends = sends;
            self.stage_events = events;
            self.inboxes[v].clear();
        }
        self.sink = sink;
        if let (Some(err), Enforcement::Strict) = (&first_error, self.config.enforcement) {
            for &t in &touched {
                spare[t as usize].clear();
            }
            touched.clear();
            self.touched = touched;
            return Err(err.clone());
        }
        for &t in &touched {
            // Stable for the same reason as the delayed-message insertion
            // above: staging order breaks equal-port ties canonically.
            spare[t as usize].sort_by_key(|&(port, _)| port);
        }
        touched.clear();
        self.touched = touched;
        std::mem::swap(&mut self.inboxes, &mut self.spare);
        self.round += 1;
        self.metrics.rounds = self.round;
        if let (Some(t0), Some(p)) = (round_start, self.profiler.as_mut()) {
            p.record_round(RoundSpan {
                round,
                total_ns: t0.elapsed().as_nanos() as u64,
                compute_ns,
                inbox_messages,
                nodes_stepped,
                ..RoundSpan::default()
            });
        }
        if let Some(h) = self.telemetry.as_mut() {
            h.on_round(&self.metrics, nodes_stepped, inbox_messages, 0, 0);
            h.registry().finish_round(round);
        }
        Ok(())
    }
}

/// One routed message in flight between workers: `(destination's local
/// index within its shard, reverse port, payload)`.
type LaneEntry = (u32, usize, Message);

/// One round's worth of cross-shard messages on one directed worker→worker
/// lane. Exactly one batch (possibly empty) crosses each lane per round —
/// that invariant is what lets the receiver's drain double as the round
/// barrier.
type LaneBatch = Vec<LaneEntry>;

/// What a worker loop hands back to the main thread when it exits: the
/// shard's node states, per-node inboxes, and its [`NetMetrics`] partial.
type ShardHandoff<P> = (Vec<P>, Vec<Vec<(usize, Message)>>, NetMetrics);

/// Recycled buffers that round-trip between the main thread and a worker:
/// shipped empty with each `Step`, returned filled in the [`WorkerReply`].
#[derive(Default)]
struct StepBufs {
    /// `(node, events emitted)` per stepped node that produced trace
    /// events, ascending by node id; payloads are flattened into `events`
    /// in the same order.
    index: Vec<(NodeId, u32)>,
    events: Vec<TraceEvent>,
    /// Fault-delayed sends staged this round, tagged with their sender:
    /// `(sender, due round, target, port, message)`, ascending by sender.
    delayed: Vec<(NodeId, u64, NodeId, usize, Message)>,
}

/// One round's work order shipped to a shard worker.
enum WorkerCmd {
    Step {
        round: u64,
        tracing: bool,
        profiling: bool,
        /// Fault-delayed messages due this round for this worker's nodes,
        /// as `(local index, port, message)` in canonical injection order.
        inject: Vec<(u32, usize, Message)>,
        bufs: StepBufs,
    },
    /// Shut down. `deliver` says whether to drain the final round's lanes
    /// into the owned inboxes first (`true` on quiescence / round limit,
    /// matching the serial engine's post-swap state; `false` on abort,
    /// where the serial engine discards the round's deliveries too).
    Finish { deliver: bool },
}

/// One round's summary from a shard worker. Message payloads are *not*
/// here — they went directly to their destination workers over the lanes.
struct WorkerReply {
    bufs: StepBufs,
    /// First constraint violation in this shard's step order (= its
    /// lowest-id violating node); the main thread picks the globally
    /// lowest across shards, which is the one the serial engine reports.
    first_error: Option<CongestError>,
    /// First `round()` panic in the shard; nodes after it were not stepped
    /// and its own output was discarded.
    panic: Option<(NodeId, String)>,
    /// Messages this worker delivered for the next round (intra + cross).
    routed: u64,
    /// Of `routed`, messages that stayed within this worker's own shard.
    intra: u64,
    /// Of `routed`, messages routed to a different worker's shard.
    cross: u64,
    busy_ns: u64,
    compute_ns: u64,
    /// Time spent draining peer lanes and routing/validating sends.
    route_ns: u64,
    inbox_messages: u64,
    nodes_stepped: u64,
    all_halted: bool,
}

/// A sense-reversing spin barrier for the free-running round loop.
///
/// Workers cross it twice per round, so the wait must stay in the
/// sub-microsecond range when the pool actually runs in parallel:
/// arrivals spin briefly on the generation counter before falling back to
/// `yield_now`. When the pool is *oversubscribed* (more workers than the
/// host has cores — detected once at construction) spinning can only
/// steal the quantum the straggler needs to arrive, so the wait yields
/// immediately instead.
///
/// `wait` returns `true` for exactly one caller per crossing: the *last*
/// arriver, which makes it the natural leader for work that must observe
/// every worker's round contribution (the continue/stop verdict).
struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
    /// Spin iterations before each check falls back to `yield_now`; zero
    /// when oversubscribed.
    spins: u32,
}

impl SpinBarrier {
    const SPINS_BEFORE_YIELD: u32 = 4096;

    fn new(total: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        Self {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
            spins: if total <= cores {
                Self::SPINS_BEFORE_YIELD
            } else {
                0
            },
        }
    }

    /// Blocks until all `total` workers have arrived; returns `true` for
    /// the last arriver (the leader of this crossing).
    fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if spins < self.spins {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

/// The free-running loop's verdict after each round, published by the
/// barrier leader. Order mirrors the orchestrated path's checks: abort
/// (panic / strict violation) beats quiescence beats the round limit.
const VERDICT_CONTINUE: u8 = 0;
const VERDICT_QUIESCENT: u8 = 1;
const VERDICT_ROUND_LIMIT: u8 = 2;
const VERDICT_ABORT: u8 = 3;

/// Shared state of the free-running data plane: per-round accumulators
/// workers publish before barrier crossing one, and the verdict the
/// leader derives from them between the two crossings.
struct RoundSync {
    barrier: SpinBarrier,
    /// Messages routed this round, summed across workers (the parallel
    /// `pending` of the orchestrated path's quiescence check).
    routed: AtomicU64,
    /// AND across workers of "my whole shard has halted".
    all_halted: AtomicBool,
    /// Any worker observed a node panic (or, under strict enforcement, a
    /// constraint violation) this round.
    fatal: AtomicBool,
    verdict: AtomicU8,
}

impl RoundSync {
    fn new(workers: usize) -> Self {
        Self {
            barrier: SpinBarrier::new(workers),
            routed: AtomicU64::new(0),
            all_halted: AtomicBool::new(true),
            fatal: AtomicBool::new(false),
            verdict: AtomicU8::new(VERDICT_CONTINUE),
        }
    }
}

/// One worker's per-round profiling sample from a free-running run,
/// assembled into [`RoundSpan`]s by the main thread after the join.
struct ProfRow {
    busy_ns: u64,
    compute_ns: u64,
    route_ns: u64,
    inbox_messages: u64,
    nodes_stepped: u64,
    intra: u64,
    cross: u64,
}

/// What a free-running worker reports at join time, replacing the
/// per-round [`WorkerReply`] stream of the orchestrated path.
struct FreeRunStats {
    /// Rounds this worker committed (identical across workers — they run
    /// in lockstep and an aborted round commits nowhere).
    rounds: u64,
    /// Strict-mode violation from the aborting round, if that is why the
    /// run stopped (canonicalized across workers by the main thread).
    first_error: Option<CongestError>,
    /// Node panic from the aborting round, if any.
    panic: Option<(NodeId, String)>,
    /// One row per committed round when profiling.
    prof: Vec<ProfRow>,
    /// Worker 0 only: wall time of each committed round, measured from
    /// its own round start to the verdict barrier.
    round_wall_ns: Vec<u64>,
}

/// Buffers a worker's trace events for the main thread's canonical merge.
struct BufSink(Vec<TraceEvent>);

impl TraceSink for BufSink {
    fn event(&mut self, event: &TraceEvent) {
        self.0.push(event.clone());
    }
}

/// The node id a violation is attributed to (used to pick the canonical —
/// lowest — violation across shards).
fn error_node(err: &CongestError) -> NodeId {
    match err {
        CongestError::Collision { node, .. }
        | CongestError::Oversized { node, .. }
        | CongestError::NodePanic { node, .. } => *node,
        CongestError::RoundLimit { .. } => NodeId::MAX,
    }
}

/// One persistent worker of the sharded data plane. Owns its shard's node
/// states and inboxes for the whole run; exchanges message batches with
/// peer workers directly over the lane mesh and reports only summaries
/// (trace buffers, delayed sends, errors, counters) to the main thread.
struct ShardWorker<'a, P> {
    me: usize,
    map: &'a ShardMap,
    graph: &'a Graph,
    budget_bits: Option<usize>,
    cut: Option<&'a EdgeCut>,
    faults: Option<&'a FaultPlan>,
    skip_idle: bool,
    /// Node states of this shard, ascending by node id.
    nodes: Vec<P>,
    /// Current-round inboxes, parallel to `nodes`.
    inboxes: Vec<Vec<(usize, Message)>>,
    /// This worker's metric partial; merged into the run metrics once at
    /// shutdown ([`NetMetrics::merge`] is commutative over disjoint node
    /// sets).
    metrics: NetMetrics,
    stage_sends: Vec<(usize, Message)>,
    stage_events: Vec<ProtocolDetail>,
    port_scratch: Vec<u8>,
    /// Untagged fault-delay staging for `account_sends`; drained per node
    /// into the sender-tagged reply buffer.
    delayed_scratch: Vec<(u64, NodeId, usize, Message)>,
    /// Next-round deliveries to this worker's own nodes (the intra-shard
    /// fast path — the self-lane never touches a channel).
    pending_intra: LaneBatch,
    /// Per-destination outboxes for the current round (`out[me]` unused).
    out: Vec<LaneBatch>,
    /// Local indices whose inbox went non-empty this round (sorted once
    /// after all deliveries).
    touched: Vec<u32>,
    /// False until the first `Step`: the initial inboxes arrive pre-filled
    /// and pre-sorted with the shard, not over the lanes.
    lanes_live: bool,
    /// `lane_tx[d]` sends this worker's batch for destination `d`.
    lane_tx: Vec<Option<mpsc::Sender<LaneBatch>>>,
    /// `lane_rx[s]` receives the batch worker `s` sent to this worker.
    lane_rx: Vec<Option<mpsc::Receiver<LaneBatch>>>,
    /// `back_tx[s]` returns worker `s`'s drained batch buffer to it.
    back_tx: Vec<Option<mpsc::Sender<LaneBatch>>>,
    /// `back_rx[d]` receives this worker's own buffers back from `d`.
    back_rx: Vec<Option<mpsc::Receiver<LaneBatch>>>,
    /// Per-worker telemetry shard; one batched update per round.
    telemetry: Option<TelemetryHandle>,
}

impl<P: Protocol> ShardWorker<'_, P> {
    /// Command loop: one [`WorkerCmd::Step`] per round until
    /// [`WorkerCmd::Finish`] (or channel close), then hand the shard's
    /// states, inboxes, and metric partial back to the main thread.
    fn run(
        mut self,
        rx: mpsc::Receiver<WorkerCmd>,
        tx: mpsc::Sender<WorkerReply>,
    ) -> ShardHandoff<P> {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                WorkerCmd::Step {
                    round,
                    tracing,
                    profiling,
                    inject,
                    bufs,
                } => {
                    let reply = self.step(round, tracing, profiling, inject, bufs);
                    if tx.send(reply).is_err() {
                        break;
                    }
                }
                WorkerCmd::Finish { deliver } => {
                    if deliver && self.lanes_live {
                        // One batch per peer lane is still in flight from
                        // the final stepped round; deliver it so the
                        // returned inboxes match the serial engine's
                        // post-swap state.
                        self.drain_lanes();
                        for &local in &self.touched {
                            self.inboxes[local as usize].sort_by_key(|&(port, _)| port);
                        }
                        self.touched.clear();
                    }
                    break;
                }
            }
        }
        (self.nodes, self.inboxes, self.metrics)
    }

    /// Free-running loop for runs with no trace sink and no fault plan:
    /// the worker steps rounds back to back, synchronizing with its peers
    /// over two [`SpinBarrier`] crossings per round instead of a
    /// command/reply round trip through the main thread.
    ///
    /// The first crossing guarantees every worker's accumulators (routed
    /// count, halt flag, fatal flag) are published; its leader derives the
    /// verdict and resets the accumulators. The second crossing publishes
    /// the verdict. Lane batches are always sent *before* the first
    /// crossing, so the next round's lane `recv` finds its batch already
    /// waiting and never parks — in steady state no thread touches a futex.
    ///
    /// Observable behaviour (states, metrics, error attribution, round
    /// count) is identical to the orchestrated path: the same `step` runs,
    /// and the leader applies the same checks in the same order.
    fn run_free(
        mut self,
        sync: &RoundSync,
        start_round: u64,
        max_rounds: u64,
        profiling: bool,
        strict: bool,
    ) -> (ShardHandoff<P>, FreeRunStats) {
        let mut stats = FreeRunStats {
            rounds: 0,
            first_error: None,
            panic: None,
            prof: Vec::new(),
            round_wall_ns: Vec::new(),
        };
        let mut bufs = StepBufs::default();
        let mut round = start_round;
        let deliver = loop {
            let round_start = (profiling && self.me == 0).then(Instant::now);
            let reply = self.step(round, false, profiling, Vec::new(), bufs);
            if reply.panic.is_some() || (strict && reply.first_error.is_some()) {
                sync.fatal.store(true, Ordering::Release);
            }
            sync.routed.fetch_add(reply.routed, Ordering::AcqRel);
            if !reply.all_halted {
                sync.all_halted.store(false, Ordering::Release);
            }
            if sync.barrier.wait() {
                // Leader: every worker's contribution is in. Decide, reset
                // the accumulators for the next round (peers are parked at
                // the second crossing, so this cannot race), publish.
                let verdict = if sync.fatal.load(Ordering::Acquire) {
                    VERDICT_ABORT
                } else if sync.routed.load(Ordering::Acquire) == 0
                    && sync.all_halted.load(Ordering::Acquire)
                {
                    VERDICT_QUIESCENT
                } else if round + 1 >= max_rounds {
                    VERDICT_ROUND_LIMIT
                } else {
                    VERDICT_CONTINUE
                };
                sync.routed.store(0, Ordering::Relaxed);
                sync.all_halted.store(true, Ordering::Relaxed);
                // The leader observed every worker's round contribution;
                // commit it into the shared flight recorder (aborted
                // rounds commit nowhere, matching the orchestrated path).
                if verdict != VERDICT_ABORT {
                    if let Some(h) = &self.telemetry {
                        h.registry().finish_round(round);
                    }
                }
                sync.verdict.store(verdict, Ordering::Release);
            }
            sync.barrier.wait();
            let verdict = sync.verdict.load(Ordering::Acquire);
            bufs = reply.bufs;
            if verdict == VERDICT_ABORT {
                // An aborted round commits nowhere (the orchestrated path
                // breaks before its round increment and profiler record);
                // keep only the error attribution for the join.
                stats.panic = reply.panic;
                if strict {
                    stats.first_error = reply.first_error;
                }
                break false;
            }
            stats.rounds += 1;
            if profiling {
                stats.prof.push(ProfRow {
                    busy_ns: reply.busy_ns,
                    compute_ns: reply.compute_ns,
                    route_ns: reply.route_ns,
                    inbox_messages: reply.inbox_messages,
                    nodes_stepped: reply.nodes_stepped,
                    intra: reply.intra,
                    cross: reply.cross,
                });
                if let Some(t0) = round_start {
                    stats.round_wall_ns.push(t0.elapsed().as_nanos() as u64);
                }
            }
            match verdict {
                VERDICT_CONTINUE => round += 1,
                _ => break true, // quiescent or round limit: clean ending
            }
        };
        if deliver && self.lanes_live {
            // Same final drain as `WorkerCmd::Finish { deliver: true }`:
            // the last stepped round's batches are still in flight.
            self.drain_lanes();
            for &local in &self.touched {
                self.inboxes[local as usize].sort_by_key(|&(port, _)| port);
            }
            self.touched.clear();
        }
        ((self.nodes, self.inboxes, self.metrics), stats)
    }

    /// Moves every peer's in-flight batch (and the worker's own intra-shard
    /// staging) into the owned inboxes, recording which went non-empty.
    /// Blocks until each peer's batch for the round has arrived — this is
    /// the data-plane half of the round barrier.
    fn drain_lanes(&mut self) {
        for src in 0..self.map.len() {
            if src == self.me {
                let mut batch = std::mem::take(&mut self.pending_intra);
                for (local, port, msg) in batch.drain(..) {
                    let inbox = &mut self.inboxes[local as usize];
                    if inbox.is_empty() {
                        self.touched.push(local);
                    }
                    inbox.push((port, msg));
                }
                self.pending_intra = batch;
            } else if let Some(rx) = &self.lane_rx[src] {
                let Ok(mut batch) = rx.recv() else { continue };
                for (local, port, msg) in batch.drain(..) {
                    let inbox = &mut self.inboxes[local as usize];
                    if inbox.is_empty() {
                        self.touched.push(local);
                    }
                    inbox.push((port, msg));
                }
                // Return the emptied buffer to its sender for reuse.
                if let Some(btx) = &self.back_tx[src] {
                    let _ = btx.send(batch);
                }
            }
        }
    }

    /// Executes one round over this worker's shard.
    fn step(
        &mut self,
        round: u64,
        tracing: bool,
        profiling: bool,
        mut inject: Vec<(u32, usize, Message)>,
        bufs: StepBufs,
    ) -> WorkerReply {
        let busy_start = profiling.then(Instant::now);
        let counting_inboxes = profiling || self.telemetry.is_some();
        self.metrics.begin_round(round);
        let mut route_ns = 0u64;

        // Delivery: drain the previous round's lanes, then the main
        // thread's fault-delayed injections (in that order — the serial
        // engine also appends delayed messages after normal ones), then
        // sort each touched inbox stably by port.
        let t = profiling.then(Instant::now);
        if self.lanes_live {
            self.drain_lanes();
        }
        for (local, port, msg) in inject.drain(..) {
            let inbox = &mut self.inboxes[local as usize];
            // `touched` tracks empty→non-empty transitions; an inbox that
            // was pre-filled when the run started (re-entry mid-flight)
            // must be marked explicitly so it still gets sorted.
            if inbox.is_empty() || !self.touched.contains(&local) {
                self.touched.push(local);
            }
            inbox.push((port, msg));
        }
        for &local in &self.touched {
            self.inboxes[local as usize].sort_by_key(|&(port, _)| port);
        }
        self.touched.clear();
        // Restock outboxes from buffers peers have returned.
        for d in 0..self.out.len() {
            if let Some(brx) = &self.back_rx[d] {
                if let Ok(buf) = brx.try_recv() {
                    debug_assert!(buf.is_empty());
                    self.out[d] = buf;
                }
            }
        }
        if let Some(t) = t {
            route_ns += t.elapsed().as_nanos() as u64;
        }

        // Step the shard in ascending node-id order, validating and
        // routing each node's sends immediately (worker-side
        // `account_sends` — no payload ever visits the main thread).
        let me = self.me;
        let map = self.map;
        let graph = self.graph;
        let shard = &map.shards()[me];
        let metrics = &mut self.metrics;
        let port_scratch = &mut self.port_scratch;
        let delayed_scratch = &mut self.delayed_scratch;
        let pending_intra = &mut self.pending_intra;
        let out = &mut self.out;
        let stage_sends = &mut self.stage_sends;
        let stage_events = &mut self.stage_events;
        let StepBufs {
            mut index,
            events,
            mut delayed,
        } = bufs;
        index.clear();
        delayed.clear();
        let mut sink = BufSink(events);
        sink.0.clear();
        let mut first_error: Option<CongestError> = None;
        let mut panic: Option<(NodeId, String)> = None;
        let mut compute_ns = 0u64;
        let mut inbox_messages = 0u64;
        let mut nodes_stepped = 0u64;
        let (mut routed, mut intra, mut cross) = (0u64, 0u64, 0u64);
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let v = shard[i];
            // Crash handling mirrors the serial engine: a down node is not
            // stepped and loses its inbox for the round.
            if self.faults.is_some_and(|p| p.crashed(v, round)) {
                self.inboxes[i].clear();
                continue;
            }
            let inbox = &self.inboxes[i];
            if inbox.is_empty() && self.skip_idle && node.idle_at(round) {
                continue;
            }
            nodes_stepped += 1;
            if counting_inboxes {
                inbox_messages += inbox.len() as u64;
            }
            let mut ctx = RoundCtx::with_buffers(
                v,
                round,
                graph,
                tracing,
                std::mem::take(stage_sends),
                std::mem::take(stage_events),
            );
            let t = profiling.then(Instant::now);
            let outcome = catch_unwind(AssertUnwindSafe(|| node.round(&mut ctx, inbox)));
            if let Some(t) = t {
                compute_ns += t.elapsed().as_nanos() as u64;
            }
            let (mut node_sends, mut node_events) = (ctx.sends, ctx.events);
            match outcome {
                Ok(()) => {
                    let t = profiling.then(Instant::now);
                    let events_before = sink.0.len();
                    if tracing {
                        for detail in node_events.drain(..) {
                            sink.0.push(TraceEvent::Protocol {
                                round,
                                node: v,
                                detail,
                            });
                        }
                    }
                    account_sends(
                        v,
                        round,
                        node_sends.drain(..),
                        graph,
                        self.budget_bits,
                        self.cut,
                        metrics,
                        port_scratch,
                        |target, reverse_port, msg| {
                            routed += 1;
                            let entry = (map.local_of(target) as u32, reverse_port, msg);
                            let dest = map.shard_of(target);
                            if dest == me {
                                intra += 1;
                                pending_intra.push(entry);
                            } else {
                                cross += 1;
                                out[dest].push(entry);
                            }
                        },
                        &mut first_error,
                        tracing.then_some(&mut sink),
                        self.faults,
                        delayed_scratch,
                    );
                    for (due, target, port, msg) in delayed_scratch.drain(..) {
                        delayed.push((v, due, target, port, msg));
                    }
                    let n_events = (sink.0.len() - events_before) as u32;
                    if n_events > 0 {
                        index.push((v, n_events));
                    }
                    if let Some(t) = t {
                        route_ns += t.elapsed().as_nanos() as u64;
                    }
                }
                Err(payload) => {
                    node_sends.clear();
                    node_events.clear();
                    panic = Some((v, panic_message(payload)));
                }
            }
            *stage_sends = node_sends;
            *stage_events = node_events;
            self.inboxes[i].clear();
            if panic.is_some() {
                break;
            }
        }
        let all_halted = self.nodes.iter().all(|p| p.is_halted());

        // Publish this round's batches — exactly one per peer, empty or
        // not, which is what gives the next round's drain its barrier.
        let t = profiling.then(Instant::now);
        for (d, slot) in out.iter_mut().enumerate() {
            if d == me {
                continue;
            }
            if let Some(tx) = &self.lane_tx[d] {
                let _ = tx.send(std::mem::take(slot));
            }
        }
        self.lanes_live = true;
        if let Some(t) = t {
            route_ns += t.elapsed().as_nanos() as u64;
        }

        if let Some(h) = self.telemetry.as_mut() {
            h.on_round(&self.metrics, nodes_stepped, inbox_messages, intra, cross);
        }

        WorkerReply {
            bufs: StepBufs {
                index,
                events: sink.0,
                delayed,
            },
            first_error,
            panic,
            routed,
            intra,
            cross,
            busy_ns: busy_start
                .map(|t| t.elapsed().as_nanos() as u64)
                .unwrap_or(0),
            compute_ns,
            route_ns,
            inbox_messages,
            nodes_stepped,
            all_halted,
        }
    }
}

impl<P: Protocol + Send> Network<P> {
    /// Runs like [`Network::run`] but steps each round's nodes on a
    /// persistent pool of up to `threads` shard workers (one per shard of
    /// [`Config::partition`]; never more than one per node).
    ///
    /// Workers exchange message payloads directly over a worker→worker
    /// lane mesh and validate their own sends; the main thread only
    /// orchestrates rounds and k-way-merges the workers' summaries
    /// (trace events, fault-delayed sends, violations) in ascending
    /// node-id order. The result — node states, metrics, message order,
    /// traces — is identical to the serial engine for every `threads`
    /// value and every partition strategy.
    ///
    /// # Errors
    ///
    /// Same as [`Network::run`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_parallel(
        &mut self,
        max_rounds: u64,
        threads: usize,
    ) -> Result<RunReport, CongestError> {
        assert!(threads > 0, "need at least one worker thread");
        if self.quiescent() {
            return Ok(RunReport { rounds: self.round });
        }
        if self.round >= max_rounds {
            return Err(CongestError::RoundLimit { max_rounds });
        }

        let n = self.graph.n();
        let map = self.config.partition.shard_map(&self.graph, threads);
        let workers = map.len();

        // Scatter node states and current inboxes to their shards (in
        // ascending id order, so scatter position = shard-local index).
        // Workers own them for the whole run and hand them back at Finish.
        let mut shard_nodes: Vec<Vec<P>> = map
            .shards()
            .iter()
            .map(|s| Vec::with_capacity(s.len()))
            .collect();
        let mut shard_inboxes: Vec<Vec<Vec<(usize, Message)>>> = map
            .shards()
            .iter()
            .map(|s| Vec::with_capacity(s.len()))
            .collect();
        for (v, (node, inbox)) in std::mem::take(&mut self.nodes)
            .into_iter()
            .zip(std::mem::take(&mut self.inboxes))
            .enumerate()
        {
            let s = map.shard_of(v as NodeId);
            shard_nodes[s].push(node);
            shard_inboxes[s].push(inbox);
        }

        let graph = &self.graph;
        let metrics = &mut self.metrics;
        let profiler = &mut self.profiler;
        let round_ref = &mut self.round;
        let budget_bits = self.budget_bits;
        let enforcement = self.config.enforcement;
        let cut = self.config.cut.as_ref();
        let skip_idle = self.config.skip_idle;
        let faults = self.config.faults.as_ref();
        let delayed = &mut self.delayed;
        let mut sink = self.sink.take();
        let telemetry = self.telemetry.as_ref().map(|h| h.registry().clone());
        let map_ref = &map;

        // With no trace sink and no fault plan there is nothing for the
        // main thread to merge or inject each round, so workers can
        // free-run over the spin barrier instead of paying two futex
        // wakeups per round on the command/reply channels. Tracing and
        // fault runs keep the orchestrated path.
        let free_running = sink.is_none() && faults.is_none() && delayed.is_empty();
        let sync = RoundSync::new(workers);
        let sync_ref = &sync;

        let (run_result, handoff) = crossbeam::thread::scope(|scope| {
            // Build the k×k lane mesh. Each directed worker pair gets a
            // data lane (one batch per round) and a back lane returning
            // the drained buffer for reuse. Grids are indexed
            // [owner][peer].
            let make_grid = || -> Vec<Vec<Option<mpsc::Sender<LaneBatch>>>> {
                (0..workers)
                    .map(|_| (0..workers).map(|_| None).collect())
                    .collect()
            };
            let make_rx_grid = || -> Vec<Vec<Option<mpsc::Receiver<LaneBatch>>>> {
                (0..workers)
                    .map(|_| (0..workers).map(|_| None).collect())
                    .collect()
            };
            let mut lane_tx = make_grid();
            let mut lane_rx = make_rx_grid();
            let mut back_tx = make_grid();
            let mut back_rx = make_rx_grid();
            for s in 0..workers {
                for d in 0..workers {
                    if s == d {
                        continue;
                    }
                    let (tx, rx) = mpsc::channel::<LaneBatch>();
                    lane_tx[s][d] = Some(tx);
                    lane_rx[d][s] = Some(rx);
                    let (tx, rx) = mpsc::channel::<LaneBatch>();
                    back_tx[d][s] = Some(tx);
                    back_rx[s][d] = Some(rx);
                }
            }

            let mut pool = Vec::with_capacity(workers);
            for w in 0..workers {
                pool.push(ShardWorker {
                    me: w,
                    map: map_ref,
                    graph,
                    budget_bits,
                    cut,
                    faults,
                    skip_idle,
                    nodes: std::mem::take(&mut shard_nodes[w]),
                    inboxes: std::mem::take(&mut shard_inboxes[w]),
                    metrics: NetMetrics::default(),
                    stage_sends: Vec::new(),
                    stage_events: Vec::new(),
                    port_scratch: Vec::new(),
                    delayed_scratch: Vec::new(),
                    pending_intra: Vec::new(),
                    out: (0..workers).map(|_| Vec::new()).collect(),
                    touched: Vec::new(),
                    lanes_live: false,
                    lane_tx: std::mem::take(&mut lane_tx[w]),
                    lane_rx: std::mem::take(&mut lane_rx[w]),
                    back_tx: std::mem::take(&mut back_tx[w]),
                    back_rx: std::mem::take(&mut back_rx[w]),
                    telemetry: telemetry
                        .as_ref()
                        .map(|t| TelemetryHandle::new(t.clone(), w)),
                });
            }

            if free_running {
                let profiling = profiler.is_some();
                let strict = matches!(enforcement, Enforcement::Strict);
                let start_round = *round_ref;
                let handles: Vec<_> = pool
                    .into_iter()
                    .map(|worker| {
                        scope.spawn(move |_| {
                            worker.run_free(sync_ref, start_round, max_rounds, profiling, strict)
                        })
                    })
                    .collect();
                let mut handoff = Vec::with_capacity(workers);
                let mut stats = Vec::with_capacity(workers);
                for h in handles {
                    let (shard, s) = h.join().expect("pool worker thread died");
                    handoff.push(shard);
                    stats.push(s);
                }
                // Workers run in lockstep, so every worker committed the
                // same number of rounds; fold them into the run exactly as
                // the orchestrated loop would have, one round at a time.
                let committed = stats[0].rounds;
                debug_assert!(stats.iter().all(|s| s.rounds == committed));
                *round_ref += committed;
                if committed > 0 {
                    metrics.rounds = *round_ref;
                }
                if let Some(p) = profiler.as_mut() {
                    for r in 0..committed as usize {
                        let mut worker_busy_ns = Vec::with_capacity(workers);
                        let mut worker_route_ns = Vec::with_capacity(workers);
                        let mut compute_ns = 0u64;
                        let mut inbox_messages = 0u64;
                        let mut nodes_stepped = 0u64;
                        let (mut cross, mut intra) = (0u64, 0u64);
                        for s in &stats {
                            let row = &s.prof[r];
                            worker_busy_ns.push(row.busy_ns);
                            worker_route_ns.push(row.route_ns);
                            compute_ns += row.compute_ns;
                            inbox_messages += row.inbox_messages;
                            nodes_stepped += row.nodes_stepped;
                            cross += row.cross;
                            intra += row.intra;
                        }
                        p.record_round(RoundSpan {
                            round: start_round + r as u64,
                            total_ns: stats[0].round_wall_ns[r],
                            compute_ns,
                            inbox_messages,
                            nodes_stepped,
                            worker_busy_ns,
                            worker_route_ns,
                            cross_shard_messages: cross,
                            intra_shard_messages: intra,
                        });
                    }
                }
                // Canonical abort attribution, same as the orchestrated
                // path: lowest-id panicking node wins; under strict
                // enforcement the lowest-id violation below it is next.
                let first_panic: Option<(NodeId, String)> = stats
                    .iter()
                    .filter_map(|s| s.panic.clone())
                    .min_by_key(|&(v, _)| v);
                let clip = first_panic.as_ref().map_or(NodeId::MAX, |&(v, _)| v);
                let first_error: Option<CongestError> = stats
                    .iter()
                    .filter_map(|s| s.first_error.as_ref())
                    .filter(|e| error_node(e) < clip)
                    .min_by_key(|e| error_node(e))
                    .cloned();
                let run_result = if let Some((node, message)) = first_panic {
                    Err(CongestError::NodePanic {
                        node,
                        round: *round_ref,
                        message,
                    })
                } else if let Some(err) = first_error {
                    Err(err)
                } else if sync_ref.verdict.load(Ordering::Acquire) == VERDICT_ROUND_LIMIT {
                    Err(CongestError::RoundLimit { max_rounds })
                } else {
                    Ok(RunReport { rounds: *round_ref })
                };
                return (run_result, handoff);
            }

            let mut cmd_txs = Vec::with_capacity(workers);
            let mut reply_rxs = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for worker in pool {
                let (cmd_tx, cmd_rx) = mpsc::channel::<WorkerCmd>();
                let (reply_tx, reply_rx) = mpsc::channel::<WorkerReply>();
                handles.push(scope.spawn(move |_| worker.run(cmd_rx, reply_tx)));
                cmd_txs.push(cmd_tx);
                reply_rxs.push(reply_rx);
            }

            let mut step_bufs: Vec<Option<StepBufs>> =
                (0..workers).map(|_| Some(StepBufs::default())).collect();
            let mut inject_bufs: Vec<Vec<(u32, usize, Message)>> =
                (0..workers).map(|_| Vec::new()).collect();

            let run_result = loop {
                let round = *round_ref;
                // Group due fault-delayed messages per destination shard,
                // preserving injection order within each.
                if !delayed.is_empty() {
                    for (target, port, msg) in take_due(delayed, round) {
                        inject_bufs[map_ref.shard_of(target)].push((
                            map_ref.local_of(target) as u32,
                            port,
                            msg,
                        ));
                    }
                }
                let tracing = sink.is_some();
                let profiling = profiler.is_some();
                let round_start = profiling.then(Instant::now);
                for (w, tx) in cmd_txs.iter().enumerate() {
                    let cmd = WorkerCmd::Step {
                        round,
                        tracing,
                        profiling,
                        inject: std::mem::take(&mut inject_bufs[w]),
                        bufs: step_bufs[w].take().expect("step buffers in rotation"),
                    };
                    tx.send(cmd).expect("pool worker alive");
                }
                if let Some(s) = sink.as_deref_mut() {
                    s.event(&TraceEvent::RoundStart { round });
                }
                let mut replies: Vec<WorkerReply> = reply_rxs
                    .iter()
                    .map(|rx| rx.recv().expect("pool worker alive"))
                    .collect();

                // Canonical abort attribution: the serial engine stops at
                // the lowest-id panicking node and never observes anything
                // later nodes did, so merges below are clipped to ids
                // strictly under it.
                let first_panic: Option<(NodeId, String)> = replies
                    .iter()
                    .filter_map(|r| r.panic.clone())
                    .min_by_key(|&(v, _)| v);
                let clip = first_panic.as_ref().map_or(NodeId::MAX, |&(v, _)| v);
                let first_error: Option<CongestError> = replies
                    .iter()
                    .filter_map(|r| r.first_error.as_ref())
                    .filter(|e| error_node(e) < clip)
                    .min_by_key(|e| error_node(e))
                    .cloned();

                // K-way merge of the workers' trace buffers in ascending
                // node-id order (each worker's index is already ascending)
                // — byte-identical to the serial event stream.
                if let Some(s) = sink.as_deref_mut() {
                    let mut cursor: Vec<(usize, usize)> = vec![(0, 0); replies.len()];
                    loop {
                        let mut best: Option<(NodeId, usize)> = None;
                        for (w, rep) in replies.iter().enumerate() {
                            if let Some(&(v, _)) = rep.bufs.index.get(cursor[w].0) {
                                if v < clip && best.is_none_or(|(bv, _)| v < bv) {
                                    best = Some((v, w));
                                }
                            }
                        }
                        let Some((_, w)) = best else { break };
                        let (ip, ep) = cursor[w];
                        let count = replies[w].bufs.index[ip].1 as usize;
                        for e in &replies[w].bufs.events[ep..ep + count] {
                            s.event(e);
                        }
                        cursor[w] = (ip + 1, ep + count);
                    }
                }
                // Same merge for fault-delayed sends: ascending sender id
                // reproduces the serial engine's injection order exactly.
                {
                    let mut cursor: Vec<usize> = vec![0; replies.len()];
                    loop {
                        let mut best: Option<(NodeId, usize)> = None;
                        for (w, rep) in replies.iter().enumerate() {
                            if let Some(&(sender, ..)) = rep.bufs.delayed.get(cursor[w]) {
                                if sender < clip && best.is_none_or(|(bv, _)| sender < bv) {
                                    best = Some((sender, w));
                                }
                            }
                        }
                        let Some((_, w)) = best else { break };
                        let (_, due, target, port, msg) =
                            replies[w].bufs.delayed[cursor[w]].clone();
                        delayed.push((due, target, port, msg));
                        cursor[w] += 1;
                    }
                }

                let mut worker_busy_ns = Vec::new();
                let mut worker_route_ns = Vec::new();
                let mut compute_ns = 0u64;
                let mut inbox_messages = 0u64;
                let mut nodes_stepped = 0u64;
                let (mut cross, mut intra) = (0u64, 0u64);
                let mut pending = 0u64;
                let mut all_halted = true;
                for rep in &replies {
                    nodes_stepped += rep.nodes_stepped;
                    all_halted &= rep.all_halted;
                    pending += rep.routed;
                    if profiling {
                        worker_busy_ns.push(rep.busy_ns);
                        worker_route_ns.push(rep.route_ns);
                        compute_ns += rep.compute_ns;
                        inbox_messages += rep.inbox_messages;
                        cross += rep.cross;
                        intra += rep.intra;
                    }
                }
                for (w, rep) in replies.iter_mut().enumerate() {
                    let mut bufs = std::mem::take(&mut rep.bufs);
                    bufs.index.clear();
                    bufs.events.clear();
                    bufs.delayed.clear();
                    step_bufs[w] = Some(bufs);
                }
                if let Some((node, message)) = first_panic {
                    break Err(CongestError::NodePanic {
                        node,
                        round,
                        message,
                    });
                }
                if let (Some(err), Enforcement::Strict) = (&first_error, enforcement) {
                    break Err(err.clone());
                }
                *round_ref += 1;
                metrics.rounds = *round_ref;
                if let Some(t) = &telemetry {
                    t.finish_round(round);
                }
                if let (Some(t0), Some(p)) = (round_start, profiler.as_mut()) {
                    p.record_round(RoundSpan {
                        round,
                        total_ns: t0.elapsed().as_nanos() as u64,
                        compute_ns,
                        inbox_messages,
                        nodes_stepped,
                        worker_busy_ns,
                        worker_route_ns,
                        cross_shard_messages: cross,
                        intra_shard_messages: intra,
                    });
                }
                if pending == 0 && all_halted && delayed.is_empty() {
                    break Ok(RunReport { rounds: *round_ref });
                }
                if *round_ref >= max_rounds {
                    break Err(CongestError::RoundLimit { max_rounds });
                }
            };

            // Shut the pool down; on clean endings the workers drain the
            // final in-flight lane batches into their inboxes first.
            let deliver = matches!(&run_result, Ok(_) | Err(CongestError::RoundLimit { .. }));
            for tx in &cmd_txs {
                let _ = tx.send(WorkerCmd::Finish { deliver });
            }
            drop(cmd_txs);
            let handoff: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().expect("pool worker thread died"))
                .collect();
            (run_result, handoff)
        })
        .expect("worker pool scope failed");

        // Gather: reassemble id-ordered state and fold each worker's
        // metric partial into the run metrics (merge is commutative, so
        // gather order does not matter).
        let mut nodes: Vec<Option<P>> = (0..n).map(|_| None).collect();
        let mut inboxes: Vec<Vec<(usize, Message)>> = (0..n).map(|_| Vec::new()).collect();
        for (w, (worker_nodes, worker_inboxes, worker_metrics)) in handoff.into_iter().enumerate() {
            self.metrics.merge(&worker_metrics);
            for ((i, node), inbox) in worker_nodes.into_iter().enumerate().zip(worker_inboxes) {
                let v = map.shards()[w][i] as usize;
                nodes[v] = Some(node);
                inboxes[v] = inbox;
            }
        }
        self.nodes = nodes
            .into_iter()
            .map(|slot| slot.expect("every node returned by exactly one worker"))
            .collect();
        self.inboxes = inboxes;
        debug_assert_eq!(self.nodes.len(), n);
        debug_assert!(self.spare.iter().all(|i| i.is_empty()));
        self.sink = sink;
        run_result
    }
}

/// Renders a `catch_unwind` payload (usually a `&str` or `String` from
/// `panic!`/`assert!`) for [`CongestError::NodePanic`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Moves the fault-delayed messages due in `round` out of `delayed`,
/// preserving injection order (so inbox insertion stays deterministic).
fn take_due(
    delayed: &mut Vec<(u64, NodeId, usize, Message)>,
    round: u64,
) -> Vec<(NodeId, usize, Message)> {
    let mut due = Vec::new();
    for (at, target, port, msg) in std::mem::take(delayed) {
        if at == round {
            due.push((target, port, msg));
        } else {
            delayed.push((at, target, port, msg));
        }
    }
    due
}

/// Validates and delivers one node's staged sends: collision detection,
/// budget enforcement, metric accounting, cut-flow accounting, and — via
/// `deliver` — enqueueing into the receivers' next-round inboxes. With a
/// fault plan attached, each message additionally passes through the
/// plan's per-slot decision: drop, bit-corruption, duplication (a second
/// `MessageSent` is traced for the extra wire copy), or delay (parked in
/// `delayed` until its delivery round).
#[allow(clippy::too_many_arguments)]
pub(crate) fn account_sends<S: TraceSink + ?Sized>(
    v: NodeId,
    round: u64,
    staged: impl Iterator<Item = (usize, Message)>,
    graph: &Graph,
    budget_bits: Option<usize>,
    cut: Option<&EdgeCut>,
    metrics: &mut NetMetrics,
    port_counts: &mut Vec<u8>,
    mut deliver: impl FnMut(NodeId, usize, Message),
    first_error: &mut Option<CongestError>,
    mut sink: Option<&mut S>,
    faults: Option<&FaultPlan>,
    delayed: &mut Vec<(u64, NodeId, usize, Message)>,
) {
    // Collision detection: count messages per port (the scratch buffer is
    // only reset when the node actually sent something).
    let neighbors = graph.neighbors(v);
    let mut prepared = false;
    for (port, msg) in staged {
        if !prepared {
            prepared = true;
            port_counts.clear();
            port_counts.resize(neighbors.len(), 0);
        }
        port_counts[port] = port_counts[port].saturating_add(1);
        if port_counts[port] > 1 {
            metrics.collisions += 1;
            if first_error.is_none() {
                *first_error = Some(CongestError::Collision {
                    node: v,
                    port,
                    round,
                });
            }
            if let Some(s) = sink.as_deref_mut() {
                s.event(&TraceEvent::ViolationDetected {
                    round,
                    node: v,
                    kind: ViolationKind::Collision { port },
                });
            }
        }
        metrics.max_messages_per_edge_round = metrics
            .max_messages_per_edge_round
            .max(port_counts[port] as u32);
        let bits = msg.bit_len();
        metrics.total_messages += 1;
        metrics.total_bits += bits as u64;
        metrics.max_message_bits = metrics.max_message_bits.max(bits);
        metrics.record_message(round, bits);
        if let Some(budget) = budget_bits {
            if bits > budget {
                metrics.oversized_messages += 1;
                if first_error.is_none() {
                    *first_error = Some(CongestError::Oversized {
                        node: v,
                        bits,
                        budget,
                        round,
                    });
                }
                if let Some(s) = sink.as_deref_mut() {
                    s.event(&TraceEvent::ViolationDetected {
                        round,
                        node: v,
                        kind: ViolationKind::Oversized { bits, budget },
                    });
                }
            }
        }
        let target = neighbors[port];
        // Fault decisions are pure in (seed, from, to, round), so every
        // engine injects the identical pattern in any execution order.
        let decision = faults
            .map(|p| p.decide(v, target, round))
            .unwrap_or_default();
        if let Some(s) = sink.as_deref_mut() {
            let event = TraceEvent::MessageSent {
                round,
                from: v,
                to: target,
                bits,
                payload: faults.map(|_| faults::payload_hash(&msg)),
            };
            s.event(&event);
            if decision.duplicate {
                // The injected duplicate is a real wire event; tracing it
                // is what lets `check-trace` flag duplicate delivery.
                s.event(&event);
            }
        }
        if let Some(cut) = cut {
            if cut.contains(v, target) {
                metrics.cut_bits += bits as u64;
                metrics.cut_messages += 1;
            }
        }
        let reverse_port = graph
            .neighbors(target)
            .binary_search(&v)
            .expect("undirected graph: reverse edge exists");
        if decision.is_clean() {
            deliver(target, reverse_port, msg);
            continue;
        }
        if decision.drop {
            metrics.faults_dropped += 1;
            continue;
        }
        let msg = match decision.corrupt {
            Some(entropy) => {
                metrics.faults_corrupted += 1;
                faults::corrupt_message(&msg, entropy)
            }
            None => msg,
        };
        let copies = if decision.duplicate {
            metrics.faults_duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            if decision.delay > 0 {
                metrics.faults_delayed += 1;
                delayed.push((
                    round + 1 + decision.delay,
                    target,
                    reverse_port,
                    msg.clone(),
                ));
            } else {
                deliver(target, reverse_port, msg.clone());
            }
        }
    }
}
