//! The synchronous CONGEST network engine.
//!
//! Executes a [`Protocol`] state machine at every node of a graph in
//! globally synchronized rounds (Section III-A of the paper): messages sent
//! in round `r` are delivered at the start of round `r + 1`; each node may
//! send at most one message per incident edge per round; each message is
//! charged its exact payload size in bits against an `O(log N)` budget.
//!
//! The engine does not merely *assume* the CONGEST constraints — it
//! measures them ([`crate::NetMetrics`]) and, under
//! [`Enforcement::Strict`], fails the execution on the first violation,
//! which turns protocol bugs (schedule collisions, oversized encodings)
//! into test failures.

use crate::message::Message;
use crate::metrics::{EdgeCut, NetMetrics};
use crate::profile::{Profiler, RoundSpan};
use crate::trace::{ProtocolDetail, TraceEvent, TraceSink, ViolationKind};
use bc_graph::{Graph, NodeId};
use bc_numeric::bits::id_bits;
use std::fmt;
use std::time::Instant;

/// Per-message bit budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Budget {
    /// `8·⌈log₂ N⌉ + 64` bits — a concrete `Θ(log N)` with room for the
    /// protocol headers used in this workspace.
    #[default]
    Auto,
    /// A fixed budget in bits.
    Bits(usize),
    /// No limit (sizes are still recorded).
    Unlimited,
}

impl Budget {
    /// Resolves the budget for an `n`-node network (`None` = unlimited).
    pub fn resolve(self, n: usize) -> Option<usize> {
        match self {
            Budget::Auto => Some(8 * id_bits(n.max(2)) as usize + 64),
            Budget::Bits(b) => Some(b),
            Budget::Unlimited => None,
        }
    }
}

/// What to do when a CONGEST constraint is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Enforcement {
    /// Abort the run with a [`CongestError`].
    #[default]
    Strict,
    /// Record the violation in [`NetMetrics`] and keep going.
    Record,
}

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Per-message bit budget.
    pub budget: Budget,
    /// Violation handling.
    pub enforcement: Enforcement,
    /// Optional edge cut across which bit flow is measured.
    pub cut: Option<EdgeCut>,
}

/// A CONGEST constraint violation (only surfaced under
/// [`Enforcement::Strict`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CongestError {
    /// A node staged two messages on the same incident edge in one round.
    Collision {
        /// Sending node.
        node: NodeId,
        /// Port (index into the node's adjacency list).
        port: usize,
        /// Round in which it happened.
        round: u64,
    },
    /// A message exceeded the per-message bit budget.
    Oversized {
        /// Sending node.
        node: NodeId,
        /// The message's size in bits.
        bits: usize,
        /// The configured budget.
        budget: usize,
        /// Round in which it happened.
        round: u64,
    },
    /// `run` hit its round limit before all nodes halted.
    RoundLimit {
        /// The limit that was hit.
        max_rounds: u64,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::Collision { node, port, round } => write!(
                f,
                "collision: node {node} sent twice on port {port} in round {round}"
            ),
            CongestError::Oversized {
                node,
                bits,
                budget,
                round,
            } => write!(
                f,
                "oversized message: node {node} sent {bits} bits (budget {budget}) in round {round}"
            ),
            CongestError::RoundLimit { max_rounds } => {
                write!(f, "network did not halt within {max_rounds} rounds")
            }
        }
    }
}

impl std::error::Error for CongestError {}

/// The per-node state machine executed by the engine.
///
/// Implementations receive one [`Protocol::round`] call per simulated round
/// with the messages that arrived at the start of that round, and may stage
/// outgoing messages through the [`RoundCtx`]. Local computation is free,
/// matching the model ("every node can perform local computation in each
/// round and it has no influence on the time complexity").
pub trait Protocol {
    /// Executes one synchronous round.
    fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]);

    /// Returns `true` once this node will neither send nor needs to receive
    /// any further messages. The engine stops when every node is halted and
    /// no messages are in flight.
    fn is_halted(&self) -> bool;
}

/// Per-round, per-node execution context: identity, topology access, and
/// the staging area for outgoing messages.
#[derive(Debug)]
pub struct RoundCtx<'a> {
    id: NodeId,
    round: u64,
    graph: &'a Graph,
    sends: Vec<(usize, Message)>,
    tracing: bool,
    events: Vec<ProtocolDetail>,
}

impl<'a> RoundCtx<'a> {
    pub(crate) fn new(id: NodeId, round: u64, graph: &'a Graph, tracing: bool) -> Self {
        RoundCtx {
            id,
            round,
            graph,
            sends: Vec::new(),
            tracing,
            events: Vec::new(),
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current round number (starting at 0).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Total number of nodes `N` (known to all nodes, as the paper assumes
    /// for computing `O(log N)`-bit encodings and schedules).
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.id)
    }

    /// Identifier of the neighbor reached through `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree()`.
    pub fn neighbor(&self, port: usize) -> NodeId {
        self.graph.neighbors(self.id)[port]
    }

    /// Port through which `neighbor` is reached, if adjacent.
    pub fn port_of(&self, neighbor: NodeId) -> Option<usize> {
        self.graph.neighbors(self.id).binary_search(&neighbor).ok()
    }

    /// Stages `msg` for delivery to the neighbor on `port` at the start of
    /// the next round.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree()`.
    pub fn send(&mut self, port: usize, msg: Message) {
        assert!(port < self.degree(), "send on nonexistent port {port}");
        self.sends.push((port, msg));
    }

    /// Stages `msg` to every neighbor (a local broadcast, one message per
    /// incident edge — permitted by CONGEST).
    pub fn broadcast(&mut self, msg: &Message) {
        for port in 0..self.degree() {
            self.sends.push((port, msg.clone()));
        }
    }

    /// Drains the staged sends (used by the asynchronous synchronizer,
    /// which transports them itself).
    pub(crate) fn take_sends(&mut self) -> Vec<(usize, Message)> {
        std::mem::take(&mut self.sends)
    }

    /// Returns `true` when a trace sink is attached to the engine, so
    /// protocols can skip expensive event preparation entirely.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Stages a protocol-level trace event for this round. A no-op unless
    /// the engine has a trace sink attached ([`RoundCtx::tracing`]), so
    /// untraced runs pay only this branch.
    pub fn trace(&mut self, detail: ProtocolDetail) {
        if self.tracing {
            self.events.push(detail);
        }
    }

    /// Drains the staged trace events (engine-side).
    pub(crate) fn take_events(&mut self) -> Vec<ProtocolDetail> {
        std::mem::take(&mut self.events)
    }
}

/// Outcome of a successful run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Rounds executed until quiescence.
    pub rounds: u64,
}

/// A simulated synchronous network executing protocol `P` on every node.
pub struct Network<P> {
    graph: Graph,
    config: Config,
    budget_bits: Option<usize>,
    nodes: Vec<P>,
    inboxes: Vec<Vec<(usize, Message)>>,
    metrics: NetMetrics,
    round: u64,
    sink: Option<Box<dyn TraceSink>>,
    profiler: Option<Profiler>,
}

impl<P> fmt::Debug for Network<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Network(n={}, round={}, metrics={:?})",
            self.graph.n(),
            self.round,
            self.metrics
        )
    }
}

impl<P: Protocol> Network<P> {
    /// Builds a network over `graph` where node `v` runs
    /// `factory(v, graph)`.
    pub fn new<F>(graph: &Graph, config: Config, mut factory: F) -> Self
    where
        F: FnMut(NodeId, &Graph) -> P,
    {
        let n = graph.n();
        let nodes = (0..n as NodeId).map(|v| factory(v, graph)).collect();
        Network {
            budget_bits: config.budget.resolve(n),
            graph: graph.clone(),
            config,
            nodes,
            inboxes: vec![Vec::new(); n],
            metrics: NetMetrics::default(),
            round: 0,
            sink: None,
            profiler: None,
        }
    }

    /// Installs a trace sink; subsequent rounds emit
    /// [`TraceEvent`]s into it. Returns the previously installed sink.
    ///
    /// Both engines produce the identical, deterministic event stream:
    /// per round, one `RoundStart`, then each node's protocol events
    /// followed by its `MessageSent`s, in node-id order (the parallel
    /// engine merges worker buffers back into this order).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
        self.sink.replace(sink)
    }

    /// Removes and returns the trace sink, stopping emission.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Installs a wall-clock profiler; subsequent rounds record
    /// [`RoundSpan`]s into it. Strictly opt-in, like tracing: without a
    /// profiler each round pays a single branch, and a profiled run
    /// produces bit-identical node states and metrics. Returns any
    /// previously installed profiler.
    pub fn set_profiler(&mut self, profiler: Profiler) -> Option<Profiler> {
        self.profiler.replace(profiler)
    }

    /// Removes and returns the profiler, stopping recording.
    pub fn take_profiler(&mut self) -> Option<Profiler> {
        self.profiler.take()
    }

    /// The simulated graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Read access to a node's protocol state.
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v as usize]
    }

    /// Consumes the network, returning all node states.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// Runs until every node reports halted and no messages are in flight.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::RoundLimit`] if the protocol does not halt
    /// within `max_rounds`, or a constraint violation under
    /// [`Enforcement::Strict`].
    pub fn run(&mut self, max_rounds: u64) -> Result<RunReport, CongestError> {
        while !self.quiescent() {
            if self.round >= max_rounds {
                return Err(CongestError::RoundLimit { max_rounds });
            }
            self.step()?;
        }
        Ok(RunReport { rounds: self.round })
    }

    /// Runs exactly `rounds` additional rounds (useful for protocols
    /// observed mid-flight).
    ///
    /// # Errors
    ///
    /// Returns a constraint violation under [`Enforcement::Strict`].
    pub fn run_rounds(&mut self, rounds: u64) -> Result<RunReport, CongestError> {
        for _ in 0..rounds {
            self.step()?;
        }
        Ok(RunReport { rounds: self.round })
    }

    fn quiescent(&self) -> bool {
        self.inboxes.iter().all(|i| i.is_empty()) && self.nodes.iter().all(|p| p.is_halted())
    }

    /// Executes a single round serially.
    fn step(&mut self) -> Result<(), CongestError> {
        let n = self.graph.n();
        let round = self.round;
        let mut next_inboxes: Vec<Vec<(usize, Message)>> = vec![Vec::new(); n];
        let mut first_error: Option<CongestError> = None;
        self.metrics.begin_round(round);
        // The sink leaves `self` for the loop so node stepping (which
        // borrows nodes/graph/metrics) and event emission don't conflict.
        let mut sink = self.sink.take();
        if let Some(s) = sink.as_deref_mut() {
            s.event(&TraceEvent::RoundStart { round });
        }
        let tracing = sink.is_some();
        let profiling = self.profiler.is_some();
        let round_start = profiling.then(Instant::now);
        let mut compute_ns = 0u64;
        let mut inbox_messages = 0u64;
        for v in 0..n {
            let inbox = std::mem::take(&mut self.inboxes[v]);
            let mut ctx = RoundCtx::new(v as NodeId, round, &self.graph, tracing);
            if profiling {
                inbox_messages += inbox.len() as u64;
                let t = Instant::now();
                self.nodes[v].round(&mut ctx, &inbox);
                compute_ns += t.elapsed().as_nanos() as u64;
            } else {
                self.nodes[v].round(&mut ctx, &inbox);
            }
            if let Some(s) = sink.as_deref_mut() {
                for detail in ctx.take_events() {
                    s.event(&TraceEvent::Protocol {
                        round,
                        node: v as NodeId,
                        detail,
                    });
                }
            }
            let staged = ctx.sends;
            account_sends(
                v as NodeId,
                round,
                staged,
                &self.graph,
                self.budget_bits,
                self.config.cut.as_ref(),
                &mut self.metrics,
                &mut next_inboxes,
                &mut first_error,
                sink.as_deref_mut(),
            );
        }
        self.sink = sink;
        if let (Some(err), Enforcement::Strict) = (&first_error, self.config.enforcement) {
            return Err(err.clone());
        }
        for inbox in &mut next_inboxes {
            inbox.sort_unstable_by_key(|&(port, _)| port);
        }
        self.inboxes = next_inboxes;
        self.round += 1;
        self.metrics.rounds = self.round;
        if let (Some(t0), Some(p)) = (round_start, self.profiler.as_mut()) {
            p.record_round(RoundSpan {
                round,
                total_ns: t0.elapsed().as_nanos() as u64,
                compute_ns,
                inbox_messages,
                worker_busy_ns: Vec::new(),
            });
        }
        Ok(())
    }
}

impl<P: Protocol + Send> Network<P> {
    /// Runs like [`Network::run`] but executes each round's node steps on
    /// `threads` worker threads. The result (node states, metrics, message
    /// order) is identical to the serial engine: within a round node steps
    /// are independent, and inboxes are canonically sorted by port.
    ///
    /// # Errors
    ///
    /// Same as [`Network::run`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_parallel(
        &mut self,
        max_rounds: u64,
        threads: usize,
    ) -> Result<RunReport, CongestError> {
        assert!(threads > 0, "need at least one worker thread");
        while !self.quiescent() {
            if self.round >= max_rounds {
                return Err(CongestError::RoundLimit { max_rounds });
            }
            self.step_parallel(threads)?;
        }
        Ok(RunReport { rounds: self.round })
    }

    fn step_parallel(&mut self, threads: usize) -> Result<(), CongestError> {
        let n = self.graph.n();
        let chunk = n.div_ceil(threads).max(1);
        let graph = &self.graph;
        let round = self.round;
        let tracing = self.sink.is_some();
        let profiling = self.profiler.is_some();
        let round_start = profiling.then(Instant::now);
        // Each worker returns (sender, staged messages, staged trace
        // events) plus its busy/compute/inbox tallies when profiling.
        // Workers are spawned over contiguous node-id chunks and joined in
        // spawn order, so iterating the outputs replays nodes in id order —
        // the merged event stream is identical to the serial engine's.
        type WorkerOut = Vec<(NodeId, Vec<(usize, Message)>, Vec<ProtocolDetail>)>;
        let mut worker_outputs: Vec<(WorkerOut, u64, u64, u64)> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut nodes_rest: &mut [P] = &mut self.nodes;
            let mut inboxes_rest: &mut [Vec<(usize, Message)>] = &mut self.inboxes;
            let mut base = 0u32;
            while !nodes_rest.is_empty() {
                let take = chunk.min(nodes_rest.len());
                let (nodes_chunk, nr) = nodes_rest.split_at_mut(take);
                let (inbox_chunk, ir) = inboxes_rest.split_at_mut(take);
                nodes_rest = nr;
                inboxes_rest = ir;
                let b = base;
                handles.push(scope.spawn(move |_| {
                    let busy_start = profiling.then(Instant::now);
                    let mut compute_ns = 0u64;
                    let mut inbox_messages = 0u64;
                    let mut out: WorkerOut = Vec::new();
                    for (i, (node, inbox)) in nodes_chunk
                        .iter_mut()
                        .zip(inbox_chunk.iter_mut())
                        .enumerate()
                    {
                        let v = b + i as u32;
                        let taken = std::mem::take(inbox);
                        let mut ctx = RoundCtx::new(v, round, graph, tracing);
                        if profiling {
                            inbox_messages += taken.len() as u64;
                            let t = Instant::now();
                            node.round(&mut ctx, &taken);
                            compute_ns += t.elapsed().as_nanos() as u64;
                        } else {
                            node.round(&mut ctx, &taken);
                        }
                        let events = ctx.take_events();
                        if !ctx.sends.is_empty() || !events.is_empty() {
                            out.push((v, ctx.sends, events));
                        }
                    }
                    let busy_ns = busy_start
                        .map(|t| t.elapsed().as_nanos() as u64)
                        .unwrap_or(0);
                    (out, busy_ns, compute_ns, inbox_messages)
                }));
                base += take as u32;
            }
            for h in handles {
                worker_outputs.push(h.join().expect("worker panicked"));
            }
        })
        .expect("crossbeam scope failed");

        let mut next_inboxes: Vec<Vec<(usize, Message)>> = vec![Vec::new(); n];
        let mut first_error: Option<CongestError> = None;
        self.metrics.begin_round(round);
        let mut sink = self.sink.take();
        if let Some(s) = sink.as_deref_mut() {
            s.event(&TraceEvent::RoundStart { round });
        }
        let mut worker_busy_ns = Vec::new();
        let mut compute_ns = 0u64;
        let mut inbox_messages = 0u64;
        for (out, busy, compute, inbox) in worker_outputs {
            if profiling {
                worker_busy_ns.push(busy);
                compute_ns += compute;
                inbox_messages += inbox;
            }
            for (v, staged, events) in out {
                if let Some(s) = sink.as_deref_mut() {
                    for detail in events {
                        s.event(&TraceEvent::Protocol {
                            round,
                            node: v,
                            detail,
                        });
                    }
                }
                account_sends(
                    v,
                    round,
                    staged,
                    &self.graph,
                    self.budget_bits,
                    self.config.cut.as_ref(),
                    &mut self.metrics,
                    &mut next_inboxes,
                    &mut first_error,
                    sink.as_deref_mut(),
                );
            }
        }
        self.sink = sink;
        if let (Some(err), Enforcement::Strict) = (&first_error, self.config.enforcement) {
            return Err(err.clone());
        }
        for inbox in &mut next_inboxes {
            inbox.sort_unstable_by_key(|&(port, _)| port);
        }
        self.inboxes = next_inboxes;
        self.round += 1;
        self.metrics.rounds = self.round;
        if let (Some(t0), Some(p)) = (round_start, self.profiler.as_mut()) {
            p.record_round(RoundSpan {
                round,
                total_ns: t0.elapsed().as_nanos() as u64,
                compute_ns,
                inbox_messages,
                worker_busy_ns,
            });
        }
        Ok(())
    }
}

/// Validates and delivers one node's staged sends: collision detection,
/// budget enforcement, metric accounting, cut-flow accounting, and
/// enqueueing into the receivers' next-round inboxes.
#[allow(clippy::too_many_arguments)]
fn account_sends<S: TraceSink + ?Sized>(
    v: NodeId,
    round: u64,
    staged: Vec<(usize, Message)>,
    graph: &Graph,
    budget_bits: Option<usize>,
    cut: Option<&EdgeCut>,
    metrics: &mut NetMetrics,
    next_inboxes: &mut [Vec<(usize, Message)>],
    first_error: &mut Option<CongestError>,
    mut sink: Option<&mut S>,
) {
    // Collision detection: count messages per port.
    let neighbors = graph.neighbors(v);
    let mut port_counts: Vec<u8> = vec![0; neighbors.len()];
    for (port, msg) in staged {
        port_counts[port] = port_counts[port].saturating_add(1);
        if port_counts[port] > 1 {
            metrics.collisions += 1;
            if first_error.is_none() {
                *first_error = Some(CongestError::Collision {
                    node: v,
                    port,
                    round,
                });
            }
            if let Some(s) = sink.as_deref_mut() {
                s.event(&TraceEvent::ViolationDetected {
                    round,
                    node: v,
                    kind: ViolationKind::Collision { port },
                });
            }
        }
        metrics.max_messages_per_edge_round = metrics
            .max_messages_per_edge_round
            .max(port_counts[port] as u32);
        let bits = msg.bit_len();
        metrics.total_messages += 1;
        metrics.total_bits += bits as u64;
        metrics.max_message_bits = metrics.max_message_bits.max(bits);
        metrics.record_message(round, bits);
        if let Some(budget) = budget_bits {
            if bits > budget {
                metrics.oversized_messages += 1;
                if first_error.is_none() {
                    *first_error = Some(CongestError::Oversized {
                        node: v,
                        bits,
                        budget,
                        round,
                    });
                }
                if let Some(s) = sink.as_deref_mut() {
                    s.event(&TraceEvent::ViolationDetected {
                        round,
                        node: v,
                        kind: ViolationKind::Oversized { bits, budget },
                    });
                }
            }
        }
        let target = neighbors[port];
        if let Some(s) = sink.as_deref_mut() {
            s.event(&TraceEvent::MessageSent {
                round,
                from: v,
                to: target,
                bits,
            });
        }
        if let Some(cut) = cut {
            if cut.contains(v, target) {
                metrics.cut_bits += bits as u64;
                metrics.cut_messages += 1;
            }
        }
        let reverse_port = graph
            .neighbors(target)
            .binary_search(&v)
            .expect("undirected graph: reverse edge exists");
        next_inboxes[target as usize].push((reverse_port, msg));
    }
}
