//! Socket wire layer for the process-per-shard engine.
//!
//! The in-process parallel engine ([`crate::Network::run_parallel`]) moves
//! per-round lane batches between shard workers over channels. This module
//! moves the *same* batches between shard **processes** over TCP or
//! Unix-domain sockets, with nothing else changed: each shard runs the
//! identical worker loop ([`run_shard_engine`] mirrors the free-running
//! `ShardWorker` round template statement for statement), and the leader
//! performs the same canonical k-way merge, so results, metrics, and
//! telemetry snapshots stay bit-identical to the serial oracle.
//!
//! # Frame format
//!
//! Every frame is `tag: u8` + `len: u32 LE` + `len` payload bytes:
//!
//! | tag | name  | payload |
//! |-----|-------|---------|
//! | 1   | HELLO | magic, wire version, telemetry schema, role, shard id, shard count, graph hash, config hash |
//! | 2   | SETUP | opaque run configuration (encoded by the driver crate) |
//! | 3   | BATCH | one round's lane batch: round, routed count, halt/fatal flags, entries |
//! | 4   | DONE  | opaque per-shard results (encoded by the driver crate) |
//! | 5   | ERROR | UTF-8 description of a shard-side failure |
//!
//! # Handshake
//!
//! The leader dials each shard's listener in ascending shard order and
//! sends `HELLO` (assigning the shard its id) followed by `SETUP`; the
//! shard validates the magic/version/schema, checks the `SETUP` payload
//! against the hashes claimed in `HELLO`, and replies with its own
//! `HELLO`. Only then does the leader move to the next shard — which is
//! what makes the mesh build race-free: when shard `i` dials a lower
//! peer `j < i`, shard `j` has already completed its leader handshake
//! and is accepting. Dialers identify themselves with `HELLO`; both ends
//! verify they hold the same graph and config hashes.
//!
//! # Round protocol and failure semantics
//!
//! Each round every shard steps its nodes, then writes exactly one
//! `BATCH` frame to every peer (empty or not — the frame *is* the round
//! barrier), then reads exactly one `BATCH` from every peer. The
//! aggregate `(routed, all_halted, fatal)` flags are identical on every
//! shard, so all shards compute the same verdict locally with no extra
//! control round. Write-all-then-read-all relies on OS socket buffering
//! to absorb one round's batches per peer pair; [`MAX_FRAME_BYTES`]
//! bounds a frame well under any realistic buffer pathology. A peer that
//! dies mid-run surfaces as an EOF (or read-timeout) [`WireError`] on
//! its neighbors, which report `ERROR` to the leader instead of a
//! result; the leader turns that into a run error (and a postmortem)
//! rather than a hang.

use crate::faults::{corrupt_message, FaultPlan};
use crate::message::Message;
use crate::metrics::NetMetrics;
use crate::network::{account_sends, panic_message, CongestError, Protocol, RoundCtx};
use crate::partition::ShardMap;
use crate::telemetry::{Telemetry, TelemetryHandle, COUNTERS, SCHEMA_VERSION};
use crate::trace::TraceSink;
use bc_graph::{Graph, NodeId};
use bc_numeric::bits::BitWriter;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Protocol magic: the ASCII bytes `bcwire01` as a little-endian `u64`.
pub const MAGIC: u64 = u64::from_le_bytes(*b"bcwire01");

/// Version of the frame layout; bumped on any incompatible change.
pub const WIRE_VERSION: u32 = 1;

/// Hard upper bound on a single frame's payload (1 GiB); a length prefix
/// beyond this is treated as a protocol error, not an allocation request.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

/// `HELLO`: handshake (both directions, leader↔shard and shard↔shard).
pub const TAG_HELLO: u8 = 1;
/// `SETUP`: leader→shard run configuration (payload encoded by the driver).
pub const TAG_SETUP: u8 = 2;
/// `BATCH`: one round's lane batch between two shards.
pub const TAG_BATCH: u8 = 3;
/// `DONE`: shard→leader results (payload encoded by the driver).
pub const TAG_DONE: u8 = 4;
/// `ERROR`: shard→leader failure report (UTF-8 payload).
pub const TAG_ERROR: u8 = 5;
/// `QUERY`: client→server batch of centrality queries (payload encoded
/// by the serving layer, `bc-serve`).
pub const TAG_QUERY: u8 = 6;
/// `RESP`: server→client batch of query answers (payload encoded by the
/// serving layer, `bc-serve`).
pub const TAG_RESP: u8 = 7;

/// [`Hello::role`] of the leader process.
pub const ROLE_LEADER: u8 = 0;
/// [`Hello::role`] of a shard process.
pub const ROLE_SHARD: u8 = 1;
/// [`Hello::role`] of a query client talking to a `bc-serve` server.
pub const ROLE_CLIENT: u8 = 2;

/// Verdict: at least one more round is needed (internal to the loop).
pub const VERDICT_CONTINUE: u8 = 0;
/// Verdict: no message in flight and every node halted — clean completion.
pub const VERDICT_QUIESCENT: u8 = 1;
/// Verdict: the round limit was reached before quiescence.
pub const VERDICT_ROUND_LIMIT: u8 = 2;
/// Verdict: a node panicked (or violated CONGEST under strict
/// enforcement); the final round is not committed.
pub const VERDICT_ABORT: u8 = 3;

/// Read-timeout backstop on shard-to-shard data sockets: a healthy peer
/// answers every round within this window; a wedged one surfaces as a
/// [`WireError::Io`] instead of a hang. (A *dead* peer surfaces much
/// faster, via EOF.)
pub const PEER_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// How long [`WireStream::connect`] keeps retrying a refused connection
/// before giving up — covers leader/shard startup races in scripts and CI.
pub const CONNECT_RETRY_WINDOW: Duration = Duration::from_secs(10);

/// Errors from the socket wire layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Transport-level failure (connect, read, write, unexpected EOF).
    Io(String),
    /// The peer spoke, but not this protocol (bad magic, frame, codec,
    /// or a hash mismatch).
    Protocol(String),
    /// The peer reported its own failure via an `ERROR` frame.
    Peer(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(m) => write!(f, "wire i/o error: {m}"),
            WireError::Protocol(m) => write!(f, "wire protocol error: {m}"),
            WireError::Peer(m) => write!(f, "peer failure: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Addresses, listeners, streams
// ---------------------------------------------------------------------------

/// Splits a `tcp:HOST:PORT` / `unix:PATH` address into scheme and rest.
fn split_addr(addr: &str) -> Result<(&str, &str), WireError> {
    if let Some(rest) = addr.strip_prefix("tcp:") {
        Ok(("tcp", rest))
    } else if let Some(rest) = addr.strip_prefix("unix:") {
        Ok(("unix", rest))
    } else {
        Err(WireError::Protocol(format!(
            "address `{addr}` must start with `tcp:` or `unix:`"
        )))
    }
}

/// A listening socket bound to a `tcp:HOST:PORT` or `unix:PATH` address.
#[derive(Debug)]
pub enum WireListener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener, String),
}

impl WireListener {
    /// Binds to `addr` (`tcp:HOST:PORT`, port 0 for ephemeral, or
    /// `unix:PATH`; a stale socket file at `PATH` is removed first).
    pub fn bind(addr: &str) -> Result<WireListener, WireError> {
        match split_addr(addr)? {
            ("tcp", rest) => Ok(WireListener::Tcp(TcpListener::bind(rest)?)),
            #[cfg(unix)]
            ("unix", path) => {
                let _ = std::fs::remove_file(path);
                Ok(WireListener::Unix(UnixListener::bind(path)?, path.into()))
            }
            (scheme, _) => Err(WireError::Protocol(format!(
                "unsupported address scheme `{scheme}` on this platform"
            ))),
        }
    }

    /// The bound address in dialable `tcp:`/`unix:` form (resolves an
    /// ephemeral TCP port to the actual one).
    pub fn local_addr(&self) -> Result<String, WireError> {
        match self {
            WireListener::Tcp(l) => Ok(format!("tcp:{}", l.local_addr()?)),
            #[cfg(unix)]
            WireListener::Unix(_, path) => Ok(format!("unix:{path}")),
        }
    }

    /// Accepts one connection.
    pub fn accept(&self) -> Result<WireStream, WireError> {
        match self {
            WireListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(WireStream::Tcp(s))
            }
            #[cfg(unix)]
            WireListener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(WireStream::Unix(s))
            }
        }
    }

    /// Switches the listener's blocking mode (used by pollers that need
    /// to notice a stop flag between accepts).
    pub fn set_nonblocking(&self, nb: bool) -> Result<(), WireError> {
        match self {
            WireListener::Tcp(l) => l.set_nonblocking(nb)?,
            #[cfg(unix)]
            WireListener::Unix(l, _) => l.set_nonblocking(nb)?,
        }
        Ok(())
    }
}

/// A connected frame-oriented socket (TCP or Unix-domain).
#[derive(Debug)]
pub enum WireStream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl WireStream {
    /// Connects to `addr`, retrying refused/absent endpoints for up to
    /// [`CONNECT_RETRY_WINDOW`] to absorb process-startup races.
    pub fn connect(addr: &str) -> Result<WireStream, WireError> {
        let deadline = Instant::now() + CONNECT_RETRY_WINDOW;
        loop {
            let attempt: io::Result<WireStream> = match split_addr(addr)? {
                ("tcp", rest) => TcpStream::connect(rest).map(|s| {
                    let _ = s.set_nodelay(true);
                    WireStream::Tcp(s)
                }),
                #[cfg(unix)]
                ("unix", path) => UnixStream::connect(path).map(WireStream::Unix),
                (scheme, _) => {
                    return Err(WireError::Protocol(format!(
                        "unsupported address scheme `{scheme}` on this platform"
                    )))
                }
            };
            match attempt {
                Ok(s) => return Ok(s),
                Err(e) => {
                    let retryable = matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionRefused
                            | io::ErrorKind::NotFound
                            | io::ErrorKind::AddrNotAvailable
                    );
                    if !retryable || Instant::now() >= deadline {
                        return Err(WireError::Io(format!("connect {addr}: {e}")));
                    }
                    thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    /// Sets (or clears) the read timeout.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> Result<(), WireError> {
        match self {
            WireStream::Tcp(s) => s.set_read_timeout(t)?,
            #[cfg(unix)]
            WireStream::Unix(s) => s.set_read_timeout(t)?,
        }
        Ok(())
    }

    /// Clones the underlying socket handle (both halves share the fd).
    pub fn try_clone(&self) -> Result<WireStream, WireError> {
        Ok(match self {
            WireStream::Tcp(s) => WireStream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            WireStream::Unix(s) => WireStream::Unix(s.try_clone()?),
        })
    }

    /// Shuts down both directions, waking any peer blocked on a read.
    pub fn shutdown(&self) {
        match self {
            WireStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            WireStream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.write_all(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.write_all(buf),
        }
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.read_exact(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.read_exact(buf),
        }
    }

    /// Writes one `tag` frame with `payload`.
    pub fn write_frame(&mut self, tag: u8, payload: &[u8]) -> Result<(), WireError> {
        if payload.len() as u64 > MAX_FRAME_BYTES as u64 {
            return Err(WireError::Protocol(format!(
                "outgoing frame of {} bytes exceeds the {} byte cap",
                payload.len(),
                MAX_FRAME_BYTES
            )));
        }
        let mut frame = Vec::with_capacity(5 + payload.len());
        frame.push(tag);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        self.write_all(&frame)
            .map_err(|e| WireError::Io(format!("write frame: {e}")))
    }

    /// Reads one frame, returning `(tag, payload)`.
    pub fn read_frame(&mut self) -> Result<(u8, Vec<u8>), WireError> {
        let mut header = [0u8; 5];
        self.read_exact(&mut header)
            .map_err(|e| WireError::Io(format!("read frame header: {e}")))?;
        let tag = header[0];
        let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]);
        if len > MAX_FRAME_BYTES {
            return Err(WireError::Protocol(format!(
                "incoming frame claims {len} bytes (cap {MAX_FRAME_BYTES})"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.read_exact(&mut payload)
            .map_err(|e| WireError::Io(format!("read frame payload: {e}")))?;
        Ok((tag, payload))
    }
}

// ---------------------------------------------------------------------------
// Byte codecs
// ---------------------------------------------------------------------------

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A checked cursor over a frame payload; every read reports truncation
/// as a [`WireError::Protocol`] instead of panicking on a hostile frame.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Protocol(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Protocol("invalid UTF-8 in string field".into()))
    }

    /// Fails unless the payload was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Protocol(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Appends a [`Message`] (bit length + 64-bit payload chunks).
pub fn put_message(buf: &mut Vec<u8>, msg: &Message) {
    let bits = msg.bit_len();
    put_u32(buf, bits as u32);
    let mut r = msg.payload().reader();
    let mut at = 0usize;
    while at < bits {
        let chunk = (bits - at).min(64) as u32;
        put_u64(buf, r.read(chunk));
        at += chunk as usize;
    }
}

/// Reads a [`Message`] written by [`put_message`].
pub fn get_message(r: &mut ByteReader<'_>) -> Result<Message, WireError> {
    let bits = r.u32()? as usize;
    let mut w = BitWriter::new();
    let mut at = 0usize;
    while at < bits {
        let chunk = (bits - at).min(64) as u32;
        w.push(r.u64()?, chunk);
        at += chunk as usize;
    }
    Ok(Message::new(w.finish()))
}

/// FNV-1a 64-bit hash; used for the handshake's graph and config hashes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic hash of a graph's topology (node count + edge list).
pub fn graph_hash(g: &Graph) -> u64 {
    let mut buf = Vec::with_capacity(8 + g.edges().count() * 8);
    put_u64(&mut buf, g.n() as u64);
    for (u, v) in g.edges() {
        put_u32(&mut buf, u);
        put_u32(&mut buf, v);
    }
    fnv1a64(&buf)
}

// ---------------------------------------------------------------------------
// HELLO and BATCH frames
// ---------------------------------------------------------------------------

/// The handshake frame: identifies the sender and pins the run's graph
/// and configuration so mismatched processes fail fast instead of
/// diverging silently. The encoded form also carries [`MAGIC`],
/// [`WIRE_VERSION`], and the telemetry [`SCHEMA_VERSION`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// [`ROLE_LEADER`] or [`ROLE_SHARD`].
    pub role: u8,
    /// From the leader: the shard id it assigns the accepting process.
    /// From a shard: its own id.
    pub shard_id: u32,
    /// Total shard count of the run.
    pub shards: u32,
    /// [`graph_hash`] of the run's graph.
    pub graph_hash: u64,
    /// [`fnv1a64`] of the run's encoded `SETUP` payload.
    pub config_hash: u64,
}

impl Hello {
    /// Encodes into a `HELLO` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(33);
        put_u64(&mut buf, MAGIC);
        put_u32(&mut buf, WIRE_VERSION);
        put_u32(&mut buf, SCHEMA_VERSION);
        put_u8(&mut buf, self.role);
        put_u32(&mut buf, self.shard_id);
        put_u32(&mut buf, self.shards);
        put_u64(&mut buf, self.graph_hash);
        put_u64(&mut buf, self.config_hash);
        buf
    }

    /// Decodes and validates magic, wire version, and telemetry schema.
    pub fn decode(payload: &[u8]) -> Result<Hello, WireError> {
        let mut r = ByteReader::new(payload);
        let magic = r.u64()?;
        if magic != MAGIC {
            return Err(WireError::Protocol(format!(
                "bad magic {magic:#018x} (expected {MAGIC:#018x})"
            )));
        }
        let version = r.u32()?;
        if version != WIRE_VERSION {
            return Err(WireError::Protocol(format!(
                "wire version {version} (expected {WIRE_VERSION})"
            )));
        }
        let schema = r.u32()?;
        if schema != SCHEMA_VERSION {
            return Err(WireError::Protocol(format!(
                "telemetry schema {schema} (expected {SCHEMA_VERSION})"
            )));
        }
        let hello = Hello {
            role: r.u8()?,
            shard_id: r.u32()?,
            shards: r.u32()?,
            graph_hash: r.u64()?,
            config_hash: r.u64()?,
        };
        r.finish()?;
        Ok(hello)
    }
}

/// One round's lane batch from one shard to one peer: the messages whose
/// targets live on the peer, plus the sender's round summary flags the
/// peers need to agree on a verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The round these messages were sent in (delivered at `round + 1`).
    pub round: u64,
    /// Messages the *sending shard* routed this round (to all
    /// destinations, not just this peer) — summed across shards to
    /// detect quiescence.
    pub routed: u64,
    /// Every node of the sending shard is halted.
    pub all_halted: bool,
    /// The sending shard hit a node panic (or a strict-mode CONGEST
    /// violation) this round; all shards abort without committing it.
    pub fatal: bool,
    /// `(local index on the destination shard, arrival port, message)`.
    pub entries: Vec<(u32, u32, Message)>,
}

impl Batch {
    /// Encodes into a `BATCH` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(26 + self.entries.len() * 16);
        put_u64(&mut buf, self.round);
        put_u64(&mut buf, self.routed);
        let flags = (self.all_halted as u8) | ((self.fatal as u8) << 1);
        put_u8(&mut buf, flags);
        put_u32(&mut buf, self.entries.len() as u32);
        for (local, port, msg) in &self.entries {
            put_u32(&mut buf, *local);
            put_u32(&mut buf, *port);
            put_message(&mut buf, msg);
        }
        buf
    }

    /// Decodes a `BATCH` frame payload.
    pub fn decode(payload: &[u8]) -> Result<Batch, WireError> {
        let mut r = ByteReader::new(payload);
        let round = r.u64()?;
        let routed = r.u64()?;
        let flags = r.u8()?;
        let count = r.u32()? as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let local = r.u32()?;
            let port = r.u32()?;
            let msg = get_message(&mut r)?;
            entries.push((local, port, msg));
        }
        r.finish()?;
        Ok(Batch {
            round,
            routed,
            all_halted: flags & 1 != 0,
            fatal: flags & 2 != 0,
            entries,
        })
    }
}

// ---------------------------------------------------------------------------
// The shard-side round engine
// ---------------------------------------------------------------------------

/// Engine parameters a shard needs to run its slice of the round loop
/// (distributed by the leader's `SETUP`; already resolved — the budget
/// includes any transport header allowance).
#[derive(Debug, Clone, Copy)]
pub struct ShardEngineConfig {
    /// Per-message bit budget (`None` = unlimited).
    pub budget_bits: Option<usize>,
    /// Strict CONGEST enforcement: a collision/oversize aborts the run.
    pub strict: bool,
    /// Skip idle nodes with empty inboxes (observationally free).
    pub skip_idle: bool,
    /// Round limit guarding non-termination.
    pub max_rounds: u64,
    /// Collect per-round wall/compute/route timings.
    pub profiling: bool,
}

/// One committed round's timings and tallies from one shard — the wire
/// analog of the in-process engine's per-worker profile row; the leader
/// folds one [`crate::RoundSpan`] per round out of all shards' rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireProfRow {
    /// Wall time this shard spent inside the round (ns).
    pub busy_ns: u64,
    /// Time inside `Protocol::round` calls (ns).
    pub compute_ns: u64,
    /// Time delivering, routing, and publishing messages (ns).
    pub route_ns: u64,
    /// Messages delivered to this shard's nodes this round.
    pub inbox_messages: u64,
    /// Nodes actually stepped (idle-skipped nodes excluded).
    pub nodes_stepped: u64,
    /// Messages routed shard-locally.
    pub intra: u64,
    /// Messages routed to peer shards.
    pub cross: u64,
}

/// Number of telemetry counters in a per-round delta row.
pub const COUNTER_COUNT: usize = COUNTERS.len();

/// Everything a shard reports back to the leader after its run.
#[derive(Debug)]
pub struct ShardRunOutcome<P> {
    /// The shard's node states, in shard-local order.
    pub nodes: Vec<P>,
    /// This shard's partial metrics (`rounds` left 0 — the leader sets
    /// the committed count after merging, like the in-process join).
    pub metrics: NetMetrics,
    /// Rounds committed (identical on every shard).
    pub committed: u64,
    /// Final verdict (identical on every shard; never
    /// [`VERDICT_CONTINUE`]).
    pub verdict: u8,
    /// Lowest-id panicking node of the aborted round, if any.
    pub panic: Option<(NodeId, String)>,
    /// First CONGEST violation of the aborted round (strict mode only).
    pub first_error: Option<CongestError>,
    /// Per-executed-round telemetry counter deltas (one row per round the
    /// shard stepped, including an uncommitted aborted round); empty when
    /// telemetry is off.
    pub telemetry_deltas: Vec<[u64; COUNTER_COUNT]>,
    /// Per-committed-round profile rows (empty unless profiling).
    pub prof: Vec<WireProfRow>,
    /// Per-committed-round wall times; only shard 0 measures them, the
    /// same convention as the in-process free-running engine.
    pub round_wall_ns: Vec<u64>,
}

/// Runs one shard's slice of the synchronous round loop over socket
/// lanes, mirroring the in-process free-running `ShardWorker` exactly:
/// same delivery order (peer batches in ascending shard order, own
/// intra-shard staging in its slot, stable per-port inbox sort), same
/// ascending-id stepping with idle skipping and panic capture, same
/// `account_sends` validation and routing, and the same verdict rule —
/// which every shard computes locally from the identical
/// `(routed, all_halted, fatal)` sums carried on the batches.
///
/// `peers[d]` must be a connected stream for every `d != me` and `None`
/// at `me`. `telemetry`, when present, is a *local* registry: the engine
/// streams counters into it but never calls `finish_round` — committed
/// rounds are replayed into the leader's registry from the returned
/// deltas, which keeps straggler detection and the flight recorder a
/// run-level (not shard-level) judgement.
///
/// # Errors
///
/// [`WireError`] when a peer connection fails mid-run (EOF, timeout, or
/// a malformed/out-of-sequence frame). Node panics are *not* errors at
/// this layer; they surface in [`ShardRunOutcome::panic`].
#[allow(clippy::too_many_arguments)]
pub fn run_shard_engine<P: Protocol>(
    graph: &Graph,
    map: &ShardMap,
    me: usize,
    cfg: &ShardEngineConfig,
    mut nodes: Vec<P>,
    peers: &mut [Option<WireStream>],
    telemetry: Option<&Arc<Telemetry>>,
) -> Result<ShardRunOutcome<P>, WireError> {
    let k = map.len();
    let shard: &[NodeId] = &map.shards()[me];
    assert_eq!(nodes.len(), shard.len(), "one node state per shard member");
    assert_eq!(peers.len(), k, "one peer slot per shard");
    for (d, p) in peers.iter().enumerate() {
        if d != me && p.is_none() {
            return Err(WireError::Protocol(format!(
                "shard {me} has no stream for peer {d}"
            )));
        }
    }

    let mut metrics = NetMetrics::default();
    let mut inboxes: Vec<Vec<(usize, Message)>> = (0..shard.len()).map(|_| Vec::new()).collect();
    let mut staged: Vec<Vec<(u32, u32, Message)>> = (0..k).map(|_| Vec::new()).collect();
    let mut pending_intra: Vec<(u32, u32, Message)> = Vec::new();
    let mut out: Vec<Vec<(u32, u32, Message)>> = (0..k).map(|_| Vec::new()).collect();
    let mut touched: Vec<u32> = Vec::new();
    let mut stage_sends: Vec<(usize, Message)> = Vec::new();
    let mut stage_events = Vec::new();
    let mut port_scratch: Vec<u8> = Vec::new();
    let mut delayed_scratch: Vec<(u64, NodeId, usize, Message)> = Vec::new();
    let mut handle = telemetry.map(|t| TelemetryHandle::new(t.clone(), 0));
    let mut last_snap = telemetry.map(|t| t.snapshot());
    let mut telemetry_deltas: Vec<[u64; COUNTER_COUNT]> = Vec::new();
    let mut prof: Vec<WireProfRow> = Vec::new();
    let mut round_wall_ns: Vec<u64> = Vec::new();

    let mut round = 0u64;
    let mut committed = 0u64;
    let mut final_panic: Option<(NodeId, String)> = None;
    let mut final_first_error: Option<CongestError> = None;
    let verdict = loop {
        let wall_start = (cfg.profiling && me == 0).then(Instant::now);
        let busy_start = cfg.profiling.then(Instant::now);
        metrics.begin_round(round);
        let mut route_ns = 0u64;

        // Delivery: previous round's batches in ascending source-shard
        // order, with this shard's own intra staging taking its slot —
        // then the stable per-port sort. Identical to `drain_lanes`.
        let t = cfg.profiling.then(Instant::now);
        for (src, slot) in staged.iter_mut().enumerate() {
            let batch = if src == me { &mut pending_intra } else { slot };
            for (local, port, msg) in batch.drain(..) {
                let inbox = &mut inboxes[local as usize];
                if inbox.is_empty() {
                    touched.push(local);
                }
                inbox.push((port as usize, msg));
            }
        }
        for &local in &touched {
            inboxes[local as usize].sort_by_key(|&(port, _)| port);
        }
        touched.clear();
        if let Some(t) = t {
            route_ns += t.elapsed().as_nanos() as u64;
        }

        // Step the shard in ascending node-id order.
        let mut first_error: Option<CongestError> = None;
        let mut panic: Option<(NodeId, String)> = None;
        let mut compute_ns = 0u64;
        let mut inbox_messages = 0u64;
        let mut nodes_stepped = 0u64;
        let (mut routed, mut intra, mut cross) = (0u64, 0u64, 0u64);
        for (i, node) in nodes.iter_mut().enumerate() {
            let v = shard[i];
            let inbox = &inboxes[i];
            if inbox.is_empty() && cfg.skip_idle && node.idle_at(round) {
                continue;
            }
            nodes_stepped += 1;
            inbox_messages += inbox.len() as u64;
            let mut ctx = RoundCtx::with_buffers(
                v,
                round,
                graph,
                false,
                std::mem::take(&mut stage_sends),
                std::mem::take(&mut stage_events),
            );
            let t = cfg.profiling.then(Instant::now);
            let outcome = catch_unwind(AssertUnwindSafe(|| node.round(&mut ctx, inbox)));
            if let Some(t) = t {
                compute_ns += t.elapsed().as_nanos() as u64;
            }
            let (mut node_sends, mut node_events) = ctx.into_buffers();
            match outcome {
                Ok(()) => {
                    let t = cfg.profiling.then(Instant::now);
                    account_sends(
                        v,
                        round,
                        node_sends.drain(..),
                        graph,
                        cfg.budget_bits,
                        None,
                        &mut metrics,
                        &mut port_scratch,
                        |target, reverse_port, msg| {
                            routed += 1;
                            let entry = (map.local_of(target) as u32, reverse_port as u32, msg);
                            let dest = map.shard_of(target);
                            if dest == me {
                                intra += 1;
                                pending_intra.push(entry);
                            } else {
                                cross += 1;
                                out[dest].push(entry);
                            }
                        },
                        &mut first_error,
                        None::<&mut dyn TraceSink>,
                        None,
                        &mut delayed_scratch,
                    );
                    debug_assert!(delayed_scratch.is_empty(), "no fault plan on the wire");
                    if let Some(t) = t {
                        route_ns += t.elapsed().as_nanos() as u64;
                    }
                }
                Err(payload) => {
                    node_sends.clear();
                    node_events.clear();
                    panic = Some((v, panic_message(payload)));
                }
            }
            stage_sends = node_sends;
            stage_events = node_events;
            inboxes[i].clear();
            if panic.is_some() {
                break;
            }
        }
        let all_halted = nodes.iter().all(|p| p.is_halted());
        let fatal_local = panic.is_some() || (cfg.strict && first_error.is_some());

        // Publish: exactly one batch per peer, empty or not — the frame
        // is the round barrier.
        let t = cfg.profiling.then(Instant::now);
        for d in 0..k {
            if d == me {
                continue;
            }
            let batch = Batch {
                round,
                routed,
                all_halted,
                fatal: fatal_local,
                entries: std::mem::take(&mut out[d]),
            };
            let payload = batch.encode();
            peers[d]
                .as_mut()
                .expect("checked above")
                .write_frame(TAG_BATCH, &payload)?;
            let mut entries = batch.entries;
            entries.clear();
            out[d] = entries;
        }
        if let Some(t) = t {
            route_ns += t.elapsed().as_nanos() as u64;
        }

        if let Some(h) = handle.as_mut() {
            h.on_round(&metrics, nodes_stepped, inbox_messages, intra, cross);
        }
        if let (Some(t), Some(prev)) = (telemetry, last_snap.as_mut()) {
            let now = t.snapshot();
            let mut delta = [0u64; COUNTER_COUNT];
            for (i, (c, _)) in COUNTERS.iter().enumerate() {
                delta[i] = now.get(*c).saturating_sub(prev.get(*c));
            }
            telemetry_deltas.push(delta);
            *prev = now;
        }

        // Collect every peer's batch for this round; the flag sums are
        // identical on every shard, so the verdict below needs no extra
        // agreement round.
        let mut routed_sum = routed;
        let mut all_halted_all = all_halted;
        let mut fatal_any = fatal_local;
        for src in 0..k {
            if src == me {
                continue;
            }
            let (tag, payload) = peers[src].as_mut().expect("checked above").read_frame()?;
            if tag == TAG_ERROR {
                let msg = String::from_utf8_lossy(&payload).into_owned();
                return Err(WireError::Peer(format!("shard {src}: {msg}")));
            }
            if tag != TAG_BATCH {
                return Err(WireError::Protocol(format!(
                    "expected BATCH from shard {src}, got tag {tag}"
                )));
            }
            let batch = Batch::decode(&payload)?;
            if batch.round != round {
                return Err(WireError::Protocol(format!(
                    "shard {src} sent a batch for round {} during round {round}",
                    batch.round
                )));
            }
            routed_sum += batch.routed;
            all_halted_all &= batch.all_halted;
            fatal_any |= batch.fatal;
            staged[src] = batch.entries;
        }

        let verdict = if fatal_any {
            VERDICT_ABORT
        } else if routed_sum == 0 && all_halted_all {
            VERDICT_QUIESCENT
        } else if round + 1 >= cfg.max_rounds {
            VERDICT_ROUND_LIMIT
        } else {
            VERDICT_CONTINUE
        };
        if verdict == VERDICT_ABORT {
            // An aborted round commits nowhere; keep only the error
            // attribution, exactly like the in-process engines.
            final_panic = panic;
            if cfg.strict {
                final_first_error = first_error;
            }
            break verdict;
        }
        committed += 1;
        if cfg.profiling {
            prof.push(WireProfRow {
                busy_ns: busy_start
                    .map(|t| t.elapsed().as_nanos() as u64)
                    .unwrap_or(0),
                compute_ns,
                route_ns,
                inbox_messages,
                nodes_stepped,
                intra,
                cross,
            });
            if let Some(t0) = wall_start {
                round_wall_ns.push(t0.elapsed().as_nanos() as u64);
            }
        }
        match verdict {
            VERDICT_CONTINUE => round += 1,
            _ => break verdict,
        }
    };

    Ok(ShardRunOutcome {
        nodes,
        metrics,
        committed,
        verdict,
        panic: final_panic,
        first_error: final_first_error,
        telemetry_deltas,
        prof,
        round_wall_ns,
    })
}

// ---------------------------------------------------------------------------
// Lossy proxy
// ---------------------------------------------------------------------------

/// A fault-injecting relay for one shard's listener: accepts in place of
/// the shard, forwards every connection to the real backend, and replays
/// a [`FaultPlan`] against the *entries* of `BATCH` frames passing
/// through — real drops, duplications, bit-corruptions, and delays on a
/// real socket, driven by the same deterministic per-(edge, round)
/// decisions the in-process injector uses.
///
/// The frame itself is never dropped (it is the round barrier) and the
/// `routed`/`all_halted`/`fatal` flags pass through untouched, so the
/// lossy network stays synchronous at the transport level while the
/// protocol payloads suffer; the `Reliable` layer's retransmissions are
/// then exercised end to end. Crash windows in the plan are ignored —
/// killing a real process is the wire equivalent, tested separately.
///
/// Delayed entries are buffered and appended to the first later batch in
/// the same direction whose round reaches the due round (after that
/// batch's own entries, matching the in-process injector's
/// deliver-after-normal ordering).
pub struct LossyProxy {
    addr: String,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

struct ProxyShared {
    front_shard: usize,
    graph: Arc<Graph>,
    map: Arc<ShardMap>,
    plan: FaultPlan,
}

impl LossyProxy {
    /// Starts a proxy listening on `listen` (use port 0 / a fresh socket
    /// path) and relaying every connection to `backend` — the address the
    /// real shard `front_shard` of `map` listens on.
    ///
    /// # Errors
    ///
    /// [`WireError`] if the listener cannot be bound.
    pub fn start(
        listen: &str,
        backend: String,
        front_shard: usize,
        graph: Arc<Graph>,
        map: Arc<ShardMap>,
        plan: FaultPlan,
    ) -> Result<LossyProxy, WireError> {
        let listener = WireListener::bind(listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(ProxyShared {
            front_shard,
            graph,
            map,
            plan,
        });
        let stop2 = stop.clone();
        let accept_thread = thread::spawn(move || loop {
            if stop2.load(Ordering::Acquire) {
                return;
            }
            match listener.accept() {
                Ok(client) => {
                    // The listener is non-blocking, so the accepted fd
                    // inherited that; relays want blocking reads.
                    set_blocking(&client);
                    let shared = shared.clone();
                    let backend = backend.clone();
                    thread::spawn(move || {
                        let _ = proxy_connection(client, &backend, &shared);
                    });
                }
                Err(WireError::Io(_)) => thread::sleep(Duration::from_millis(10)),
                Err(_) => return,
            }
        });
        Ok(LossyProxy {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's dialable address — hand this out in place of the
    /// backend shard's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Drop for LossyProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

fn set_blocking(s: &WireStream) {
    match s {
        WireStream::Tcp(t) => {
            let _ = t.set_nonblocking(false);
        }
        #[cfg(unix)]
        WireStream::Unix(u) => {
            let _ = u.set_nonblocking(false);
        }
    }
}

/// Wires up both relay directions for one proxied connection and runs
/// the client→backend direction on this thread.
fn proxy_connection(
    client: WireStream,
    backend: &str,
    shared: &Arc<ProxyShared>,
) -> Result<(), WireError> {
    let server = WireStream::connect(backend)?;
    // The dialing peer's shard id, learned from the first HELLO that
    // passes toward the front shard; `u32::MAX` until known (the leader
    // connection never carries batches, so it simply never resolves).
    let peer_id = Arc::new(AtomicU32::new(u32::MAX));

    let c_read = client.try_clone()?;
    let c_write = client;
    let s_read = server.try_clone()?;
    let s_write = server;

    let shared2 = shared.clone();
    let peer2 = peer_id.clone();
    let back = thread::spawn(move || {
        // backend → client: batches here target the *dialing* peer.
        relay_direction(s_read, c_write, &shared2, RelayDest::Peer(peer2));
    });
    // client → backend: batches here target the front shard.
    relay_direction(c_read, s_write, shared, RelayDest::Front(peer_id));
    let _ = back.join();
    Ok(())
}

enum RelayDest {
    /// Toward the front shard; also records the dialer's id from HELLO.
    Front(Arc<AtomicU32>),
    /// Away from the front shard, toward the recorded dialer.
    Peer(Arc<AtomicU32>),
}

fn relay_direction(
    mut from: WireStream,
    mut to: WireStream,
    shared: &ProxyShared,
    dest: RelayDest,
) {
    // (due round, entry) buffer for fault-delayed entries.
    let mut delayed: Vec<(u64, (u32, u32, Message))> = Vec::new();
    loop {
        let (tag, payload) = match from.read_frame() {
            Ok(f) => f,
            Err(_) => {
                // EOF or error: propagate the close so the other end's
                // blocked read wakes immediately.
                from.shutdown();
                to.shutdown();
                return;
            }
        };
        let forward: Vec<u8> = match tag {
            TAG_HELLO => {
                if let (RelayDest::Front(slot), Ok(h)) = (&dest, Hello::decode(&payload)) {
                    if h.role == ROLE_SHARD {
                        slot.store(h.shard_id, Ordering::Release);
                    }
                }
                payload
            }
            TAG_BATCH => {
                let dest_shard = match &dest {
                    RelayDest::Front(_) => shared.front_shard as u32,
                    RelayDest::Peer(slot) => slot.load(Ordering::Acquire),
                };
                match Batch::decode(&payload) {
                    Ok(batch) if (dest_shard as usize) < shared.map.len() => {
                        mangle_batch(batch, dest_shard as usize, shared, &mut delayed).encode()
                    }
                    _ => payload, // unknown destination or undecodable: pass through
                }
            }
            _ => payload,
        };
        if to.write_frame(tag, &forward).is_err() {
            from.shutdown();
            to.shutdown();
            return;
        }
    }
}

/// Applies the fault plan to each entry of a batch headed for shard
/// `dest`, then appends any previously delayed entries now due.
fn mangle_batch(
    mut batch: Batch,
    dest: usize,
    shared: &ProxyShared,
    delayed: &mut Vec<(u64, (u32, u32, Message))>,
) -> Batch {
    let shard = &shared.map.shards()[dest];
    let mut kept: Vec<(u32, u32, Message)> = Vec::with_capacity(batch.entries.len());
    for (local, port, msg) in batch.entries.drain(..) {
        let Some(&target) = shard.get(local as usize) else {
            kept.push((local, port, msg));
            continue;
        };
        let neighbors = shared.graph.neighbors(target);
        let Some(&sender) = neighbors.get(port as usize) else {
            kept.push((local, port, msg));
            continue;
        };
        let d = shared.plan.decide(sender, target, batch.round);
        if d.drop {
            continue;
        }
        let m = match d.corrupt {
            Some(entropy) => corrupt_message(&msg, entropy),
            None => msg,
        };
        let copies = if d.duplicate { 2 } else { 1 };
        for _ in 0..copies {
            if d.delay > 0 {
                delayed.push((batch.round + d.delay, (local, port, m.clone())));
            } else {
                kept.push((local, port, m.clone()));
            }
        }
    }
    batch.entries = kept;
    let round = batch.round;
    let mut i = 0;
    while i < delayed.len() {
        if delayed[i].0 <= round {
            let (_, entry) = delayed.swap_remove(i);
            batch.entries.push(entry);
        } else {
            i += 1;
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_numeric::bits::BitWriter;

    fn msg(bits: &[(u64, u32)]) -> Message {
        let mut w = BitWriter::new();
        for &(v, width) in bits {
            w.push(v, width);
        }
        Message::new(w.finish())
    }

    #[test]
    fn message_codec_round_trips() {
        for m in [
            msg(&[]),
            msg(&[(1, 1)]),
            msg(&[(0xdead_beef, 32), (0x1234, 16)]),
            msg(&[(u64::MAX, 64), (0b101, 3), (u64::MAX >> 1, 63)]),
        ] {
            let mut buf = Vec::new();
            put_message(&mut buf, &m);
            let mut r = ByteReader::new(&buf);
            let back = get_message(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn hello_codec_round_trips_and_validates() {
        let h = Hello {
            role: ROLE_SHARD,
            shard_id: 3,
            shards: 4,
            graph_hash: 0x1122_3344_5566_7788,
            config_hash: 0x99aa_bbcc_ddee_ff00,
        };
        let enc = h.encode();
        assert_eq!(Hello::decode(&enc).unwrap(), h);
        let mut bad = enc.clone();
        bad[0] ^= 1; // magic
        assert!(matches!(Hello::decode(&bad), Err(WireError::Protocol(_))));
        let mut bad = enc.clone();
        bad[8] ^= 1; // version
        assert!(matches!(Hello::decode(&bad), Err(WireError::Protocol(_))));
        assert!(Hello::decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn batch_codec_round_trips() {
        let b = Batch {
            round: 41,
            routed: 7,
            all_halted: true,
            fatal: false,
            entries: vec![
                (0, 2, msg(&[(5, 8)])),
                (3, 0, msg(&[])),
                (1, 1, msg(&[(u64::MAX, 64), (1, 1)])),
            ],
        };
        assert_eq!(Batch::decode(&b.encode()).unwrap(), b);
        let empty = Batch {
            round: 0,
            routed: 0,
            all_halted: false,
            fatal: true,
            entries: Vec::new(),
        };
        assert_eq!(Batch::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn frames_round_trip_over_a_socket() {
        let listener = WireListener::bind("tcp:127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            let (tag, payload) = s.read_frame().unwrap();
            s.write_frame(tag, &payload).unwrap();
        });
        let mut c = WireStream::connect(&addr).unwrap();
        c.write_frame(TAG_ERROR, b"boom").unwrap();
        let (tag, payload) = c.read_frame().unwrap();
        assert_eq!((tag, payload.as_slice()), (TAG_ERROR, b"boom".as_slice()));
        t.join().unwrap();
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_allocated() {
        let listener = WireListener::bind("tcp:127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            s.read_frame()
        });
        let mut c = WireStream::connect(&addr).unwrap();
        let mut raw = vec![TAG_BATCH];
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        c.write_all(&raw).unwrap();
        assert!(matches!(t.join().unwrap(), Err(WireError::Protocol(_))));
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for the standard FNV-1a 64-bit parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn address_parsing_rejects_unknown_schemes() {
        assert!(WireListener::bind("http:127.0.0.1:0").is_err());
        assert!(WireStream::connect("127.0.0.1:1").is_err());
    }
}
