//! Deterministic, seeded fault injection for all three round engines.
//!
//! A [`FaultPlan`] sits between node outboxes and inboxes and decides, per
//! directed edge per round, whether the message crossing it is dropped,
//! duplicated, bit-corrupted, or delayed — plus which nodes are crashed in
//! which round windows. Every decision is a **pure function** of
//! `(seed, from, to, round)`, so the serial, pooled-parallel, and α-sync
//! engines all see the *same* fault pattern regardless of iteration order
//! or thread interleaving: a chaos run is exactly reproducible from its
//! plan string and seed.
//!
//! The plan grammar (also accepted by `distbc --faults`):
//!
//! ```text
//! drop=0.1,dup=0.05,corrupt=0.01,delay=0.1:3,crash=4@100..200,crash=7@50..
//! ```
//!
//! `delay=P:D` delays each message with probability `P` by 1–`D` extra
//! rounds; `crash=V@A..B` crash-stops node `V` from round `A` (inclusive)
//! to round `B` (exclusive; omit `B` for crash-forever).

use crate::Message;
use bc_numeric::bits::BitWriter;

/// One crash window: node `node` is down for rounds
/// `from_round..to_round` (crash-recover) or `from_round..` forever
/// (crash-stop) when `to_round` is `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed node id.
    pub node: u32,
    /// First round (inclusive) in which the node is down.
    pub from_round: u64,
    /// First round in which the node is back up; `None` = never recovers.
    pub to_round: Option<u64>,
}

impl CrashWindow {
    /// True when the node is down in `round`.
    pub fn covers(&self, round: u64) -> bool {
        round >= self.from_round && self.to_round.is_none_or(|t| round < t)
    }
}

/// The outcome of [`FaultPlan::decide`] for one `(from, to, round)` slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultDecision {
    /// Message is silently lost.
    pub drop: bool,
    /// Message is delivered twice.
    pub duplicate: bool,
    /// Raw entropy for bit corruption: flip bit `entropy % bit_len`.
    pub corrupt: Option<u64>,
    /// Extra delivery delay in rounds (0 = on time).
    pub delay: u64,
}

impl FaultDecision {
    /// True when no fault fires on this slot.
    pub fn is_clean(&self) -> bool {
        !self.drop && !self.duplicate && self.corrupt.is_none() && self.delay == 0
    }
}

/// A reproducible fault schedule: per-edge/per-round probabilities driven
/// by a seed, plus explicit crash windows.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every per-slot decision.
    pub seed: u64,
    /// Probability a message is dropped.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability one payload bit is flipped.
    pub corrupt: f64,
    /// Probability delivery is delayed by 1–`max_delay` rounds.
    pub delay: f64,
    /// Maximum extra delay in rounds (≥ 1 when `delay > 0`).
    pub max_delay: u64,
    /// Crash-stop / crash-recover windows.
    pub crashes: Vec<CrashWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            max_delay: 1,
            crashes: Vec::new(),
        }
    }
}

/// Salts separating the per-decision hash streams, so e.g. the drop and
/// duplicate decisions on the same slot are independent.
const SALT_DROP: u64 = 0x9e37_79b9_7f4a_7c15;
const SALT_DUP: u64 = 0x5851_f42d_4c95_7f2d;
const SALT_CORRUPT: u64 = 0x2545_f491_4f6c_dd1d;
const SALT_DELAY: u64 = 0x1405_7b7e_f767_814f;

/// `splitmix64` finalizer: a cheap, well-mixed 64-bit hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes one `(seed, from, to, round)` slot under a salt.
fn slot_hash(seed: u64, salt: u64, from: u32, to: u32, round: u64) -> u64 {
    let a = splitmix64(seed ^ salt);
    let b = splitmix64(a ^ ((from as u64) << 32 | to as u64));
    splitmix64(b ^ round)
}

/// Converts a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// A plan with the given seed and no faults (useful as a base for
    /// struct-update syntax).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// True when no probabilistic fault can ever fire (crash windows may
    /// still exist).
    pub fn is_lossless(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.corrupt == 0.0 && self.delay == 0.0
    }

    /// The fault decision for the message crossing `from → to` in `round`.
    /// Pure in `(self.seed, from, to, round)` — every engine computes the
    /// same answer for the same slot, in any order, on any thread.
    pub fn decide(&self, from: u32, to: u32, round: u64) -> FaultDecision {
        let mut d = FaultDecision::default();
        if self.drop > 0.0 && unit(slot_hash(self.seed, SALT_DROP, from, to, round)) < self.drop {
            d.drop = true;
            return d; // a dropped message can suffer no further fault
        }
        if self.duplicate > 0.0
            && unit(slot_hash(self.seed, SALT_DUP, from, to, round)) < self.duplicate
        {
            d.duplicate = true;
        }
        if self.corrupt > 0.0 {
            let h = slot_hash(self.seed, SALT_CORRUPT, from, to, round);
            if unit(h) < self.corrupt {
                d.corrupt = Some(splitmix64(h));
            }
        }
        if self.delay > 0.0 && self.max_delay > 0 {
            let h = slot_hash(self.seed, SALT_DELAY, from, to, round);
            if unit(h) < self.delay {
                d.delay = 1 + splitmix64(h) % self.max_delay;
            }
        }
        d
    }

    /// True when `node` is crashed (down) in `round`.
    pub fn crashed(&self, node: u32, round: u64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && c.covers(round))
    }

    /// Parses the CLI plan grammar (see module docs). Returns a
    /// human-readable error for malformed specs.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec {part:?}: expected key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("fault spec {part:?}: bad probability {v:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault spec {part:?}: probability outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = val
                        .parse()
                        .map_err(|_| format!("fault spec {part:?}: bad seed"))?
                }
                "drop" => plan.drop = prob(val)?,
                "dup" => plan.duplicate = prob(val)?,
                "corrupt" => plan.corrupt = prob(val)?,
                "delay" => {
                    let (p, d) = val
                        .split_once(':')
                        .ok_or_else(|| format!("fault spec {part:?}: expected delay=P:D"))?;
                    plan.delay = prob(p)?;
                    plan.max_delay = d
                        .parse()
                        .map_err(|_| format!("fault spec {part:?}: bad max delay {d:?}"))?;
                    if plan.max_delay == 0 {
                        return Err(format!("fault spec {part:?}: max delay must be ≥ 1"));
                    }
                }
                "crash" => {
                    let (node, window) = val
                        .split_once('@')
                        .ok_or_else(|| format!("fault spec {part:?}: expected crash=V@A..B"))?;
                    let node: u32 = node
                        .parse()
                        .map_err(|_| format!("fault spec {part:?}: bad node id {node:?}"))?;
                    let (from, to) = window.split_once("..").ok_or_else(|| {
                        format!("fault spec {part:?}: expected round window A..B")
                    })?;
                    let from_round: u64 = from
                        .parse()
                        .map_err(|_| format!("fault spec {part:?}: bad round {from:?}"))?;
                    let to_round = if to.is_empty() {
                        None
                    } else {
                        let t: u64 = to
                            .parse()
                            .map_err(|_| format!("fault spec {part:?}: bad round {to:?}"))?;
                        if t <= from_round {
                            return Err(format!("fault spec {part:?}: empty crash window"));
                        }
                        Some(t)
                    };
                    plan.crashes.push(CrashWindow {
                        node,
                        from_round,
                        to_round,
                    });
                }
                other => return Err(format!("fault spec: unknown key {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// Returns `msg` with one bit flipped at `entropy % bit_len`. An empty
/// message is returned unchanged (there is no bit to flip).
pub fn corrupt_message(msg: &Message, entropy: u64) -> Message {
    let bits = msg.bit_len();
    if bits == 0 {
        return msg.clone();
    }
    let flip = (entropy % bits as u64) as usize;
    let mut r = msg.payload().reader();
    let mut w = BitWriter::new();
    let mut at = 0usize;
    while at < bits {
        let chunk = (bits - at).min(64) as u32;
        let mut v = r.read(chunk);
        if (at..at + chunk as usize).contains(&flip) {
            v ^= 1u64 << (flip - at);
        }
        w.push(v, chunk);
        at += chunk as usize;
    }
    Message::new(w.finish())
}

/// A stable 64-bit content hash of a message (FNV-1a over 64-bit chunks
/// plus the bit length) — used to tag trace events so the offline checker
/// can tell an injected duplicate from a schedule collision.
pub fn payload_hash(msg: &Message) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let bits = msg.bit_len();
    let mut h = FNV_OFFSET ^ bits as u64;
    let mut r = msg.payload().reader();
    let mut at = 0usize;
    while at < bits {
        let chunk = (bits - at).min(64) as u32;
        h = (h ^ r.read(chunk)).wrapping_mul(FNV_PRIME);
        at += chunk as usize;
    }
    h
}

/// Rebuilds a message from its bit content (identity transform) — shared
/// helper for tests that need a structurally fresh copy.
#[cfg(test)]
fn roundtrip(msg: &Message) -> Message {
    let bits = msg.bit_len();
    let mut r = msg.payload().reader();
    let mut w = BitWriter::new();
    let mut at = 0usize;
    while at < bits {
        let chunk = (bits - at).min(64) as u32;
        w.push(r.read(chunk), chunk);
        at += chunk as usize;
    }
    Message::new(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(bits: &[(u64, u32)]) -> Message {
        let mut w = BitWriter::new();
        for &(v, width) in bits {
            w.push(v, width);
        }
        Message::new(w.finish())
    }

    #[test]
    fn decisions_are_deterministic_and_slot_local() {
        let plan = FaultPlan {
            seed: 42,
            drop: 0.3,
            duplicate: 0.2,
            corrupt: 0.1,
            delay: 0.2,
            max_delay: 3,
            ..FaultPlan::default()
        };
        for round in 0..50 {
            for (from, to) in [(0u32, 1u32), (1, 0), (3, 7)] {
                let a = plan.decide(from, to, round);
                let b = plan.decide(from, to, round);
                assert_eq!(a, b);
                assert!(a.delay <= 3);
                if a.drop {
                    assert!(a.is_clean() || a.drop); // drop short-circuits
                    assert!(!a.duplicate && a.corrupt.is_none() && a.delay == 0);
                }
            }
        }
    }

    #[test]
    fn fault_rates_are_roughly_honored() {
        let plan = FaultPlan {
            seed: 7,
            drop: 0.2,
            ..FaultPlan::default()
        };
        let trials = 10_000;
        let drops = (0..trials).filter(|&r| plan.decide(0, 1, r).drop).count();
        let rate = drops as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn direction_and_seed_decorrelate() {
        let a = FaultPlan {
            seed: 1,
            drop: 0.5,
            ..FaultPlan::default()
        };
        let b = FaultPlan {
            seed: 2,
            ..a.clone()
        };
        let forward: Vec<bool> = (0..64).map(|r| a.decide(2, 3, r).drop).collect();
        let backward: Vec<bool> = (0..64).map(|r| a.decide(3, 2, r).drop).collect();
        let reseeded: Vec<bool> = (0..64).map(|r| b.decide(2, 3, r).drop).collect();
        assert_ne!(forward, backward);
        assert_ne!(forward, reseeded);
    }

    #[test]
    fn crash_windows() {
        let plan = FaultPlan {
            crashes: vec![
                CrashWindow {
                    node: 4,
                    from_round: 10,
                    to_round: Some(20),
                },
                CrashWindow {
                    node: 7,
                    from_round: 5,
                    to_round: None,
                },
            ],
            ..FaultPlan::default()
        };
        assert!(!plan.crashed(4, 9));
        assert!(plan.crashed(4, 10));
        assert!(plan.crashed(4, 19));
        assert!(!plan.crashed(4, 20));
        assert!(plan.crashed(7, 1_000_000));
        assert!(!plan.crashed(0, 10));
    }

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "seed=9,drop=0.1,dup=0.05,corrupt=0.01,delay=0.2:3,crash=4@100..200,crash=7@50..",
        )
        .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.drop, 0.1);
        assert_eq!(plan.duplicate, 0.05);
        assert_eq!(plan.corrupt, 0.01);
        assert_eq!(plan.delay, 0.2);
        assert_eq!(plan.max_delay, 3);
        assert_eq!(
            plan.crashes,
            vec![
                CrashWindow {
                    node: 4,
                    from_round: 100,
                    to_round: Some(200)
                },
                CrashWindow {
                    node: 7,
                    from_round: 50,
                    to_round: None
                },
            ]
        );
        assert!(!plan.is_lossless());
        assert!(FaultPlan::parse("").unwrap().is_lossless());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "drop",
            "drop=1.5",
            "drop=-0.1",
            "delay=0.5",
            "delay=0.5:0",
            "crash=4",
            "crash=4@10",
            "crash=4@20..10",
            "warp=0.5",
            "seed=x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let m = msg(&[(0xdead_beef, 32), (0b101, 3), (u64::MAX, 64)]);
        for entropy in [0u64, 1, 31, 32, 63, 64, 98, u64::MAX] {
            let c = corrupt_message(&m, entropy);
            assert_eq!(c.bit_len(), m.bit_len());
            assert_ne!(c, m, "entropy {entropy} flipped nothing");
            // Flipping the same bit again restores the original.
            let restored = corrupt_message(&c, entropy);
            assert_eq!(restored, m);
        }
        let empty = Message::default();
        assert_eq!(corrupt_message(&empty, 5), empty);
    }

    #[test]
    fn payload_hash_distinguishes_content_and_length() {
        let a = msg(&[(0b1011, 4)]);
        let b = msg(&[(0b1010, 4)]);
        let c = msg(&[(0b1011, 5)]);
        assert_eq!(payload_hash(&a), payload_hash(&a));
        assert_ne!(payload_hash(&a), payload_hash(&b));
        assert_ne!(payload_hash(&a), payload_hash(&c));
        assert_eq!(payload_hash(&roundtrip(&a)), payload_hash(&a));
    }
}
