//! Node→worker partitioning for the parallel engine.
//!
//! [`crate::Network::run_parallel`] splits the node set into one shard per
//! worker. The shard assignment is *fixed for the whole run*, which is what
//! makes message routing a table lookup ([`ShardMap::shard_of`]) and keeps
//! every worker's step order (ascending node id within its shard)
//! deterministic. Partitioning never changes observable output — node
//! states, metrics, and traces are bit-identical for every strategy and
//! worker count — it only changes how evenly the per-round work spreads
//! across the pool.
//!
//! Three strategies are provided:
//!
//! * [`Partition::Contiguous`] — equal-*count* chunks of consecutive ids
//!   (the historical default). Cache-friendly, but blind to load: the
//!   DFS-token holder and the BFS frontier do nearly all of a round's work,
//!   and consecutive ids often sit in the same region of the graph.
//! * [`Partition::DegreeBalanced`] — equal-*degree* shards via LPT
//!   (longest-processing-time) greedy assignment. A node's per-round send
//!   and inbox work is bounded by its degree, so degree is the natural
//!   static proxy for its load.
//! * [`Partition::ScheduleAware`] — shards balanced by caller-provided
//!   per-node weights. `bc-core` derives them from the provisioned
//!   `T_s(u)` schedule density (see `PhaseSchedule::partition_weights`):
//!   degree-proportional wave/aggregation traffic plus the per-source
//!   bookkeeping every node performs regardless of degree. Carrying the
//!   weights in the variant keeps this crate free of any dependency on the
//!   protocol layer above it.

use bc_graph::{Graph, NodeId};
use std::sync::Arc;

/// Strategy for assigning nodes to parallel-engine workers.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Partition {
    /// Contiguous equal-count chunks of node ids.
    #[default]
    Contiguous,
    /// Degree-balanced shards (LPT greedy over `degree(v) + 1`).
    DegreeBalanced,
    /// Shards balanced by external per-node weights (one per node, in id
    /// order; zero weights are clamped to 1). The weights typically come
    /// from the protocol's provisioned schedule.
    ScheduleAware(Arc<[u64]>),
}

impl Partition {
    /// Short label for logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Partition::Contiguous => "contiguous",
            Partition::DegreeBalanced => "degree",
            Partition::ScheduleAware(_) => "schedule",
        }
    }

    /// Builds the shard map for `threads` workers over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if a [`Partition::ScheduleAware`] weight vector does not have
    /// exactly one entry per node.
    pub fn shard_map(&self, graph: &Graph, threads: usize) -> ShardMap {
        let n = graph.n();
        let threads = threads.max(1);
        match self {
            Partition::Contiguous => ShardMap::contiguous(n, threads),
            Partition::DegreeBalanced => {
                let weights: Vec<u64> = (0..n)
                    .map(|v| graph.degree(v as NodeId) as u64 + 1)
                    .collect();
                ShardMap::balanced(&weights, threads)
            }
            Partition::ScheduleAware(weights) => {
                assert_eq!(
                    weights.len(),
                    n,
                    "ScheduleAware weights must have one entry per node"
                );
                ShardMap::balanced(weights, threads)
            }
        }
    }
}

/// Fixed node→shard assignment for one parallel run.
///
/// Invariants: every node appears in exactly one shard; shard node lists
/// are ascending; no shard is empty (shard count shrinks below the
/// requested worker count when there are fewer nodes than workers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// `shard_of[v]` — the worker owning node `v`.
    shard_of: Vec<u32>,
    /// `local_of[v]` — node `v`'s index within its shard's node list.
    local_of: Vec<u32>,
    /// Per-shard node ids, ascending.
    shards: Vec<Vec<NodeId>>,
}

impl ShardMap {
    /// Contiguous equal-count chunks: node `v` belongs to shard
    /// `v / ceil(n / threads)` — exactly the parallel engine's historical
    /// chunking.
    fn contiguous(n: usize, threads: usize) -> ShardMap {
        let chunk = n.div_ceil(threads).max(1);
        let shards: Vec<Vec<NodeId>> = (0..n)
            .step_by(chunk)
            .map(|base| (base..(base + chunk).min(n)).map(|v| v as NodeId).collect())
            .collect();
        ShardMap::from_shards(n, shards)
    }

    /// LPT greedy: place nodes heaviest-first onto the currently lightest
    /// shard (ties: lower weight index → lower node id → lower shard id),
    /// a classic 4/3-approximation of makespan that is fully deterministic.
    fn balanced(weights: &[u64], threads: usize) -> ShardMap {
        let n = weights.len();
        let k = threads.min(n).max(1);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(weights[v].max(1)), v));
        let mut loads = vec![0u64; k];
        let mut shards: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for v in order {
            let lightest = (0..k).min_by_key(|&s| (loads[s], s)).expect("k >= 1");
            loads[lightest] += weights[v].max(1);
            shards[lightest].push(v as NodeId);
        }
        for shard in &mut shards {
            shard.sort_unstable();
        }
        ShardMap::from_shards(n, shards)
    }

    fn from_shards(n: usize, shards: Vec<Vec<NodeId>>) -> ShardMap {
        let mut shard_of = vec![0u32; n];
        let mut local_of = vec![0u32; n];
        for (s, shard) in shards.iter().enumerate() {
            for (i, &v) in shard.iter().enumerate() {
                shard_of[v as usize] = s as u32;
                local_of[v as usize] = i as u32;
            }
        }
        ShardMap {
            shard_of,
            local_of,
            shards,
        }
    }

    /// Number of shards (= workers the parallel engine will spawn).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` for a zero-node map.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The worker owning node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.shard_of[v as usize] as usize
    }

    /// Node `v`'s index within its owning shard.
    #[inline]
    pub fn local_of(&self, v: NodeId) -> usize {
        self.local_of[v as usize] as usize
    }

    /// Per-shard node ids, ascending within each shard.
    pub fn shards(&self) -> &[Vec<NodeId>] {
        &self.shards
    }

    /// Load skew of this map under per-node loads: `max / mean` of the
    /// per-shard load sums (1.0 = perfectly balanced). Used by
    /// `trace::stats` to report how each strategy would have spread an
    /// observed run.
    pub fn skew(&self, node_load: &[u64]) -> ShardSkew {
        let per_shard: Vec<u64> = self
            .shards
            .iter()
            .map(|shard| {
                shard
                    .iter()
                    .map(|&v| node_load.get(v as usize).copied().unwrap_or(0))
                    .sum()
            })
            .collect();
        let max = per_shard.iter().copied().max().unwrap_or(0);
        let total: u64 = per_shard.iter().sum();
        let mean = if per_shard.is_empty() {
            0.0
        } else {
            total as f64 / per_shard.len() as f64
        };
        ShardSkew {
            shards: per_shard.len(),
            max_load: max,
            mean_load: mean,
            skew: if mean == 0.0 { 1.0 } else { max as f64 / mean },
        }
    }
}

/// Per-shard load summary produced by [`ShardMap::skew`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSkew {
    /// Shards the load was spread over.
    pub shards: usize,
    /// Heaviest shard's load.
    pub max_load: u64,
    /// Mean shard load.
    pub mean_load: f64,
    /// `max / mean` ≥ 1; the slowest worker's stretch factor under this
    /// assignment.
    pub skew: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::generators;

    fn check_invariants(map: &ShardMap, n: usize) {
        let mut seen = vec![false; n];
        for (s, shard) in map.shards().iter().enumerate() {
            assert!(!shard.is_empty(), "empty shard {s}");
            assert!(shard.windows(2).all(|w| w[0] < w[1]), "shard not ascending");
            for (i, &v) in shard.iter().enumerate() {
                assert!(!seen[v as usize], "node {v} in two shards");
                seen[v as usize] = true;
                assert_eq!(map.shard_of(v), s);
                assert_eq!(map.local_of(v), i);
            }
        }
        assert!(seen.into_iter().all(|s| s), "node missing from all shards");
    }

    #[test]
    fn contiguous_matches_historical_chunking() {
        let g = generators::path(10);
        let map = Partition::Contiguous.shard_map(&g, 4);
        // ceil(10/4) = 3 ⇒ chunks [0..3), [3..6), [6..9), [9..10).
        assert_eq!(map.len(), 4);
        assert_eq!(map.shards()[0], vec![0, 1, 2]);
        assert_eq!(map.shards()[3], vec![9]);
        check_invariants(&map, 10);
    }

    #[test]
    fn all_strategies_cover_every_node_once() {
        let g = generators::barabasi_albert(33, 2, 7);
        let weights: Arc<[u64]> = (0..33u64).map(|v| v * 3 + 1).collect();
        for partition in [
            Partition::Contiguous,
            Partition::DegreeBalanced,
            Partition::ScheduleAware(weights),
        ] {
            for threads in [1, 2, 5, 7, 33, 64] {
                let map = partition.shard_map(&g, threads);
                assert!(map.len() <= threads.max(1));
                check_invariants(&map, 33);
            }
        }
    }

    #[test]
    fn degree_balanced_beats_contiguous_on_a_star() {
        // Star: node 0 has degree n−1, everyone else degree 1. Contiguous
        // chunking puts the hub plus the first chunk's leaves on worker 0;
        // LPT gives the hub its own shard.
        let g = generators::star(32);
        let degrees: Vec<u64> = (0..32).map(|v| g.degree(v) as u64 + 1).collect();
        let contiguous = Partition::Contiguous.shard_map(&g, 4).skew(&degrees);
        let balanced = Partition::DegreeBalanced.shard_map(&g, 4).skew(&degrees);
        assert!(
            balanced.skew < contiguous.skew,
            "balanced {balanced:?} vs contiguous {contiguous:?}"
        );
    }

    #[test]
    fn lpt_is_deterministic() {
        let g = generators::erdos_renyi(40, 0.2, 11);
        let a = Partition::DegreeBalanced.shard_map(&g, 8);
        let b = Partition::DegreeBalanced.shard_map(&g, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn more_threads_than_nodes_caps_shard_count() {
        let g = generators::path(3);
        let map = Partition::DegreeBalanced.shard_map(&g, 16);
        assert_eq!(map.len(), 3);
        check_invariants(&map, 3);
    }

    #[test]
    #[should_panic(expected = "one entry per node")]
    fn schedule_aware_rejects_wrong_length() {
        let g = generators::path(5);
        let weights: Arc<[u64]> = Arc::from(vec![1u64; 4]);
        let _ = Partition::ScheduleAware(weights).shard_map(&g, 2);
    }

    #[test]
    fn skew_of_uniform_load_is_balanced() {
        let g = generators::cycle(12);
        let map = Partition::Contiguous.shard_map(&g, 4);
        let skew = map.skew(&[5u64; 12]);
        assert_eq!(skew.shards, 4);
        assert!((skew.skew - 1.0).abs() < 1e-9);
    }
}
