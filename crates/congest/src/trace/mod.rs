//! Event tracing for CONGEST executions.
//!
//! Every engine in this crate (serial, parallel, α-synchronizer) can emit a
//! stream of [`TraceEvent`]s into a [`TraceSink`]: one `RoundStart` per
//! round, one `MessageSent` per delivered message, a `ViolationDetected`
//! for every CONGEST-constraint breach, and protocol-level events
//! ([`ProtocolDetail`]) that the node state machines stage through
//! [`crate::RoundCtx::trace`].
//!
//! Tracing is strictly opt-in: a network without a sink skips all event
//! construction (the per-node flag short-circuits [`crate::RoundCtx::trace`]
//! before its argument is stored), so the untraced hot path does no extra
//! work beyond one branch per message.
//!
//! Three sinks are provided: [`NoopSink`] (drop everything), [`RingSink`]
//! (last-`k` events in memory, for tests and post-mortem inspection), and
//! [`JsonlSink`] (one JSON object per line, the on-disk format consumed by
//! `distbc check-trace` and [`check`]). The [`check`] submodule re-validates
//! the paper's schedule invariants offline from a recorded stream.

pub mod check;
pub mod stats;

use bc_graph::NodeId;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Protocol-level observation staged by a node through
/// [`crate::RoundCtx::trace`]. These carry the quantities the paper's
/// schedule analysis is about: which phase a node is in, where the DFS
/// token travels, when each source's BFS wave starts (`T_s`), and when
/// aggregation values are forwarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolDetail {
    /// The node entered a protocol phase (`'A'` tree construction, `'B'`
    /// counting, `'C'` reduce/broadcast, `'D'` aggregation).
    PhaseEnter {
        /// Phase letter, `'A'..='D'`.
        phase: char,
    },
    /// The node received the DFS token (Algorithm 2 line "v obtains the
    /// token").
    TokenReceive,
    /// The node forwarded the DFS token.
    TokenSend {
        /// Token recipient.
        to: NodeId,
    },
    /// The node started its own BFS wave; `ts` is the wave's start round
    /// `T_s` — the quantity Lemma 4 constrains.
    WaveStart {
        /// Absolute start round of this source's wave.
        ts: u64,
    },
    /// The node sent its aggregated pair-dependency contribution for
    /// `source` upward along that source's BFS tree (Algorithm 3).
    AggSend {
        /// The wave source whose aggregation tree the value ascends.
        source: NodeId,
    },
}

/// One event in a recorded execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The simulated topology, emitted once at the head of a trace so the
    /// offline analyzer can recompute distances without the original input.
    Topology {
        /// Number of nodes.
        n: usize,
        /// Undirected edge list.
        edges: Vec<(NodeId, NodeId)>,
    },
    /// The provisioned phase schedule (absolute round boundaries), emitted
    /// by drivers that precompute one. Absent for adaptive executions.
    Schedule {
        /// First round of the counting phase (B).
        counting_start: u64,
        /// First round of the reduce sub-phase (C1).
        reduce_start: u64,
        /// First round of the broadcast sub-phase (C2).
        broadcast_start: u64,
        /// First round of the aggregation phase (D).
        agg_start: u64,
    },
    /// A synchronous round (or synchronizer pulse) began.
    RoundStart {
        /// Round number, starting at 0.
        round: u64,
    },
    /// A message was accepted for delivery.
    MessageSent {
        /// Round in which it was staged.
        round: u64,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Payload size in bits.
        bits: usize,
        /// Content hash of the payload, recorded only by fault-injected
        /// runs (so fault-free traces stay byte-identical to older ones).
        /// Lets the offline checker tell an injected duplicate delivery —
        /// same `(from, to, round)` *and* same payload — from a schedule
        /// collision carrying different payloads.
        payload: Option<u64>,
    },
    /// A CONGEST constraint was violated (also counted in
    /// [`crate::NetMetrics`]).
    ViolationDetected {
        /// Round of the violation.
        round: u64,
        /// Offending node.
        node: NodeId,
        /// What went wrong.
        kind: ViolationKind,
    },
    /// A protocol-level observation from one node.
    Protocol {
        /// Round in which the node observed it.
        round: u64,
        /// Observing node.
        node: NodeId,
        /// The observation.
        detail: ProtocolDetail,
    },
}

/// The kinds of CONGEST violations a trace can record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two messages staged on one incident edge in one round.
    Collision {
        /// Port (adjacency index) that carried both messages.
        port: usize,
    },
    /// A message exceeded the per-message bit budget.
    Oversized {
        /// Actual size in bits.
        bits: usize,
        /// Configured budget in bits.
        budget: usize,
    },
}

/// Receiver of trace events.
///
/// Implementations must tolerate high event rates; the engines call
/// [`TraceSink::event`] synchronously on the simulation thread (worker
/// buffers from the parallel engine are merged into node order first, so
/// sinks always observe the same deterministic stream the serial engine
/// produces).
pub trait TraceSink {
    /// Records one event.
    fn event(&mut self, event: &TraceEvent);

    /// Flushes buffered output (no-op by default).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Removes and returns all retained events, for sinks that keep them
    /// in memory (default: none retained).
    fn drain_events(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// A sink that discards every event.
///
/// Useful as an explicit "tracing plumbing on, recording off" default: the
/// engines still skip event construction entirely when *no* sink is
/// installed, so prefer not installing one when overhead matters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn event(&mut self, _: &TraceEvent) {}
}

/// An in-memory sink retaining the most recent `capacity` events.
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            buf: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            dropped: 0,
        }
    }

    /// Number of events evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }
}

impl TraceSink for RingSink {
    fn event(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.clone());
    }

    fn drain_events(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

/// A sink writing one JSON object per event to a file (JSONL), the durable
/// format `distbc --trace` produces and `distbc check-trace` consumes.
#[derive(Debug)]
pub struct JsonlSink<W: Write = BufWriter<File>> {
    out: W,
    line: String,
    events: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::from_writer(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer (used by tests with `Vec<u8>`).
    pub fn from_writer(out: W) -> Self {
        JsonlSink {
            out,
            line: String::new(),
            events: 0,
        }
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Unwraps the inner writer (flushes the caller's responsibility).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn event(&mut self, event: &TraceEvent) {
        self.line.clear();
        encode_event(event, &mut self.line);
        self.line.push('\n');
        // I/O errors inside the simulation loop are not actionable by the
        // protocol; surface them at flush() instead of unwinding mid-round.
        let _ = self.out.write_all(self.line.as_bytes());
        self.events += 1;
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Encodes one event as a single-line JSON object.
pub fn encode_event(event: &TraceEvent, out: &mut String) {
    match event {
        TraceEvent::Topology { n, edges } => {
            let _ = write!(out, "{{\"ev\":\"topology\",\"n\":{n},\"edges\":[");
            for (i, (u, v)) in edges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{u},{v}]");
            }
            out.push_str("]}");
        }
        TraceEvent::Schedule {
            counting_start,
            reduce_start,
            broadcast_start,
            agg_start,
        } => {
            let _ = write!(
                out,
                "{{\"ev\":\"schedule\",\"counting_start\":{counting_start},\
                 \"reduce_start\":{reduce_start},\"broadcast_start\":{broadcast_start},\
                 \"agg_start\":{agg_start}}}"
            );
        }
        TraceEvent::RoundStart { round } => {
            let _ = write!(out, "{{\"ev\":\"round_start\",\"round\":{round}}}");
        }
        TraceEvent::MessageSent {
            round,
            from,
            to,
            bits,
            payload,
        } => {
            let _ = write!(
                out,
                "{{\"ev\":\"message_sent\",\"round\":{round},\"from\":{from},\
                 \"to\":{to},\"bits\":{bits}"
            );
            if let Some(p) = payload {
                let _ = write!(out, ",\"payload\":{p}");
            }
            out.push('}');
        }
        TraceEvent::ViolationDetected { round, node, kind } => match kind {
            ViolationKind::Collision { port } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"violation\",\"round\":{round},\"node\":{node},\
                     \"kind\":\"collision\",\"port\":{port}}}"
                );
            }
            ViolationKind::Oversized { bits, budget } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"violation\",\"round\":{round},\"node\":{node},\
                     \"kind\":\"oversized\",\"bits\":{bits},\"budget\":{budget}}}"
                );
            }
        },
        TraceEvent::Protocol {
            round,
            node,
            detail,
        } => {
            let _ = write!(
                out,
                "{{\"ev\":\"protocol\",\"round\":{round},\"node\":{node}"
            );
            match detail {
                ProtocolDetail::PhaseEnter { phase } => {
                    let _ = write!(out, ",\"detail\":\"phase_enter\",\"phase\":\"{phase}\"");
                }
                ProtocolDetail::TokenReceive => {
                    out.push_str(",\"detail\":\"token_receive\"");
                }
                ProtocolDetail::TokenSend { to } => {
                    let _ = write!(out, ",\"detail\":\"token_send\",\"to\":{to}");
                }
                ProtocolDetail::WaveStart { ts } => {
                    let _ = write!(out, ",\"detail\":\"wave_start\",\"ts\":{ts}");
                }
                ProtocolDetail::AggSend { source } => {
                    let _ = write!(out, ",\"detail\":\"agg_send\",\"source\":{source}");
                }
            }
            out.push('}');
        }
    }
}

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Reads a JSONL trace file back into events.
///
/// # Errors
///
/// Returns an I/O error for unreadable files and a boxed
/// [`TraceParseError`] for malformed lines.
pub fn read_jsonl(path: impl AsRef<Path>) -> io::Result<Vec<TraceEvent>> {
    let reader = BufReader::new(File::open(path)?);
    let mut events = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event = parse_event(&line).map_err(|message| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                TraceParseError {
                    line: i + 1,
                    message,
                },
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Parses one encoded event line.
///
/// # Errors
///
/// Returns a description of the first syntactic or semantic problem.
pub fn parse_event(line: &str) -> Result<TraceEvent, String> {
    let obj = json::parse_object(line)?;
    let ev = obj.str_field("ev")?;
    match ev {
        "topology" => Ok(TraceEvent::Topology {
            n: obj.u64_field("n")? as usize,
            edges: obj.edge_list_field("edges")?,
        }),
        "schedule" => Ok(TraceEvent::Schedule {
            counting_start: obj.u64_field("counting_start")?,
            reduce_start: obj.u64_field("reduce_start")?,
            broadcast_start: obj.u64_field("broadcast_start")?,
            agg_start: obj.u64_field("agg_start")?,
        }),
        "round_start" => Ok(TraceEvent::RoundStart {
            round: obj.u64_field("round")?,
        }),
        "message_sent" => Ok(TraceEvent::MessageSent {
            round: obj.u64_field("round")?,
            from: obj.u64_field("from")? as NodeId,
            to: obj.u64_field("to")? as NodeId,
            bits: obj.u64_field("bits")? as usize,
            payload: obj.opt_u64_field("payload")?,
        }),
        "violation" => {
            let kind = match obj.str_field("kind")? {
                "collision" => ViolationKind::Collision {
                    port: obj.u64_field("port")? as usize,
                },
                "oversized" => ViolationKind::Oversized {
                    bits: obj.u64_field("bits")? as usize,
                    budget: obj.u64_field("budget")? as usize,
                },
                other => return Err(format!("unknown violation kind {other:?}")),
            };
            Ok(TraceEvent::ViolationDetected {
                round: obj.u64_field("round")?,
                node: obj.u64_field("node")? as NodeId,
                kind,
            })
        }
        "protocol" => {
            let detail = match obj.str_field("detail")? {
                "phase_enter" => {
                    let phase = obj.str_field("phase")?;
                    let mut chars = phase.chars();
                    match (chars.next(), chars.next()) {
                        (Some(c), None) => ProtocolDetail::PhaseEnter { phase: c },
                        _ => return Err(format!("bad phase {phase:?}")),
                    }
                }
                "token_receive" => ProtocolDetail::TokenReceive,
                "token_send" => ProtocolDetail::TokenSend {
                    to: obj.u64_field("to")? as NodeId,
                },
                "wave_start" => ProtocolDetail::WaveStart {
                    ts: obj.u64_field("ts")?,
                },
                "agg_send" => ProtocolDetail::AggSend {
                    source: obj.u64_field("source")? as NodeId,
                },
                other => return Err(format!("unknown protocol detail {other:?}")),
            };
            Ok(TraceEvent::Protocol {
                round: obj.u64_field("round")?,
                node: obj.u64_field("node")? as NodeId,
                detail,
            })
        }
        other => Err(format!("unknown event type {other:?}")),
    }
}

/// Minimal JSON-object reader covering the trace format: flat objects with
/// unsigned-integer, string, and `[[u,v],...]` array values. Deliberately
/// not a general JSON parser — unknown shapes are rejected loudly.
mod json {
    /// A parsed flat object.
    pub struct Object<'a> {
        fields: Vec<(&'a str, Value<'a>)>,
    }

    pub enum Value<'a> {
        Num(u64),
        Str(&'a str),
        Pairs(Vec<(u64, u64)>),
    }

    impl<'a> Object<'a> {
        fn get(&self, key: &str) -> Result<&Value<'a>, String> {
            self.fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?}"))
        }

        pub fn u64_field(&self, key: &str) -> Result<u64, String> {
            match self.get(key)? {
                Value::Num(n) => Ok(*n),
                _ => Err(format!("field {key:?} is not a number")),
            }
        }

        /// Like `u64_field` but tolerates the field being absent
        /// entirely (optional trace extensions).
        pub fn opt_u64_field(&self, key: &str) -> Result<Option<u64>, String> {
            match self.fields.iter().find(|(k, _)| *k == key) {
                None => Ok(None),
                Some((_, Value::Num(n))) => Ok(Some(*n)),
                Some(_) => Err(format!("field {key:?} is not a number")),
            }
        }

        pub fn str_field(&self, key: &str) -> Result<&'a str, String> {
            match self.get(key)? {
                Value::Str(s) => Ok(s),
                _ => Err(format!("field {key:?} is not a string")),
            }
        }

        pub fn edge_list_field(&self, key: &str) -> Result<Vec<(u32, u32)>, String> {
            match self.get(key)? {
                Value::Pairs(p) => p
                    .iter()
                    .map(|&(u, v)| {
                        let u = u32::try_from(u).map_err(|_| "edge id overflow".to_string())?;
                        let v = u32::try_from(v).map_err(|_| "edge id overflow".to_string())?;
                        Ok((u, v))
                    })
                    .collect(),
                _ => Err(format!("field {key:?} is not an edge list")),
            }
        }
    }

    struct Cursor<'a> {
        s: &'a str,
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        fn skip_ws(&mut self) {
            while self.s[self.pos..].starts_with([' ', '\t']) {
                self.pos += 1;
            }
        }

        fn eat(&mut self, c: char) -> Result<(), String> {
            self.skip_ws();
            if self.s[self.pos..].starts_with(c) {
                self.pos += c.len_utf8();
                Ok(())
            } else {
                Err(format!("expected {c:?} at byte {}", self.pos))
            }
        }

        fn peek(&mut self) -> Option<char> {
            self.skip_ws();
            self.s[self.pos..].chars().next()
        }

        fn string(&mut self) -> Result<&'a str, String> {
            self.eat('"')?;
            let start = self.pos;
            // Trace strings are identifiers / single letters; escapes are
            // never produced by the encoder and thus rejected here.
            while let Some(c) = self.s[self.pos..].chars().next() {
                if c == '\\' {
                    return Err("escape sequences unsupported".into());
                }
                if c == '"' {
                    let out = &self.s[start..self.pos];
                    self.pos += 1;
                    return Ok(out);
                }
                self.pos += c.len_utf8();
            }
            Err("unterminated string".into())
        }

        fn number(&mut self) -> Result<u64, String> {
            self.skip_ws();
            let start = self.pos;
            while self.s[self.pos..].starts_with(|c: char| c.is_ascii_digit()) {
                self.pos += 1;
            }
            self.s[start..self.pos]
                .parse()
                .map_err(|_| format!("expected number at byte {start}"))
        }

        fn pair_array(&mut self) -> Result<Vec<(u64, u64)>, String> {
            self.eat('[')?;
            let mut out = Vec::new();
            if self.peek() == Some(']') {
                self.eat(']')?;
                return Ok(out);
            }
            loop {
                self.eat('[')?;
                let u = self.number()?;
                self.eat(',')?;
                let v = self.number()?;
                self.eat(']')?;
                out.push((u, v));
                match self.peek() {
                    Some(',') => self.eat(',')?,
                    Some(']') => {
                        self.eat(']')?;
                        return Ok(out);
                    }
                    _ => return Err("malformed edge array".into()),
                }
            }
        }
    }

    /// Parses a one-line flat object.
    pub fn parse_object(line: &str) -> Result<Object<'_>, String> {
        let mut c = Cursor {
            s: line.trim_end(),
            pos: 0,
        };
        c.eat('{')?;
        let mut fields = Vec::new();
        if c.peek() == Some('}') {
            c.eat('}')?;
            return Ok(Object { fields });
        }
        loop {
            let key = c.string()?;
            c.eat(':')?;
            let value = match c.peek() {
                Some('"') => Value::Str(c.string()?),
                Some('[') => Value::Pairs(c.pair_array()?),
                Some(d) if d.is_ascii_digit() => Value::Num(c.number()?),
                other => return Err(format!("unexpected value start {other:?}")),
            };
            fields.push((key, value));
            match c.peek() {
                Some(',') => c.eat(',')?,
                Some('}') => {
                    c.eat('}')?;
                    if c.peek().is_some() {
                        return Err("trailing content after object".into());
                    }
                    return Ok(Object { fields });
                }
                _ => return Err("malformed object".into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Topology {
                n: 3,
                edges: vec![(0, 1), (1, 2)],
            },
            TraceEvent::Schedule {
                counting_start: 5,
                reduce_start: 20,
                broadcast_start: 24,
                agg_start: 28,
            },
            TraceEvent::RoundStart { round: 0 },
            TraceEvent::MessageSent {
                round: 0,
                from: 0,
                to: 1,
                bits: 32,
                payload: None,
            },
            TraceEvent::MessageSent {
                round: 0,
                from: 1,
                to: 0,
                bits: 8,
                payload: Some(0xdead_beef_cafe),
            },
            TraceEvent::ViolationDetected {
                round: 1,
                node: 2,
                kind: ViolationKind::Collision { port: 0 },
            },
            TraceEvent::ViolationDetected {
                round: 1,
                node: 2,
                kind: ViolationKind::Oversized {
                    bits: 99,
                    budget: 64,
                },
            },
            TraceEvent::Protocol {
                round: 2,
                node: 1,
                detail: ProtocolDetail::PhaseEnter { phase: 'B' },
            },
            TraceEvent::Protocol {
                round: 2,
                node: 1,
                detail: ProtocolDetail::TokenReceive,
            },
            TraceEvent::Protocol {
                round: 3,
                node: 1,
                detail: ProtocolDetail::TokenSend { to: 2 },
            },
            TraceEvent::Protocol {
                round: 3,
                node: 1,
                detail: ProtocolDetail::WaveStart { ts: 6 },
            },
            TraceEvent::Protocol {
                round: 9,
                node: 2,
                detail: ProtocolDetail::AggSend { source: 1 },
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip_every_variant() {
        for event in sample_events() {
            let mut line = String::new();
            encode_event(&event, &mut line);
            let back = parse_event(&line).expect(&line);
            assert_eq!(back, event, "{line}");
        }
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::from_writer(Vec::new());
        for event in sample_events() {
            sink.event(&event);
        }
        assert_eq!(sink.events_written(), sample_events().len() as u64);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let parsed: Vec<TraceEvent> = text.lines().map(|l| parse_event(l).expect(l)).collect();
        assert_eq!(parsed, sample_events());
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let mut ring = RingSink::new(3);
        for round in 0..10 {
            ring.event(&TraceEvent::RoundStart { round });
        }
        assert_eq!(ring.dropped(), 7);
        let kept = ring.drain_events();
        assert_eq!(
            kept,
            vec![
                TraceEvent::RoundStart { round: 7 },
                TraceEvent::RoundStart { round: 8 },
                TraceEvent::RoundStart { round: 9 },
            ]
        );
        assert!(ring.drain_events().is_empty());
    }

    #[test]
    fn noop_sink_retains_nothing() {
        let mut sink = NoopSink;
        sink.event(&TraceEvent::RoundStart { round: 1 });
        assert!(sink.drain_events().is_empty());
        assert!(sink.flush().is_ok());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"ev\":\"nope\"}",
            "{\"ev\":\"round_start\"}",
            "{\"ev\":\"round_start\",\"round\":\"x\"}",
            "{\"ev\":\"round_start\",\"round\":3}garbage",
            "{\"ev\":\"violation\",\"round\":1,\"node\":0,\"kind\":\"weird\"}",
            "{\"ev\":\"protocol\",\"round\":1,\"node\":0,\"detail\":\"phase_enter\",\"phase\":\"XY\"}",
        ] {
            assert!(parse_event(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let path =
            std::env::temp_dir().join(format!("distbc-trace-test-{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            for event in sample_events() {
                sink.event(&event);
            }
            sink.flush().unwrap();
        }
        let back = read_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, sample_events());
    }
}
