//! Offline re-validation of the paper's schedule invariants from a
//! recorded trace.
//!
//! The correctness of Algorithm 2 rests on properties of the *schedule*,
//! not just of the final numbers: every (edge, direction, round) slot
//! carries at most one message (CONGEST), consecutive BFS waves respect
//! Lemma 4's spacing `T_t ≥ T_s + d(s,t) + 1`, and each phase's events
//! stay inside that phase's provisioned round window. [`check`] verifies
//! all three from a [`TraceEvent`] stream alone — it recomputes distances
//! from the embedded [`TraceEvent::Topology`], so a trace file is
//! self-contained evidence that a run was schedule-correct.

use super::{ProtocolDetail, TraceEvent, ViolationKind};
use bc_graph::{algo, Graph, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Result of [`check`]: counters plus human-readable findings for every
/// violated invariant. An empty-findings report ([`CheckReport::ok`])
/// certifies the trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Total events examined.
    pub events: usize,
    /// Distinct rounds seen (from `RoundStart`).
    pub rounds: u64,
    /// `MessageSent` events examined.
    pub messages: u64,
    /// (directed edge, round) slots that carried more than one message.
    pub collision_findings: Vec<String>,
    /// (directed edge, round) slots that delivered the *same payload*
    /// more than once — duplicate delivery (e.g. injected by a fault
    /// plan), distinct from a schedule collision carrying different
    /// payloads. Only detectable when the trace records payload hashes.
    pub duplicate_findings: Vec<String>,
    /// Violations the engine recorded online (`ViolationDetected`).
    pub recorded_violations: u64,
    /// Observed wave starts `(source, T_s)`, sorted by `T_s` — the DFS
    /// preorder with its schedule, as actually executed.
    pub wave_starts: Vec<(NodeId, u64)>,
    /// Wave sources in `T_s` order (the recovered DFS preorder).
    pub preorder: Vec<NodeId>,
    /// Consecutive wave pairs violating Lemma 4.
    pub wave_findings: Vec<String>,
    /// Consecutive wave pairs whose spacing was verified.
    pub waves_checked: usize,
    /// The tightest Lemma-4-admissible schedule along the observed
    /// preorder, as rounds relative to the first wave: `T'_0 = 0`,
    /// `T'_i = T'_{i-1} + d(s_{i-1}, s_i) + 1`. Requires a topology event.
    pub minimal_schedule: Option<Vec<u64>>,
    /// Events outside their phase's provisioned window.
    pub window_findings: Vec<String>,
    /// Per-node phase transitions that ran backwards.
    pub phase_findings: Vec<String>,
}

impl CheckReport {
    /// Returns `true` when every checked invariant held.
    pub fn ok(&self) -> bool {
        self.collision_findings.is_empty()
            && self.duplicate_findings.is_empty()
            && self.recorded_violations == 0
            && self.wave_findings.is_empty()
            && self.window_findings.is_empty()
            && self.phase_findings.is_empty()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} events, {} rounds, {} messages",
            self.events, self.rounds, self.messages
        )?;
        writeln!(
            f,
            "collision-freeness: {} ({} of {} edge-round slots violated)",
            if self.collision_findings.is_empty() {
                "OK"
            } else {
                "VIOLATED"
            },
            self.collision_findings.len(),
            self.messages,
        )?;
        if !self.duplicate_findings.is_empty() {
            writeln!(
                f,
                "duplicate delivery: VIOLATED ({} slots delivered the same payload twice)",
                self.duplicate_findings.len()
            )?;
        }
        if self.recorded_violations > 0 {
            writeln!(
                f,
                "engine recorded {} violations online",
                self.recorded_violations
            )?;
        }
        if self.wave_starts.is_empty() {
            writeln!(f, "wave spacing: no waves recorded")?;
        } else {
            writeln!(
                f,
                "wave spacing (Lemma 4): {} ({} consecutive pairs checked, {} waves)",
                if self.wave_findings.is_empty() {
                    "OK"
                } else {
                    "VIOLATED"
                },
                self.waves_checked,
                self.wave_starts.len(),
            )?;
        }
        writeln!(
            f,
            "phase windows: {}",
            if self.window_findings.is_empty() && self.phase_findings.is_empty() {
                "OK"
            } else {
                "VIOLATED"
            }
        )?;
        for finding in self
            .collision_findings
            .iter()
            .chain(&self.duplicate_findings)
            .chain(&self.wave_findings)
            .chain(&self.window_findings)
            .chain(&self.phase_findings)
        {
            writeln!(f, "  - {finding}")?;
        }
        Ok(())
    }
}

/// Re-validates the paper's invariants over a recorded event stream.
pub fn check(events: &[TraceEvent]) -> CheckReport {
    let mut report = CheckReport {
        events: events.len(),
        ..CheckReport::default()
    };

    let mut topology: Option<Graph> = None;
    let mut schedule: Option<(u64, u64, u64, u64)> = None;
    let mut slot_payloads: HashMap<(NodeId, NodeId, u64), Vec<Option<u64>>> = HashMap::new();
    let mut phase_cursor: HashMap<NodeId, char> = HashMap::new();

    for event in events {
        match event {
            TraceEvent::Topology { n, edges } => {
                match Graph::from_edges(*n, edges.iter().copied()) {
                    Ok(g) => topology = Some(g),
                    Err(e) => report
                        .window_findings
                        .push(format!("unusable topology event: {e:?}")),
                }
            }
            TraceEvent::Schedule {
                counting_start,
                reduce_start,
                broadcast_start,
                agg_start,
            } => {
                schedule = Some((*counting_start, *reduce_start, *broadcast_start, *agg_start));
            }
            TraceEvent::RoundStart { round } => {
                report.rounds = report.rounds.max(round + 1);
            }
            TraceEvent::MessageSent {
                round,
                from,
                to,
                payload,
                ..
            } => {
                report.messages += 1;
                let slot = slot_payloads.entry((*from, *to, *round)).or_default();
                // A repeated slot with the *same* (recorded) payload is a
                // duplicate delivery; with different or unrecorded
                // payloads it is a schedule collision.
                if payload.is_some() && slot.contains(payload) {
                    report.duplicate_findings.push(format!(
                        "edge {from}->{to} delivered the same payload twice in round {round}"
                    ));
                } else if slot.len() == 1 {
                    report.collision_findings.push(format!(
                        "edge {from}->{to} carried multiple messages in round {round}"
                    ));
                }
                slot.push(*payload);
            }
            TraceEvent::ViolationDetected { round, node, kind } => {
                report.recorded_violations += 1;
                let what = match kind {
                    ViolationKind::Collision { port } => {
                        format!("collision on port {port}")
                    }
                    ViolationKind::Oversized { bits, budget } => {
                        format!("oversized message ({bits} bits > budget {budget})")
                    }
                };
                report
                    .collision_findings
                    .push(format!("engine: node {node} {what} in round {round}"));
            }
            TraceEvent::Protocol {
                round,
                node,
                detail,
            } => match detail {
                ProtocolDetail::WaveStart { ts } => {
                    report.wave_starts.push((*node, *ts));
                    if let Some((counting_start, reduce_start, _, _)) = schedule {
                        if *ts < counting_start || *ts >= reduce_start {
                            report.window_findings.push(format!(
                                "wave of source {node} started at T_s={ts}, outside \
                                 counting window [{counting_start}, {reduce_start})"
                            ));
                        }
                    }
                }
                ProtocolDetail::TokenReceive | ProtocolDetail::TokenSend { .. } => {
                    if let Some((counting_start, reduce_start, _, _)) = schedule {
                        if *round < counting_start || *round >= reduce_start {
                            report.window_findings.push(format!(
                                "DFS token activity at node {node} in round {round}, \
                                 outside counting window [{counting_start}, {reduce_start})"
                            ));
                        }
                    }
                }
                ProtocolDetail::AggSend { source } => {
                    if let Some((_, _, _, agg_start)) = schedule {
                        if *round < agg_start {
                            report.window_findings.push(format!(
                                "aggregation send for source {source} at node {node} in \
                                 round {round}, before the aggregation phase ({agg_start})"
                            ));
                        }
                    }
                }
                ProtocolDetail::PhaseEnter { phase } => {
                    let prev = phase_cursor.entry(*node).or_insert('A');
                    if *phase < *prev {
                        report.phase_findings.push(format!(
                            "node {node} entered phase {phase} in round {round} after \
                             already reaching phase {prev}"
                        ));
                    } else {
                        *prev = *phase;
                    }
                }
            },
        }
    }

    report.wave_starts.sort_by_key(|&(_, ts)| ts);
    report.preorder = report.wave_starts.iter().map(|&(v, _)| v).collect();

    // Lemma 4: consecutive waves s (at T_s) and t (at T_t) must satisfy
    // T_t ≥ T_s + d(s,t) + 1, which is exactly what makes the pipelined
    // wavefronts collision-free on every edge.
    if let Some(g) = &topology {
        let mut minimal = Vec::with_capacity(report.wave_starts.len());
        for window in report.wave_starts.windows(2) {
            let ((s, ts), (t, tt)) = (window[0], window[1]);
            if (s as usize) >= g.n() || (t as usize) >= g.n() {
                report
                    .wave_findings
                    .push(format!("wave source {s} or {t} outside topology"));
                continue;
            }
            let dist = algo::bfs(g, s).dist[t as usize];
            if dist == algo::UNREACHABLE {
                report
                    .wave_findings
                    .push(format!("wave sources {s} and {t} are disconnected"));
                continue;
            }
            report.waves_checked += 1;
            let required = ts + dist as u64 + 1;
            if tt < required {
                report.wave_findings.push(format!(
                    "Lemma 4 violated: wave {t} started at {tt} < {required} \
                     (= T_{s}({ts}) + d({s},{t})({dist}) + 1)"
                ));
            }
            if minimal.is_empty() {
                minimal.push(0);
            }
            let prev = *minimal.last().expect("seeded above");
            minimal.push(prev + dist as u64 + 1);
        }
        if report.wave_starts.len() == 1 {
            minimal.push(0);
        }
        if !minimal.is_empty() {
            report.minimal_schedule = Some(minimal);
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5_topology() -> TraceEvent {
        // 0-1-2-3-4
        TraceEvent::Topology {
            n: 5,
            edges: vec![(0, 1), (1, 2), (2, 3), (3, 4)],
        }
    }

    fn wave(node: NodeId, ts: u64) -> TraceEvent {
        TraceEvent::Protocol {
            round: ts,
            node,
            detail: ProtocolDetail::WaveStart { ts },
        }
    }

    #[test]
    fn clean_trace_passes() {
        let events = vec![
            path5_topology(),
            TraceEvent::RoundStart { round: 0 },
            TraceEvent::MessageSent {
                round: 0,
                from: 0,
                to: 1,
                bits: 8,
                payload: None,
            },
            TraceEvent::MessageSent {
                round: 0,
                from: 1,
                to: 0,
                bits: 8,
                payload: None,
            },
            wave(0, 10),
            wave(1, 12),
            wave(2, 14),
        ];
        let report = check(&events);
        assert!(report.ok(), "{report}");
        assert_eq!(report.preorder, vec![0, 1, 2]);
        assert_eq!(report.waves_checked, 2);
        assert_eq!(report.minimal_schedule, Some(vec![0, 2, 4]));
    }

    #[test]
    fn detects_collision_from_messages_alone() {
        let events = vec![
            TraceEvent::MessageSent {
                round: 3,
                from: 0,
                to: 1,
                bits: 8,
                payload: None,
            },
            TraceEvent::MessageSent {
                round: 3,
                from: 0,
                to: 1,
                bits: 8,
                payload: None,
            },
        ];
        let report = check(&events);
        assert!(!report.ok());
        assert_eq!(report.collision_findings.len(), 1);
        // Opposite directions and different rounds are fine.
        let ok = check(&[
            TraceEvent::MessageSent {
                round: 3,
                from: 0,
                to: 1,
                bits: 8,
                payload: None,
            },
            TraceEvent::MessageSent {
                round: 3,
                from: 1,
                to: 0,
                bits: 8,
                payload: None,
            },
            TraceEvent::MessageSent {
                round: 4,
                from: 0,
                to: 1,
                bits: 8,
                payload: None,
            },
        ]);
        assert!(ok.ok(), "{ok}");
    }

    #[test]
    fn detects_duplicate_delivery_of_same_payload() {
        // Regression: a repeated (edge, round, payload) event must fail
        // the check as a duplicate delivery, not pass silently.
        let sent = |payload| TraceEvent::MessageSent {
            round: 3,
            from: 0,
            to: 1,
            bits: 8,
            payload,
        };
        let dup = check(&[sent(Some(77)), sent(Some(77))]);
        assert!(!dup.ok(), "{dup}");
        assert_eq!(dup.duplicate_findings.len(), 1);
        assert!(dup.collision_findings.is_empty());
        assert!(format!("{dup}").contains("duplicate delivery"), "{dup}");
        // Same slot, *different* payloads: that is a schedule collision.
        let collision = check(&[sent(Some(77)), sent(Some(78))]);
        assert!(!collision.ok());
        assert_eq!(collision.collision_findings.len(), 1);
        assert!(collision.duplicate_findings.is_empty());
        // Three copies: each extra identical copy is its own finding.
        let triple = check(&[sent(Some(9)), sent(Some(9)), sent(Some(9))]);
        assert_eq!(triple.duplicate_findings.len(), 2);
    }

    #[test]
    fn detects_lemma4_violation() {
        // d(0,4) = 4 on the path, so the second wave needs T ≥ 10 + 5.
        let events = vec![path5_topology(), wave(0, 10), wave(4, 12)];
        let report = check(&events);
        assert!(!report.ok());
        assert_eq!(report.wave_findings.len(), 1);
        assert!(report.wave_findings[0].contains("Lemma 4"), "{report}");
        // Exactly at the bound is admissible.
        let tight = check(&[path5_topology(), wave(0, 10), wave(4, 15)]);
        assert!(tight.ok(), "{tight}");
    }

    #[test]
    fn wave_spacing_skipped_without_topology() {
        let report = check(&[wave(0, 10), wave(4, 11)]);
        assert!(report.ok());
        assert_eq!(report.waves_checked, 0);
        assert_eq!(report.minimal_schedule, None);
    }

    #[test]
    fn window_containment() {
        let sched = TraceEvent::Schedule {
            counting_start: 10,
            reduce_start: 20,
            broadcast_start: 25,
            agg_start: 30,
        };
        // Wave inside the window, aggregation after agg_start: fine.
        let ok = check(&[
            sched.clone(),
            wave(0, 10),
            TraceEvent::Protocol {
                round: 31,
                node: 2,
                detail: ProtocolDetail::AggSend { source: 0 },
            },
        ]);
        assert!(ok.ok(), "{ok}");
        // Wave at reduce_start: too late.
        let late = check(&[sched.clone(), wave(0, 20)]);
        assert_eq!(late.window_findings.len(), 1);
        // Aggregation before its phase: flagged.
        let early = check(&[
            sched.clone(),
            TraceEvent::Protocol {
                round: 29,
                node: 2,
                detail: ProtocolDetail::AggSend { source: 0 },
            },
        ]);
        assert_eq!(early.window_findings.len(), 1);
        // Token outside the counting window: flagged.
        let stray = check(&[
            sched,
            TraceEvent::Protocol {
                round: 3,
                node: 1,
                detail: ProtocolDetail::TokenSend { to: 2 },
            },
        ]);
        assert_eq!(stray.window_findings.len(), 1);
    }

    #[test]
    fn phase_regression_flagged() {
        let fwd = |round, phase| TraceEvent::Protocol {
            round,
            node: 0,
            detail: ProtocolDetail::PhaseEnter { phase },
        };
        assert!(check(&[fwd(0, 'A'), fwd(5, 'B'), fwd(9, 'D')]).ok());
        let bad = check(&[fwd(0, 'B'), fwd(5, 'A')]);
        assert_eq!(bad.phase_findings.len(), 1);
    }

    #[test]
    fn recorded_violations_fail_the_check() {
        let report = check(&[TraceEvent::ViolationDetected {
            round: 2,
            node: 1,
            kind: ViolationKind::Oversized {
                bits: 80,
                budget: 64,
            },
        }]);
        assert!(!report.ok());
        assert_eq!(report.recorded_violations, 1);
    }

    #[test]
    fn single_wave_has_zero_schedule() {
        let report = check(&[path5_topology(), wave(2, 7)]);
        assert!(report.ok());
        assert_eq!(report.minimal_schedule, Some(vec![0]));
    }
}
