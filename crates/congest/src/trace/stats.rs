//! Trace analytics: congestion and latency statistics from a recorded
//! event stream.
//!
//! Where [`super::check`] asks "did the run respect the paper's
//! invariants?", this module asks "how tight was the schedule?". From a
//! JSONL trace alone it computes:
//!
//! * **per-source wave latency** — each source's observed start `T_s`
//!   relative to the first wave, its eccentricity-based expected wave end
//!   `T_s + ecc(s)` (a wavefront reaches the last node after `ecc(s)`
//!   rounds), and its actual completion (the last aggregation send for
//!   that source);
//! * **per-source slack** against the minimal Lemma-4 schedule
//!   `T'_0 = 0, T'_i = T'_{i-1} + d(s_{i-1}, s_i) + 1` that
//!   [`super::check`] rebuilds — zero total slack means the run achieved
//!   the tightest collision-free pipeline the lemma admits;
//! * **per-edge utilization** with the top-K congestion hot spots (which
//!   directed edges carried the most messages, as a fraction of rounds);
//! * **per-round load peaks** (the rounds that moved the most messages);
//! * the **DFS-token critical path** (hops and the round span the token
//!   was in flight, i.e. phase B's serial backbone).
//!
//! The entry point is [`analyze`]; the result renders as a human table
//! ([`std::fmt::Display`]), CSV ([`TraceStats::to_csv`]), or JSON
//! ([`TraceStats::to_json`]).

use super::check;
use super::{ProtocolDetail, TraceEvent};
use crate::partition::Partition;
use crate::telemetry::{SCHEMA_VERSION, STRAGGLER_FACTOR};
use bc_graph::{algo, Graph, NodeId};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Latency picture of one source's BFS wave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceStat {
    /// The wave's source node.
    pub source: NodeId,
    /// Observed absolute start round `T_s`.
    pub ts: u64,
    /// `T_s` relative to the first wave (the paper reports schedules in
    /// this form, e.g. `T = (0, 2, 4, 6, 8)` for Figure 1).
    pub rel_ts: u64,
    /// This source's slot in the minimal Lemma-4 schedule (relative
    /// rounds), when a topology event allows computing it.
    pub minimal_ts: Option<u64>,
    /// `rel_ts − minimal_ts`: rounds this wave started later than the
    /// tightest admissible schedule.
    pub slack: Option<u64>,
    /// Eccentricity of the source in the traced topology.
    pub ecc: Option<u64>,
    /// `T_s + ecc(s)`: the round by which the wavefront has reached every
    /// node (absolute).
    pub expected_wave_end: Option<u64>,
    /// Aggregation sends observed for this source.
    pub agg_sends: u64,
    /// Round of the last aggregation send for this source (absolute) —
    /// the wave's actual completion, where measurable.
    pub last_agg_round: Option<u64>,
}

/// Message load of one directed edge across the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeStat {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Messages carried.
    pub messages: u64,
    /// Payload bits carried.
    pub bits: u64,
    /// `messages / rounds`: fraction of rounds this directed edge was
    /// busy. 1.0 is the CONGEST ceiling.
    pub utilization: f64,
}

/// How evenly one partition strategy would have spread the observed
/// per-node send load over a worker pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSkew {
    /// Strategy label (`"contiguous"` / `"degree"`).
    pub strategy: &'static str,
    /// Worker count evaluated.
    pub threads: usize,
    /// Heaviest shard's message count.
    pub max_load: u64,
    /// Mean shard message count.
    pub mean_load: f64,
    /// `max / mean` ≥ 1 — the slowest worker's stretch factor. 1.0 is a
    /// perfectly balanced assignment.
    pub skew: f64,
}

/// Message load of one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundLoad {
    /// Round number.
    pub round: u64,
    /// Messages delivered in it.
    pub messages: u64,
    /// Payload bits delivered in it.
    pub bits: u64,
}

/// Aggregated congestion/latency statistics of one recorded execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Events examined.
    pub events: usize,
    /// Rounds observed.
    pub rounds: u64,
    /// Total messages.
    pub messages: u64,
    /// Total payload bits.
    pub total_bits: u64,
    /// Per-source wave latency/slack, in wave (`T_s`) order.
    pub sources: Vec<SourceStat>,
    /// Sum of per-source slack, when computable for every source. Zero
    /// means the run executed the minimal Lemma-4 schedule exactly.
    pub total_slack: Option<u64>,
    /// Top-K directed edges by message count, descending.
    pub hot_edges: Vec<EdgeStat>,
    /// Top-K rounds by message count, descending.
    pub peak_rounds: Vec<RoundLoad>,
    /// Rounds whose message load exceeded the robust baseline (the median
    /// round's load × [`STRAGGLER_FACTOR`]), ascending by round. Empty
    /// for well-behaved runs; a populated list pinpoints load anomalies
    /// worth a closer look in the Perfetto timeline.
    pub straggler_rounds: Vec<RoundLoad>,
    /// Per-shard load skew each partition strategy would have produced
    /// for the observed per-node send loads, at a few worker counts.
    /// Empty when the trace carries no topology. Schedule-aware skew is
    /// not reported here: its weights live in the protocol layer, which
    /// this crate cannot see.
    pub shard_skew: Vec<PartitionSkew>,
    /// DFS token hops observed (phase B's serial backbone).
    pub token_hops: u64,
    /// First and last round with token activity, when any.
    pub token_span: Option<(u64, u64)>,
    /// Whether [`super::check`] certified the trace.
    pub check_ok: bool,
}

impl TraceStats {
    /// The observed relative schedule `(T_0, T_1, …)` in wave order.
    pub fn relative_schedule(&self) -> Vec<u64> {
        self.sources.iter().map(|s| s.rel_ts).collect()
    }

    /// Renders the per-source table as CSV (one row per wave).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "source,ts,rel_ts,minimal_ts,slack,ecc,expected_wave_end,last_agg_round,agg_sends\n",
        );
        let opt = |v: Option<u64>| v.map_or(String::new(), |x| x.to_string());
        for s in &self.sources {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{}",
                s.source,
                s.ts,
                s.rel_ts,
                opt(s.minimal_ts),
                opt(s.slack),
                opt(s.ecc),
                opt(s.expected_wave_end),
                opt(s.last_agg_round),
                s.agg_sends,
            );
        }
        out
    }

    /// Renders the full statistics as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"schema_version\":{SCHEMA_VERSION},\
             \"events\":{},\"rounds\":{},\"messages\":{},\"total_bits\":{},\"check_ok\":{}",
            self.events, self.rounds, self.messages, self.total_bits, self.check_ok
        );
        match self.total_slack {
            Some(s) => {
                let _ = write!(out, ",\"total_slack\":{s}");
            }
            None => out.push_str(",\"total_slack\":null"),
        }
        let _ = write!(out, ",\"token_hops\":{}", self.token_hops);
        match self.token_span {
            Some((a, b)) => {
                let _ = write!(out, ",\"token_span\":[{a},{b}]");
            }
            None => out.push_str(",\"token_span\":null"),
        }
        out.push_str(",\"sources\":[");
        let opt = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
        for (i, s) in self.sources.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"source\":{},\"ts\":{},\"rel_ts\":{},\"minimal_ts\":{},\"slack\":{},\
                 \"ecc\":{},\"expected_wave_end\":{},\"last_agg_round\":{},\"agg_sends\":{}}}",
                s.source,
                s.ts,
                s.rel_ts,
                opt(s.minimal_ts),
                opt(s.slack),
                opt(s.ecc),
                opt(s.expected_wave_end),
                opt(s.last_agg_round),
                s.agg_sends,
            );
        }
        out.push_str("],\"hot_edges\":[");
        for (i, e) in self.hot_edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"from\":{},\"to\":{},\"messages\":{},\"bits\":{},\"utilization\":{:.4}}}",
                e.from, e.to, e.messages, e.bits, e.utilization
            );
        }
        out.push_str("],\"peak_rounds\":[");
        for (i, r) in self.peak_rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"round\":{},\"messages\":{},\"bits\":{}}}",
                r.round, r.messages, r.bits
            );
        }
        out.push_str("],\"straggler_rounds\":[");
        for (i, r) in self.straggler_rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"round\":{},\"messages\":{},\"bits\":{}}}",
                r.round, r.messages, r.bits
            );
        }
        out.push_str("],\"shard_skew\":[");
        for (i, s) in self.shard_skew.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"strategy\":\"{}\",\"threads\":{},\"max_load\":{},\
                 \"mean_load\":{:.2},\"skew\":{:.4}}}",
                s.strategy, s.threads, s.max_load, s.mean_load, s.skew
            );
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} events, {} rounds, {} messages, {} bits, invariants {}",
            self.events,
            self.rounds,
            self.messages,
            self.total_bits,
            if self.check_ok { "OK" } else { "VIOLATED" }
        )?;
        if !self.sources.is_empty() {
            let sched: Vec<String> = self.sources.iter().map(|s| s.rel_ts.to_string()).collect();
            writeln!(f, "wave schedule T = ({})", sched.join(", "))?;
            match self.total_slack {
                Some(0) => writeln!(f, "Lemma-4 slack: 0 (minimal schedule achieved)")?,
                Some(s) => writeln!(f, "Lemma-4 slack: {s} rounds above minimal")?,
                None => writeln!(f, "Lemma-4 slack: unavailable (no topology in trace)")?,
            }
            writeln!(
                f,
                "{:>7} {:>6} {:>7} {:>8} {:>6} {:>5} {:>9} {:>9} {:>9}",
                "source", "T_s", "rel", "minimal", "slack", "ecc", "wave_end", "last_agg", "aggs"
            )?;
            let opt = |v: Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
            for s in &self.sources {
                writeln!(
                    f,
                    "{:>7} {:>6} {:>7} {:>8} {:>6} {:>5} {:>9} {:>9} {:>9}",
                    s.source,
                    s.ts,
                    s.rel_ts,
                    opt(s.minimal_ts),
                    opt(s.slack),
                    opt(s.ecc),
                    opt(s.expected_wave_end),
                    opt(s.last_agg_round),
                    s.agg_sends,
                )?;
            }
        }
        if self.token_hops > 0 {
            let span = self
                .token_span
                .map_or("-".to_string(), |(a, b)| format!("rounds {a}..={b}"));
            writeln!(
                f,
                "DFS token critical path: {} hops, {span}",
                self.token_hops
            )?;
        }
        if !self.hot_edges.is_empty() {
            writeln!(f, "hottest directed edges (of {} rounds):", self.rounds)?;
            for e in &self.hot_edges {
                writeln!(
                    f,
                    "  {:>5} -> {:<5} {:>8} msgs {:>10} bits  {:>6.1}% busy",
                    e.from,
                    e.to,
                    e.messages,
                    e.bits,
                    e.utilization * 100.0
                )?;
            }
        }
        if !self.peak_rounds.is_empty() {
            writeln!(f, "busiest rounds:")?;
            for r in &self.peak_rounds {
                writeln!(
                    f,
                    "  round {:>6} {:>8} msgs {:>10} bits",
                    r.round, r.messages, r.bits
                )?;
            }
        }
        if !self.straggler_rounds.is_empty() {
            writeln!(
                f,
                "straggler rounds (load > {}x the median round):",
                STRAGGLER_FACTOR
            )?;
            for r in &self.straggler_rounds {
                writeln!(
                    f,
                    "  round {:>6} {:>8} msgs {:>10} bits",
                    r.round, r.messages, r.bits
                )?;
            }
        }
        if !self.shard_skew.is_empty() {
            writeln!(f, "partition load skew (max/mean send load per shard):")?;
            for s in &self.shard_skew {
                writeln!(
                    f,
                    "  {:>10} x{:<2} {:>8} max {:>10.1} mean  skew {:.2}",
                    s.strategy, s.threads, s.max_load, s.mean_load, s.skew
                )?;
            }
        }
        Ok(())
    }
}

/// Computes congestion/latency statistics from a recorded event stream.
/// `top_k` bounds the hot-edge and peak-round lists.
pub fn analyze(events: &[TraceEvent], top_k: usize) -> TraceStats {
    let report = check::check(events);

    let mut topology: Option<Graph> = None;
    let mut edge_load: HashMap<(NodeId, NodeId), (u64, u64)> = HashMap::new();
    let mut round_load: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut total_bits = 0u64;
    let mut agg: HashMap<NodeId, (u64, u64)> = HashMap::new();
    let mut token_hops = 0u64;
    let mut token_span: Option<(u64, u64)> = None;

    for event in events {
        match event {
            TraceEvent::Topology { n, edges } => {
                topology = Graph::from_edges(*n, edges.iter().copied()).ok();
            }
            TraceEvent::MessageSent {
                round,
                from,
                to,
                bits,
                ..
            } => {
                let bits = *bits as u64;
                total_bits += bits;
                let e = edge_load.entry((*from, *to)).or_default();
                e.0 += 1;
                e.1 += bits;
                let r = round_load.entry(*round).or_default();
                r.0 += 1;
                r.1 += bits;
            }
            TraceEvent::Protocol { round, detail, .. } => match detail {
                ProtocolDetail::AggSend { source } => {
                    let a = agg.entry(*source).or_insert((0, 0));
                    a.0 += 1;
                    a.1 = a.1.max(*round);
                }
                ProtocolDetail::TokenSend { .. } => {
                    token_hops += 1;
                    token_span = Some(match token_span {
                        None => (*round, *round),
                        Some((a, b)) => (a.min(*round), b.max(*round)),
                    });
                }
                ProtocolDetail::TokenReceive => {
                    token_span = Some(match token_span {
                        None => (*round, *round),
                        Some((a, b)) => (a.min(*round), b.max(*round)),
                    });
                }
                _ => {}
            },
            _ => {}
        }
    }

    // Per-source latency and slack, in observed wave (T_s) order. The
    // minimal schedule from `check` is indexed in the same order.
    let first_ts = report.wave_starts.first().map_or(0, |&(_, ts)| ts);
    let ecc_of = |g: &Graph, s: NodeId| -> Option<u64> {
        let dists = algo::bfs(g, s).dist;
        let max = dists
            .iter()
            .copied()
            .filter(|&d| d != algo::UNREACHABLE)
            .max()?;
        Some(max as u64)
    };
    let sources: Vec<SourceStat> = report
        .wave_starts
        .iter()
        .enumerate()
        .map(|(i, &(source, ts))| {
            let rel_ts = ts - first_ts;
            let minimal_ts = report
                .minimal_schedule
                .as_ref()
                .and_then(|m| m.get(i).copied());
            let ecc = topology
                .as_ref()
                .filter(|g| (source as usize) < g.n())
                .and_then(|g| ecc_of(g, source));
            let (agg_sends, last_agg_round) = agg
                .get(&source)
                .map_or((0, None), |&(count, last)| (count, Some(last)));
            SourceStat {
                source,
                ts,
                rel_ts,
                minimal_ts,
                slack: minimal_ts.map(|m| rel_ts - m),
                ecc,
                expected_wave_end: ecc.map(|e| ts + e),
                agg_sends,
                last_agg_round,
            }
        })
        .collect();
    let total_slack = if !sources.is_empty() && sources.iter().all(|s| s.slack.is_some()) {
        Some(sources.iter().filter_map(|s| s.slack).sum())
    } else {
        None
    };

    let mut hot_edges: Vec<EdgeStat> = edge_load
        .into_iter()
        .map(|((from, to), (messages, bits))| EdgeStat {
            from,
            to,
            messages,
            bits,
            utilization: if report.rounds > 0 {
                messages as f64 / report.rounds as f64
            } else {
                0.0
            },
        })
        .collect();
    hot_edges.sort_by(|a, b| {
        b.messages
            .cmp(&a.messages)
            .then(a.from.cmp(&b.from))
            .then(a.to.cmp(&b.to))
    });
    hot_edges.truncate(top_k);

    let mut peak_rounds: Vec<RoundLoad> = round_load
        .into_iter()
        .map(|(round, (messages, bits))| RoundLoad {
            round,
            messages,
            bits,
        })
        .collect();
    peak_rounds.sort_by(|a, b| b.messages.cmp(&a.messages).then(a.round.cmp(&b.round)));

    // Straggler rounds: message load over the median round × k, against
    // the *full* per-round distribution (before the top-K cut). A short
    // trace (< 8 rounds with traffic) has no meaningful baseline.
    let mut straggler_rounds = Vec::new();
    if peak_rounds.len() >= 8 {
        let mut loads: Vec<u64> = peak_rounds.iter().map(|r| r.messages).collect();
        loads.sort_unstable();
        let median = loads[loads.len() / 2];
        if median > 0 {
            straggler_rounds = peak_rounds
                .iter()
                .filter(|r| r.messages > median.saturating_mul(STRAGGLER_FACTOR))
                .copied()
                .collect();
            straggler_rounds.sort_by_key(|r| r.round);
        }
    }
    peak_rounds.truncate(top_k);

    // How each static partition strategy would have spread the observed
    // per-node send load over a worker pool — the trace-side view of the
    // parallel engine's sharding choice.
    let mut shard_skew = Vec::new();
    if let Some(g) = &topology {
        let mut node_sent = vec![0u64; g.n()];
        for event in events {
            if let TraceEvent::MessageSent { from, .. } = event {
                if (*from as usize) < node_sent.len() {
                    node_sent[*from as usize] += 1;
                }
            }
        }
        for strategy in [Partition::Contiguous, Partition::DegreeBalanced] {
            for threads in [2usize, 4, 8] {
                if threads > g.n() {
                    continue;
                }
                let s = strategy.shard_map(g, threads).skew(&node_sent);
                shard_skew.push(PartitionSkew {
                    strategy: strategy.label(),
                    threads,
                    max_load: s.max_load,
                    mean_load: s.mean_load,
                    skew: s.skew,
                });
            }
        }
    }

    TraceStats {
        events: events.len(),
        rounds: report.rounds,
        messages: report.messages,
        total_bits,
        sources,
        total_slack,
        hot_edges,
        peak_rounds,
        straggler_rounds,
        shard_skew,
        token_hops,
        token_span,
        check_ok: report.ok(),
    }
}

/// Recovers adaptive-mode phase boundaries from recorded phase-entry
/// events: the first round in which any node entered phases `'B'`, `'C'`,
/// and `'D'` respectively. Returns `(counting_start, reduce_start,
/// agg_start)` when all three transitions were observed — exactly the
/// boundaries a provisioned [`TraceEvent::Schedule`] would carry, but
/// measured instead of precomputed.
pub fn adaptive_phase_bounds(events: &[TraceEvent]) -> Option<(u64, u64, u64)> {
    let mut firsts: [Option<u64>; 3] = [None, None, None];
    for event in events {
        if let TraceEvent::Protocol {
            round,
            detail: ProtocolDetail::PhaseEnter { phase },
            ..
        } = event
        {
            let idx = match phase {
                'B' => 0,
                'C' => 1,
                'D' => 2,
                _ => continue,
            };
            firsts[idx] = Some(firsts[idx].map_or(*round, |r: u64| r.min(*round)));
        }
    }
    match firsts {
        [Some(b), Some(c), Some(d)] => Some((b, c, d)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5_topology() -> TraceEvent {
        TraceEvent::Topology {
            n: 5,
            edges: vec![(0, 1), (1, 2), (2, 3), (3, 4)],
        }
    }

    fn wave(node: NodeId, ts: u64) -> TraceEvent {
        TraceEvent::Protocol {
            round: ts,
            node,
            detail: ProtocolDetail::WaveStart { ts },
        }
    }

    fn sent(round: u64, from: NodeId, to: NodeId, bits: usize) -> TraceEvent {
        TraceEvent::MessageSent {
            round,
            from,
            to,
            bits,
            payload: None,
        }
    }

    #[test]
    fn minimal_schedule_has_zero_slack() {
        // Waves on the path at the tightest admissible spacing (d+1 = 2).
        let events = vec![
            path5_topology(),
            TraceEvent::RoundStart { round: 0 },
            wave(0, 10),
            wave(1, 12),
            wave(2, 14),
            wave(3, 16),
            wave(4, 18),
        ];
        let stats = analyze(&events, 5);
        assert_eq!(stats.relative_schedule(), vec![0, 2, 4, 6, 8]);
        assert_eq!(stats.total_slack, Some(0));
        assert!(stats.sources.iter().all(|s| s.slack == Some(0)));
        // Path endpoints have eccentricity 4, the middle node 2.
        assert_eq!(stats.sources[0].ecc, Some(4));
        assert_eq!(stats.sources[2].ecc, Some(2));
        assert_eq!(stats.sources[0].expected_wave_end, Some(14));
    }

    #[test]
    fn slack_measures_lateness() {
        let events = vec![path5_topology(), wave(0, 10), wave(1, 15)];
        let stats = analyze(&events, 5);
        // Minimal spacing is 2; the second wave started 3 rounds late.
        assert_eq!(stats.sources[1].slack, Some(3));
        assert_eq!(stats.total_slack, Some(3));
    }

    #[test]
    fn hot_edges_and_peaks_ranked() {
        let events = vec![
            TraceEvent::RoundStart { round: 0 },
            TraceEvent::RoundStart { round: 1 },
            sent(0, 0, 1, 8),
            sent(1, 0, 1, 8),
            sent(1, 1, 2, 16),
        ];
        let stats = analyze(&events, 1);
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.total_bits, 32);
        assert_eq!(stats.hot_edges.len(), 1);
        let hot = &stats.hot_edges[0];
        assert_eq!((hot.from, hot.to, hot.messages), (0, 1, 2));
        assert!((hot.utilization - 1.0).abs() < 1e-9);
        assert_eq!(stats.peak_rounds.len(), 1);
        assert_eq!(stats.peak_rounds[0].round, 1);
        assert_eq!(stats.peak_rounds[0].messages, 2);
    }

    #[test]
    fn token_path_and_agg_completion() {
        let events = vec![
            TraceEvent::Protocol {
                round: 3,
                node: 0,
                detail: ProtocolDetail::TokenSend { to: 1 },
            },
            TraceEvent::Protocol {
                round: 4,
                node: 1,
                detail: ProtocolDetail::TokenReceive,
            },
            TraceEvent::Protocol {
                round: 5,
                node: 1,
                detail: ProtocolDetail::TokenSend { to: 2 },
            },
            wave(0, 3),
            TraceEvent::Protocol {
                round: 9,
                node: 2,
                detail: ProtocolDetail::AggSend { source: 0 },
            },
            TraceEvent::Protocol {
                round: 11,
                node: 1,
                detail: ProtocolDetail::AggSend { source: 0 },
            },
        ];
        let stats = analyze(&events, 5);
        assert_eq!(stats.token_hops, 2);
        assert_eq!(stats.token_span, Some((3, 5)));
        assert_eq!(stats.sources[0].agg_sends, 2);
        assert_eq!(stats.sources[0].last_agg_round, Some(11));
    }

    #[test]
    fn renders_all_formats() {
        let events = vec![path5_topology(), wave(0, 0), wave(1, 2), sent(0, 0, 1, 8)];
        let stats = analyze(&events, 3);
        let text = stats.to_string();
        assert!(text.contains("wave schedule T = (0, 2)"), "{text}");
        assert!(text.contains("slack: 0"), "{text}");
        let csv = stats.to_csv();
        assert!(csv.starts_with("source,ts,"), "{csv}");
        assert_eq!(csv.lines().count(), 3);
        let json = stats.to_json();
        assert!(json.contains("\"total_slack\":0"), "{json}");
        assert!(json.contains("\"sources\":[{\"source\":0"), "{json}");
    }

    #[test]
    fn adaptive_bounds_from_phase_entries() {
        let enter = |round, node, phase| TraceEvent::Protocol {
            round,
            node,
            detail: ProtocolDetail::PhaseEnter { phase },
        };
        let events = vec![
            enter(0, 0, 'A'),
            enter(7, 1, 'B'),
            enter(8, 0, 'B'),
            enter(20, 0, 'C'),
            enter(31, 2, 'D'),
        ];
        assert_eq!(adaptive_phase_bounds(&events), Some((7, 20, 31)));
        assert_eq!(adaptive_phase_bounds(&events[..3]), None);
        assert_eq!(adaptive_phase_bounds(&[]), None);
    }

    #[test]
    fn shard_skew_reported_per_strategy_and_thread_count() {
        // Node 0 does all the sending: contiguous chunking leaves its
        // whole load on shard 0, so skew = threads; degree balancing
        // can't fix a single-node hot spot either, but both rows must be
        // present and well-formed.
        let mut events = vec![path5_topology()];
        for r in 0..4 {
            events.push(TraceEvent::RoundStart { round: r });
            events.push(sent(r, 0, 1, 8));
        }
        let stats = analyze(&events, 3);
        // threads 8 > n=5 is skipped ⇒ 2 strategies × {2, 4}.
        assert_eq!(stats.shard_skew.len(), 4);
        assert!(stats
            .shard_skew
            .iter()
            .any(|s| s.strategy == "contiguous" && s.threads == 2));
        assert!(stats.shard_skew.iter().all(|s| s.skew >= 1.0));
        assert!(stats.shard_skew.iter().all(|s| s.max_load == 4));
        let json = stats.to_json();
        assert!(
            json.contains("\"shard_skew\":[{\"strategy\":\"contiguous\""),
            "{json}"
        );
        let text = stats.to_string();
        assert!(text.contains("partition load skew"), "{text}");
    }

    #[test]
    fn straggler_rounds_flag_load_spikes_only() {
        // Nine steady rounds of one message, then a 10-message spike.
        let mut events = vec![];
        for r in 0..9 {
            events.push(TraceEvent::RoundStart { round: r });
            events.push(sent(r, 0, 1, 8));
        }
        events.push(TraceEvent::RoundStart { round: 9 });
        for _ in 0..10 {
            events.push(sent(9, 0, 1, 8));
        }
        let stats = analyze(&events, 3);
        assert_eq!(stats.straggler_rounds.len(), 1);
        assert_eq!(stats.straggler_rounds[0].round, 9);
        assert_eq!(stats.straggler_rounds[0].messages, 10);
        let json = stats.to_json();
        assert!(json.starts_with("{\"schema_version\":1,"), "{json}");
        assert!(
            json.contains("\"straggler_rounds\":[{\"round\":9"),
            "{json}"
        );
        assert!(stats.to_string().contains("straggler rounds"), "{}", stats);

        // A uniform run flags nothing.
        let mut quiet = vec![];
        for r in 0..10 {
            quiet.push(TraceEvent::RoundStart { round: r });
            quiet.push(sent(r, 0, 1, 8));
        }
        let stats = analyze(&quiet, 3);
        assert!(stats.straggler_rounds.is_empty());
    }

    #[test]
    fn empty_trace_yields_empty_stats() {
        let stats = analyze(&[], 5);
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.messages, 0);
        assert!(stats.sources.is_empty());
        assert_eq!(stats.total_slack, None);
        assert!(stats.check_ok);
    }
}
