//! Synchronous CONGEST-model network simulator.
//!
//! The paper's algorithms are analyzed in the classical synchronous
//! CONGEST model (Peleg, *Distributed Computing: A Locality-Sensitive
//! Approach*): nodes wake simultaneously, communicate on globally
//! synchronized pulses, and may send at most one `O(log N)`-bit message per
//! incident edge per round. Time complexity is the number of rounds.
//!
//! This crate simulates that model *exactly* and makes its constraints
//! observable:
//!
//! * every message payload is a real bit string ([`Message`]) whose length
//!   is charged against a `Θ(log N)` budget ([`Budget`]);
//! * the engine counts messages per (edge, direction, round) so schedule
//!   collisions (what the paper's Lemma 4 rules out) are detected, not
//!   assumed;
//! * executions report [`NetMetrics`] — rounds, bits, maximum message size,
//!   bit flow across a declared [`EdgeCut`] (used by the lower-bound
//!   experiments E8).
//!
//! Both a deterministic serial engine ([`Network::run`]) and a
//! crossbeam-based parallel engine ([`Network::run_parallel`]) are
//! provided; they produce identical results.
//!
//! # Example: BFS flooding in the CONGEST model
//!
//! ```
//! use bc_congest::{Config, Message, Network, Protocol, RoundCtx};
//! use bc_graph::generators;
//! use bc_numeric::bits::BitWriter;
//!
//! /// Each node learns its distance from node 0 by flooding.
//! struct Flood { dist: Option<u64>, announced: bool }
//!
//! impl Protocol for Flood {
//!     fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]) {
//!         if ctx.round() == 0 && ctx.id() == 0 {
//!             self.dist = Some(0);
//!         }
//!         for (_, msg) in inbox {
//!             let d = msg.payload().reader().read(32);
//!             if self.dist.is_none() {
//!                 self.dist = Some(d + 1);
//!             }
//!         }
//!         if let (Some(d), false) = (self.dist, self.announced) {
//!             self.announced = true;
//!             let mut w = BitWriter::new();
//!             w.push(d, 32);
//!             ctx.broadcast(&Message::new(w.finish()));
//!         }
//!     }
//!     fn is_halted(&self) -> bool { self.announced }
//! }
//!
//! let g = generators::cycle(8);
//! let mut net = Network::new(&g, Config::default(), |_, _| Flood { dist: None, announced: false });
//! let report = net.run(100)?;
//! // Radius 4: the last node announces in round 4; its messages are
//! // consumed in round 5, and the engine observes quiescence after round 6.
//! assert_eq!(report.rounds, 6);
//! assert_eq!(net.node(4).dist, Some(4));
//! assert!(net.metrics().congest_compliant());
//! # Ok::<(), bc_congest::CongestError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asynchronous;
pub mod faults;
mod message;
mod metrics;
mod network;
pub mod partition;
pub mod profile;
pub mod telemetry;
pub mod trace;
pub mod wire;

pub use faults::{CrashWindow, FaultDecision, FaultPlan};
pub use message::Message;
pub use metrics::{EdgeCut, NetMetrics, PhaseStat};
pub use network::{
    Budget, Config, CongestError, Enforcement, Network, Protocol, RoundCtx, RunReport,
};
pub use partition::{Partition, ShardMap, ShardSkew};
pub use profile::{
    PhaseSpan, ProfileReport, Profiler, RoundSpan, Straggler, SyncStats, WorkerStats,
};
pub use telemetry::{Counter, Postmortem, Telemetry, TelemetryHandle, SCHEMA_VERSION};

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::{generators, Graph};
    use bc_numeric::bits::BitWriter;
    use trace::TraceEvent;

    fn msg(v: u64, width: u32) -> Message {
        let mut w = BitWriter::new();
        w.push(v, width);
        Message::new(w.finish())
    }

    /// Flood distances from node 0.
    struct Flood {
        dist: Option<u64>,
        announced: bool,
    }

    impl Flood {
        fn new() -> Self {
            Flood {
                dist: None,
                announced: false,
            }
        }
    }

    impl Protocol for Flood {
        fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]) {
            if ctx.round() == 0 && ctx.id() == 0 {
                self.dist = Some(0);
            }
            for (_, m) in inbox {
                let d = m.payload().reader().read(32);
                if self.dist.is_none() {
                    self.dist = Some(d + 1);
                }
            }
            if let (Some(d), false) = (self.dist, self.announced) {
                self.announced = true;
                ctx.broadcast(&msg(d, 32));
            }
        }

        fn is_halted(&self) -> bool {
            self.announced
        }
    }

    /// A deliberately broken protocol that double-sends on port 0.
    struct DoubleSender {
        fired: bool,
    }

    impl Protocol for DoubleSender {
        fn round(&mut self, ctx: &mut RoundCtx<'_>, _inbox: &[(usize, Message)]) {
            if !self.fired && ctx.id() == 0 {
                ctx.send(0, msg(1, 8));
                ctx.send(0, msg(2, 8));
            }
            self.fired = true;
        }

        fn is_halted(&self) -> bool {
            self.fired
        }
    }

    /// Sends one oversized message from node 0.
    struct BigSender {
        fired: bool,
    }

    impl Protocol for BigSender {
        fn round(&mut self, ctx: &mut RoundCtx<'_>, _inbox: &[(usize, Message)]) {
            if !self.fired && ctx.id() == 0 {
                let mut w = BitWriter::new();
                for _ in 0..100 {
                    w.push(u64::MAX, 64);
                }
                ctx.send(0, Message::new(w.finish()));
            }
            self.fired = true;
        }

        fn is_halted(&self) -> bool {
            self.fired
        }
    }

    #[test]
    fn flood_computes_distances_on_path() {
        let g = generators::path(10);
        let mut net = Network::new(&g, Config::default(), |_, _| Flood::new());
        let report = net.run(1000).unwrap();
        for v in 0..10u32 {
            assert_eq!(net.node(v).dist, Some(v as u64));
        }
        // The distance-9 node announces in round 9; its message is consumed
        // in round 10; the engine observes quiescence entering round 11.
        assert_eq!(report.rounds, 11);
        assert!(net.metrics().congest_compliant());
        assert_eq!(net.metrics().max_messages_per_edge_round, 1);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = generators::erdos_renyi_connected(60, 0.05, 9);
        let mut serial = Network::new(&g, Config::default(), |_, _| Flood::new());
        serial.run(10_000).unwrap();
        for threads in [1, 2, 3, 8] {
            let mut par = Network::new(&g, Config::default(), |_, _| Flood::new());
            par.run_parallel(10_000, threads).unwrap();
            for v in g.nodes() {
                assert_eq!(par.node(v).dist, serial.node(v).dist, "thread={threads}");
            }
            assert_eq!(par.metrics(), serial.metrics());
        }
    }

    #[test]
    fn collision_detected_strict() {
        let g = generators::path(3);
        let mut net = Network::new(&g, Config::default(), |_, _| DoubleSender { fired: false });
        let err = net.run(10).unwrap_err();
        assert!(matches!(
            err,
            CongestError::Collision {
                node: 0,
                port: 0,
                round: 0
            }
        ));
        assert!(err.to_string().contains("collision"));
    }

    #[test]
    fn collision_recorded_lenient() {
        let g = generators::path(3);
        let cfg = Config {
            enforcement: Enforcement::Record,
            ..Config::default()
        };
        let mut net = Network::new(&g, cfg, |_, _| DoubleSender { fired: false });
        net.run(10).unwrap();
        assert_eq!(net.metrics().collisions, 1);
        assert_eq!(net.metrics().max_messages_per_edge_round, 2);
        assert!(!net.metrics().congest_compliant());
    }

    #[test]
    fn oversized_detected_strict() {
        let g = generators::path(2);
        let mut net = Network::new(&g, Config::default(), |_, _| BigSender { fired: false });
        let err = net.run(10).unwrap_err();
        assert!(matches!(err, CongestError::Oversized { node: 0, .. }));
        assert!(err.to_string().contains("oversized"));
    }

    #[test]
    fn oversized_allowed_unlimited() {
        let g = generators::path(2);
        let cfg = Config {
            budget: Budget::Unlimited,
            ..Config::default()
        };
        let mut net = Network::new(&g, cfg, |_, _| BigSender { fired: false });
        net.run(10).unwrap();
        assert_eq!(net.metrics().oversized_messages, 0);
        assert_eq!(net.metrics().max_message_bits, 6400);
    }

    #[test]
    fn round_limit_error() {
        /// Never halts.
        struct Chatter;
        impl Protocol for Chatter {
            fn round(&mut self, ctx: &mut RoundCtx<'_>, _: &[(usize, Message)]) {
                let m = msg(ctx.round() & 0xFF, 8);
                ctx.broadcast(&m);
            }
            fn is_halted(&self) -> bool {
                false
            }
        }
        let g = generators::cycle(4);
        let mut net = Network::new(&g, Config::default(), |_, _| Chatter);
        assert_eq!(net.run(5), Err(CongestError::RoundLimit { max_rounds: 5 }));
        assert!(net.run(5).unwrap_err().to_string().contains("halt"));
    }

    #[test]
    fn budget_resolution() {
        assert_eq!(Budget::Auto.resolve(1024), Some(8 * 10 + 64));
        assert_eq!(Budget::Bits(100).resolve(7), Some(100));
        assert_eq!(Budget::Unlimited.resolve(1000), None);
    }

    #[test]
    fn cut_flow_accounting() {
        // Path 0-1-2-3: cut between 1 and 2.
        let g = generators::path(4);
        let cfg = Config {
            cut: Some(EdgeCut::new([(1, 2)])),
            ..Config::default()
        };
        let mut net = Network::new(&g, cfg, |_, _| Flood::new());
        net.run(100).unwrap();
        // Exactly two messages cross the cut: flood 1→2 and 2's own
        // broadcast back 2→1.
        assert_eq!(net.metrics().cut_messages, 2);
        assert_eq!(net.metrics().cut_bits, 64);
    }

    #[test]
    fn ctx_topology_accessors() {
        struct Probe {
            checked: bool,
        }
        impl Protocol for Probe {
            fn round(&mut self, ctx: &mut RoundCtx<'_>, _: &[(usize, Message)]) {
                if ctx.id() == 1 {
                    assert_eq!(ctx.degree(), 2);
                    assert_eq!(ctx.neighbor(0), 0);
                    assert_eq!(ctx.neighbor(1), 2);
                    assert_eq!(ctx.port_of(2), Some(1));
                    assert_eq!(ctx.port_of(9), None);
                    assert_eq!(ctx.n(), 3);
                }
                self.checked = true;
            }
            fn is_halted(&self) -> bool {
                self.checked
            }
        }
        let g = generators::path(3);
        let mut net = Network::new(&g, Config::default(), |_, _| Probe { checked: false });
        net.run(10).unwrap();
        assert!(net.node(1).checked);
    }

    #[test]
    fn into_nodes_returns_states() {
        let g = generators::path(4);
        let mut net = Network::new(&g, Config::default(), |_, _| Flood::new());
        net.run(100).unwrap();
        let nodes = net.into_nodes();
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[3].dist, Some(3));
    }

    #[test]
    fn isolated_node_graph_runs() {
        // Nodes 1 and 2 are unreachable: they never announce, so the flood
        // protocol cannot halt — the engine reports the round limit rather
        // than spinning forever.
        let g = Graph::from_edges(3, []).unwrap();
        let mut net = Network::new(&g, Config::default(), |_, _| Flood::new());
        assert_eq!(
            net.run(10),
            Err(CongestError::RoundLimit { max_rounds: 10 })
        );
        assert_eq!(net.node(0).dist, Some(0));
        assert_eq!(net.node(1).dist, None);
    }

    #[test]
    fn send_on_bad_port_is_a_node_panic_error() {
        struct Bad;
        impl Protocol for Bad {
            fn round(&mut self, ctx: &mut RoundCtx<'_>, _: &[(usize, Message)]) {
                ctx.send(5, Message::default());
            }
            fn is_halted(&self) -> bool {
                false
            }
        }
        let g = generators::path(2);
        let mut net = Network::new(&g, Config::default(), |_, _| Bad);
        match net.run(1) {
            Err(CongestError::NodePanic {
                node: 0,
                round: 0,
                message,
            }) => assert!(message.contains("nonexistent port 5"), "{message}"),
            other => panic!("expected NodePanic, got {other:?}"),
        }
    }

    #[test]
    fn node_panic_names_same_node_and_round_on_both_engines() {
        // Node 3 blows up in round 2; every engine and thread count must
        // report exactly that, not abort the process, and not report a
        // higher-id node that also panicked.
        struct Fused;
        impl Protocol for Fused {
            fn round(&mut self, ctx: &mut RoundCtx<'_>, _: &[(usize, Message)]) {
                if ctx.round() == 2 && ctx.id() >= 3 {
                    panic!("fuse blown at node {}", ctx.id());
                }
            }
            fn is_halted(&self) -> bool {
                false
            }
        }
        let g = generators::cycle(8);
        let expected = Err(CongestError::NodePanic {
            node: 3,
            round: 2,
            message: "fuse blown at node 3".to_string(),
        });
        let mut serial = Network::new(&g, Config::default(), |_, _| Fused);
        assert_eq!(serial.run(10), expected);
        for threads in [1, 2, 3, 8] {
            let mut par = Network::new(&g, Config::default(), |_, _| Fused);
            assert_eq!(par.run_parallel(10, threads), expected, "threads={threads}");
        }
    }

    #[test]
    fn idle_skipping_is_observationally_free() {
        // Flood keeps the default `idle_at` (never skipped); wrap it in a
        // protocol that *does* declare idleness and check that skipping on
        // vs off changes nothing (results, metrics, rounds).
        struct IdleAware(Flood);
        impl Protocol for IdleAware {
            fn round(&mut self, ctx: &mut RoundCtx<'_>, inbox: &[(usize, Message)]) {
                // Flood only acts on round 0 (the source announce) or on
                // arriving messages, so idle_at below is honest.
                self.0.round(ctx, inbox);
            }
            fn is_halted(&self) -> bool {
                self.0.is_halted()
            }
            fn idle_at(&self, round: u64) -> bool {
                round > 0
            }
        }
        let g = generators::erdos_renyi_connected(24, 0.15, 11);
        let run = |skip_idle: bool, threads: usize| {
            let cfg = Config {
                skip_idle,
                ..Config::default()
            };
            let mut net = Network::new(&g, cfg, |_, _| IdleAware(Flood::new()));
            let report = if threads == 0 {
                net.run(200).unwrap()
            } else {
                net.run_parallel(200, threads).unwrap()
            };
            let metrics = net.metrics().clone();
            let dists: Vec<_> = net.into_nodes().into_iter().map(|f| f.0.dist).collect();
            (report, metrics, dists)
        };
        let baseline = run(false, 0);
        for threads in [0, 1, 3] {
            assert_eq!(run(true, threads), baseline, "threads={threads}");
        }
    }

    #[test]
    fn run_rounds_steps_exactly() {
        let g = generators::path(5);
        let mut net = Network::new(&g, Config::default(), |_, _| Flood::new());
        net.run_rounds(2).unwrap();
        assert_eq!(net.metrics().rounds, 2);
        assert_eq!(net.node(1).dist, Some(1));
        assert_eq!(net.node(3).dist, None);
    }

    #[test]
    fn network_debug_nonempty() {
        let g = generators::path(2);
        let net = Network::new(&g, Config::default(), |_, _| Flood::new());
        assert!(format!("{net:?}").contains("Network"));
    }

    #[test]
    fn tracing_does_not_change_execution() {
        let g = generators::erdos_renyi_connected(40, 0.08, 3);
        let mut plain = Network::new(&g, Config::default(), |_, _| Flood::new());
        let plain_rounds = plain.run(10_000).unwrap().rounds;
        let mut traced = Network::new(&g, Config::default(), |_, _| Flood::new());
        traced.set_trace_sink(Box::new(trace::RingSink::new(1 << 16)));
        let traced_rounds = traced.run(10_000).unwrap().rounds;
        assert_eq!(plain_rounds, traced_rounds);
        assert_eq!(plain.metrics(), traced.metrics());
        for v in g.nodes() {
            assert_eq!(plain.node(v).dist, traced.node(v).dist);
        }
    }

    #[test]
    fn serial_and_parallel_emit_identical_event_streams() {
        let g = generators::erdos_renyi_connected(50, 0.07, 11);
        let mut serial = Network::new(&g, Config::default(), |_, _| Flood::new());
        serial.set_trace_sink(Box::new(trace::RingSink::new(1 << 20)));
        serial.run(10_000).unwrap();
        let serial_events = serial.take_trace_sink().unwrap().drain_events();
        assert!(!serial_events.is_empty());
        for threads in [2, 5] {
            let mut par = Network::new(&g, Config::default(), |_, _| Flood::new());
            par.set_trace_sink(Box::new(trace::RingSink::new(1 << 20)));
            par.run_parallel(10_000, threads).unwrap();
            let par_events = par.take_trace_sink().unwrap().drain_events();
            assert_eq!(serial_events, par_events, "threads={threads}");
        }
    }

    #[test]
    fn traced_run_passes_offline_checks() {
        let g = generators::erdos_renyi_connected(30, 0.1, 5);
        let mut net = Network::new(&g, Config::default(), |_, _| Flood::new());
        let mut events = vec![TraceEvent::Topology {
            n: g.n(),
            edges: g.edges().collect(),
        }];
        net.set_trace_sink(Box::new(trace::RingSink::new(1 << 20)));
        net.run(10_000).unwrap();
        events.extend(net.take_trace_sink().unwrap().drain_events());
        let report = trace::check::check(&events);
        assert!(report.ok(), "{report}");
        assert_eq!(report.messages, net.metrics().total_messages);
    }

    #[test]
    fn violations_are_traced() {
        let g = generators::path(3);
        let cfg = Config {
            enforcement: Enforcement::Record,
            ..Config::default()
        };
        let mut net = Network::new(&g, cfg, |_, _| DoubleSender { fired: false });
        net.set_trace_sink(Box::new(trace::RingSink::new(1024)));
        net.run(10).unwrap();
        let events = net.take_trace_sink().unwrap().drain_events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::ViolationDetected {
                node: 0,
                kind: trace::ViolationKind::Collision { port: 0 },
                ..
            }
        )));
        let report = trace::check::check(&events);
        assert!(!report.ok());
    }

    #[test]
    fn synchronizer_trace_matches_on_content() {
        use std::collections::BTreeSet;
        let g = generators::erdos_renyi_connected(20, 0.15, 7);
        let mut sync = Network::new(&g, Config::default(), |_, _| Flood::new());
        sync.set_trace_sink(Box::new(trace::RingSink::new(1 << 20)));
        let rounds = sync.run(10_000).unwrap().rounds;
        let sync_events = sync.take_trace_sink().unwrap().drain_events();
        let (_, _, mut sink) = asynchronous::run_synchronized_traced(
            &g,
            asynchronous::AsyncConfig::default(),
            rounds,
            |_, _| Flood::new(),
            Box::new(trace::RingSink::new(1 << 20)),
        );
        let async_events = sink.drain_events();
        // The synchronizer emits events in asynchronous schedule order;
        // the multiset of message sends must match the synchronous run.
        let key = |es: &[TraceEvent]| -> BTreeSet<(u64, u32, u32, usize)> {
            es.iter()
                .filter_map(|e| match *e {
                    TraceEvent::MessageSent {
                        round,
                        from,
                        to,
                        bits,
                        ..
                    } => Some((round, from, to, bits)),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(key(&sync_events), key(&async_events));
        assert_eq!(
            sync_events
                .iter()
                .filter(|e| matches!(e, TraceEvent::RoundStart { .. }))
                .count(),
            async_events
                .iter()
                .filter(|e| matches!(e, TraceEvent::RoundStart { .. }))
                .count()
        );
    }
}
