//! Messages exchanged in the CONGEST model.

use bc_numeric::bits::BitBuf;
use std::fmt;

/// A single CONGEST message: an opaque bit string whose length is charged
/// against the per-edge-per-round budget (Section III-A of the paper limits
/// messages to `O(log N)` bits).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Message {
    payload: BitBuf,
}

impl Message {
    /// Wraps an encoded payload.
    pub fn new(payload: BitBuf) -> Self {
        Message { payload }
    }

    /// The payload bits.
    pub fn payload(&self) -> &BitBuf {
        &self.payload
    }

    /// Message size in bits — the quantity the CONGEST budget constrains.
    pub fn bit_len(&self) -> usize {
        self.payload.bit_len()
    }
}

impl From<BitBuf> for Message {
    fn from(payload: BitBuf) -> Self {
        Message::new(payload)
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Message({} bits)", self.bit_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_numeric::bits::BitWriter;

    #[test]
    fn wraps_payload() {
        let mut w = BitWriter::new();
        w.push(0b1011, 4);
        let m = Message::new(w.finish());
        assert_eq!(m.bit_len(), 4);
        assert_eq!(m.payload().reader().read(4), 0b1011);
        assert_eq!(format!("{m:?}"), "Message(4 bits)");
    }

    #[test]
    fn default_is_empty() {
        assert_eq!(Message::default().bit_len(), 0);
    }

    #[test]
    fn from_bitbuf() {
        let mut w = BitWriter::new();
        w.push_bool(true);
        let m: Message = w.finish().into();
        assert_eq!(m.bit_len(), 1);
    }
}
